//! E3 — Figure 4: the four alternative executions.
//!
//! The paper's Figure 4 shows, for a query with one aggregate view, four
//! plan shapes: (a) the traditional plan (group-by after all view
//! joins), (b) group-by pushed down inside the view, (c) group-by pulled
//! up past outer joins, and (d) both at once. "Since neither pull-up nor
//! push-down transformation always reduces the cost of execution, they
//! must be applied judiciously."
//!
//! Query (one aggregate view over emp ⋈ dept exporting a dept column,
//! joined to a filtered second emp instance):
//!
//! ```sql
//! V(dno, dname, asal) AS
//!   SELECT e1.dno, d.dname, AVG(e1.sal) FROM emp e1, dept d
//!    WHERE e1.dno = d.dno GROUP BY e1.dno, d.dname
//! SELECT e3.sal, v.dname FROM emp e3, V v
//!  WHERE e3.dno = v.dno AND e3.age < 22 AND e3.sal > v.asal
//! ```
//!
//! Sweep department count (how big the view's group-by is) × young
//! fraction (how selective the outer relation is) and report the shape
//! the full optimizer chooses, classified by which relations sit below
//! the view's group-by. Expected: at least three of Figure 4's shapes
//! are each chosen somewhere, and the choice never loses to the
//! traditional plan.

use aggview_bench::{model_with_mem, pages, print_table, run_all_variants, Variant};
use aggview_common::{AggFunc, AggSpec, CmpOp, Col, Expr, Predicate, RelId, Value, ViewId};
use aggview_core::query::examples::{dept, emp};
use aggview_core::query::{CanonicalQuery, QueryEnv, ViewDef};
use aggview_core::Plan;
use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};
use std::collections::BTreeSet;

fn figure4_query() -> CanonicalQuery {
    let mut env = QueryEnv::default();
    let e1 = env.add_rel("emp"); // r0: view emp
    let d = env.add_rel("dept"); // r1: view dept
    let e3 = env.add_rel("emp"); // r2: outer emp
    let view = ViewDef {
        index: 0,
        rels: vec![e1, d],
        preds: vec![Predicate::eq_cols(
            Col::base(e1, emp::DNO),
            Col::base(d, dept::DNO),
        )],
        group_cols: vec![
            Col::base(e1, emp::DNO),
            Col::base(d, dept::DNAME),
            Col::base(d, dept::LOC),
        ],
        aggs: vec![AggSpec::new(
            AggFunc::Avg,
            Expr::col(Col::base(e1, emp::SAL)),
        )],
        having: vec![],
    };
    CanonicalQuery {
        env,
        views: vec![view],
        base_rels: vec![e3],
        preds: vec![
            Predicate::eq_cols(Col::base(e3, emp::DNO), Col::base(e1, emp::DNO)),
            Predicate::cmp_const(Col::base(e3, emp::AGE), CmpOp::Lt, Value::Int(22)),
            Predicate::new(
                Expr::col(Col::base(e3, emp::SAL)),
                CmpOp::Gt,
                Expr::col(Col::agg(ViewId::View(0), 0)),
            ),
        ],
        group: None,
        projection: vec![
            Col::base(e3, emp::SAL),
            Col::base(d, dept::DNAME),
            Col::base(d, dept::LOC),
        ],
    }
}

/// Classify the plan by the relations below the view's group-by
/// (Figure 4's distinguishing feature).
fn shape_of(plan: &Plan) -> &'static str {
    fn find_gb(plan: &Plan) -> Option<u64> {
        match plan {
            Plan::GroupBy { input, spec, .. } if spec.owner == ViewId::View(0) => {
                Some(input.rel_set())
            }
            Plan::GroupBy { input, .. } | Plan::PartialGroupBy { input, .. } => find_gb(input),
            Plan::Join { left, right, .. } => find_gb(left).or_else(|| find_gb(right)),
            Plan::Scan { .. } | Plan::ExtentScan { .. } | Plan::EmptyScan { .. } => None,
        }
    }
    let Some(rels) = find_gb(plan) else {
        return "(?) no view group-by";
    };
    let e1 = RelId(0).bit();
    let d = RelId(1).bit();
    let e3 = RelId(2).bit();
    match rels {
        r if r == e1 | d => "(a) traditional",
        r if r == e1 => "(b) push-down",
        r if r == e1 | d | e3 => "(c) pull-up",
        r if r == e1 | e3 => "(d) push+pull",
        _ => "(?) other",
    }
}

fn main() {
    let model = model_with_mem(4.0);
    let total_emps = 60_000usize;
    let dept_counts = [50usize, 1200, 30000];
    let young_fracs = [0.003f64, 0.5];

    let mut rows = Vec::new();
    let mut shapes_seen: BTreeSet<&'static str> = BTreeSet::new();
    for &nd in &dept_counts {
        for &yf in &young_fracs {
            let catalog = gen_empdept(&EmpDeptConfig {
                n_depts: nd,
                emps_per_dept: (total_emps / nd).max(2),
                young_fraction: yf,
                low_budget_fraction: 0.3,
                seed: 3,
            })
            .expect("catalog");
            let q = figure4_query();
            let runs = run_all_variants(&q, &catalog, model);
            let trad = runs
                .iter()
                .find(|r| r.variant == Variant::Traditional)
                .unwrap();
            let full = runs.iter().find(|r| r.variant == Variant::Full).unwrap();
            let shape = shape_of(&full.optimized.plan);
            shapes_seen.insert(shape);
            rows.push(vec![
                nd.to_string(),
                format!("{yf:.3}"),
                pages(trad.measured_io),
                pages(full.measured_io),
                format!("{:.2}x", trad.measured_io / full.measured_io.max(1e-9)),
                shape.to_string(),
            ]);
            // The never-worse guarantee is on *estimated* cost; measured
            // IO can regress when cardinality estimates mislead. Allow a
            // bounded regression and assert the estimate ordering.
            assert!(
                full.optimized.props.cost <= trad.optimized.props.cost + 1e-6,
                "estimated-cost guarantee violated at nd={nd} yf={yf}"
            );
            assert!(
                full.measured_io <= trad.measured_io * 1.6 + 1.0,
                "full lost badly at nd={nd} yf={yf}"
            );
        }
    }
    print_table(
        "E3: Figure 4 — which of the four executions wins where \
         (60k employees, 4-page memory)",
        &[
            "depts",
            "young",
            "trad IO",
            "full IO",
            "speedup",
            "chosen shape",
        ],
        &rows,
    );
    println!("\nshapes chosen across the sweep: {shapes_seen:?}");
    assert!(
        shapes_seen.len() >= 3,
        "expected at least three of Figure 4's shapes, saw {shapes_seen:?}"
    );
    println!("shape check passed: the execution space realizes Figure 4.");
}
