//! Ablation — the aggregation spill model (DESIGN.md §3a).
//!
//! The workspace charges spilled hash aggregation as *hybrid* (early
//! aggregation: `2 × min(output, input)` pages). The classic
//! non-aggregating Grace charge (`2 × input`) makes a spilled partial
//! aggregation exactly as expensive as partitioning its input for a
//! join, so **coalescing** can never pay. This ablation runs the E2 and
//! E8 winning workloads under both models and shows:
//!
//! * E8's coalescing win (1.25×) collapses to a tie under Grace — the
//!   partial group-by is no longer inserted at all;
//! * E2's push-down win *persists* under Grace, because that win is
//!   driven by avoiding a join spill (the pushed aggregate fits in
//!   memory), not by the aggregation charge itself.
//!
//! Together these pin down exactly which conclusions depend on the
//! model choice (DESIGN.md §3a).

use aggview_bench::{pages, print_table, run_all_variants, Variant};
use aggview_common::{AggSpec, Col, Predicate, ViewId};
use aggview_core::cost::ops::IoParams;
use aggview_core::cost::CostModel;
use aggview_core::query::examples::example2_wide_query;
use aggview_core::query::{CanonicalQuery, QueryEnv, TopGroup};
use aggview_storage::datagen::{gen_empdept, gen_star, EmpDeptConfig, StarConfig};
use aggview_storage::PageModel;

fn model(mem: f64, grace: bool) -> CostModel {
    CostModel {
        page: PageModel::default(),
        io: IoParams {
            mem_pages: mem,
            grace_agg: grace,
        },
    }
}

fn coalescing_query() -> CanonicalQuery {
    let mut env = QueryEnv::default();
    let l = env.add_rel("lineitem");
    let o = env.add_rel("orders");
    CanonicalQuery {
        env,
        views: vec![],
        base_rels: vec![l, o],
        preds: vec![Predicate::eq_cols(Col::base(l, 1), Col::base(o, 0))],
        group: Some(TopGroup {
            group_cols: vec![Col::base(o, 1)],
            aggs: vec![AggSpec::count_star()],
            having: vec![],
        }),
        projection: vec![Col::base(o, 1), Col::agg(ViewId::Top, 0)],
    }
}

fn main() {
    let empdept = gen_empdept(&EmpDeptConfig {
        n_depts: 1000,
        emps_per_dept: 200,
        young_fraction: 0.1,
        low_budget_fraction: 0.3,
        seed: 2,
    })
    .expect("catalog");
    let star = gen_star(&StarConfig {
        customers: 3000,
        orders_per_customer: 8,
        lines_per_order: 16,
        nations: 25,
        seed: 8,
    })
    .expect("catalog");

    let mut rows = Vec::new();
    let mut hybrid_speedups = Vec::new();
    let mut grace_speedups = Vec::new();
    for (workload, q, catalog, mem) in [
        ("E2 wide grouping", example2_wide_query(), &empdept, 6.0),
        ("E8 coalescing", coalescing_query(), &star, 4.0),
    ] {
        for grace in [false, true] {
            let runs = run_all_variants(&q, catalog, model(mem, grace));
            let trad = runs
                .iter()
                .find(|r| r.variant == Variant::Traditional)
                .unwrap();
            let push = runs
                .iter()
                .find(|r| r.variant == Variant::PushDown)
                .unwrap();
            let speedup = trad.measured_io / push.measured_io.max(1e-9);
            if grace {
                grace_speedups.push(speedup);
            } else {
                hybrid_speedups.push(speedup);
            }
            rows.push(vec![
                workload.to_string(),
                if grace {
                    "grace (2×input)"
                } else {
                    "hybrid (2×output)"
                }
                .to_string(),
                pages(trad.measured_io),
                pages(push.measured_io),
                format!("{speedup:.2}x"),
                push.optimized.plan.group_by_count().to_string(),
            ]);
        }
    }
    print_table(
        "Ablation: aggregation spill model — push-down/coalescing wins \
         under hybrid vs Grace charging",
        &[
            "workload",
            "agg model",
            "trad IO",
            "push IO",
            "speedup",
            "group-bys",
        ],
        &rows,
    );
    assert!(
        hybrid_speedups.iter().all(|s| *s > 1.1),
        "hybrid model should show the wins ({hybrid_speedups:?})"
    );
    // E2 (index 0): join-spill-driven, survives Grace.
    assert!(
        grace_speedups[0] > 1.1,
        "E2's join-driven win should survive Grace ({grace_speedups:?})"
    );
    // E8 (index 1): aggregation-driven, erased by Grace.
    assert!(
        grace_speedups[1] < 1.05,
        "E8's coalescing win should vanish under Grace ({grace_speedups:?})"
    );
    println!(
        "\nablation confirms DESIGN.md §3a: coalescing's benefit exists only \
         under the hybrid (early-aggregation) spill model; invariant \
         grouping's join-spill benefit is model-independent."
    );
}
