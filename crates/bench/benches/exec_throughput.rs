//! Criterion microbenchmark: executor operator throughput.
//!
//! Wall-clock time of executing the core physical operators (hash join,
//! hash aggregation, the full Example 1 plan) — sanity that the
//! substrate is fast enough for the experiment suite's repeated
//! executions.

use aggview_bench::model_with_mem;
use aggview_common::{AggFunc, AggSpec, Col, Expr, Predicate, RelId, ViewId};
use aggview_core::optimizer::multi_view::optimize;
use aggview_core::plan::{all_cols, GroupBySpec, Plan};
use aggview_core::query::examples::{emp, example1_query};
use aggview_core::query::QueryEnv;
use aggview_core::OptimizerConfig;
use aggview_executor::Engine;
use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_exec(c: &mut Criterion) {
    let catalog = gen_empdept(&EmpDeptConfig {
        n_depts: 100,
        emps_per_dept: 100,
        young_fraction: 0.1,
        low_budget_fraction: 0.3,
        seed: 12,
    })
    .expect("catalog");
    let model = model_with_mem(64.0);
    let env = QueryEnv::new(vec!["emp".into(), "dept".into()]);
    let engine = Engine::new(&catalog, &env, model);
    let n_emp = catalog.get("emp").unwrap().len() as u64;

    let join_plan = Plan::join_all(
        Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5)),
        Plan::scan(RelId(1), "dept", vec![], all_cols(RelId(1), 4)),
        vec![Predicate::eq_cols(
            Col::base(RelId(0), emp::DNO),
            Col::base(RelId(1), 0),
        )],
    );
    let agg_plan = Plan::group_by_all(
        Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5)),
        GroupBySpec {
            owner: ViewId::Top,
            group_cols: vec![Col::base(RelId(0), emp::DNO)],
            aggs: vec![AggSpec::new(
                AggFunc::Avg,
                Expr::col(Col::base(RelId(0), emp::SAL)),
            )],
            having: vec![],
        },
    );

    let mut group = c.benchmark_group("executor");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n_emp));
    group.bench_function("hash_join_10k", |b| {
        b.iter(|| engine.execute(&join_plan).unwrap())
    });
    group.bench_function("hash_agg_10k", |b| {
        b.iter(|| engine.execute(&agg_plan).unwrap())
    });

    // Full pipeline: optimize + execute Example 1.
    let q = example1_query();
    let e1_engine = Engine::new(&catalog, &q.env, model);
    let plan = optimize(&q, &catalog, model, &OptimizerConfig::default())
        .unwrap()
        .plan;
    group.bench_function("example1_end_to_end", |b| {
        b.iter(|| e1_engine.execute(&plan).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_exec);
criterion_main!(benches);
