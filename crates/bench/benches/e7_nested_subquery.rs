//! E7 — the nested-subquery pathway (paper Sections 1 and 6).
//!
//! "Our transformations and optimization algorithms apply not only to
//! queries with aggregate views but also to queries with nested
//! subqueries" — via Kim-style flattening. This experiment evaluates the
//! correlated form of Example 1 three ways:
//!
//! 1. naive tuple-at-a-time correlated evaluation (one inner scan per
//!    qualifying outer tuple),
//! 2. flattened (type-JA) + traditional optimizer,
//! 3. flattened + this paper's optimizer,
//!
//! sweeping database size and outer selectivity. Expected shape:
//! flattening wins by orders of magnitude as soon as several outer
//! tuples qualify; the paper's optimizer never loses to the traditional
//! one on the flattened form.

use aggview_bench::{model_with_mem, pages, print_table};
use aggview_common::{AggFunc, CmpOp, Col, Predicate, RelId, Value};
use aggview_core::optimizer::multi_view::optimize;
use aggview_core::OptimizerConfig;
use aggview_executor::correlated::{execute_correlated, CorrelatedQuery};
use aggview_executor::Engine;
use aggview_sql::binder::{bind, ViewRegistry};
use aggview_sql::parser::parse;
use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

const SQL: &str = "select e1.sal from emp e1 where e1.age < 22 and \
                   e1.sal > (select avg(e2.sal) from emp e2 where e2.dno = e1.dno)";

fn main() {
    let model = model_with_mem(16.0);
    let grid = [
        (50usize, 40usize, 0.02f64),
        (50, 40, 0.2),
        (400, 50, 0.02),
        (400, 50, 0.2),
    ];

    let mut rows = Vec::new();
    for &(nd, epd, yf) in &grid {
        let catalog = gen_empdept(&EmpDeptConfig {
            n_depts: nd,
            emps_per_dept: epd,
            young_fraction: yf,
            low_budget_fraction: 0.3,
            seed: 7,
        })
        .expect("catalog");

        // (1) naive correlated evaluation.
        let corr = CorrelatedQuery {
            outer: "emp".into(),
            inner: "emp".into(),
            outer_filters: vec![Predicate::cmp_const(
                Col::base(RelId(0), 4),
                CmpOp::Lt,
                Value::Int(22),
            )],
            corr_outer: 2,
            corr_inner: 2,
            cmp_col: 3,
            op: CmpOp::Gt,
            agg: AggFunc::Avg,
            agg_col: 3,
            project: vec![3],
        };
        let naive = execute_correlated(&corr, &catalog, &model).expect("correlated");

        // (2)/(3) flatten through the SQL frontend.
        let aggview_sql::ast::Stmt::Select(stmt) = parse(SQL).expect("parse") else {
            unreachable!()
        };
        let bound = bind(&stmt, &catalog, &ViewRegistry::new()).expect("bind");
        let engine = Engine::new(&catalog, &bound.query.env, model);
        let trad = optimize(
            &bound.query,
            &catalog,
            model,
            &OptimizerConfig::traditional(),
        )
        .expect("trad");
        let full =
            optimize(&bound.query, &catalog, model, &OptimizerConfig::default()).expect("full");
        let trad_rs = engine.execute(&trad.plan).expect("exec");
        let full_rs = engine.execute(&full.plan).expect("exec");

        assert_eq!(
            naive.rows.len(),
            trad_rs.rows.len(),
            "flattening must agree"
        );
        assert_eq!(naive.rows.len(), full_rs.rows.len());
        assert!(
            full_rs.io_pages <= naive.io_pages,
            "flattened plan must not lose to naive at nd={nd} yf={yf}"
        );
        rows.push(vec![
            format!("{nd}x{epd}"),
            format!("{yf:.2}"),
            naive.rows.len().to_string(),
            pages(naive.io_pages),
            pages(trad_rs.io_pages),
            pages(full_rs.io_pages),
            format!("{:.0}x", naive.io_pages / full_rs.io_pages.max(1e-9)),
        ]);
    }
    print_table(
        "E7: correlated nested subquery — naive vs flattened (Kim type-JA) \
         + aggregate-view optimization",
        &[
            "depts x emps",
            "young",
            "rows",
            "naive IO",
            "flat trad IO",
            "flat full IO",
            "speedup",
        ],
        &rows,
    );
    println!("\nshape check passed: flattening dominates naive correlated evaluation.");
}
