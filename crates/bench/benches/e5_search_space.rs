//! E5 — Section 5.3's practical restrictions: search-space growth.
//!
//! "The size of the search space is extremely sensitive to the
//! application of pull-up transformation. Thus, we do not pull-up a
//! relation through a view unless they share a predicate. Furthermore
//! ... we consider a k-level pull-up in which no partial plan may
//! involve more than k applications of pull-up."
//!
//! This experiment measures optimizer effort (candidate plans built +
//! group-by placements considered) for a one-view query joined to a
//! growing chain of base relations, across k ∈ {0 (traditional), 1, 2,
//! ∞}, with and without the shared-predicate gate.
//!
//! Expected shape: effort grows with k; the restrictions cut it
//! substantially; even unrestricted pull-up stays within a moderate
//! multiple of the traditional optimizer for these query sizes (the
//! paper's "very moderate increase in search space" claim).

use aggview_bench::{model_with_mem, print_table};
use aggview_common::{AggFunc, AggSpec, CmpOp, Col, Expr, Predicate, Value, ViewId};
use aggview_core::optimizer::multi_view::optimize;
use aggview_core::query::{CanonicalQuery, QueryEnv, ViewDef};
use aggview_core::{OptimizerConfig, PullUpLevel};
use aggview_storage::datagen::{gen_star, StarConfig};

/// V(ono, rev) over lineitem; chain: orders → customer → nation → region.
fn chain_query(n_base: usize) -> CanonicalQuery {
    let mut env = QueryEnv::default();
    let l = env.add_rel("lineitem"); // r0 (view)
    let chain_tables = ["orders", "customer", "nation", "region"];
    let base: Vec<_> = chain_tables[..n_base]
        .iter()
        .map(|t| env.add_rel(*t))
        .collect();
    let view = ViewDef {
        index: 0,
        rels: vec![l],
        preds: vec![],
        group_cols: vec![Col::base(l, 1)],
        aggs: vec![AggSpec::new(AggFunc::Sum, Expr::col(Col::base(l, 3)))],
        having: vec![],
    };
    let mut preds = vec![
        // orders.ono = lineitem.ono (view group column)
        Predicate::eq_cols(Col::base(base[0], 0), Col::base(l, 1)),
        Predicate::new(
            Expr::col(Col::agg(ViewId::View(0), 0)),
            CmpOp::Gt,
            Expr::val(Value::Float(100.0)),
        ),
    ];
    // Chain joins: orders.cno=customer.cno, customer.nno=nation.nno,
    // nation.rno=region.rno.
    for i in 1..n_base {
        preds.push(Predicate::eq_cols(
            Col::base(base[i - 1], 1),
            Col::base(base[i], 0),
        ));
    }
    CanonicalQuery {
        env,
        views: vec![view],
        base_rels: base.clone(),
        preds,
        group: None,
        projection: vec![Col::base(base[0], 0)],
    }
}

fn main() {
    let catalog = gen_star(&StarConfig {
        customers: 300,
        orders_per_customer: 4,
        lines_per_order: 2,
        nations: 25,
        seed: 5,
    })
    .expect("catalog");
    let model = model_with_mem(8.0);

    let levels: [(&str, PullUpLevel, bool); 5] = [
        ("k=0 (traditional)", PullUpLevel::Disabled, true),
        ("k=1", PullUpLevel::Limited(1), true),
        ("k=2", PullUpLevel::Limited(2), true),
        ("k=inf", PullUpLevel::Unlimited, true),
        ("k=inf, no gate", PullUpLevel::Unlimited, false),
    ];

    let mut rows = Vec::new();
    let mut efforts: Vec<Vec<u64>> = Vec::new();
    for n_base in 1..=4usize {
        let q = chain_query(n_base);
        let mut row = vec![format!("{}", n_base + 1)];
        let mut eff_row = Vec::new();
        for &(_, level, gate) in &levels {
            let cfg = OptimizerConfig {
                pull_up: level,
                push_down: level != PullUpLevel::Disabled,
                require_shared_predicate: gate,
                ..Default::default()
            };
            let opt = optimize(&q, &catalog, model, &cfg).expect("optimize");
            row.push(opt.stats.total().to_string());
            eff_row.push(opt.stats.total());
        }
        rows.push(row);
        efforts.push(eff_row);
    }
    print_table(
        "E5: optimizer effort (plans built + group-by placements) vs query \
         size and k-level pull-up",
        &[
            "relations",
            "k=0 (trad)",
            "k=1",
            "k=2",
            "k=inf",
            "k=inf no gate",
        ],
        &rows,
    );

    // Shape checks: effort is monotone in k and the growth over the
    // traditional optimizer stays moderate at these query sizes.
    for (n, eff) in efforts.iter().enumerate() {
        for w in eff.windows(2) {
            assert!(w[0] <= w[1], "effort must grow with k (n_base={})", n + 1);
        }
        let ratio = eff[3] as f64 / eff[0] as f64;
        assert!(
            ratio < 60.0,
            "unrestricted pull-up effort {ratio:.1}x traditional (n_base={})",
            n + 1
        );
    }
    // The gate must reduce (or preserve) effort.
    for eff in &efforts {
        assert!(
            eff[3] <= eff[4],
            "shared-predicate gate should not add effort"
        );
    }
    let last = efforts.last().unwrap();
    println!(
        "\nat 5 relations: k=1 costs {:.1}x traditional, unrestricted {:.1}x, \
         ungated {:.1}x",
        last[1] as f64 / last[0] as f64,
        last[3] as f64 / last[0] as f64,
        last[4] as f64 / last[0] as f64
    );
    println!("shape check passed: restrictions bound the search space.");
}
