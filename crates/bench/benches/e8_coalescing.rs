//! E8 — Section 4.2: simple coalescing grouping.
//!
//! Coalescing adds a *partial* group-by below a join: "the effect of
//! simple coalescing is to add group-by operators ... G1 acts to
//! coalesce groups that are created by G2." It pays off when the partial
//! aggregation compacts a large fact-table input before it feeds an
//! expensive join, and requires decomposable aggregate functions.
//!
//! Query (count line items per customer — grouping column from orders,
//! aggregate over lineitem, so invariant grouping cannot move the whole
//! group-by, but a partial COUNT can be computed on the lineitem side):
//!
//! ```sql
//! SELECT o.cno, COUNT(*) FROM lineitem l, orders o
//!  WHERE l.ono = o.ono GROUP BY o.cno
//! ```
//!
//! Sweep the fan-out (line items per order) and compare the traditional
//! plan with the push-down optimizer (which may insert the partial
//! group-by). Expected shape: coalescing wins increasingly with
//! fan-out; it never loses; the chosen plan contains two group-by
//! operators when it fires.

use aggview_bench::{model_with_mem, pages, print_table, run_all_variants, Variant};
use aggview_common::{AggSpec, Col, Predicate, ViewId};
use aggview_core::query::{CanonicalQuery, QueryEnv, TopGroup};
use aggview_storage::datagen::{gen_star, StarConfig};

fn count_per_customer() -> CanonicalQuery {
    let mut env = QueryEnv::default();
    let l = env.add_rel("lineitem");
    let o = env.add_rel("orders");
    CanonicalQuery {
        env,
        views: vec![],
        base_rels: vec![l, o],
        preds: vec![Predicate::eq_cols(Col::base(l, 1), Col::base(o, 0))],
        group: Some(TopGroup {
            group_cols: vec![Col::base(o, 1)],
            aggs: vec![AggSpec::count_star()],
            having: vec![],
        }),
        projection: vec![Col::base(o, 1), Col::agg(ViewId::Top, 0)],
    }
}

fn main() {
    let model = model_with_mem(4.0);
    let fanouts = [1usize, 4, 16];

    let mut rows = Vec::new();
    let mut coalesced_somewhere = false;
    let mut won_at_max_fanout = false;
    for &lpo in &fanouts {
        let catalog = gen_star(&StarConfig {
            customers: 3000,
            orders_per_customer: 8,
            lines_per_order: lpo,
            nations: 25,
            seed: 8,
        })
        .expect("catalog");
        let q = count_per_customer();
        let runs = run_all_variants(&q, &catalog, model);
        let trad = runs
            .iter()
            .find(|r| r.variant == Variant::Traditional)
            .unwrap();
        let push = runs
            .iter()
            .find(|r| r.variant == Variant::PushDown)
            .unwrap();
        let coalesced = push.optimized.plan.group_by_count() >= 2;
        if coalesced {
            coalesced_somewhere = true;
        }
        let speedup = trad.measured_io / push.measured_io.max(1e-9);
        if lpo == 16 && speedup > 1.1 {
            won_at_max_fanout = true;
        }
        rows.push(vec![
            lpo.to_string(),
            (3000 * 8 * lpo).to_string(),
            pages(trad.measured_io),
            pages(push.measured_io),
            format!("{speedup:.2}x"),
            if coalesced {
                "partial G2 + coalescing G1"
            } else {
                "single group-by"
            }
            .to_string(),
        ]);
        assert!(
            push.optimized.props.cost <= trad.optimized.props.cost + 1e-6,
            "guarantee violated at lpo={lpo}"
        );
    }
    print_table(
        "E8: simple coalescing grouping — COUNT(*) per customer over \
         lineitem ⋈ orders (24k orders, 4-page memory)",
        &[
            "lines/order",
            "lineitems",
            "trad IO",
            "push IO",
            "speedup",
            "chosen shape",
        ],
        &rows,
    );
    assert!(
        coalesced_somewhere,
        "coalescing should fire at high fan-out"
    );
    assert!(won_at_max_fanout, "coalescing should win at fan-out 16");
    println!("\nshape check passed: eager partial aggregation pays off with fan-out.");
}
