//! E4 — Figure 5 / Section 5.4: queries with multiple aggregate views.
//!
//! The general algorithm optimizes each "extended" aggregate view
//! (phase 1, pulling disjoint subsets of base relations through each
//! view) and then enumerates the outer block (phase 2). This experiment
//! runs a two-view decision-support query over the star schema:
//!
//! ```sql
//! V1(ono, rev)    AS SELECT ono, SUM(price)   FROM lineitem GROUP BY ono
//! V2(nno, avgbal) AS SELECT nno, AVG(acctbal) FROM customer GROUP BY nno
//! SELECT o.ono, c.cname FROM orders o, customer c, V1 r, V2 n
//!  WHERE o.ono = r.ono AND r.rev > 500 AND o.odate < 26   -- ~1% of orders
//!    AND o.cno = c.cno AND c.nno = n.nno AND c.acctbal > n.avgbal
//! ```
//!
//! `V1` aggregates the whole fact table into one group per order — the
//! expensive aggregation — while the outer block keeps only ~1% of
//! orders. Pulling `orders` through `V1` (Figure 5's `Φ(V1, B1)`)
//! defers the aggregation until after that selective join. `V2` stays
//! local. The experiment sweeps the order-date selectivity and compares
//! the optimizer variants.
//!
//! Expected shape: with a selective outer filter the full optimizer
//! pulls `orders` through `V1` and wins; with an unselective filter it
//! keeps both views local and ties; search effort stays within a small
//! multiple.

use aggview_bench::{model_with_mem, pages, print_table, run_all_variants, Variant};
use aggview_common::{AggFunc, AggSpec, CmpOp, Col, Expr, Predicate, Value, ViewId};
use aggview_core::query::{CanonicalQuery, QueryEnv, ViewDef};
use aggview_storage::datagen::{gen_star, StarConfig};

/// lineitem(lno, ono, qty, price, discount), orders(ono, cno, odate,
/// status, total), customer(cno, nno, cname, segment, acctbal).
fn two_view_query(odate_cut: i64) -> CanonicalQuery {
    let mut env = QueryEnv::default();
    let l = env.add_rel("lineitem"); // r0: V1 body
    let c2 = env.add_rel("customer"); // r1: V2 body
    let o = env.add_rel("orders"); // r2: outer
    let c = env.add_rel("customer"); // r3: outer
    let v1 = ViewDef {
        index: 0,
        rels: vec![l],
        preds: vec![],
        group_cols: vec![Col::base(l, 1)], // lineitem.ono
        aggs: vec![AggSpec::new(AggFunc::Sum, Expr::col(Col::base(l, 3)))],
        having: vec![],
    };
    let v2 = ViewDef {
        index: 1,
        rels: vec![c2],
        preds: vec![],
        group_cols: vec![Col::base(c2, 1)], // customer.nno
        aggs: vec![AggSpec::new(AggFunc::Avg, Expr::col(Col::base(c2, 4)))],
        having: vec![],
    };
    CanonicalQuery {
        env,
        views: vec![v1, v2],
        base_rels: vec![o, c],
        preds: vec![
            Predicate::eq_cols(Col::base(o, 0), Col::base(l, 1)),
            Predicate::new(
                Expr::col(Col::agg(ViewId::View(0), 0)),
                CmpOp::Gt,
                Expr::val(Value::Float(500.0)),
            ),
            Predicate::cmp_const(Col::base(o, 2), CmpOp::Lt, Value::Int(odate_cut)),
            Predicate::eq_cols(Col::base(o, 1), Col::base(c, 0)),
            Predicate::eq_cols(Col::base(c, 1), Col::base(c2, 1)),
            Predicate::new(
                Expr::col(Col::base(c, 4)),
                CmpOp::Gt,
                Expr::col(Col::agg(ViewId::View(1), 0)),
            ),
        ],
        group: None,
        projection: vec![Col::base(o, 0), Col::base(c, 2)],
    }
}

fn main() {
    let model = model_with_mem(4.0);
    let catalog = gen_star(&StarConfig {
        customers: 2500,
        orders_per_customer: 24,
        lines_per_order: 2,
        nations: 25,
        seed: 4,
    })
    .expect("catalog");
    // odate ranges over 0..2557; the cut controls outer selectivity.
    let cuts: [(i64, &str); 3] = [(26, "1%"), (256, "10%"), (2557, "100%")];

    let mut rows = Vec::new();
    let mut full_won_somewhere = false;
    for &(cut, label) in &cuts {
        let q = two_view_query(cut);
        let runs = run_all_variants(&q, &catalog, model);
        let trad = runs
            .iter()
            .find(|r| r.variant == Variant::Traditional)
            .unwrap();
        let full = runs.iter().find(|r| r.variant == Variant::Full).unwrap();
        let pulled: Vec<String> = full
            .optimized
            .pulled
            .iter()
            .enumerate()
            .map(|(i, w)| format!("V{}←{}", i + 1, w.len()))
            .collect();
        let speedup = trad.measured_io / full.measured_io.max(1e-9);
        if speedup > 1.1 && full.optimized.pulled.iter().any(|w| !w.is_empty()) {
            full_won_somewhere = true;
        }
        rows.push(vec![
            label.to_string(),
            pages(trad.measured_io),
            pages(full.measured_io),
            format!("{speedup:.2}x"),
            pulled.join(" "),
            trad.optimized.stats.total().to_string(),
            full.optimized.stats.total().to_string(),
        ]);
        assert!(
            full.optimized.props.cost <= trad.optimized.props.cost + 1e-6,
            "guarantee violated at cut={cut}"
        );
    }
    print_table(
        "E4: two aggregate views (Figure 5 query shape), 60k orders / 120k line items, 4-page memory",
        &[
            "order sel",
            "trad IO",
            "full IO",
            "speedup",
            "pulled",
            "trad effort",
            "full effort",
        ],
        &rows,
    );
    assert!(
        full_won_somewhere,
        "pulling orders through V1 should win at high selectivity"
    );
    println!("\nshape check passed: multi-view optimization behaves per Section 5.4.");
}
