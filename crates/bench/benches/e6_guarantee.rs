//! E6 — the never-worse guarantee, empirically.
//!
//! "We guarantee that the chosen plan is no worse than that produced by
//! the traditional optimization algorithm." The guarantee is on
//! *estimated* cost (both optimizers use the same cost model and the
//! extended search space contains the traditional plan). This
//! experiment stresses it on randomized catalogs and memory budgets,
//! and also reports the distribution of the *measured* IO ratio, where
//! estimation error can occasionally cost the full optimizer.

use aggview_bench::{geo_mean, model_with_mem, print_table};
use aggview_common::{AggFunc, AggSpec, CmpOp, Col, Expr, Predicate, Value, ViewId};
use aggview_core::optimizer::multi_view::optimize;
use aggview_core::query::{CanonicalQuery, QueryEnv, ViewDef};
use aggview_core::OptimizerConfig;
use aggview_executor::{assert_equivalent, Engine};
use aggview_storage::datagen::{gen_random_catalog, RandomCatalogConfig};

/// Random-shape query: aggregate view over t0 (avg val by j1), outer
/// block t1 [⋈ t2] with a selective filter, comparison against the
/// view's aggregate.
fn random_query(with_t2: bool, t1_id_cut: i64) -> CanonicalQuery {
    let mut env = QueryEnv::default();
    let t0 = env.add_rel("t0");
    let t1 = env.add_rel("t1");
    let view = ViewDef {
        index: 0,
        rels: vec![t0],
        preds: vec![],
        // Grouping by both join columns makes the view's aggregation
        // output large (often comparable to t0 itself), so deferring it
        // past a selective join can pay.
        group_cols: vec![Col::base(t0, 1), Col::base(t0, 2)],
        aggs: vec![AggSpec::new(AggFunc::Avg, Expr::col(Col::base(t0, 3)))],
        having: vec![],
    };
    let mut base = vec![t1];
    let mut preds = vec![
        Predicate::eq_cols(Col::base(t1, 1), Col::base(t0, 1)),
        Predicate::cmp_const(Col::base(t1, 0), CmpOp::Lt, Value::Int(t1_id_cut)),
        Predicate::new(
            Expr::col(Col::base(t1, 3)),
            CmpOp::Gt,
            Expr::col(Col::agg(ViewId::View(0), 0)),
        ),
    ];
    if with_t2 {
        let t2 = env.add_rel("t2");
        base.push(t2);
        preds.push(Predicate::eq_cols(Col::base(t1, 2), Col::base(t2, 2)));
    }
    CanonicalQuery {
        env,
        views: vec![view],
        base_rels: base,
        preds,
        group: None,
        projection: vec![Col::base(t1, 3)],
    }
}

fn main() {
    let mut ratios_est = Vec::new();
    let mut ratios_meas = Vec::new();
    let mut strict_wins = 0u32;
    let mut cases = 0u32;
    for seed in 0..40u64 {
        let catalog = gen_random_catalog(&RandomCatalogConfig {
            n_tables: 3,
            rows: (200, 30_000),
            join_domain: (2, 4000),
            seed,
        })
        .expect("catalog");
        for mem in [4.0, 16.0, 64.0] {
            let model = model_with_mem(mem);
            for with_t2 in [false, true] {
                // Cut keeps roughly (seed % 5 + 1) * 4 percent of t1.
                let cut = ((seed % 5 + 1) * 4 * 30_000 / 100) as i64;
                let q = random_query(with_t2, cut);
                let trad = optimize(&q, &catalog, model, &OptimizerConfig::traditional())
                    .expect("traditional");
                let full =
                    optimize(&q, &catalog, model, &OptimizerConfig::default()).expect("full");
                // THE guarantee.
                assert!(
                    full.props.cost <= trad.props.cost + 1e-6,
                    "violated at seed={seed} mem={mem} t2={with_t2}: \
                     full {} > trad {}",
                    full.props.cost,
                    trad.props.cost
                );
                // Execution equivalence + measured ratio.
                let engine = Engine::new(&catalog, &q.env, model);
                let a = engine.execute(&trad.plan).expect("exec trad");
                let b = engine.execute(&full.plan).expect("exec full");
                assert_equivalent(&a, &b)
                    .unwrap_or_else(|e| panic!("results diverge at seed={seed} mem={mem}: {e}"));
                ratios_est.push(trad.props.cost / full.props.cost.max(1e-9));
                ratios_meas.push(a.io_pages / b.io_pages.max(1e-9));
                if full.props.cost < trad.props.cost - 1e-6 {
                    strict_wins += 1;
                }
                cases += 1;
            }
        }
    }
    let max_meas_regression = ratios_meas.iter().cloned().fold(f64::INFINITY, f64::min);
    let rows = vec![vec![
        cases.to_string(),
        strict_wins.to_string(),
        format!("{:.3}", geo_mean(&ratios_est)),
        format!("{:.3}", ratios_est.iter().cloned().fold(0.0, f64::max)),
        format!("{:.3}", geo_mean(&ratios_meas)),
        format!("{:.3}", max_meas_regression),
    ]];
    print_table(
        "E6: never-worse guarantee over randomized catalogs \
         (ratio = traditional / full; >1 means full wins)",
        &[
            "cases",
            "strict est wins",
            "est geo-mean",
            "est best",
            "meas geo-mean",
            "meas worst",
        ],
        &rows,
    );
    assert!(cases >= 200, "need a meaningful sample");
    assert!(
        max_meas_regression > 0.5,
        "measured regressions should be bounded (estimation error only)"
    );
    println!("\nshape check passed: estimated cost is never worse across {cases} cases.");
}
