//! E10 — end-to-end decision support (the paper's Section 1 motivation).
//!
//! "Complex queries, with aggregates, views and nested subqueries, are
//! important in decision-support applications (e.g., see TPC-D
//! benchmark)." This experiment runs five decision-support queries over
//! the TPC-D-like star schema through the full SQL pathway (parse →
//! bind/flatten → optimize → execute) and compares measured IO under
//! the traditional and full optimizer configurations.
//!
//! Expected shape: the full optimizer never loses on estimate and wins
//! on at least one query; every query executes correctly end-to-end
//! through the SQL frontend.

use aggview_bench::{model_with_mem, pages, print_table};
use aggview_core::optimizer::multi_view::optimize;
use aggview_core::OptimizerConfig;
use aggview_executor::Engine;
use aggview_sql::Session;
use aggview_storage::datagen::{gen_star, StarConfig};

const QUERIES: [(&str, &str); 5] = [
    (
        "Q1 order revenue (agg view + selective dim)",
        "create view order_rev(ono, rev) as \
           select l.ono, sum(l.price) from lineitem l group by l.ono; \
         select o.ono, r.rev from orders o, order_rev r \
          where o.ono = r.ono and o.odate < 128 and r.rev > 5000;",
    ),
    (
        "Q2 rich customers vs nation average (agg view)",
        "create view nation_bal(nno, avg_bal) as \
           select c2.nno, avg(c2.acctbal) from customer c2 group by c2.nno; \
         select c.cname from customer c, nation_bal nb \
          where c.nno = nb.nno and c.acctbal > nb.avg_bal;",
    ),
    (
        "Q3 line items per customer (fan-out group-by)",
        "select o.cno, count(*) from lineitem l, orders o \
          where l.ono = o.ono group by o.cno;",
    ),
    (
        "Q4 avg order total per nation segment (3-way join + group-by)",
        "select n.nname, avg(o.total) from orders o, customer c, nation n \
          where o.cno = c.cno and c.nno = n.nno and c.segment = 'machinery' \
          group by n.nname;",
    ),
    (
        "Q5 orders above their customer's average (correlated subquery)",
        "select o.ono from orders o where o.odate < 500 and \
         o.total > (select avg(o2.total) from orders o2 where o2.cno = o.cno);",
    ),
];

fn main() {
    let model = model_with_mem(8.0);
    let catalog = gen_star(&StarConfig {
        customers: 2000,
        orders_per_customer: 10,
        lines_per_order: 4,
        nations: 25,
        seed: 10,
    })
    .expect("catalog");

    let mut rows = Vec::new();
    let mut full_won = 0u32;
    for (name, sql) in QUERIES {
        let mut session = Session::new(
            gen_star(&StarConfig {
                customers: 2000,
                orders_per_customer: 10,
                lines_per_order: 4,
                nations: 25,
                seed: 10,
            })
            .expect("catalog"),
        );
        session.model = model;
        let (bound, full) = session.plan(sql).expect(name);
        let trad = optimize(
            &bound.query,
            &catalog,
            model,
            &OptimizerConfig::traditional(),
        )
        .expect("traditional");
        let engine = Engine::new(&catalog, &bound.query.env, model);
        let trad_rs = engine.execute(&trad.plan).expect("exec trad");
        let full_rs = engine.execute(&full.plan).expect("exec full");
        assert_eq!(
            trad_rs.rows.len(),
            full_rs.rows.len(),
            "{name}: result sizes diverge"
        );
        assert!(
            full.props.cost <= trad.props.cost + 1e-6,
            "{name}: guarantee violated"
        );
        let speedup = trad_rs.io_pages / full_rs.io_pages.max(1e-9);
        if speedup > 1.05 {
            full_won += 1;
        }
        rows.push(vec![
            name.to_string(),
            full_rs.rows.len().to_string(),
            pages(trad_rs.io_pages),
            pages(full_rs.io_pages),
            format!("{speedup:.2}x"),
        ]);
    }
    print_table(
        "E10: decision-support queries end-to-end (2000 customers, 20k \
         orders, 80k line items, 8-page memory)",
        &["query", "rows", "trad IO", "full IO", "speedup"],
        &rows,
    );
    assert!(
        full_won >= 1,
        "the full optimizer should win at least one decision-support query"
    );
    println!("\nshape check passed: {full_won}/5 queries improved end-to-end.");
}
