//! E9 — cost-model validation: estimated vs measured IO.
//!
//! Every conclusion of the paper rests on the optimizer ranking plans by
//! estimated IO. This experiment executes the plans chosen by every
//! optimizer variant across a corpus of workloads (the Example 1
//! crossover grid, Example 2 both widths, the Figure 4 query, and the
//! star-schema coalescing query) and reports the distribution of
//! `estimated / measured` — the estimator's bias and spread.
//!
//! Because both sides use the *same charging formulas*
//! (`aggview_core::cost::ops`), any discrepancy is cardinality/width
//! estimation error by construction.
//!
//! Expected shape: geometric-mean ratio within 2× of 1.0 and bounded
//! spread — good enough for the crossover decisions earlier experiments
//! demonstrate.

use aggview_bench::{geo_mean, model_with_mem, print_table, run_all_variants};
use aggview_core::query::examples::{example1_query, example2_query, example2_wide_query};
use aggview_storage::datagen::{gen_empdept, gen_star, EmpDeptConfig, StarConfig};

fn main() {
    let model = model_with_mem(6.0);
    let mut ratios: Vec<f64> = Vec::new();
    let mut rows = Vec::new();
    let mut record = |name: &str, rs: &[aggview_bench::VariantRun], ratios: &mut Vec<f64>| {
        for r in rs {
            if r.measured_io > 1.0 && r.optimized.props.cost > 1.0 {
                let ratio = r.optimized.props.cost / r.measured_io;
                ratios.push(ratio);
                rows.push(vec![
                    name.to_string(),
                    r.variant.name().to_string(),
                    format!("{:.1}", r.optimized.props.cost),
                    format!("{:.1}", r.measured_io),
                    format!("{ratio:.2}"),
                ]);
            }
        }
    };

    for (nd, yf) in [(50usize, 0.3f64), (2000, 0.01), (8000, 0.002)] {
        let catalog = gen_empdept(&EmpDeptConfig {
            n_depts: nd,
            emps_per_dept: (20_000 / nd).max(2),
            young_fraction: yf,
            low_budget_fraction: 0.3,
            seed: 9,
        })
        .expect("catalog");
        let runs = run_all_variants(&example1_query(), &catalog, model);
        record(&format!("ex1 nd={nd}"), &runs, &mut ratios);
        let runs = run_all_variants(&example2_query(), &catalog, model);
        record(&format!("ex2 nd={nd}"), &runs, &mut ratios);
        let runs = run_all_variants(&example2_wide_query(), &catalog, model);
        record(&format!("ex2w nd={nd}"), &runs, &mut ratios);
    }
    {
        let catalog = gen_star(&StarConfig {
            customers: 2000,
            orders_per_customer: 8,
            lines_per_order: 4,
            nations: 25,
            seed: 9,
        })
        .expect("catalog");
        // COUNT(*) per customer (the E8 query).
        use aggview_common::{AggSpec, Col, Predicate, ViewId};
        use aggview_core::query::{CanonicalQuery, QueryEnv, TopGroup};
        let mut env = QueryEnv::default();
        let l = env.add_rel("lineitem");
        let o = env.add_rel("orders");
        let q = CanonicalQuery {
            env,
            views: vec![],
            base_rels: vec![l, o],
            preds: vec![Predicate::eq_cols(Col::base(l, 1), Col::base(o, 0))],
            group: Some(TopGroup {
                group_cols: vec![Col::base(o, 1)],
                aggs: vec![AggSpec::count_star()],
                having: vec![],
            }),
            projection: vec![Col::base(o, 1), Col::agg(ViewId::Top, 0)],
        };
        let runs = run_all_variants(&q, &catalog, model);
        record("star count", &runs, &mut ratios);
    }

    print_table(
        "E9: estimated vs measured IO per chosen plan (ratio = est/meas)",
        &["workload", "variant", "estimated", "measured", "ratio"],
        &rows,
    );
    let gm = geo_mean(&ratios);
    let lo = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = ratios.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\n{} plans: est/meas geo-mean {:.2}, range [{:.2}, {:.2}]",
        ratios.len(),
        gm,
        lo,
        hi
    );
    assert!(ratios.len() >= 30, "corpus too small");
    assert!(
        (0.5..=2.0).contains(&gm),
        "estimator bias out of range: {gm:.2}"
    );
    assert!(lo > 0.2 && hi < 5.0, "estimator spread out of range");
    println!("shape check passed: estimation error is bounded and centered.");
}
