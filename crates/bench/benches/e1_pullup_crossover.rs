//! E1 — Example 1 / Figure 1: the pull-up crossover.
//!
//! Paper claim (Section 3): "if there are many departments but few
//! employees are younger than 22 years, then the query B may be more
//! efficient to evaluate than A1 and A2. However, if there are few
//! departments but many employees below 22 years old, then execution of
//! A1 and A2 may be significantly less expensive."
//!
//! Sweep the two knobs the claim names — number of departments and the
//! fraction of young employees — at a fixed total employee count, and
//! report the **measured** IO of the traditional plan (A1/A2) and the
//! full optimizer's choice, plus which strategy the optimizer picked.
//!
//! Expected shape: in the many-departments / few-young corner the
//! optimizer pulls up and beats the traditional plan; in the opposite
//! corner it keeps the view and matches it; it never loses.

use aggview_bench::{model_with_mem, pages, print_table, run_all_variants, Variant};
use aggview_core::query::examples::example1_query;
use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

fn main() {
    let total_emps = 20_000usize;
    let dept_counts = [5usize, 200, 2000, 8000];
    let young_fracs = [0.002f64, 0.02, 0.2, 0.6];
    let model = model_with_mem(4.0);

    let mut rows = Vec::new();
    let mut pullup_won_in_expected_corner = false;
    let mut view_kept_in_expected_corner = false;
    for &nd in &dept_counts {
        for &yf in &young_fracs {
            let cfg = EmpDeptConfig {
                n_depts: nd,
                emps_per_dept: (total_emps / nd).max(2),
                young_fraction: yf,
                low_budget_fraction: 0.3,
                seed: 1,
            };
            let catalog = gen_empdept(&cfg).expect("catalog");
            let q = example1_query();
            let runs = run_all_variants(&q, &catalog, model);
            let trad = runs
                .iter()
                .find(|r| r.variant == Variant::Traditional)
                .unwrap();
            let full = runs.iter().find(|r| r.variant == Variant::Full).unwrap();
            let pulled = full.optimized.pulled.iter().any(|w| !w.is_empty());
            let choice = if pulled {
                "pull-up (B)"
            } else {
                "view (A1/A2)"
            };
            let speedup = trad.measured_io / full.measured_io.max(1e-9);
            rows.push(vec![
                nd.to_string(),
                format!("{yf:.3}"),
                pages(trad.measured_io),
                pages(full.measured_io),
                format!("{speedup:.2}x"),
                choice.to_string(),
            ]);
            if nd >= 2000 && yf <= 0.02 && pulled && speedup > 1.05 {
                pullup_won_in_expected_corner = true;
            }
            if nd <= 5 && yf >= 0.6 && !pulled {
                view_kept_in_expected_corner = true;
            }
            assert!(
                full.measured_io <= trad.measured_io * 1.05 + 1.0,
                "full optimizer lost at nd={nd} yf={yf}"
            );
        }
    }
    print_table(
        "E1: Example 1 crossover — traditional (A1/A2) vs cost-based choice \
         (20k employees, 4-page memory)",
        &["depts", "young", "trad IO", "full IO", "speedup", "chosen"],
        &rows,
    );
    assert!(
        pullup_won_in_expected_corner,
        "pull-up should win with many departments and few young employees"
    );
    assert!(
        view_kept_in_expected_corner,
        "the view plan should be kept with few departments and many young employees"
    );
    println!("\nshape check passed: crossover matches the paper's prediction.");
}
