//! Criterion microbenchmark: optimizer runtime.
//!
//! Wall-clock time of `optimize()` for the traditional and full
//! configurations across query sizes — the practical face of E5's
//! search-space accounting. The paper's claim that its enumeration can
//! be adopted by commercial optimizers rests on this staying small.

use aggview_bench::model_with_mem;
use aggview_common::{AggFunc, AggSpec, CmpOp, Col, Expr, Predicate, Value, ViewId};
use aggview_core::optimizer::multi_view::optimize;
use aggview_core::query::{CanonicalQuery, QueryEnv, ViewDef};
use aggview_core::OptimizerConfig;
use aggview_storage::datagen::{gen_star, StarConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn chain_query(n_base: usize) -> CanonicalQuery {
    let mut env = QueryEnv::default();
    let l = env.add_rel("lineitem");
    let chain_tables = ["orders", "customer", "nation", "region"];
    let base: Vec<_> = chain_tables[..n_base]
        .iter()
        .map(|t| env.add_rel(*t))
        .collect();
    let view = ViewDef {
        index: 0,
        rels: vec![l],
        preds: vec![],
        group_cols: vec![Col::base(l, 1)],
        aggs: vec![AggSpec::new(AggFunc::Sum, Expr::col(Col::base(l, 3)))],
        having: vec![],
    };
    let mut preds = vec![
        Predicate::eq_cols(Col::base(base[0], 0), Col::base(l, 1)),
        Predicate::new(
            Expr::col(Col::agg(ViewId::View(0), 0)),
            CmpOp::Gt,
            Expr::val(Value::Float(100.0)),
        ),
    ];
    for i in 1..n_base {
        preds.push(Predicate::eq_cols(
            Col::base(base[i - 1], 1),
            Col::base(base[i], 0),
        ));
    }
    CanonicalQuery {
        env,
        views: vec![view],
        base_rels: base.clone(),
        preds,
        group: None,
        projection: vec![Col::base(base[0], 0)],
    }
}

fn bench_optimize(c: &mut Criterion) {
    let catalog = gen_star(&StarConfig {
        customers: 200,
        orders_per_customer: 4,
        lines_per_order: 2,
        nations: 25,
        seed: 11,
    })
    .expect("catalog");
    let model = model_with_mem(8.0);

    let mut group = c.benchmark_group("optimize");
    group.sample_size(20);
    for n_base in [2usize, 3, 4] {
        let q = chain_query(n_base);
        group.bench_with_input(BenchmarkId::new("traditional", n_base + 1), &q, |b, q| {
            b.iter(|| optimize(q, &catalog, model, &OptimizerConfig::traditional()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("full", n_base + 1), &q, |b, q| {
            b.iter(|| optimize(q, &catalog, model, &OptimizerConfig::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimize);
criterion_main!(benches);
