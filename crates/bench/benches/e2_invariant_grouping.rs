//! E2 — Example 2 / Figure 2(a): invariant grouping push-down.
//!
//! The paper's Example 2 computes the average salary per department with
//! a small budget, and shows it "can be alternatively processed by
//! invariant grouping transformation" — aggregating `emp` *before*
//! joining `dept` (queries D1/D2). The benefit: "Application of a
//! group-by reduces the size of the relation participating in the join."
//!
//! Sweep (a) employees per department — how strongly the group-by
//! reduces `emp` — and (b) the selectivity of the `budget < 1M` filter,
//! and compare the traditional plan (group-by last) against the
//! push-down-only optimizer (greedy conservative heuristic).
//!
//! Expected shape: push-down wins when the join would spill on the raw
//! `emp` table (many employees per department, small memory); it never
//! loses.

use aggview_bench::{model_with_mem, pages, print_table, run_all_variants, Variant};
use aggview_core::query::examples::{example2_query, example2_wide_query};
use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

fn main() {
    let model = model_with_mem(6.0);
    let emps_per_dept = [5usize, 50, 200];
    let wide_output = [false, true];
    let n_depts = 1000usize;

    let mut rows = Vec::new();
    let mut pushdown_won_somewhere = false;
    for &epd in &emps_per_dept {
        for &wide in &wide_output {
            let catalog = gen_empdept(&EmpDeptConfig {
                n_depts,
                emps_per_dept: epd,
                young_fraction: 0.1,
                low_budget_fraction: 0.3,
                seed: 2,
            })
            .expect("catalog");
            let q = if wide {
                example2_wide_query()
            } else {
                example2_query()
            };
            let runs = run_all_variants(&q, &catalog, model);
            let trad = runs
                .iter()
                .find(|r| r.variant == Variant::Traditional)
                .unwrap();
            let push = runs
                .iter()
                .find(|r| r.variant == Variant::PushDown)
                .unwrap();
            // Did the chosen plan aggregate before the final join?
            let pushed = !matches!(push.optimized.plan, aggview_core::Plan::GroupBy { .. });
            let speedup = trad.measured_io / push.measured_io.max(1e-9);
            rows.push(vec![
                epd.to_string(),
                if wide { "wide (FD cols)" } else { "narrow" }.to_string(),
                pages(trad.measured_io),
                pages(push.measured_io),
                format!("{speedup:.2}x"),
                if pushed {
                    "G pushed below join"
                } else {
                    "G at top"
                }
                .to_string(),
            ]);
            if speedup > 1.1 && pushed {
                pushdown_won_somewhere = true;
            }
            assert!(
                push.measured_io <= trad.measured_io * 1.05 + 1.0,
                "push-down lost at epd={epd} wide={wide}"
            );
        }
    }
    print_table(
        "E2: Example 2 — invariant grouping (1000 departments, 6-page memory)",
        &[
            "emps/dept",
            "grouping",
            "trad IO",
            "push IO",
            "speedup",
            "chosen shape",
        ],
        &rows,
    );
    assert!(
        pushdown_won_somewhere,
        "push-down should win when the group-by strongly reduces emp"
    );
    println!("\nshape check passed: early aggregation wins where the paper predicts.");
}
