//! `bench` — the executor throughput/scaling benchmark binary.
//!
//! ```text
//! $ cargo run --release -p aggview-bench --bin bench -- \
//!       --threads 4 --scale 1 --repeats 3 --out BENCH_exec.json
//! ```
//!
//! Runs the E1/E3/E8 workloads plus the operator micro-suite at
//! `threads = {1, N}`, prints a summary table, and writes the machine
//! -readable report to `--out` (default `BENCH_exec.json`).

use aggview_bench::exec_bench::{run_exec_bench, ExecBenchConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg = ExecBenchConfig::default();
    let mut out = String::from("BENCH_exec.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1);
        match (flag, value) {
            ("--threads", Some(v)) => match v.parse::<usize>() {
                Ok(n) if n >= 2 => cfg.threads = n,
                _ => return usage(&format!("--threads wants an integer >= 2, got `{v}`")),
            },
            ("--scale", Some(v)) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => cfg.scale = n,
                _ => return usage(&format!("--scale wants an integer >= 1, got `{v}`")),
            },
            ("--repeats", Some(v)) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => cfg.repeats = n,
                _ => return usage(&format!("--repeats wants an integer >= 1, got `{v}`")),
            },
            ("--out", Some(v)) => out = v.clone(),
            ("--help" | "-h", _) => return usage(""),
            _ => return usage(&format!("unknown argument `{flag}`")),
        }
        i += 2;
    }

    let report = match run_exec_bench(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.summary_table());
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: bench [--threads N>=2] [--scale N>=1] [--repeats N>=1] [--out PATH]\n\
         runs the executor workloads at threads = {{1, N}} and writes a JSON report"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
