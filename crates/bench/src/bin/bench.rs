//! `bench` — the executor throughput/scaling benchmark binary.
//!
//! ```text
//! $ cargo run --release -p aggview-bench --bin bench -- \
//!       --threads 4 --scale 1 --repeats 3 --out BENCH_exec.json
//! ```
//!
//! Runs the E1/E3/E8 workloads plus the operator micro-suite at
//! `threads = {1, N}`, prints a summary table, and writes the machine
//! -readable report to `--out` (default `BENCH_exec.json`).
//!
//! `--check-peak-baseline PATH` compares each workload's fresh
//! `peak_intermediate_bytes` against the committed report at PATH and
//! exits nonzero if any workload regressed more than 10% — the CI
//! bench-smoke job uses this as a memory-regression gate.

use aggview_bench::exec_bench::{check_peak_regression, run_exec_bench, ExecBenchConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg = ExecBenchConfig::default();
    let mut out = String::from("BENCH_exec.json");
    let mut baseline: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1);
        match (flag, value) {
            ("--threads", Some(v)) => match v.parse::<usize>() {
                Ok(n) if n >= 2 => cfg.threads = n,
                _ => return usage(&format!("--threads wants an integer >= 2, got `{v}`")),
            },
            ("--scale", Some(v)) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => cfg.scale = n,
                _ => return usage(&format!("--scale wants an integer >= 1, got `{v}`")),
            },
            ("--repeats", Some(v)) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => cfg.repeats = n,
                _ => return usage(&format!("--repeats wants an integer >= 1, got `{v}`")),
            },
            ("--out", Some(v)) => out = v.clone(),
            ("--check-peak-baseline", Some(v)) => baseline = Some(v.clone()),
            ("--help" | "-h", _) => return usage(""),
            _ => return usage(&format!("unknown argument `{flag}`")),
        }
        i += 2;
    }

    let report = match run_exec_bench(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.summary_table());
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    if let Some(path) = baseline {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let gated = check_peak_regression(&text, &report.workloads, 1.10)
            .and_then(|()| check_peak_regression(&text, &report.eager_agg.shapes, 1.10));
        match gated {
            Ok(()) => println!("peak-bytes baseline check: ok (vs {path})"),
            Err(e) => {
                eprintln!("peak_intermediate_bytes regression vs {path}:\n{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: bench [--threads N>=2] [--scale N>=1] [--repeats N>=1] [--out PATH]\n\
         \x20            [--check-peak-baseline PATH]\n\
         runs the executor workloads at threads = {{1, N}} and writes a JSON report;\n\
         with --check-peak-baseline, fails if any workload's peak_intermediate_bytes\n\
         regressed more than 10% against the committed report at PATH"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
