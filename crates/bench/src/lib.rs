//! Shared harness for the experiment suite (benches `e1`–`e10`).
//!
//! Each bench target regenerates one of the paper's figures or
//! quantitative claims (see `DESIGN.md` §4 and `EXPERIMENTS.md`): it
//! builds a seeded workload, runs the optimizer variants, executes the
//! chosen plans with measured IO, prints the table/series, and asserts
//! the expected *shape* (who wins, where the crossover falls).

#![forbid(unsafe_code)]

pub mod exec_bench;

use aggview_core::cost::ops::IoParams;
use aggview_core::cost::CostModel;
use aggview_core::optimizer::multi_view::{optimize, Optimized};
use aggview_core::{CanonicalQuery, OptimizerConfig, PullUpLevel};
use aggview_executor::Engine;
use aggview_storage::{Catalog, PageModel};

/// An optimizer variant under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Section 5.1 baseline.
    Traditional,
    /// Greedy conservative heuristic only (push-down; the paper's
    /// "immediate improvement").
    PushDown,
    /// Pull-up enabled, push-down disabled (isolates Section 3).
    PullUp,
    /// Everything on (the paper's full algorithm).
    Full,
}

impl Variant {
    pub const ALL: [Variant; 4] = [
        Variant::Traditional,
        Variant::PushDown,
        Variant::PullUp,
        Variant::Full,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Variant::Traditional => "traditional",
            Variant::PushDown => "push-down",
            Variant::PullUp => "pull-up",
            Variant::Full => "full",
        }
    }

    pub fn config(self) -> OptimizerConfig {
        match self {
            Variant::Traditional => OptimizerConfig::traditional(),
            Variant::PushDown => OptimizerConfig::push_down_only(),
            Variant::PullUp => OptimizerConfig {
                pull_up: PullUpLevel::Unlimited,
                push_down: false,
                require_shared_predicate: true,
                use_matviews: true,
                use_eager_agg: false,
            },
            Variant::Full => OptimizerConfig::default(),
        }
    }
}

/// Result of optimizing + executing one variant.
#[derive(Debug, Clone)]
pub struct VariantRun {
    pub variant: Variant,
    pub optimized: Optimized,
    /// Measured IO of the executed plan, in pages.
    pub measured_io: f64,
    /// Result-row count (for cross-variant consistency checks).
    pub rows: usize,
}

/// A cost model with the given operator memory budget (pages).
pub fn model_with_mem(mem_pages: f64) -> CostModel {
    CostModel {
        page: PageModel::default(),
        io: IoParams {
            mem_pages,
            ..Default::default()
        },
    }
}

/// Optimize and execute the query under every variant; panics if any
/// variant produces a different result-set size (plans must be
/// equivalent) or if the full optimizer's estimate exceeds the
/// traditional one (never-worse guarantee).
pub fn run_all_variants(
    query: &CanonicalQuery,
    catalog: &Catalog,
    model: CostModel,
) -> Vec<VariantRun> {
    let engine = Engine::new(catalog, &query.env, model);
    let mut out = Vec::new();
    let mut reference: Option<usize> = None;
    for v in Variant::ALL {
        let optimized = optimize(query, catalog, model, &v.config())
            .unwrap_or_else(|e| panic!("{} failed: {e}", v.name()));
        let rs = engine.execute(&optimized.plan).unwrap_or_else(|e| {
            panic!(
                "{} execution failed: {e}\n{}",
                v.name(),
                optimized.plan.explain()
            )
        });
        match reference {
            None => reference = Some(rs.rows.len()),
            Some(r) => assert_eq!(
                r,
                rs.rows.len(),
                "{} result size diverges from traditional",
                v.name()
            ),
        }
        out.push(VariantRun {
            variant: v,
            measured_io: rs.io_pages,
            rows: rs.rows.len(),
            optimized,
        });
    }
    // Never-worse: full ≤ traditional on estimated cost.
    let trad = out[0].optimized.props.cost;
    let full = out[3].optimized.props.cost;
    assert!(
        full <= trad + 1e-6,
        "guarantee violated: full {full} > traditional {trad}"
    );
    out
}

/// Fixed-width table printing for experiment output.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for r in rows {
        println!("{}", fmt_row(r));
    }
}

/// Format a page count compactly.
pub fn pages(x: f64) -> String {
    if x >= 1000.0 {
        format!("{:.1}k", x / 1000.0)
    } else {
        format!("{x:.1}")
    }
}

/// Geometric mean of positive values.
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_core::query::examples::example1_query;
    use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

    #[test]
    fn run_all_variants_agrees_and_orders() {
        let cat = gen_empdept(&EmpDeptConfig {
            n_depts: 10,
            emps_per_dept: 10,
            young_fraction: 0.3,
            low_budget_fraction: 0.3,
            seed: 5,
        })
        .unwrap();
        let q = example1_query();
        let runs = run_all_variants(&q, &cat, model_with_mem(8.0));
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[0].variant, Variant::Traditional);
        let n = runs[0].rows;
        assert!(runs.iter().all(|r| r.rows == n));
    }

    #[test]
    fn geo_mean_sane() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!(geo_mean(&[]).is_nan());
    }

    #[test]
    fn pages_formatting() {
        assert_eq!(pages(12.34), "12.3");
        assert_eq!(pages(12345.0), "12.3k");
    }

    #[test]
    fn variant_configs_differ() {
        assert!(!Variant::Traditional.config().push_down);
        assert!(Variant::PushDown.config().push_down);
        assert_eq!(Variant::PullUp.config().pull_up, PullUpLevel::Unlimited);
        assert!(!Variant::PullUp.config().push_down);
    }
}
