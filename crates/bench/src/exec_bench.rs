//! Executor throughput and scaling benchmark — the `BENCH_exec.json`
//! trajectory.
//!
//! Runs three end-to-end paper workloads (E1 Example 1, E3 Figure 4, E8
//! coalescing group-by) and three operator micro-workloads (scan+filter,
//! hash join, hash aggregation), each at `threads = 1` and
//! `threads = N`, reporting wall-clock, rows/sec, parallel speedup and
//! peak intermediate bytes. A separate *serial kernel* section has
//! three parts: `clone_key` times the current hash-then-compare
//! join/group-by kernels against a re-implementation of the old
//! clone-a-`Vec<Value>`-key-per-row baseline; `batch_vs_row` times the
//! vectorized column-at-a-time kernels (filter, hash join, group-by)
//! against the row-at-a-time reference path on identical inputs; and
//! `row_micro` times individual row-path micro-kernels against the
//! per-row-allocation variants they replaced. A *matview* section
//! measures the
//! same aggregate query cold (inlined), answered from a materialized
//! view extent, and after staleness + `REFRESH`, and checks that
//! incremental `INSERT` maintenance reproduces the rebuilt extent. An
//! *eager_agg* section A/B-tests eager partial aggregation pushed below
//! a join against the materialize-then-aggregate shape on a self-join
//! workload, asserting identical results and reporting the peak-bytes
//! ratio.
//!
//! The report records `host_cpus`: on a single-core host the parallel
//! speedup cannot exceed ~1.0 regardless of implementation, so CI (or
//! any multi-core machine) is where the scaling numbers are meaningful.

use crate::model_with_mem;
use aggview_common::predicate::{self, BoundPredicate};
use aggview_common::{
    AggFunc, AggSpec, AggViewError, Batch, CmpOp, Col, DataType, Expr, PartialAggState, Predicate,
    RelId, Result, Schema, Tuple, Value, ViewId,
};
use aggview_core::analyze::PlanAnalyzer;
use aggview_core::governor::ResourceGovernor;
use aggview_core::optimizer::multi_view::optimize;
use aggview_core::plan::{all_cols, GroupBySpec, Plan};
use aggview_core::query::examples::{dept, emp, example1_query};
use aggview_core::query::{CanonicalQuery, QueryEnv, TopGroup, ViewDef};
use aggview_core::OptimizerConfig;
use aggview_executor::parallel::{
    accumulate_groups, build_index, filter_project, probe_join, JoinEmit,
};
use aggview_executor::partition::AggInput;
use aggview_executor::{vector, Engine, ExecOptions};
use aggview_storage::datagen::{gen_empdept, gen_star, EmpDeptConfig, StarConfig};
use aggview_storage::Catalog;
use std::collections::HashMap;
use std::time::Instant;

/// Knobs for one benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct ExecBenchConfig {
    /// Parallel thread count (`N` in the `threads = {1, N}` pair).
    pub threads: usize,
    /// Multiplier on the base workload sizes.
    pub scale: usize,
    /// Timing repeats per measurement; the best (minimum) is reported.
    pub repeats: usize,
}

impl Default for ExecBenchConfig {
    fn default() -> Self {
        ExecBenchConfig {
            threads: 4,
            scale: 1,
            repeats: 3,
        }
    }
}

/// One workload measured at both thread counts.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    pub name: &'static str,
    pub input_rows: u64,
    pub output_rows: u64,
    pub serial_ms: f64,
    pub parallel_ms: f64,
    pub serial_rows_per_sec: f64,
    pub parallel_rows_per_sec: f64,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
    pub peak_intermediate_bytes: u64,
}

/// The materialized-view workload: the same aggregate query answered
/// cold (inlined over base data), from a fresh extent, and after a
/// staleness-induced refresh, plus an incremental-vs-rebuild
/// equivalence check.
#[derive(Debug, Clone)]
pub struct MatviewReport {
    /// Rows in the base `emp` table the view aggregates.
    pub base_rows: u64,
    /// Rows in the view extent (one per department).
    pub extent_rows: u64,
    /// Inlined aggregation over base data, no extent available.
    pub cold_ms: f64,
    /// Same query answered from the extent access path.
    pub materialized_ms: f64,
    /// `cold_ms / materialized_ms`.
    pub speedup: f64,
    /// From-scratch `REFRESH MATERIALIZED VIEW` rebuild.
    pub refresh_ms: f64,
    /// Staleness recovery: refresh then answer the query.
    pub stale_then_refreshed_ms: f64,
    /// Extent after incremental `INSERT` maintenance equals the extent
    /// after a from-scratch refresh over the same base data.
    pub incremental_matches_refresh: bool,
}

/// The streaming-delta-maintenance workload: rounds of mixed DML
/// (`INSERT`, `UPDATE`, `DELETE`) against several registered views,
/// maintained incrementally through the Z-set delta path vs. refreshed
/// from scratch after every statement.
#[derive(Debug, Clone)]
pub struct MaintenanceReport {
    /// Materialized views registered over the base table.
    pub views: u64,
    /// Mixed-DML rounds per measured run (each round: one insert, one
    /// update, one delete — net zero, so repeats see steady state).
    pub rounds: u64,
    /// Rows in the base table the views aggregate.
    pub base_rows: u64,
    /// DML statements per measured run (`rounds * 3`).
    pub statements: u64,
    /// Maintenance time for all statements via the Z-set delta path.
    /// Both strategies pay the identical base-table mutation cost, so
    /// the clocks cover maintenance work only.
    pub incremental_ms: f64,
    /// Maintenance time with a full `REFRESH` of every view after each
    /// statement.
    pub refresh_ms: f64,
    pub incremental_stmts_per_sec: f64,
    pub refresh_stmts_per_sec: f64,
    /// `refresh_ms / incremental_ms` — how much cheaper maintaining
    /// deltas is than rebuilding per change.
    pub speedup: f64,
    /// After both histories, every extent is byte-identical between the
    /// two strategies.
    pub incremental_matches_refresh: bool,
}

/// The durability workload: WAL append overhead against the zero-IO
/// in-memory path, WAL replay throughput, and checkpoint + recover
/// latency, all on a scratch directory under the system temp dir.
#[derive(Debug, Clone)]
pub struct DurabilityReport {
    /// Rows appended per measured run.
    pub rows_appended: u64,
    /// Appends into a plain in-memory catalog (no WAL).
    pub mem_insert_ms: f64,
    /// The same appends into a durable catalog (each batch WAL-logged
    /// and fsynced).
    pub wal_insert_ms: f64,
    /// `wal_insert_ms / mem_insert_ms` — the per-batch durability tax.
    pub wal_overhead: f64,
    /// Committed WAL records replayed on recovery.
    pub replay_records: u64,
    /// `Catalog::open` over the un-checkpointed WAL.
    pub replay_ms: f64,
    /// Rows recovered per second of replay.
    pub replay_rows_per_sec: f64,
    /// Snapshot write + WAL truncation.
    pub checkpoint_ms: f64,
    /// `Catalog::open` when the snapshot covers everything (no replay).
    pub recover_after_checkpoint_ms: f64,
}

/// Current serial kernel vs. the per-row-allocation baseline it
/// replaced (clone-a-key-per-row for the join/group kernels, an
/// owned-`Value` or concatenated-tuple evaluation for the micro
/// kernels).
#[derive(Debug, Clone)]
pub struct KernelReport {
    pub name: &'static str,
    pub input_rows: u64,
    pub legacy_clone_key_ms: f64,
    pub current_ms: f64,
    /// `legacy_clone_key_ms / current_ms` — > 1 means the current
    /// kernel is faster.
    pub improvement: f64,
}

/// Serial vectorized kernel vs. the row-at-a-time reference on
/// identical inputs.
#[derive(Debug, Clone)]
pub struct BatchKernelReport {
    pub name: &'static str,
    pub input_rows: u64,
    pub row_ms: f64,
    pub batch_ms: f64,
    /// `row_ms / batch_ms` — > 1 means the batch kernel is faster.
    pub speedup: f64,
}

/// The serial-kernel section of the report.
#[derive(Debug, Clone)]
pub struct SerialKernels {
    /// Current row kernels vs. the clone-a-`Vec<Value>`-key baseline.
    pub clone_key: Vec<KernelReport>,
    /// Vectorized batch kernels vs. the row-at-a-time reference path.
    pub batch_vs_row: Vec<BatchKernelReport>,
    /// Row-path micro-kernels vs. the per-row-allocation variants they
    /// replaced.
    pub row_micro: Vec<KernelReport>,
    /// Typed-column demotions to `ColumnVec::Mixed` observed across the
    /// timed workloads and kernels. The corpus certifies Mixed-free, so
    /// a non-zero count is a regression in the type lattice or the
    /// vectorized kernels.
    pub mixed_demotions: u64,
}

/// The dataflow static-analysis section: how many plans the pass
/// covered and what it did with them.
#[derive(Debug, Clone)]
pub struct StaticAnalysisReport {
    /// Plans run through the dataflow pass.
    pub plans_analyzed: u64,
    /// Provably-empty subtrees rewritten to `EmptyScan`.
    pub empty_subtrees_pruned: u64,
    /// Over-budget plans rejected before execution
    /// (`plan-inadmissible`).
    pub statically_rejected: u64,
}

/// The eager-aggregation A/B section: one join-then-aggregate self-join
/// workload optimized twice — `use_eager_agg` on (partial aggregation
/// pushed below the join) and off (aggregate over the materialized
/// join) — and both plans executed and measured like ordinary
/// workloads.
#[derive(Debug, Clone)]
pub struct EagerAggReport {
    /// The two shapes as ordinary workload measurements
    /// (`eager_agg_on`, `eager_agg_off`), rendered with the same JSON
    /// line layout as `workloads` so the peak-regression baseline
    /// check covers them.
    pub shapes: Vec<WorkloadReport>,
    /// Traditional peak / eager peak, from measured
    /// `peak_intermediate_bytes`.
    pub peak_ratio: f64,
    /// The eager-configured optimizer actually placed a partial
    /// aggregate below the join.
    pub eager_plan_fired: bool,
    /// Both shapes returned identical sorted result rows.
    pub results_match: bool,
}

/// Full benchmark output, serializable to `BENCH_exec.json`.
#[derive(Debug, Clone)]
pub struct ExecBenchReport {
    pub host_cpus: usize,
    pub threads: usize,
    pub scale: usize,
    pub repeats: usize,
    pub workloads: Vec<WorkloadReport>,
    pub serial_kernels: SerialKernels,
    pub matview: MatviewReport,
    pub maintenance: MaintenanceReport,
    pub durability: DurabilityReport,
    pub static_analysis: StaticAnalysisReport,
    pub eager_agg: EagerAggReport,
    /// Plans run through the static integrity analyzer before execution.
    pub plans_checked: u64,
    /// Plans the analyzer accepted. The run aborts on the first
    /// rejection, so a finished report always has `passed == checked`.
    pub plans_passed: u64,
}

/// Gate a bench workload plan behind the static integrity analyzer:
/// every plan must pass before it is timed, and a rejection fails the
/// whole bench run (and with it the CI bench-smoke job).
#[allow(clippy::too_many_arguments)]
fn analyze_workload(
    name: &str,
    catalog: &Catalog,
    model: aggview_core::CostModel,
    plan: &Plan,
    env: &QueryEnv,
    query: Option<&CanonicalQuery>,
    checked: &mut u64,
    passed: &mut u64,
) -> Result<()> {
    let analyzer = PlanAnalyzer::new(catalog).with_model(model);
    let analyzer = match query {
        Some(q) => analyzer.with_query(q),
        None => analyzer.with_env(env),
    };
    *checked += 1;
    let report = analyzer.analyze(plan);
    if !report.is_ok() {
        return Err(AggViewError::PlanInvalid(format!(
            "bench workload {name}: {}",
            report.summary()
        )));
    }
    *passed += 1;
    Ok(())
}

/// Run the full suite.
pub fn run_exec_bench(cfg: &ExecBenchConfig) -> Result<ExecBenchReport> {
    let threads = cfg.threads.max(2);
    let scale = cfg.scale.max(1);
    let repeats = cfg.repeats.max(1);

    let empdept = gen_empdept(&EmpDeptConfig {
        n_depts: 200,
        emps_per_dept: 100 * scale,
        young_fraction: 0.1,
        low_budget_fraction: 0.3,
        seed: 12,
    })?;
    let star = gen_star(&StarConfig {
        customers: 2000,
        orders_per_customer: 8,
        lines_per_order: 4 * scale,
        nations: 25,
        seed: 8,
    })?;
    let model = model_with_mem(64.0);
    let full = OptimizerConfig::default();

    let mut workloads = Vec::new();
    let mut plans_checked = 0u64;
    let mut plans_passed = 0u64;
    let demotions_before = aggview_common::mixed_demotions();

    // End-to-end paper workloads: optimize once, execute at both thread
    // counts.
    {
        let q = example1_query();
        let plan = optimize(&q, &empdept, model, &full)?.plan;
        analyze_workload(
            "e1_example1",
            &empdept,
            model,
            &plan,
            &q.env,
            Some(&q),
            &mut plans_checked,
            &mut plans_passed,
        )?;
        workloads.push(run_workload(
            "e1_example1",
            &empdept,
            &q.env,
            model,
            &plan,
            base_rows(&empdept, &q.env),
            threads,
            repeats,
        )?);
    }
    {
        let q = figure4_query();
        let plan = optimize(&q, &empdept, model, &full)?.plan;
        analyze_workload(
            "e3_figure4",
            &empdept,
            model,
            &plan,
            &q.env,
            Some(&q),
            &mut plans_checked,
            &mut plans_passed,
        )?;
        workloads.push(run_workload(
            "e3_figure4",
            &empdept,
            &q.env,
            model,
            &plan,
            base_rows(&empdept, &q.env),
            threads,
            repeats,
        )?);
    }
    {
        let q = count_per_customer();
        let plan = optimize(&q, &star, model, &full)?.plan;
        analyze_workload(
            "e8_groupby",
            &star,
            model,
            &plan,
            &q.env,
            Some(&q),
            &mut plans_checked,
            &mut plans_passed,
        )?;
        workloads.push(run_workload(
            "e8_groupby",
            &star,
            &q.env,
            model,
            &plan,
            base_rows(&star, &q.env),
            threads,
            repeats,
        )?);
    }

    // Operator micro-workloads over Emp/Dept.
    let env2 = QueryEnv::new(vec!["emp".into(), "dept".into()]);
    let n_emp = empdept.get("emp").map_or(0, |t| t.len()) as u64;
    let n_dept = empdept.get("dept").map_or(0, |t| t.len()) as u64;
    let scan_plan = Plan::scan(
        RelId(0),
        "emp",
        vec![Predicate::cmp_const(
            Col::base(RelId(0), emp::AGE),
            CmpOp::Lt,
            Value::Int(40),
        )],
        all_cols(RelId(0), 5),
    );
    analyze_workload(
        "scan_filter",
        &empdept,
        model,
        &scan_plan,
        &env2,
        None,
        &mut plans_checked,
        &mut plans_passed,
    )?;
    workloads.push(run_workload(
        "scan_filter",
        &empdept,
        &env2,
        model,
        &scan_plan,
        n_emp,
        threads,
        repeats,
    )?);
    let join_plan = Plan::join_all(
        Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5)),
        Plan::scan(RelId(1), "dept", vec![], all_cols(RelId(1), 4)),
        vec![Predicate::eq_cols(
            Col::base(RelId(0), emp::DNO),
            Col::base(RelId(1), dept::DNO),
        )],
    );
    analyze_workload(
        "hash_join",
        &empdept,
        model,
        &join_plan,
        &env2,
        None,
        &mut plans_checked,
        &mut plans_passed,
    )?;
    workloads.push(run_workload(
        "hash_join",
        &empdept,
        &env2,
        model,
        &join_plan,
        n_emp + n_dept,
        threads,
        repeats,
    )?);
    let agg_plan = Plan::group_by_all(
        Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5)),
        GroupBySpec {
            owner: ViewId::Top,
            group_cols: vec![Col::base(RelId(0), emp::DNO)],
            aggs: vec![
                AggSpec::count_star(),
                AggSpec::new(AggFunc::Avg, Expr::col(Col::base(RelId(0), emp::SAL))),
            ],
            having: vec![],
        },
    );
    analyze_workload(
        "hash_agg",
        &empdept,
        model,
        &agg_plan,
        &env2,
        None,
        &mut plans_checked,
        &mut plans_passed,
    )?;
    workloads.push(run_workload(
        "hash_agg", &empdept, &env2, model, &agg_plan, n_emp, threads, repeats,
    )?);

    let emp_rows = empdept
        .get("emp")
        .map(|t| t.rows().to_vec())
        .unwrap_or_default();
    let dept_rows = empdept
        .get("dept")
        .map(|t| t.rows().to_vec())
        .unwrap_or_default();
    let emp_types: Vec<DataType> = empdept
        .get("emp")?
        .schema()
        .fields()
        .iter()
        .map(|f| f.ty)
        .collect();
    let dept_types: Vec<DataType> = empdept
        .get("dept")?
        .schema()
        .fields()
        .iter()
        .map(|f| f.ty)
        .collect();
    let serial_kernels = SerialKernels {
        clone_key: vec![
            join_kernel_report(&emp_rows, &dept_rows, repeats)?,
            group_kernel_report(&emp_rows, repeats)?,
        ],
        batch_vs_row: vec![
            batch_filter_report(&emp_rows, &emp_types, repeats)?,
            batch_join_report(&emp_rows, &emp_types, &dept_rows, &dept_types, repeats)?,
            batch_group_report(&emp_rows, &emp_types, repeats)?,
        ],
        row_micro: vec![
            predicate_eval_report(&emp_rows, repeats)?,
            probe_residual_report(&emp_rows, repeats)?,
        ],
        mixed_demotions: aggview_common::mixed_demotions().saturating_sub(demotions_before),
    };

    let matview = matview_report(scale, repeats)?;
    let maintenance = maintenance_report(scale, repeats)?;
    let durability = durability_report(scale, repeats)?;
    let static_analysis = static_analysis_report(&empdept, &star)?;
    let eager_agg = eager_agg_report(
        &empdept,
        threads,
        repeats,
        &mut plans_checked,
        &mut plans_passed,
    )?;

    Ok(ExecBenchReport {
        host_cpus: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        threads,
        scale,
        repeats,
        workloads,
        serial_kernels,
        matview,
        maintenance,
        durability,
        static_analysis,
        eager_agg,
        plans_checked,
        plans_passed,
    })
}

/// The join-then-aggregate self-join (`SELECT e1.dno, AVG(e1.age),
/// MIN(e2.sal), SUM(e2.age) FROM emp e1, emp e2 WHERE e1.dno = e2.dno
/// GROUP BY e1.dno`). With ~100 employees per department the join
/// materializes ~10,000 rows per department before the traditional
/// aggregate collapses them; the eager optimizer folds one `emp` input
/// to one partial row per department first.
fn eager_selfjoin_query() -> CanonicalQuery {
    let mut env = QueryEnv::default();
    let e1 = env.add_rel("emp");
    let e2 = env.add_rel("emp");
    let aggs = vec![
        AggSpec::new(AggFunc::Avg, Expr::col(Col::base(e1, emp::AGE))),
        AggSpec::new(AggFunc::Min, Expr::col(Col::base(e2, emp::SAL))),
        AggSpec::new(AggFunc::Sum, Expr::col(Col::base(e2, emp::AGE))),
    ];
    let n = aggs.len();
    CanonicalQuery {
        env,
        views: vec![],
        base_rels: vec![e1, e2],
        preds: vec![Predicate::eq_cols(
            Col::base(e1, emp::DNO),
            Col::base(e2, emp::DNO),
        )],
        group: Some(TopGroup {
            group_cols: vec![Col::base(e1, emp::DNO)],
            aggs,
            having: vec![],
        }),
        projection: std::iter::once(Col::base(e1, emp::DNO))
            .chain((0..n).map(|i| Col::agg(ViewId::Top, i)))
            .collect(),
    }
}

fn contains_partial_aggregate(p: &Plan) -> bool {
    match p {
        Plan::PartialAggregate { .. } => true,
        Plan::Join { left, right, .. } => {
            contains_partial_aggregate(left) || contains_partial_aggregate(right)
        }
        Plan::GroupBy { input, .. } | Plan::PartialGroupBy { input, .. } => {
            contains_partial_aggregate(input)
        }
        Plan::Scan { .. } | Plan::ExtentScan { .. } | Plan::EmptyScan { .. } => false,
    }
}

/// Measure the eager-aggregation A/B pair: optimize
/// [`eager_selfjoin_query`] with `use_eager_agg` on and off, gate both
/// plans through the analyzer, time both like ordinary workloads, and
/// compare their executed result sets row for row.
fn eager_agg_report(
    empdept: &Catalog,
    threads: usize,
    repeats: usize,
    checked: &mut u64,
    passed: &mut u64,
) -> Result<EagerAggReport> {
    let model = model_with_mem(64.0);
    let q = eager_selfjoin_query();
    let eager_plan = optimize(
        &q,
        empdept,
        model,
        &OptimizerConfig {
            use_eager_agg: true,
            ..Default::default()
        },
    )?
    .plan;
    let plain_plan = optimize(
        &q,
        empdept,
        model,
        &OptimizerConfig {
            use_eager_agg: false,
            ..Default::default()
        },
    )?
    .plan;
    let input_rows = 2 * empdept.get("emp").map_or(0, |t| t.len()) as u64;
    let mut shapes = Vec::new();
    for (name, plan) in [
        ("eager_agg_on", &eager_plan),
        ("eager_agg_off", &plain_plan),
    ] {
        analyze_workload(name, empdept, model, plan, &q.env, Some(&q), checked, passed)?;
        shapes.push(run_workload(
            name, empdept, &q.env, model, plan, input_rows, threads, repeats,
        )?);
    }
    let engine = Engine::new(empdept, &q.env, model).with_options(ExecOptions::with_threads(1));
    let sorted = |plan: &Plan| -> Result<Vec<Tuple>> {
        let rs = engine.execute(plan)?;
        let positions: Vec<usize> = q
            .projection
            .iter()
            .map(|c| {
                rs.col_index(*c).ok_or_else(|| {
                    AggViewError::PlanInvalid(format!("bench eager_agg: plan lost column {c}"))
                })
            })
            .collect::<Result<_>>()?;
        let mut rows: Vec<Tuple> = rs.rows.iter().map(|r| r.project(&positions)).collect();
        rows.sort();
        Ok(rows)
    };
    let results_match = sorted(&eager_plan)? == sorted(&plain_plan)?;
    let peak_ratio = shapes[1].peak_intermediate_bytes as f64
        / (shapes[0].peak_intermediate_bytes as f64).max(1.0);
    Ok(EagerAggReport {
        shapes,
        peak_ratio,
        eager_plan_fired: contains_partial_aggregate(&eager_plan),
        results_match,
    })
}

/// Exercise the dataflow pass end to end for the report: the timed
/// workload plans must certify Mixed-free with no provably-empty
/// subtrees, a contradictory filter must prune to a zero-IO
/// `EmptyScan`, and an over-budget scan must be rejected before
/// execution. Any deviation fails the bench run (and the CI
/// bench-smoke job).
fn static_analysis_report(empdept: &Catalog, star: &Catalog) -> Result<StaticAnalysisReport> {
    use aggview_core::analyze::dataflow;
    use aggview_core::governor::ResourceLimits;

    let model = model_with_mem(64.0);
    let full = OptimizerConfig::default();
    let mut plans_analyzed = 0u64;
    let mut empty_subtrees_pruned = 0u64;
    let mut statically_rejected = 0u64;

    for (q, cat) in [
        (example1_query(), empdept),
        (figure4_query(), empdept),
        (count_per_customer(), star),
    ] {
        let plan = optimize(&q, cat, model, &full)?.plan;
        let df = dataflow::analyze_plan(&plan, cat, Some(q.env.rel_tables.as_slice()));
        plans_analyzed += 1;
        if !df.mixed_free || df.provably_empty {
            return Err(AggViewError::PlanInvalid(format!(
                "bench corpus plan failed dataflow certification:\n{}",
                plan.explain()
            )));
        }
    }

    let env = QueryEnv::new(vec!["emp".into()]);
    let r = RelId(0);
    let contradictory = Plan::scan(
        r,
        "emp",
        vec![
            Predicate::cmp_const(Col::base(r, emp::SAL), CmpOp::Gt, Value::Float(5.0)),
            Predicate::cmp_const(Col::base(r, emp::SAL), CmpOp::Lt, Value::Float(3.0)),
        ],
        all_cols(r, 5),
    );
    let (pruned, n) =
        dataflow::prune_empty(&contradictory, empdept, Some(env.rel_tables.as_slice()));
    plans_analyzed += 1;
    empty_subtrees_pruned += n as u64;
    let engine = Engine::new(empdept, &env, model);
    let rs = engine.execute(&pruned)?;
    if n != 1 || !rs.rows.is_empty() || rs.io_pages != 0.0 {
        return Err(AggViewError::PlanInvalid(
            "contradictory plan was not pruned to a zero-IO EmptyScan".into(),
        ));
    }

    let scan = Plan::scan(r, "emp", vec![], all_cols(r, 5));
    plans_analyzed += 1;
    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_rows(1));
    match engine.execute_governed(&scan, &gov, None) {
        Err(e) if e.kind() == "plan-inadmissible" && gov.rows_used() == 0 => {
            statically_rejected += 1;
        }
        Ok(_) => {
            return Err(AggViewError::PlanInvalid(
                "over-budget scan was admitted past the static gate".into(),
            ))
        }
        Err(e) => return Err(e),
    }

    Ok(StaticAnalysisReport {
        plans_analyzed,
        empty_subtrees_pruned,
        statically_rejected,
    })
}

/// Measure the durability subsystem on a scratch directory: the WAL
/// append tax over the in-memory insert path, replay throughput on
/// recovery, and checkpoint + post-checkpoint recovery latency.
/// Correctness (recovered state == committed state) is the integration
/// suite's job; this only quantifies the cost.
fn durability_report(scale: usize, repeats: usize) -> Result<DurabilityReport> {
    use aggview_common::Schema;
    use aggview_storage::{Table, WalReader};

    let base = std::env::temp_dir().join(format!("aggview-bench-dur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let n_batches = 40 * scale;
    let batch_rows = 25usize;
    let rows_appended = (n_batches * batch_rows) as u64;
    let mk_table = || -> Result<std::sync::Arc<Table>> {
        Table::builder(
            "kv",
            Schema::of(&[("k", DataType::Int), ("v", DataType::Float)]),
        )
        .primary_key(&["k"])?
        .build()
    };
    let batch = |b: usize| -> Vec<Tuple> {
        (0..batch_rows)
            .map(|i| {
                let k = (b * batch_rows + i) as i64;
                Tuple::new(vec![Value::Int(k), Value::Float(k as f64 * 0.5)])
            })
            .collect()
    };

    // In-memory baseline: identical batches, no WAL.
    let mut mem_insert_ms = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let cat = Catalog::new();
        cat.add(mk_table()?)?;
        let t0 = Instant::now();
        for b in 0..n_batches {
            cat.append_rows("kv", batch(b))?;
        }
        mem_insert_ms = mem_insert_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    // Durable appends: a fresh directory per repeat so every run logs
    // the same record sequence.
    let mut wal_insert_ms = f64::INFINITY;
    let replay_dir = base.join("replay");
    for rep in 0..repeats.max(1) {
        let dir = base.join(format!("ins{rep}"));
        let _ = std::fs::remove_dir_all(&dir);
        let cat = Catalog::open(&dir)?;
        cat.add(mk_table()?)?;
        let t0 = Instant::now();
        for b in 0..n_batches {
            cat.append_rows("kv", batch(b))?;
        }
        wal_insert_ms = wal_insert_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        if rep + 1 == repeats.max(1) {
            drop(cat);
            let _ = std::fs::remove_dir_all(&replay_dir);
            std::fs::rename(&dir, &replay_dir)
                .map_err(|e| AggViewError::Io(format!("stage replay dir: {e}")))?;
        }
    }

    // Replay: recover the un-checkpointed log.
    let replay_records =
        WalReader::read_committed(&replay_dir.join(aggview_storage::catalog::WAL_FILE))?
            .records
            .len() as u64;
    let mut replay_ms = f64::INFINITY;
    let mut recovered_rows = 0;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        let cat = Catalog::open(&replay_dir)?;
        replay_ms = replay_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        recovered_rows = cat.get("kv")?.len() as u64;
    }
    if recovered_rows != rows_appended {
        return Err(AggViewError::PlanInvalid(format!(
            "durability bench: recovered {recovered_rows} rows, appended {rows_appended}"
        )));
    }

    // Checkpoint, then recover from the snapshot alone.
    let cat = Catalog::open(&replay_dir)?;
    let (checkpoint_ms, _) = time_best(repeats, || cat.checkpoint())?;
    drop(cat);
    let mut recover_after_checkpoint_ms = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        let cat = Catalog::open(&replay_dir)?;
        recover_after_checkpoint_ms =
            recover_after_checkpoint_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        debug_assert_eq!(cat.get("kv")?.len() as u64, rows_appended);
    }
    let _ = std::fs::remove_dir_all(&base);

    Ok(DurabilityReport {
        rows_appended,
        mem_insert_ms,
        wal_insert_ms,
        wal_overhead: wal_insert_ms / mem_insert_ms.max(1e-9),
        replay_records,
        replay_ms,
        replay_rows_per_sec: rate(rows_appended, replay_ms),
        checkpoint_ms,
        recover_after_checkpoint_ms,
    })
}

/// Measure the materialized-view trajectory on a per-department salary
/// aggregate: cold (inlined), hot (extent access path — the bench
/// fails if the optimizer does not pick it, since on this data the
/// extent is strictly cheaper), and stale-then-refreshed recovery.
fn matview_report(scale: usize, repeats: usize) -> Result<MatviewReport> {
    use aggview_sql::Session;

    let mut s = Session::new(gen_empdept(&EmpDeptConfig {
        n_depts: 200,
        emps_per_dept: 100 * scale,
        young_fraction: 0.1,
        low_budget_fraction: 0.3,
        seed: 12,
    })?);
    // Serial execution on both sides: the section isolates the
    // access-path difference, not thread scaling.
    s.exec = ExecOptions::with_threads(1);
    let query = "select dno, sum(sal), count(*) from emp group by dno";
    let base_rows = s.catalog().get("emp")?.len() as u64;

    let (cold_ms, cold) = time_best(repeats, || s.execute(query))?;

    s.execute(
        "create materialized view dsal(dno, total, n) as \
         select dno, sum(sal), count(*) from emp group by dno",
    )?;
    let extent_rows = s.catalog().get("__mv_dsal")?.len() as u64;
    let (materialized_ms, hot) = time_best(repeats, || s.execute(query))?;
    if !hot.plan.contains("ExtentScan") {
        return Err(AggViewError::PlanInvalid(format!(
            "bench matview workload: extent not chosen:\n{}",
            hot.plan
        )));
    }
    if sorted(&cold.rows) != sorted(&hot.rows) {
        return Err(AggViewError::PlanInvalid(
            "bench matview workload: extent rows diverge from inlined rows".into(),
        ));
    }

    // Incremental INSERT maintenance must land on the same extent a
    // from-scratch rebuild produces.
    s.execute("insert into emp values (900001, 'pat', 0, 1234.5, 25)")?;
    let incremental = sorted(s.catalog().get("__mv_dsal")?.rows());
    let (refresh_ms, _) = time_best(repeats, || s.execute("refresh materialized view dsal"))?;
    let rebuilt = sorted(s.catalog().get("__mv_dsal")?.rows());
    let incremental_matches_refresh = incremental == rebuilt;

    // Staleness recovery: a maintenance-bypassing append invalidates
    // the extent; measure refresh + answer. Each repeat appends a
    // distinct key (eno is emp's primary key).
    let mut next_eno = 900_002i64;
    let (stale_then_refreshed_ms, _) = time_best(repeats, || {
        let eno = next_eno;
        next_eno += 1;
        s.catalog().append_rows(
            "emp",
            vec![Tuple::new(vec![
                Value::Int(eno),
                Value::str("kim"),
                Value::Int(1),
                Value::Float(800.0),
                Value::Int(40),
            ])],
        )?;
        s.execute("refresh materialized view dsal")?;
        s.execute(query)
    })?;

    Ok(MatviewReport {
        base_rows,
        extent_rows,
        cold_ms,
        materialized_ms,
        speedup: cold_ms / materialized_ms.max(1e-9),
        refresh_ms,
        stale_then_refreshed_ms,
        incremental_matches_refresh,
    })
}

/// Steady-state DML maintenance: each round inserts a row, gives it a
/// raise, and deletes it again (net zero, so every repeat and both
/// strategies see the same base data), against three registered views.
/// Salaries are multiples of 0.5 so incremental retraction is exact
/// arithmetic and the final-extent comparison is byte-for-byte.
fn maintenance_report(scale: usize, repeats: usize) -> Result<MaintenanceReport> {
    use aggview_sql::Session;
    use aggview_storage::{MatViewMeta, Table};

    const N_DEPTS: i64 = 50;
    let emps_per_dept = (200 * scale) as i64;
    let rounds = 8u64;

    let seed_catalog = || -> Result<Catalog> {
        let cat = Catalog::new();
        let mut b = Table::builder(
            "emp",
            Schema::of(&[
                ("eno", DataType::Int),
                ("name", DataType::Str),
                ("dno", DataType::Int),
                ("sal", DataType::Float),
                ("age", DataType::Int),
            ]),
        )
        .primary_key(&["eno"])?;
        let mut eno = 0i64;
        for dno in 0..N_DEPTS {
            for k in 0..emps_per_dept {
                // Every group spans exactly [1000, 1237.5] so the
                // interior salaries the rounds insert are never a
                // group extremum (no MIN/MAX recompute on their
                // deletion — the steady-state delta path is what this
                // section times).
                b.push(Tuple::new(vec![
                    Value::Int(eno),
                    Value::Str(format!("p{eno}").into()),
                    Value::Int(dno),
                    Value::Float(1000.0 + (k % 20) as f64 * 12.5),
                    Value::Int(21 + (k % 30)),
                ]))?;
                eno += 1;
            }
        }
        cat.add(b.build()?)?;
        Ok(cat)
    };
    const VIEWS: &[(&str, &str)] = &[
        (
            "msum",
            "create materialized view msum(dno, total, n) as \
             select dno, sum(sal), count(*) from emp group by dno",
        ),
        (
            "mrange",
            "create materialized view mrange(dno, lo, hi, n) as \
             select dno, min(sal), max(sal), count(*) from emp group by dno",
        ),
        (
            "myoung",
            "create materialized view myoung(dno, avgsal) as \
             select dno, avg(sal) from emp where age < 30 group by dno",
        ),
    ];

    let session = || -> Result<Session> {
        let mut s = Session::new(seed_catalog()?);
        s.exec = ExecOptions::with_threads(1);
        for (_, create) in VIEWS {
            s.execute(create)?;
        }
        Ok(s)
    };
    let inc = session()?;
    let mut refr = session()?;
    let base_rows = inc.catalog().get("emp")?.len() as u64;
    let model = model_with_mem(64.0);
    let opts = ExecOptions::with_threads(1);

    // Both strategies pay the identical base-table mutation cost
    // (immutable tables rebuild + re-analyze on every DML), so the
    // clock covers *maintenance work only*: the Z-set delta pass on one
    // side, the per-change `REFRESH` rebuilds on the other. Mutations
    // run outside the timed regions.
    let emp_row = |eno: i64, dno: i64, sal: f64, age: i64| {
        Tuple::new(vec![
            Value::Int(eno),
            Value::str("mx"),
            Value::Int(dno),
            Value::Float(sal),
            Value::Int(age),
        ])
    };

    // Incremental strategy: the delta-maintenance entry point the SQL
    // layer's INSERT/UPDATE/DELETE statements call.
    let mut next_eno = 1_000_000i64;
    let mut incremental_ms = f64::INFINITY;
    for _ in 0..repeats {
        let gov = ResourceGovernor::new(aggview_core::governor::ResourceLimits::unlimited());
        let cat = inc.catalog();
        let mut elapsed = 0.0f64;
        let mut maintain = |delta: &aggview_common::ZSet| -> Result<()> {
            let t = Instant::now();
            aggview_executor::delta::maintain_after_dml(
                "emp", delta, cat, model, opts, &gov, None,
            )?;
            elapsed += t.elapsed().as_secs_f64() * 1e3;
            Ok(())
        };
        for r in 0..rounds {
            let eno = next_eno;
            next_eno += 1;
            let dno = (r as i64) % N_DEPTS;
            // Interior, never tying a stored value (offset ends .25).
            let sal = 1106.25 + (r as i64 % 8) as f64 * 12.5;
            let age = 20 + (r as i64 % 30);

            cat.append_rows("emp", vec![emp_row(eno, dno, sal, age)])?;
            maintain(&aggview_common::ZSet::from_inserts([emp_row(
                eno, dno, sal, age,
            )]))?;

            let pos = cat.get("emp")?.len() - 1;
            let pairs = cat.update_rows("emp", &[pos], vec![emp_row(eno, dno, sal + 12.5, age)])?;
            let mut delta = aggview_common::ZSet::new();
            for (old, new) in pairs {
                delta.add(old, -1);
                delta.add(new, 1);
            }
            maintain(&delta)?;

            let removed = cat.delete_rows("emp", &[pos])?;
            maintain(&aggview_common::ZSet::from_deletes(removed))?;
        }
        incremental_ms = incremental_ms.min(elapsed);
    }

    // Refresh-per-change strategy: every view rebuilt from scratch
    // after each mutation.
    let mut refresh_ms = f64::INFINITY;
    for _ in 0..repeats {
        let mut elapsed = 0.0f64;
        let mut refresh_all = |s: &mut Session| -> Result<()> {
            let t = Instant::now();
            for (name, _) in VIEWS {
                s.execute(&format!("refresh materialized view {name}"))?;
            }
            elapsed += t.elapsed().as_secs_f64() * 1e3;
            Ok(())
        };
        for r in 0..rounds {
            let eno = next_eno;
            next_eno += 1;
            let dno = (r as i64) % N_DEPTS;
            let sal = 1106.25 + (r as i64 % 8) as f64 * 12.5;
            let age = 20 + (r as i64 % 30);
            refr.catalog()
                .append_rows("emp", vec![emp_row(eno, dno, sal, age)])?;
            refresh_all(&mut refr)?;
            let pos = refr.catalog().get("emp")?.len() - 1;
            refr.catalog()
                .update_rows("emp", &[pos], vec![emp_row(eno, dno, sal + 12.5, age)])?;
            refresh_all(&mut refr)?;
            refr.catalog().delete_rows("emp", &[pos])?;
            refresh_all(&mut refr)?;
        }
        refresh_ms = refresh_ms.min(elapsed);
    }

    // Both histories are net no-ops over identical seeds, so every
    // extent must agree byte-for-byte across the two strategies.
    let mut incremental_matches_refresh = true;
    for (name, _) in VIEWS {
        let ext = MatViewMeta::extent_name(name);
        let a = sorted(inc.catalog().get(&ext)?.rows());
        let b = sorted(refr.catalog().get(&ext)?.rows());
        incremental_matches_refresh &= a == b;
    }

    let statements = rounds * 3;
    Ok(MaintenanceReport {
        views: VIEWS.len() as u64,
        rounds,
        base_rows,
        statements,
        incremental_ms,
        refresh_ms,
        incremental_stmts_per_sec: rate(statements, incremental_ms),
        refresh_stmts_per_sec: rate(statements, refresh_ms),
        speedup: refresh_ms / incremental_ms.max(1e-9),
        incremental_matches_refresh,
    })
}

fn sorted(rows: &[Tuple]) -> Vec<Tuple> {
    let mut v = rows.to_vec();
    v.sort();
    v
}

/// Total base-table rows feeding a query (each relation occurrence
/// scans its table once).
fn base_rows(catalog: &Catalog, env: &QueryEnv) -> u64 {
    env.rel_tables
        .iter()
        .map(|t| catalog.get(t).map_or(0, |t| t.len()) as u64)
        .sum()
}

#[allow(clippy::too_many_arguments)]
fn run_workload(
    name: &'static str,
    catalog: &Catalog,
    env: &QueryEnv,
    model: aggview_core::CostModel,
    plan: &Plan,
    input_rows: u64,
    threads: usize,
    repeats: usize,
) -> Result<WorkloadReport> {
    let serial = Engine::new(catalog, env, model).with_options(ExecOptions::with_threads(1));
    let parallel =
        Engine::new(catalog, env, model).with_options(ExecOptions::with_threads(threads));
    let (serial_ms, rs) = time_best(repeats, || serial.execute(plan))?;
    let (parallel_ms, rp) = time_best(repeats, || parallel.execute(plan))?;
    Ok(WorkloadReport {
        name,
        input_rows,
        output_rows: rs.rows.len() as u64,
        serial_ms,
        parallel_ms,
        serial_rows_per_sec: rate(input_rows, serial_ms),
        parallel_rows_per_sec: rate(input_rows, parallel_ms),
        speedup: serial_ms / parallel_ms.max(1e-9),
        peak_intermediate_bytes: rs.peak_intermediate_bytes.max(rp.peak_intermediate_bytes),
    })
}

fn time_best<T>(repeats: usize, mut f: impl FnMut() -> Result<T>) -> Result<(f64, T)> {
    let mut best_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        let out = f()?;
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    Ok((best_ms, last.expect("at least one repeat")))
}

fn rate(rows: u64, ms: f64) -> f64 {
    rows as f64 / (ms / 1e3).max(1e-9)
}

// ---------------------------------------------------------------------
// Serial kernel comparison: current hash-then-compare kernels vs. the
// clone-key baseline they replaced.
// ---------------------------------------------------------------------

/// The old join kernel, as the engine ran it before the rework: clone a
/// `Vec<Value>` key per build AND probe row, materialize the
/// concatenated tuple, project, and charge the governor per output —
/// the charging is identical on both sides of the comparison, so the
/// measured difference is the key handling alone.
fn legacy_join(
    gov: &ResourceGovernor,
    build: &[Tuple],
    probe: &[Tuple],
    build_pos: &[usize],
    probe_pos: &[usize],
    positions: &[usize],
) -> Result<Vec<Tuple>> {
    let mut table: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
    for (i, b) in build.iter().enumerate() {
        let key: Vec<Value> = build_pos.iter().map(|&p| b.get(p).clone()).collect();
        table.entry(key).or_default().push(i as u32);
    }
    let mut out = Vec::new();
    for p in probe {
        let key: Vec<Value> = probe_pos.iter().map(|&i| p.get(i).clone()).collect();
        if let Some(matches) = table.get(&key) {
            for &bi in matches {
                let t = build[bi as usize].concat(p).project(positions);
                gov.charge_output(1, t.width() as u64)?;
                out.push(t);
            }
        }
    }
    Ok(out)
}

/// The old group-by kernel: clone a `Vec<Value>` key per input row.
fn legacy_group_by(
    gov: &ResourceGovernor,
    rows: &[Tuple],
    key_pos: &[usize],
    funcs: &[AggFunc],
    inputs: &[AggInput],
) -> Result<Vec<Tuple>> {
    let mut table: HashMap<Vec<Value>, Vec<PartialAggState>> = HashMap::new();
    for row in rows {
        let key: Vec<Value> = key_pos.iter().map(|&p| row.get(p).clone()).collect();
        let states = table
            .entry(key)
            .or_insert_with(|| funcs.iter().map(|&f| PartialAggState::empty(f)).collect());
        for (input, state) in inputs.iter().zip(states.iter_mut()) {
            input.absorb(state, row)?;
        }
    }
    table
        .into_iter()
        .map(|(key, states)| {
            let mut vals = key;
            for s in states {
                vals.push(s.finalize()?);
            }
            let t: Tuple = vals.into_iter().collect();
            gov.charge_output(1, t.width() as u64)?;
            Ok(t)
        })
        .collect()
}

fn join_kernel_report(
    emp_rows: &[Tuple],
    dept_rows: &[Tuple],
    repeats: usize,
) -> Result<KernelReport> {
    let gov = ResourceGovernor::unlimited();
    let opts = ExecOptions::with_threads(1);
    let build_pos = [dept::DNO];
    let probe_pos = [emp::DNO];
    // Combined layout dept ++ emp: all dept columns plus emp name+sal.
    let positions = [0usize, 1, 2, 3, 4 + 1, 4 + emp::SAL];
    let emit = JoinEmit::new(&positions, 4, true);

    let (current_ms, current) = time_best(repeats, || {
        let index = build_index(&opts, &gov, dept_rows, &build_pos, None)?;
        probe_join(
            &opts,
            &gov,
            dept_rows,
            emp_rows,
            &index,
            &build_pos,
            &probe_pos,
            &[],
            true,
            &emit,
        )
    })?;
    let (legacy_ms, legacy) = time_best(repeats, || {
        legacy_join(
            &gov, dept_rows, emp_rows, &build_pos, &probe_pos, &positions,
        )
    })?;
    assert_eq!(current.0.len(), legacy.len(), "join kernels must agree");
    Ok(KernelReport {
        name: "hash_join",
        input_rows: (emp_rows.len() + dept_rows.len()) as u64,
        legacy_clone_key_ms: legacy_ms,
        current_ms,
        improvement: legacy_ms / current_ms.max(1e-9),
    })
}

fn group_kernel_report(emp_rows: &[Tuple], repeats: usize) -> Result<KernelReport> {
    let gov = ResourceGovernor::unlimited();
    let opts = ExecOptions::with_threads(1);
    let key_pos = [emp::DNO];
    let funcs = [AggFunc::Count, AggFunc::Avg];
    let sal = Expr::col(Col::base(RelId(0), emp::SAL))
        .bind(&|c: Col| (c == Col::base(RelId(0), emp::SAL)).then_some(emp::SAL))?;
    let inputs = [AggInput::RawCountStar, AggInput::Raw(sal)];

    let (current_ms, table) = time_best(repeats, || {
        accumulate_groups(&opts, &gov, emp_rows, &key_pos, &inputs, &funcs)
    })?;
    let (legacy_ms, legacy) = time_best(repeats, || {
        legacy_group_by(&gov, emp_rows, &key_pos, &funcs, &inputs)
    })?;
    assert_eq!(table.groups.len(), legacy.len(), "group kernels must agree");
    Ok(KernelReport {
        name: "group_by",
        input_rows: emp_rows.len() as u64,
        legacy_clone_key_ms: legacy_ms,
        current_ms,
        improvement: legacy_ms / current_ms.max(1e-9),
    })
}

// ---------------------------------------------------------------------
// Batch vs. row: the vectorized serial kernels against the
// row-at-a-time reference path on identical inputs.
// ---------------------------------------------------------------------

/// Layout binder for a tuple laid out as emp's five base columns.
fn emp_layout(c: Col) -> Option<usize> {
    (0..5).find(|&i| c == Col::base(RelId(0), i))
}

fn identity(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// Batch scan+filter+project vs. the row reference on the same rows.
/// Mirrors the engine's compact-scan layout — only the columns the
/// predicates and projection touch are transposed — so the batch side
/// pays the tuple-to-column transposition cost it pays at a real scan
/// boundary.
fn batch_filter_report(
    emp_rows: &[Tuple],
    emp_types: &[DataType],
    repeats: usize,
) -> Result<BatchKernelReport> {
    let gov = ResourceGovernor::unlimited();
    let opts = ExecOptions::with_threads(1);
    // SELECT dno, sal FROM emp WHERE sal >= 800 AND age < 40.
    let preds = [
        Predicate::cmp_const(
            Col::base(RelId(0), emp::SAL),
            CmpOp::Ge,
            Value::Float(800.0),
        ),
        Predicate::cmp_const(Col::base(RelId(0), emp::AGE), CmpOp::Lt, Value::Int(40)),
    ];
    let row_positions = [emp::DNO, emp::SAL];
    let row_preds: Vec<BoundPredicate> = preds
        .iter()
        .map(|p| p.bind(&emp_layout))
        .collect::<Result<_>>()?;
    let (row_ms, row_out) = time_best(repeats, || {
        filter_project(&opts, &gov, emp_rows, &row_preds, &row_positions)
    })?;

    // Compact physical layout {dno, sal, age}: eno and name are unused.
    let phys = [emp::DNO, emp::SAL, emp::AGE];
    let types: Vec<DataType> = phys.iter().map(|&p| emp_types[p]).collect();
    let compact =
        |c: Col| -> Option<usize> { emp_layout(c).and_then(|p| phys.iter().position(|&q| q == p)) };
    let batch_preds: Vec<BoundPredicate> = preds
        .iter()
        .map(|p| p.bind(&compact))
        .collect::<Result<_>>()?;
    let positions = [0usize, 1];
    let (batch_ms, batch_out) = time_best(repeats, || {
        vector::scan_filter_project(
            &opts,
            &gov,
            emp_rows,
            &phys,
            &types,
            &batch_preds,
            &positions,
        )
    })?;
    assert_eq!(
        row_out.0.len(),
        batch_out.0.len(),
        "filter kernels must agree"
    );
    Ok(BatchKernelReport {
        name: "filter",
        input_rows: emp_rows.len() as u64,
        row_ms,
        batch_ms,
        speedup: row_ms / batch_ms.max(1e-9),
    })
}

/// Batch hash join (fx-prehashed key columns) vs. the row build/probe
/// kernels. Inputs are transposed outside the timed region: in the
/// engine a join consumes batches produced upstream, so transposition
/// belongs to the scan (the `filter` entry), not the join.
fn batch_join_report(
    emp_rows: &[Tuple],
    emp_types: &[DataType],
    dept_rows: &[Tuple],
    dept_types: &[DataType],
    repeats: usize,
) -> Result<BatchKernelReport> {
    let gov = ResourceGovernor::unlimited();
    let opts = ExecOptions::with_threads(1);
    let build_pos = [dept::DNO];
    let probe_pos = [emp::DNO];
    // Combined layout dept ++ emp: all dept columns plus emp name+sal.
    let positions = [0usize, 1, 2, 3, 4 + 1, 4 + emp::SAL];
    let emit = JoinEmit::new(&positions, 4, true);
    let (row_ms, row_out) = time_best(repeats, || {
        let index = build_index(&opts, &gov, dept_rows, &build_pos, None)?;
        probe_join(
            &opts,
            &gov,
            dept_rows,
            emp_rows,
            &index,
            &build_pos,
            &probe_pos,
            &[],
            true,
            &emit,
        )
    })?;
    let build = Batch::from_tuples(dept_rows, &identity(dept_types.len()), dept_types);
    let probe = Batch::from_tuples(emp_rows, &identity(emp_types.len()), emp_types);
    let (batch_ms, batch_out) = time_best(repeats, || {
        let index = vector::build_index(&opts, &gov, &build, &build_pos, None)?;
        vector::probe_join(
            &opts,
            &gov,
            &build,
            &probe,
            &index,
            &build_pos,
            &probe_pos,
            &[],
            true,
            4,
            &positions,
        )
    })?;
    assert_eq!(
        row_out.0.len(),
        batch_out.0.len(),
        "join kernels must agree"
    );
    Ok(BatchKernelReport {
        name: "hash_join",
        input_rows: (emp_rows.len() + dept_rows.len()) as u64,
        row_ms,
        batch_ms,
        speedup: row_ms / batch_ms.max(1e-9),
    })
}

/// Batch hash aggregation (tile-prehashed keys, flat state storage) vs.
/// the row accumulate kernel. As with the join, the input batch is
/// transposed outside the timed region.
fn batch_group_report(
    emp_rows: &[Tuple],
    emp_types: &[DataType],
    repeats: usize,
) -> Result<BatchKernelReport> {
    let gov = ResourceGovernor::unlimited();
    let opts = ExecOptions::with_threads(1);
    let key_pos = [emp::DNO];
    let funcs = [AggFunc::Count, AggFunc::Avg];
    let sal = Expr::col(Col::base(RelId(0), emp::SAL))
        .bind(&|c: Col| (c == Col::base(RelId(0), emp::SAL)).then_some(emp::SAL))?;
    let inputs = [AggInput::RawCountStar, AggInput::Raw(sal)];
    let (row_ms, table) = time_best(repeats, || {
        accumulate_groups(&opts, &gov, emp_rows, &key_pos, &inputs, &funcs)
    })?;
    let batch_in = Batch::from_tuples(emp_rows, &identity(emp_types.len()), emp_types);
    let (batch_ms, btable) = time_best(repeats, || {
        vector::accumulate_groups(&opts, &gov, &batch_in, &key_pos, &inputs, &funcs)
    })?;
    assert_eq!(table.groups.len(), btable.len(), "group kernels must agree");
    Ok(BatchKernelReport {
        name: "group_by",
        input_rows: emp_rows.len() as u64,
        row_ms,
        batch_ms,
        speedup: row_ms / batch_ms.max(1e-9),
    })
}

// ---------------------------------------------------------------------
// Row-path micro-kernels vs. the per-row-allocation variants they
// replaced.
// ---------------------------------------------------------------------

/// `BoundPredicate::eval`'s reference-walking fast path vs. the owned
/// evaluation it replaced: `eval_with` over a cloning getter has
/// exactly the old shape — every operand cloned out of the tuple per
/// row (a heap allocation per string comparand).
fn predicate_eval_report(emp_rows: &[Tuple], repeats: usize) -> Result<KernelReport> {
    let bound: Vec<BoundPredicate> = [
        Predicate::cmp_const(Col::base(RelId(0), emp::NAME), CmpOp::Ge, Value::str("e")),
        Predicate::cmp_const(
            Col::base(RelId(0), emp::SAL),
            CmpOp::Ge,
            Value::Float(800.0),
        ),
    ]
    .iter()
    .map(|p| p.bind(&emp_layout))
    .collect::<Result<_>>()?;
    let (legacy_ms, legacy_hits) = time_best(repeats, || {
        let mut hits = 0u64;
        for t in emp_rows {
            let mut ok = true;
            for p in &bound {
                if !p.eval_with(&|i| t.get(i).clone())? {
                    ok = false;
                    break;
                }
            }
            if ok {
                hits += 1;
            }
        }
        Ok(hits)
    })?;
    let (current_ms, hits) = time_best(repeats, || {
        let mut hits = 0u64;
        for t in emp_rows {
            if predicate::eval_conjunction(&bound, t)? {
                hits += 1;
            }
        }
        Ok(hits)
    })?;
    assert_eq!(hits, legacy_hits, "predicate kernels must agree");
    Ok(KernelReport {
        name: "predicate_eval",
        input_rows: emp_rows.len() as u64,
        legacy_clone_key_ms: legacy_ms,
        current_ms,
        improvement: legacy_ms / current_ms.max(1e-9),
    })
}

/// Residual evaluation at a join probe: the split evaluator reads build
/// and probe tuples in place vs. the legacy shape that concatenated the
/// candidate pair into a fresh tuple before evaluating.
fn probe_residual_report(emp_rows: &[Tuple], repeats: usize) -> Result<KernelReport> {
    // Combined layout emp ++ emp (a self-join's residual).
    let combined = |c: Col| -> Option<usize> {
        (0..5)
            .find(|&i| c == Col::base(RelId(0), i))
            .or_else(|| (0..5).find(|&i| c == Col::base(RelId(1), i)).map(|i| 5 + i))
    };
    let bound: Vec<BoundPredicate> = [
        Predicate::new(
            Expr::col(Col::base(RelId(0), emp::SAL)),
            CmpOp::Gt,
            Expr::col(Col::base(RelId(1), emp::SAL)),
        ),
        Predicate::new(
            Expr::col(Col::base(RelId(0), emp::AGE)),
            CmpOp::Le,
            Expr::col(Col::base(RelId(1), emp::AGE)),
        ),
    ]
    .iter()
    .map(|p| p.bind(&combined))
    .collect::<Result<_>>()?;
    let n = emp_rows.len().max(1);
    let (legacy_ms, legacy_hits) = time_best(repeats, || {
        let mut hits = 0u64;
        for (i, l) in emp_rows.iter().enumerate() {
            let r = &emp_rows[(i + 1) % n];
            if predicate::eval_conjunction(&bound, &l.concat(r))? {
                hits += 1;
            }
        }
        Ok(hits)
    })?;
    let (current_ms, hits) = time_best(repeats, || {
        let mut hits = 0u64;
        for (i, l) in emp_rows.iter().enumerate() {
            let r = &emp_rows[(i + 1) % n];
            if predicate::eval_conjunction_split(&bound, l, r, 5)? {
                hits += 1;
            }
        }
        Ok(hits)
    })?;
    assert_eq!(hits, legacy_hits, "residual kernels must agree");
    Ok(KernelReport {
        name: "probe_residual",
        input_rows: emp_rows.len() as u64,
        legacy_clone_key_ms: legacy_ms,
        current_ms,
        improvement: legacy_ms / current_ms.max(1e-9),
    })
}

// ---------------------------------------------------------------------
// Workload queries (shared with the criterion benches).
// ---------------------------------------------------------------------

/// E3 / Figure 4: one aggregate view joined to a filtered outer emp.
fn figure4_query() -> CanonicalQuery {
    let mut env = QueryEnv::default();
    let e1 = env.add_rel("emp");
    let d = env.add_rel("dept");
    let e3 = env.add_rel("emp");
    let view = ViewDef {
        index: 0,
        rels: vec![e1, d],
        preds: vec![Predicate::eq_cols(
            Col::base(e1, emp::DNO),
            Col::base(d, dept::DNO),
        )],
        group_cols: vec![
            Col::base(e1, emp::DNO),
            Col::base(d, dept::DNAME),
            Col::base(d, dept::LOC),
        ],
        aggs: vec![AggSpec::new(
            AggFunc::Avg,
            Expr::col(Col::base(e1, emp::SAL)),
        )],
        having: vec![],
    };
    CanonicalQuery {
        env,
        views: vec![view],
        base_rels: vec![e3],
        preds: vec![
            Predicate::eq_cols(Col::base(e3, emp::DNO), Col::base(e1, emp::DNO)),
            Predicate::cmp_const(Col::base(e3, emp::AGE), CmpOp::Lt, Value::Int(22)),
            Predicate::new(
                Expr::col(Col::base(e3, emp::SAL)),
                CmpOp::Gt,
                Expr::col(Col::agg(ViewId::View(0), 0)),
            ),
        ],
        group: None,
        projection: vec![
            Col::base(e3, emp::SAL),
            Col::base(d, dept::DNAME),
            Col::base(d, dept::LOC),
        ],
    }
}

/// E8: count line items per customer (the coalescing shape).
fn count_per_customer() -> CanonicalQuery {
    let mut env = QueryEnv::default();
    let l = env.add_rel("lineitem");
    let o = env.add_rel("orders");
    CanonicalQuery {
        env,
        views: vec![],
        base_rels: vec![l, o],
        preds: vec![Predicate::eq_cols(Col::base(l, 1), Col::base(o, 0))],
        group: Some(TopGroup {
            group_cols: vec![Col::base(o, 1)],
            aggs: vec![AggSpec::count_star()],
            having: vec![],
        }),
        projection: vec![Col::base(o, 1), Col::agg(ViewId::Top, 0)],
    }
}

// ---------------------------------------------------------------------
// Report rendering.
// ---------------------------------------------------------------------

impl ExecBenchReport {
    /// Serialize to JSON (handwritten — the workspace carries no JSON
    /// dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"exec\",\n");
        s.push_str(&format!("  \"host_cpus\": {},\n", self.host_cpus));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"scale\": {},\n", self.scale));
        s.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        s.push_str(&format!("  \"plans_checked\": {},\n", self.plans_checked));
        s.push_str(&format!("  \"plans_passed\": {},\n", self.plans_passed));
        s.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            s.push_str(&format!(
                "    {}{}\n",
                workload_json(w, self.host_cpus),
                comma(i, self.workloads.len()),
            ));
        }
        s.push_str("  ],\n");
        let m = &self.matview;
        s.push_str(&format!(
            "  \"matview\": {{\"base_rows\": {}, \"extent_rows\": {}, \
             \"cold_ms\": {}, \"materialized_ms\": {}, \"speedup\": {}, \
             \"refresh_ms\": {}, \"stale_then_refreshed_ms\": {}, \
             \"incremental_matches_refresh\": {}}},\n",
            m.base_rows,
            m.extent_rows,
            num(m.cold_ms),
            num(m.materialized_ms),
            num(m.speedup),
            num(m.refresh_ms),
            num(m.stale_then_refreshed_ms),
            m.incremental_matches_refresh,
        ));
        let mn = &self.maintenance;
        s.push_str(&format!(
            "  \"maintenance\": {{\"views\": {}, \"rounds\": {}, \"base_rows\": {}, \
             \"statements\": {}, \"incremental_ms\": {}, \"refresh_ms\": {}, \
             \"incremental_stmts_per_sec\": {}, \"refresh_stmts_per_sec\": {}, \
             \"speedup\": {}, \"incremental_matches_refresh\": {}}},\n",
            mn.views,
            mn.rounds,
            mn.base_rows,
            mn.statements,
            num(mn.incremental_ms),
            num(mn.refresh_ms),
            num(mn.incremental_stmts_per_sec),
            num(mn.refresh_stmts_per_sec),
            num(mn.speedup),
            mn.incremental_matches_refresh,
        ));
        let d = &self.durability;
        s.push_str(&format!(
            "  \"durability\": {{\"rows_appended\": {}, \"mem_insert_ms\": {}, \
             \"wal_insert_ms\": {}, \"wal_overhead\": {}, \"replay_records\": {}, \
             \"replay_ms\": {}, \"replay_rows_per_sec\": {}, \"checkpoint_ms\": {}, \
             \"recover_after_checkpoint_ms\": {}}},\n",
            d.rows_appended,
            num(d.mem_insert_ms),
            num(d.wal_insert_ms),
            num(d.wal_overhead),
            d.replay_records,
            num(d.replay_ms),
            num(d.replay_rows_per_sec),
            num(d.checkpoint_ms),
            num(d.recover_after_checkpoint_ms),
        ));
        s.push_str("  \"serial_kernels\": {\n");
        push_kernel_list(&mut s, "clone_key", &self.serial_kernels.clone_key, true);
        s.push_str("    \"batch_vs_row\": [\n");
        let bvr = &self.serial_kernels.batch_vs_row;
        for (i, k) in bvr.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"name\": \"{}\", \"input_rows\": {}, \
                 \"row_ms\": {}, \"batch_ms\": {}, \"speedup\": {}}}{}\n",
                k.name,
                k.input_rows,
                num(k.row_ms),
                num(k.batch_ms),
                num(k.speedup),
                comma(i, bvr.len()),
            ));
        }
        s.push_str("    ],\n");
        push_kernel_list(&mut s, "row_micro", &self.serial_kernels.row_micro, true);
        s.push_str(&format!(
            "    \"mixed_demotions\": {}\n",
            self.serial_kernels.mixed_demotions
        ));
        s.push_str("  },\n");
        let ea = &self.eager_agg;
        s.push_str("  \"eager_agg\": {\n");
        s.push_str("    \"shapes\": [\n");
        for (i, w) in ea.shapes.iter().enumerate() {
            s.push_str(&format!(
                "      {}{}\n",
                workload_json(w, self.host_cpus),
                comma(i, ea.shapes.len()),
            ));
        }
        s.push_str("    ],\n");
        s.push_str(&format!("    \"peak_ratio\": {},\n", num(ea.peak_ratio)));
        s.push_str(&format!(
            "    \"eager_plan_fired\": {},\n",
            ea.eager_plan_fired
        ));
        s.push_str(&format!("    \"results_match\": {}\n", ea.results_match));
        s.push_str("  },\n");
        let sa = &self.static_analysis;
        s.push_str(&format!(
            "  \"static_analysis\": {{\"plans_analyzed\": {}, \
             \"empty_subtrees_pruned\": {}, \"statically_rejected\": {}}}\n",
            sa.plans_analyzed, sa.empty_subtrees_pruned, sa.statically_rejected,
        ));
        s.push_str("}\n");
        s
    }

    /// Human-readable summary for the REPL `.bench` command and the
    /// bench binary's stdout.
    pub fn summary_table(&self) -> String {
        let mut s = format!(
            "exec bench — host_cpus {}, threads 1 vs {}, scale {}, best of {}\n\
             plan analyzer: {}/{} workload plans pass integrity checks\n",
            self.host_cpus,
            self.threads,
            self.scale,
            self.repeats,
            self.plans_passed,
            self.plans_checked
        );
        s.push_str(&format!(
            "{:<14} {:>10} {:>10} {:>10} {:>10} {:>8} {:>12}\n",
            "workload", "rows", "serial ms", "par ms", "speedup", "out", "peak bytes"
        ));
        for w in &self.workloads {
            let speedup = if self.host_cpus > 1 {
                format!("{:>9.2}x", w.speedup)
            } else {
                format!("{:>10}", "n/a")
            };
            s.push_str(&format!(
                "{:<14} {:>10} {:>10.2} {:>10.2} {} {:>8} {:>12}\n",
                w.name,
                w.input_rows,
                w.serial_ms,
                w.parallel_ms,
                speedup,
                w.output_rows,
                w.peak_intermediate_bytes
            ));
        }
        if self.host_cpus == 1 {
            s.push_str(
                "note: single-cpu host — parallel speedup suppressed (null in the \
                 JSON report); run on a multi-core host for scaling numbers\n",
            );
        }
        s.push_str("serial kernels vs clone-key baseline:\n");
        for k in &self.serial_kernels.clone_key {
            s.push_str(&format!(
                "{:<14} {:>10} legacy {:>8.2} ms  current {:>8.2} ms  {:>5.2}x faster\n",
                k.name, k.input_rows, k.legacy_clone_key_ms, k.current_ms, k.improvement
            ));
        }
        s.push_str(&format!(
            "batch vs row (serial): {}\n",
            self.serial_kernels
                .batch_vs_row
                .iter()
                .map(|k| format!("{} {:.2}x", k.name, k.speedup))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str("row micro-kernels vs per-row-allocation baseline:\n");
        for k in &self.serial_kernels.row_micro {
            s.push_str(&format!(
                "{:<14} {:>10} legacy {:>8.2} ms  current {:>8.2} ms  {:>5.2}x faster\n",
                k.name, k.input_rows, k.legacy_clone_key_ms, k.current_ms, k.improvement
            ));
        }
        let m = &self.matview;
        s.push_str(&format!(
            "matview ({} base rows -> {} extent rows): cold {:.2} ms, \
             materialized {:.2} ms ({:.2}x), refresh {:.2} ms, \
             stale+refresh+answer {:.2} ms, incremental == refresh: {}\n",
            m.base_rows,
            m.extent_rows,
            m.cold_ms,
            m.materialized_ms,
            m.speedup,
            m.refresh_ms,
            m.stale_then_refreshed_ms,
            m.incremental_matches_refresh
        ));
        let mn = &self.maintenance;
        s.push_str(&format!(
            "maintenance ({} views, {} mixed-DML stmts over {} rows, maintenance time only): \
             incremental {:.2} ms ({:.0} stmts/s) vs refresh-per-change {:.2} ms \
             ({:.0} stmts/s) — {:.1}x, extents identical: {}\n",
            mn.views,
            mn.statements,
            mn.base_rows,
            mn.incremental_ms,
            mn.incremental_stmts_per_sec,
            mn.refresh_ms,
            mn.refresh_stmts_per_sec,
            mn.speedup,
            mn.incremental_matches_refresh
        ));
        let d = &self.durability;
        s.push_str(&format!(
            "durability ({} rows): insert mem {:.2} ms / wal {:.2} ms ({:.2}x tax), \
             replay {} records in {:.2} ms ({:.0} rows/s), \
             checkpoint {:.2} ms, recover-from-snapshot {:.2} ms\n",
            d.rows_appended,
            d.mem_insert_ms,
            d.wal_insert_ms,
            d.wal_overhead,
            d.replay_records,
            d.replay_ms,
            d.replay_rows_per_sec,
            d.checkpoint_ms,
            d.recover_after_checkpoint_ms
        ));
        let ea = &self.eager_agg;
        s.push_str(&format!(
            "eager aggregation (self-join then group-by): peak {} bytes eager vs {} \
             traditional ({:.1}x less), serial {:.2} ms vs {:.2} ms, \
             plan fired: {}, results identical: {}\n",
            ea.shapes.first().map_or(0, |w| w.peak_intermediate_bytes),
            ea.shapes.get(1).map_or(0, |w| w.peak_intermediate_bytes),
            ea.peak_ratio,
            ea.shapes.first().map_or(0.0, |w| w.serial_ms),
            ea.shapes.get(1).map_or(0.0, |w| w.serial_ms),
            ea.eager_plan_fired,
            ea.results_match
        ));
        let sa = &self.static_analysis;
        s.push_str(&format!(
            "static analysis: {} plans analyzed, {} empty subtree(s) pruned, \
             {} plan(s) statically rejected, {} Mixed demotion(s)\n",
            sa.plans_analyzed,
            sa.empty_subtrees_pruned,
            sa.statically_rejected,
            self.serial_kernels.mixed_demotions
        ));
        s
    }
}

fn push_kernel_list(s: &mut String, key: &str, ks: &[KernelReport], trailing_comma: bool) {
    s.push_str(&format!("    \"{key}\": [\n"));
    for (i, k) in ks.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"name\": \"{}\", \"input_rows\": {}, \
             \"legacy_clone_key_ms\": {}, \"current_ms\": {}, \"improvement\": {}}}{}\n",
            k.name,
            k.input_rows,
            num(k.legacy_clone_key_ms),
            num(k.current_ms),
            num(k.improvement),
            comma(i, ks.len()),
        ));
    }
    s.push_str(if trailing_comma {
        "    ],\n"
    } else {
        "    ]\n"
    });
}

/// Check fresh workload peaks against a committed baseline report
/// (`BENCH_exec.json`). The scan is deliberately naive — one workload
/// object per line, extract `name` and `peak_intermediate_bytes` from
/// lines that carry both — so it needs no JSON dependency. Workloads
/// missing from the baseline are ignored (new workloads are allowed); a
/// fresh peak more than `tolerance` times its baseline is a regression.
pub fn check_peak_regression(
    baseline_json: &str,
    workloads: &[WorkloadReport],
    tolerance: f64,
) -> std::result::Result<(), String> {
    let mut baseline: HashMap<String, u64> = HashMap::new();
    for line in baseline_json.lines() {
        let Some(name) = extract_str(line, "\"name\": \"") else {
            continue;
        };
        let Some(peak) = extract_u64(line, "\"peak_intermediate_bytes\": ") else {
            continue;
        };
        baseline.insert(name, peak);
    }
    let mut errs = Vec::new();
    for w in workloads {
        if let Some(&base) = baseline.get(w.name) {
            let limit = (base as f64 * tolerance).ceil() as u64;
            if w.peak_intermediate_bytes > limit {
                errs.push(format!(
                    "{}: peak_intermediate_bytes {} exceeds {} ({} x baseline {})",
                    w.name, w.peak_intermediate_bytes, limit, tolerance, base
                ));
            }
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs.join("\n"))
    }
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let rest = &line[line.find(key)? + key.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let rest = &line[line.find(key)? + key.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One workload measurement as a single-line JSON object — `name` and
/// `peak_intermediate_bytes` must share the line for the naive
/// [`check_peak_regression`] baseline scanner.
fn workload_json(w: &WorkloadReport, host_cpus: usize) -> String {
    // On a single-core host the serial/parallel ratio measures
    // scheduling noise, not scaling: suppress it rather than commit a
    // misleading ~1.0 to the report.
    let speedup = if host_cpus > 1 {
        num(w.speedup)
    } else {
        "null".to_string()
    };
    format!(
        "{{\"name\": \"{}\", \"input_rows\": {}, \"output_rows\": {}, \
         \"serial_ms\": {}, \"parallel_ms\": {}, \
         \"serial_rows_per_sec\": {}, \"parallel_rows_per_sec\": {}, \
         \"speedup\": {}, \"peak_intermediate_bytes\": {}}}",
        w.name,
        w.input_rows,
        w.output_rows,
        num(w.serial_ms),
        num(w.parallel_ms),
        num(w.serial_rows_per_sec),
        num(w.parallel_rows_per_sec),
        speedup,
        w.peak_intermediate_bytes,
    )
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_consistent_report() {
        let report = run_exec_bench(&ExecBenchConfig {
            threads: 2,
            scale: 1,
            repeats: 1,
        })
        .unwrap();
        assert_eq!(report.workloads.len(), 6);
        assert_eq!(report.serial_kernels.clone_key.len(), 2);
        let bvr_names: Vec<_> = report
            .serial_kernels
            .batch_vs_row
            .iter()
            .map(|k| k.name)
            .collect();
        assert_eq!(bvr_names, ["filter", "hash_join", "group_by"]);
        for k in &report.serial_kernels.batch_vs_row {
            assert!(k.row_ms > 0.0 && k.batch_ms > 0.0, "{} times", k.name);
        }
        let micro_names: Vec<_> = report
            .serial_kernels
            .row_micro
            .iter()
            .map(|k| k.name)
            .collect();
        assert_eq!(micro_names, ["predicate_eval", "probe_residual"]);
        for w in &report.workloads {
            assert!(w.input_rows > 0, "{} input", w.name);
            assert!(w.serial_ms > 0.0 && w.parallel_ms > 0.0, "{} times", w.name);
        }
        assert_eq!(report.plans_checked, 8, "every workload plan analyzed");
        assert_eq!(report.plans_passed, 8, "every workload plan accepted");
        let ea = &report.eager_agg;
        let shape_names: Vec<_> = ea.shapes.iter().map(|w| w.name).collect();
        assert_eq!(shape_names, ["eager_agg_on", "eager_agg_off"]);
        assert!(
            ea.eager_plan_fired,
            "eager optimizer must push a partial aggregate below the self-join"
        );
        assert!(
            ea.results_match,
            "eager and traditional shapes must compute identical results"
        );
        // The headline claim: partial aggregation below the join keeps
        // the peak footprint at least 2x under the materialize-then-
        // aggregate shape (measured bytes are deterministic).
        assert!(
            ea.peak_ratio >= 2.0,
            "eager aggregation should cut measured peak bytes >= 2x, got {:.2}x \
             (eager {} vs traditional {})",
            ea.peak_ratio,
            ea.shapes[0].peak_intermediate_bytes,
            ea.shapes[1].peak_intermediate_bytes
        );
        assert_eq!(
            report.serial_kernels.mixed_demotions, 0,
            "certified workloads must execute without Mixed demotions"
        );
        let sa = &report.static_analysis;
        assert_eq!(sa.plans_analyzed, 5);
        assert_eq!(sa.empty_subtrees_pruned, 1);
        assert_eq!(sa.statically_rejected, 1);
        assert!(report.matview.speedup > 0.0);
        assert!(
            report.matview.incremental_matches_refresh,
            "incremental maintenance must reproduce the rebuilt extent"
        );
        let mn = &report.maintenance;
        assert_eq!(mn.views, 3);
        assert_eq!(mn.statements, mn.rounds * 3);
        assert!(
            mn.incremental_matches_refresh,
            "delta maintenance must land on the refreshed extents"
        );
        assert!(
            mn.speedup >= 5.0,
            "incremental maintenance should beat refresh-per-change by >= 5x, got {:.2}x",
            mn.speedup
        );
        let d = &report.durability;
        assert_eq!(d.rows_appended, 1000);
        // put_table + one record per insert batch.
        assert_eq!(d.replay_records, 41);
        assert!(d.wal_insert_ms > 0.0 && d.replay_ms > 0.0 && d.checkpoint_ms > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"plans_passed\": 8"));
        assert!(json.contains("\"eager_agg\""));
        assert!(json.contains("\"eager_agg_on\""));
        assert!(json.contains("\"eager_agg_off\""));
        assert!(json.contains("\"eager_plan_fired\": true"));
        assert!(json.contains("\"results_match\": true"));
        assert!(json.contains("\"durability\""));
        assert!(json.contains("\"replay_records\": 41"));
        assert!(json.contains("\"incremental_matches_refresh\": true"));
        assert!(json.contains("\"maintenance\""));
        assert!(json.contains("\"e8_groupby\""));
        assert!(json.contains("\"serial_kernels\""));
        assert!(json.contains("\"clone_key\""));
        assert!(json.contains("\"batch_vs_row\""));
        assert!(json.contains("\"row_micro\""));
        assert!(json.contains("\"mixed_demotions\": 0"));
        assert!(json.contains("\"static_analysis\""));
        assert!(json.contains("\"plans_analyzed\": 5"));
        assert!(json.contains("\"empty_subtrees_pruned\": 1"));
        assert!(json.contains("\"statically_rejected\": 1"));
        // Trailing-comma-free JSON: no ",\n<indent>]" sequences.
        assert!(!json.contains(",\n  ]"));
        assert!(!json.contains(",\n    ]"));

        // Workload speedups are suppressed on a single-core host and
        // emitted verbatim otherwise; the matview access-path speedup
        // is unaffected either way.
        let mut single = report.clone();
        single.host_cpus = 1;
        assert!(single
            .to_json()
            .contains("\"speedup\": null, \"peak_intermediate_bytes\""));
        assert!(single.summary_table().contains("n/a"));
        let mut multi = report;
        multi.host_cpus = 8;
        assert!(!multi
            .to_json()
            .contains("\"speedup\": null, \"peak_intermediate_bytes\""));
    }

    fn workload(name: &'static str, peak: u64) -> WorkloadReport {
        WorkloadReport {
            name,
            input_rows: 1,
            output_rows: 1,
            serial_ms: 1.0,
            parallel_ms: 1.0,
            serial_rows_per_sec: 1.0,
            parallel_rows_per_sec: 1.0,
            speedup: 1.0,
            peak_intermediate_bytes: peak,
        }
    }

    #[test]
    fn peak_baseline_check_flags_only_regressions() {
        let baseline = concat!(
            "  \"workloads\": [\n",
            "    {\"name\": \"scan_filter\", \"speedup\": 1.0, \
             \"peak_intermediate_bytes\": 1000},\n",
            "    {\"name\": \"hash_join\", \"speedup\": null, \
             \"peak_intermediate_bytes\": 2000}\n",
            "  ],\n",
            // Kernel entries have a name but no peak: must be ignored.
            "      {\"name\": \"group_by\", \"improvement\": 2.0}\n",
        );

        // Within tolerance (exactly 10% over rounds up via ceil).
        let ok = [workload("scan_filter", 1100), workload("hash_join", 2000)];
        assert!(check_peak_regression(baseline, &ok, 1.10).is_ok());

        // A workload absent from the baseline is allowed.
        let new = [workload("brand_new", u64::MAX)];
        assert!(check_peak_regression(baseline, &new, 1.10).is_ok());

        // Past tolerance: named in the error.
        let bad = [workload("scan_filter", 1101), workload("hash_join", 1999)];
        let err = check_peak_regression(baseline, &bad, 1.10).unwrap_err();
        assert!(err.contains("scan_filter"), "{err}");
        assert!(!err.contains("hash_join"), "{err}");
    }

    #[test]
    fn legacy_kernels_agree_with_current_results() {
        let cat = gen_empdept(&EmpDeptConfig {
            n_depts: 10,
            emps_per_dept: 30,
            young_fraction: 0.2,
            low_budget_fraction: 0.3,
            seed: 5,
        })
        .unwrap();
        let emp_rows = cat.get("emp").unwrap().rows().to_vec();
        let dept_rows = cat.get("dept").unwrap().rows().to_vec();
        // The asserts inside the report builders cross-check row counts.
        join_kernel_report(&emp_rows, &dept_rows, 1).unwrap();
        group_kernel_report(&emp_rows, 1).unwrap();
    }
}
