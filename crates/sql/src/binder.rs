//! Name resolution and lowering to the canonical query form.
//!
//! The binder turns a parsed [`SelectStmt`] into a
//! [`CanonicalQuery`] (the paper's Figure 3):
//!
//! * base tables in FROM become outer-block relations `B1..Bn`;
//! * references to registered **aggregate views** become [`ViewDef`]s
//!   `Q1..Qm` (the view body is bound in its own scope);
//! * registered **non-aggregate views** are merged into the referencing
//!   block — the "traditional reduction to a single block query" the
//!   paper contrasts with;
//! * scalar aggregate subqueries in WHERE are **flattened** into
//!   additional aggregate views plus join predicates
//!   ([`crate::flatten`]);
//! * a GROUP BY / aggregate select list becomes the top group-by `G0`.

use crate::ast::{AstExpr, AstPred, FromItem, SelectStmt};
use crate::flatten::flatten_subquery;
use aggview_common::{AggSpec, AggViewError, Col, Expr, Predicate, RelId, Result, ViewId};
use aggview_core::query::{CanonicalQuery, QueryEnv, TopGroup, ViewDef};
use aggview_storage::{Catalog, MatViewDef};
use std::collections::HashMap;

/// A registered view definition (from `CREATE VIEW`).
#[derive(Debug, Clone)]
pub struct RegisteredView {
    pub columns: Option<Vec<String>>,
    pub query: SelectStmt,
}

/// Name → view registry.
#[derive(Debug, Clone, Default)]
pub struct ViewRegistry {
    views: HashMap<String, RegisteredView>,
}

impl ViewRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a view.
    pub fn register(&mut self, name: &str, columns: Option<Vec<String>>, query: SelectStmt) {
        self.views
            .insert(name.to_ascii_lowercase(), RegisteredView { columns, query });
    }

    pub fn get(&self, name: &str) -> Option<&RegisteredView> {
        self.views.get(&name.to_ascii_lowercase())
    }

    pub fn len(&self) -> usize {
        self.views.len()
    }

    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }
}

/// The bound form of a query: canonical structure plus presentation
/// metadata.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    pub query: CanonicalQuery,
    /// Output column names, parallel to `query.projection`.
    pub column_names: Vec<String>,
}

/// One visible FROM binding.
#[derive(Debug, Clone)]
pub(crate) struct Scope {
    /// Binding name (alias or table/view name), lowercase.
    pub name: String,
    /// Output columns visible under this binding: (column name, column).
    pub outputs: Vec<(String, Col)>,
}

impl Scope {
    pub(crate) fn resolve(&self, col: &str) -> Option<Col> {
        self.outputs
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(col))
            .map(|(_, c)| *c)
    }
}

/// Bind a SELECT statement against a catalog and view registry.
pub fn bind(stmt: &SelectStmt, catalog: &Catalog, views: &ViewRegistry) -> Result<BoundQuery> {
    let mut b = Binder {
        catalog,
        registry: views,
        env: QueryEnv::default(),
        scopes: Vec::new(),
        view_defs: Vec::new(),
        base_rels: Vec::new(),
        preds: Vec::new(),
    };
    b.bind_from(&stmt.from)?;
    b.bind_where(&stmt.where_preds)?;
    let (group, projection, column_names) =
        b.bind_select_and_group(&stmt.items, &stmt.group_by, &stmt.having)?;
    let query = CanonicalQuery {
        env: b.env,
        views: b.view_defs,
        base_rels: b.base_rels,
        preds: b.preds,
        group,
        projection,
    };
    query.validate(catalog)?;
    Ok(BoundQuery {
        query,
        column_names,
    })
}

struct Binder<'a> {
    catalog: &'a Catalog,
    registry: &'a ViewRegistry,
    env: QueryEnv,
    scopes: Vec<Scope>,
    view_defs: Vec<ViewDef>,
    base_rels: Vec<RelId>,
    preds: Vec<Predicate>,
}

impl Binder<'_> {
    fn bind_from(&mut self, from: &[FromItem]) -> Result<()> {
        for item in from {
            let binding = item.binding_name().to_ascii_lowercase();
            if self.scopes.iter().any(|s| s.name == binding) {
                return Err(AggViewError::Bind(format!(
                    "duplicate FROM binding `{binding}`"
                )));
            }
            if let Some(view) = self.registry.get(&item.name) {
                let view = view.clone();
                if is_aggregate_view(&view.query) {
                    self.bind_aggregate_view(&binding, &view)?;
                } else {
                    self.inline_plain_view(&binding, &view)?;
                }
            } else {
                // Base table.
                let table = self.catalog.get(&item.name)?;
                let rel = self.env.add_rel(table.name().to_string());
                self.base_rels.push(rel);
                let outputs = table
                    .schema()
                    .fields()
                    .iter()
                    .enumerate()
                    .map(|(i, f)| (f.name.clone(), Col::base(rel, i)))
                    .collect();
                self.scopes.push(Scope {
                    name: binding,
                    outputs,
                });
            }
        }
        Ok(())
    }

    /// Bind an aggregate view's body in its own scope, producing a
    /// `ViewDef` and an outer scope exposing its outputs.
    fn bind_aggregate_view(&mut self, binding: &str, view: &RegisteredView) -> Result<()> {
        let q = &view.query;
        // View FROM: base tables only (the paper's Section 2: every
        // aggregate view is a single-block query).
        let mut scopes: Vec<Scope> = Vec::new();
        let mut rels: Vec<RelId> = Vec::new();
        for item in &q.from {
            if self.registry.get(&item.name).is_some() {
                return Err(AggViewError::Bind(format!(
                    "aggregate view bodies must reference base tables only \
                     (found view `{}`)",
                    item.name
                )));
            }
            let table = self.catalog.get(&item.name)?;
            let rel = self.env.add_rel(table.name().to_string());
            rels.push(rel);
            let outputs = table
                .schema()
                .fields()
                .iter()
                .enumerate()
                .map(|(i, f)| (f.name.clone(), Col::base(rel, i)))
                .collect();
            scopes.push(Scope {
                name: item.binding_name().to_ascii_lowercase(),
                outputs,
            });
        }
        // WHERE: plain predicates, no aggregates, no subqueries.
        let mut preds = Vec::new();
        for p in &q.where_preds {
            if p.left.has_subquery() || p.right.has_subquery() {
                return Err(AggViewError::Bind(
                    "subqueries inside view bodies are not supported".into(),
                ));
            }
            preds.push(Predicate::new(
                bind_scalar(&p.left, &scopes)?,
                p.op,
                bind_scalar(&p.right, &scopes)?,
            ));
        }
        // GROUP BY.
        let mut group_cols = Vec::new();
        for g in &q.group_by {
            match bind_scalar(g, &scopes)? {
                Expr::Col(c) => group_cols.push(c),
                other => {
                    return Err(AggViewError::Bind(format!(
                        "GROUP BY expression `{other}` must be a column"
                    )))
                }
            }
        }
        let index = self.view_defs.len() as u32;
        let owner = ViewId::View(index);
        // SELECT items: grouping columns or aggregates; collect names.
        let mut aggs: Vec<AggSpec> = Vec::new();
        let mut outputs: Vec<(String, Col)> = Vec::new();
        for (i, item) in q.items.iter().enumerate() {
            let fallback_name = || format!("col{}", i + 1);
            let name = view
                .columns
                .as_ref()
                .and_then(|cs| cs.get(i).cloned())
                .or_else(|| item.alias.clone())
                .or_else(|| match &item.expr {
                    AstExpr::Col { name, .. } => Some(name.clone()),
                    _ => None,
                })
                .unwrap_or_else(fallback_name);
            match &item.expr {
                AstExpr::Agg { func, arg } => {
                    let spec = AggSpec {
                        func: *func,
                        arg: arg.as_ref().map(|a| bind_scalar(a, &scopes)).transpose()?,
                    };
                    let idx = push_agg(&mut aggs, spec);
                    outputs.push((name, Col::agg(owner, idx)));
                }
                e => match bind_scalar(e, &scopes)? {
                    Expr::Col(c) => {
                        if !group_cols.contains(&c) {
                            return Err(AggViewError::Bind(format!(
                                "view column `{name}` must be grouped or aggregated"
                            )));
                        }
                        outputs.push((name, c));
                    }
                    other => {
                        return Err(AggViewError::Bind(format!(
                            "view select item `{other}` must be a column or aggregate"
                        )))
                    }
                },
            }
        }
        // HAVING: over group columns and the view's own aggregates.
        let mut having = Vec::new();
        for p in &q.having {
            having.push(Predicate::new(
                bind_scalar_with_aggs(&p.left, &scopes, &mut aggs, owner)?,
                p.op,
                bind_scalar_with_aggs(&p.right, &scopes, &mut aggs, owner)?,
            ));
        }
        self.view_defs.push(ViewDef {
            index,
            rels,
            preds,
            group_cols,
            aggs,
            having,
        });
        self.scopes.push(Scope {
            name: binding.to_string(),
            outputs,
        });
        Ok(())
    }

    /// Merge a non-aggregate view into the outer block.
    fn inline_plain_view(&mut self, binding: &str, view: &RegisteredView) -> Result<()> {
        let q = &view.query;
        let mut scopes: Vec<Scope> = Vec::new();
        for item in &q.from {
            if self.registry.get(&item.name).is_some() {
                return Err(AggViewError::Bind("nested views are not supported".into()));
            }
            let table = self.catalog.get(&item.name)?;
            let rel = self.env.add_rel(table.name().to_string());
            self.base_rels.push(rel);
            let outputs = table
                .schema()
                .fields()
                .iter()
                .enumerate()
                .map(|(i, f)| (f.name.clone(), Col::base(rel, i)))
                .collect();
            scopes.push(Scope {
                name: item.binding_name().to_ascii_lowercase(),
                outputs,
            });
        }
        for p in &q.where_preds {
            self.preds.push(Predicate::new(
                bind_scalar(&p.left, &scopes)?,
                p.op,
                bind_scalar(&p.right, &scopes)?,
            ));
        }
        let mut outputs: Vec<(String, Col)> = Vec::new();
        for (i, item) in q.items.iter().enumerate() {
            let name = view
                .columns
                .as_ref()
                .and_then(|cs| cs.get(i).cloned())
                .or_else(|| item.alias.clone())
                .or_else(|| match &item.expr {
                    AstExpr::Col { name, .. } => Some(name.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| format!("col{}", i + 1));
            match bind_scalar(&item.expr, &scopes)? {
                Expr::Col(c) => outputs.push((name, c)),
                other => {
                    return Err(AggViewError::Bind(format!(
                        "non-column view output `{other}` is not supported"
                    )))
                }
            }
        }
        self.scopes.push(Scope {
            name: binding.to_string(),
            outputs,
        });
        Ok(())
    }

    fn bind_where(&mut self, preds: &[AstPred]) -> Result<()> {
        for p in preds {
            let subq_side = p.left.has_subquery() || p.right.has_subquery();
            if subq_side {
                let (vdef, extra_preds) = flatten_subquery(
                    p,
                    &self.scopes,
                    &mut self.env,
                    self.view_defs.len() as u32,
                    self.catalog,
                )?;
                self.view_defs.push(vdef);
                self.preds.extend(extra_preds);
            } else {
                self.preds.push(Predicate::new(
                    bind_scalar(&p.left, &self.scopes)?,
                    p.op,
                    bind_scalar(&p.right, &self.scopes)?,
                ));
            }
        }
        Ok(())
    }

    #[allow(clippy::type_complexity)]
    fn bind_select_and_group(
        &mut self,
        items: &[crate::ast::SelectItem],
        group_by: &[AstExpr],
        having: &[AstPred],
    ) -> Result<(Option<TopGroup>, Vec<Col>, Vec<String>)> {
        let grouped =
            !group_by.is_empty() || !having.is_empty() || items.iter().any(|i| i.expr.has_agg());
        if !grouped {
            let mut projection = Vec::new();
            let mut names = Vec::new();
            for (i, item) in items.iter().enumerate() {
                match bind_scalar(&item.expr, &self.scopes)? {
                    Expr::Col(c) => {
                        projection.push(c);
                        names.push(output_name(item, i));
                    }
                    other => {
                        return Err(AggViewError::Bind(format!(
                            "select item `{other}` must be a column \
                             (computed projections are not supported)"
                        )))
                    }
                }
            }
            return Ok((None, projection, names));
        }

        let mut group_cols = Vec::new();
        for g in group_by {
            match bind_scalar(g, &self.scopes)? {
                Expr::Col(c) => group_cols.push(c),
                other => {
                    return Err(AggViewError::Bind(format!(
                        "GROUP BY expression `{other}` must be a column"
                    )))
                }
            }
        }
        let mut aggs: Vec<AggSpec> = Vec::new();
        let mut projection = Vec::new();
        let mut names = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match &item.expr {
                AstExpr::Agg { func, arg } => {
                    let spec = AggSpec {
                        func: *func,
                        arg: arg
                            .as_ref()
                            .map(|a| bind_scalar(a, &self.scopes))
                            .transpose()?,
                    };
                    let idx = push_agg(&mut aggs, spec);
                    projection.push(Col::agg(ViewId::Top, idx));
                }
                e => match bind_scalar(e, &self.scopes)? {
                    Expr::Col(c) => {
                        if !group_cols.contains(&c) {
                            return Err(AggViewError::Bind(format!(
                                "select item `{e}` must appear in GROUP BY"
                            )));
                        }
                        projection.push(c);
                    }
                    other => {
                        return Err(AggViewError::Bind(format!(
                            "select item `{other}` must be a column or aggregate"
                        )))
                    }
                },
            }
            names.push(output_name(item, i));
        }
        let mut having_preds = Vec::new();
        for p in having {
            having_preds.push(Predicate::new(
                bind_scalar_with_aggs(&p.left, &self.scopes, &mut aggs, ViewId::Top)?,
                p.op,
                bind_scalar_with_aggs(&p.right, &self.scopes, &mut aggs, ViewId::Top)?,
            ));
        }
        Ok((
            Some(TopGroup {
                group_cols,
                aggs,
                having: having_preds,
            }),
            projection,
            names,
        ))
    }
}

fn output_name(item: &crate::ast::SelectItem, i: usize) -> String {
    item.alias.clone().unwrap_or_else(|| match &item.expr {
        AstExpr::Col { name, .. } => name.clone(),
        e => {
            let s = e.to_string();
            if s.len() > 24 {
                format!("col{}", i + 1)
            } else {
                s
            }
        }
    })
}

/// Deduplicating aggregate-spec insertion.
fn push_agg(aggs: &mut Vec<AggSpec>, spec: AggSpec) -> usize {
    if let Some(i) = aggs.iter().position(|a| *a == spec) {
        i
    } else {
        aggs.push(spec);
        aggs.len() - 1
    }
}

/// Bind an aggregate-free scalar expression against scopes.
pub(crate) fn bind_scalar(e: &AstExpr, scopes: &[Scope]) -> Result<Expr> {
    match e {
        AstExpr::Col { qualifier, name } => {
            Ok(Expr::Col(resolve_col(qualifier.as_deref(), name, scopes)?))
        }
        AstExpr::Lit(v) => Ok(Expr::Const(v.clone())),
        AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
            op: *op,
            left: Box::new(bind_scalar(left, scopes)?),
            right: Box::new(bind_scalar(right, scopes)?),
        }),
        AstExpr::Agg { .. } => Err(AggViewError::Bind(
            "aggregate not allowed in this context".into(),
        )),
        AstExpr::Subquery(_) => Err(AggViewError::Bind(
            "subquery not allowed in this context".into(),
        )),
    }
}

/// Bind a scalar expression where aggregate calls resolve to outputs of
/// the group-by `owner` (registering new specs as needed) — the HAVING
/// binding mode.
fn bind_scalar_with_aggs(
    e: &AstExpr,
    scopes: &[Scope],
    aggs: &mut Vec<AggSpec>,
    owner: ViewId,
) -> Result<Expr> {
    match e {
        AstExpr::Agg { func, arg } => {
            let spec = AggSpec {
                func: *func,
                arg: arg.as_ref().map(|a| bind_scalar(a, scopes)).transpose()?,
            };
            let idx = push_agg(aggs, spec);
            Ok(Expr::Col(Col::agg(owner, idx)))
        }
        AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
            op: *op,
            left: Box::new(bind_scalar_with_aggs(left, scopes, aggs, owner)?),
            right: Box::new(bind_scalar_with_aggs(right, scopes, aggs, owner)?),
        }),
        other => bind_scalar(other, scopes),
    }
}

/// Resolve a (possibly qualified) column name against scopes.
pub(crate) fn resolve_col(qualifier: Option<&str>, name: &str, scopes: &[Scope]) -> Result<Col> {
    match qualifier {
        Some(q) => {
            let scope = scopes
                .iter()
                .find(|s| s.name.eq_ignore_ascii_case(q))
                .ok_or_else(|| AggViewError::Bind(format!("unknown table alias `{q}`")))?;
            scope
                .resolve(name)
                .ok_or_else(|| AggViewError::Bind(format!("unknown column `{q}.{name}`")))
        }
        None => {
            let mut found = None;
            for s in scopes {
                if let Some(c) = s.resolve(name) {
                    if found.is_some() {
                        return Err(AggViewError::Bind(format!("ambiguous column `{name}`")));
                    }
                    found = Some(c);
                }
            }
            found.ok_or_else(|| AggViewError::Bind(format!("unknown column `{name}`")))
        }
    }
}

/// Is this SELECT an aggregate view body (group-by or aggregate items)?
pub fn is_aggregate_view(q: &SelectStmt) -> bool {
    !q.group_by.is_empty() || q.items.iter().any(|i| i.expr.has_agg())
}

/// Bind a `CREATE MATERIALIZED VIEW` body to a self-contained
/// [`MatViewDef`] over a local frame: relation `i` of the FROM list is
/// `RelId(i)` and refers to base table `tables[i]`.
///
/// Materialized-view bodies are the paper's single-block aggregate
/// views: base tables only, conjunctive WHERE, column GROUP BY, and a
/// select list of grouping columns and aggregates (every grouping
/// column must be selected — it becomes part of the extent's key).
pub fn bind_matview(
    name: &str,
    columns: Option<&[String]>,
    query: &SelectStmt,
    catalog: &Catalog,
    registry: &ViewRegistry,
) -> Result<MatViewDef> {
    if !query.having.is_empty() {
        return Err(AggViewError::Bind(
            "HAVING is not supported in materialized view bodies".into(),
        ));
    }
    if !query.order_by.is_empty() || query.limit.is_some() {
        return Err(AggViewError::Bind(
            "ORDER BY / LIMIT are not supported in materialized view bodies".into(),
        ));
    }
    let mut scopes: Vec<Scope> = Vec::new();
    let mut tables: Vec<String> = Vec::new();
    for (i, item) in query.from.iter().enumerate() {
        if registry.get(&item.name).is_some() {
            return Err(AggViewError::Bind(format!(
                "materialized view bodies must reference base tables only \
                 (found view `{}`)",
                item.name
            )));
        }
        let table = catalog.get(&item.name)?;
        let rel = RelId(i as u32);
        tables.push(table.name().to_string());
        let outputs = table
            .schema()
            .fields()
            .iter()
            .enumerate()
            .map(|(j, f)| (f.name.clone(), Col::base(rel, j)))
            .collect();
        scopes.push(Scope {
            name: item.binding_name().to_ascii_lowercase(),
            outputs,
        });
    }
    let mut preds = Vec::new();
    for p in &query.where_preds {
        if p.left.has_subquery() || p.right.has_subquery() {
            return Err(AggViewError::Bind(
                "subqueries inside materialized view bodies are not supported".into(),
            ));
        }
        preds.push(Predicate::new(
            bind_scalar(&p.left, &scopes)?,
            p.op,
            bind_scalar(&p.right, &scopes)?,
        ));
    }
    let mut group_cols = Vec::new();
    for g in &query.group_by {
        match bind_scalar(g, &scopes)? {
            Expr::Col(c) => group_cols.push(c),
            other => {
                return Err(AggViewError::Bind(format!(
                    "GROUP BY expression `{other}` must be a column"
                )))
            }
        }
    }
    // Select list: grouping columns (named) and aggregates, in any
    // order; the extent stores keys first, so names are reassembled in
    // (group columns, aggregates) order.
    let mut aggs: Vec<AggSpec> = Vec::new();
    let mut agg_names: Vec<String> = Vec::new();
    let mut key_names: Vec<(Col, String)> = Vec::new();
    for (i, item) in query.items.iter().enumerate() {
        let item_name = columns
            .and_then(|cs| cs.get(i).cloned())
            .or_else(|| item.alias.clone())
            .or_else(|| match &item.expr {
                AstExpr::Col { name, .. } => Some(name.clone()),
                _ => None,
            })
            .unwrap_or_else(|| format!("col{}", i + 1));
        match &item.expr {
            AstExpr::Agg { func, arg } => {
                aggs.push(AggSpec {
                    func: *func,
                    arg: arg.as_ref().map(|a| bind_scalar(a, &scopes)).transpose()?,
                });
                agg_names.push(item_name);
            }
            e => match bind_scalar(e, &scopes)? {
                Expr::Col(c) => {
                    if !group_cols.contains(&c) {
                        return Err(AggViewError::Bind(format!(
                            "materialized view column `{item_name}` must be \
                             grouped or aggregated"
                        )));
                    }
                    key_names.push((c, item_name));
                }
                other => {
                    return Err(AggViewError::Bind(format!(
                        "materialized view select item `{other}` must be a \
                         column or aggregate"
                    )))
                }
            },
        }
    }
    let mut column_names = Vec::with_capacity(group_cols.len() + aggs.len());
    for (i, g) in group_cols.iter().enumerate() {
        let named = key_names.iter().find(|(c, _)| c == g).map(|(_, n)| n);
        match named {
            Some(n) => column_names.push(n.clone()),
            None => {
                return Err(AggViewError::Bind(format!(
                    "grouping column {} of materialized view `{name}` must \
                     appear in the select list",
                    i + 1
                )))
            }
        }
    }
    column_names.extend(agg_names);
    let def = MatViewDef {
        name: name.to_string(),
        tables,
        preds,
        group_cols,
        aggs,
        column_names,
    };
    def.validate()?;
    Ok(def)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use aggview_common::AggFunc;
    use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

    fn setup() -> (Catalog, ViewRegistry) {
        let cat = gen_empdept(&EmpDeptConfig {
            n_depts: 4,
            emps_per_dept: 5,
            ..Default::default()
        })
        .unwrap();
        let mut reg = ViewRegistry::new();
        let crate::ast::Stmt::CreateView {
            name,
            columns,
            query,
        } = parse(
            "create view A1(dno, Asal) as select e2.dno, avg(e2.sal) from emp e2 group by e2.dno",
        )
        .unwrap()
        else {
            panic!()
        };
        reg.register(&name, columns, query);
        (cat, reg)
    }

    fn select(sql: &str) -> SelectStmt {
        match parse(sql).unwrap() {
            crate::ast::Stmt::Select(s) => s,
            _ => panic!("expected select"),
        }
    }

    #[test]
    fn binds_paper_example1_via_view() {
        let (cat, reg) = setup();
        let s = select(
            "select e1.sal from emp e1, A1 b \
             where e1.dno = b.dno and e1.age < 22 and e1.sal > b.Asal",
        );
        let bq = bind(&s, &cat, &reg).unwrap();
        assert_eq!(bq.query.views.len(), 1);
        assert_eq!(bq.query.base_rels.len(), 1);
        assert_eq!(bq.query.preds.len(), 3);
        assert_eq!(bq.column_names, vec!["sal"]);
        // The aggregate comparison references the view's AVG output.
        assert!(bq.query.preds.iter().any(|p| p.uses_agg()));
        assert_eq!(bq.query.views[0].aggs[0].func, AggFunc::Avg);
    }

    #[test]
    fn binds_query_b_with_having() {
        let (cat, reg) = setup();
        let s = select(
            "select e1.sal from emp e1, emp e2 where e1.dno = e2.dno and e1.age < 22 \
             group by e2.dno, e1.eno, e1.sal having e1.sal > avg(e2.sal)",
        );
        let bq = bind(&s, &cat, &reg).unwrap();
        let g = bq.query.group.as_ref().unwrap();
        assert_eq!(g.group_cols.len(), 3);
        assert_eq!(g.aggs.len(), 1);
        assert_eq!(g.having.len(), 1);
    }

    #[test]
    fn binds_example2_single_block() {
        let (cat, reg) = setup();
        let s = select(
            "select e.dno, avg(e.sal) from emp e, dept d \
             where e.dno = d.dno and d.budget < 1000000 group by e.dno",
        );
        let bq = bind(&s, &cat, &reg).unwrap();
        assert!(bq.query.views.is_empty());
        assert!(bq.query.group.is_some());
        assert_eq!(bq.column_names[1], "AVG(e.sal)");
    }

    #[test]
    fn flattens_correlated_subquery() {
        let (cat, reg) = setup();
        let s = select(
            "select e1.sal from emp e1 where e1.age < 22 and \
             e1.sal > (select avg(e2.sal) from emp e2 where e2.dno = e1.dno)",
        );
        let bq = bind(&s, &cat, &reg).unwrap();
        assert_eq!(bq.query.views.len(), 1, "subquery became a view");
        assert_eq!(bq.query.views[0].group_cols.len(), 1);
        // Correlation equality + comparison + age filter.
        assert_eq!(bq.query.preds.len(), 3);
    }

    #[test]
    fn unknown_names_error_clearly() {
        let (cat, reg) = setup();
        for (sql, needle) in [
            ("select bogus from emp", "unknown column"),
            (
                "select sal from emp e, dept d where x.sal > 1",
                "unknown table alias",
            ),
            ("select dno from emp, dept", "ambiguous"),
            ("select sal from ghost", "unknown table"),
        ] {
            let err = bind(&select(sql), &cat, &reg).unwrap_err();
            assert!(err.message().contains(needle), "{sql}: got {err}");
        }
    }

    #[test]
    fn ungrouped_column_with_aggregate_rejected() {
        let (cat, reg) = setup();
        let err = bind(&select("select sal, avg(sal) from emp"), &cat, &reg).unwrap_err();
        assert!(err.message().contains("GROUP BY"));
    }

    #[test]
    fn duplicate_bindings_rejected() {
        let (cat, reg) = setup();
        let err = bind(&select("select e.sal from emp e, dept e"), &cat, &reg).unwrap_err();
        assert!(err.message().contains("duplicate"));
    }

    #[test]
    fn duplicate_aggregates_are_shared() {
        let (cat, reg) = setup();
        let s = select("select dno, avg(sal) from emp group by dno having avg(sal) > 1000");
        let bq = bind(&s, &cat, &reg).unwrap();
        assert_eq!(bq.query.group.as_ref().unwrap().aggs.len(), 1);
    }

    #[test]
    fn plain_view_is_inlined() {
        let (cat, mut reg) = setup();
        let crate::ast::Stmt::CreateView {
            name,
            columns,
            query,
        } = parse(
            "create view young(yeno, ydno, ysal) as select eno, dno, sal from emp where age < 22",
        )
        .unwrap()
        else {
            panic!()
        };
        reg.register(&name, columns, query);
        let s = select("select ysal from young y, dept d where y.ydno = d.dno");
        let bq = bind(&s, &cat, &reg).unwrap();
        assert!(bq.query.views.is_empty(), "plain view merged");
        assert_eq!(bq.query.base_rels.len(), 2);
        // The view's WHERE predicate travelled along.
        assert_eq!(bq.query.preds.len(), 2);
    }

    #[test]
    fn view_output_names_resolve() {
        let (cat, reg) = setup();
        let s = select("select b.Asal from A1 b, emp e1 where e1.dno = b.dno");
        let bq = bind(&s, &cat, &reg).unwrap();
        assert!(bq.query.projection[0].is_agg());
        assert_eq!(bq.column_names, vec!["Asal"]);
    }
}
