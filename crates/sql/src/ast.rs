//! Abstract syntax for the supported SQL subset.

use aggview_common::{AggFunc, BinaryOp, CmpOp, Value};
use std::fmt;

/// A scalar expression, possibly containing aggregates or a scalar
/// subquery.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// `[table.]column`
    Col {
        qualifier: Option<String>,
        name: String,
    },
    /// Literal.
    Lit(Value),
    /// Arithmetic.
    Binary {
        op: BinaryOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    /// Aggregate call; `arg = None` is COUNT(*).
    Agg {
        func: AggFunc,
        arg: Option<Box<AstExpr>>,
    },
    /// Scalar aggregate subquery `(SELECT agg(...) FROM ... WHERE ...)`.
    Subquery(Box<SelectStmt>),
}

impl AstExpr {
    pub fn col(name: &str) -> AstExpr {
        AstExpr::Col {
            qualifier: None,
            name: name.to_string(),
        }
    }

    pub fn qcol(q: &str, name: &str) -> AstExpr {
        AstExpr::Col {
            qualifier: Some(q.to_string()),
            name: name.to_string(),
        }
    }

    /// Does the expression contain an aggregate call?
    pub fn has_agg(&self) -> bool {
        match self {
            AstExpr::Agg { .. } => true,
            AstExpr::Binary { left, right, .. } => left.has_agg() || right.has_agg(),
            _ => false,
        }
    }

    /// Does the expression contain a subquery?
    pub fn has_subquery(&self) -> bool {
        match self {
            AstExpr::Subquery(_) => true,
            AstExpr::Binary { left, right, .. } => left.has_subquery() || right.has_subquery(),
            _ => false,
        }
    }
}

impl fmt::Display for AstExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstExpr::Col { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            AstExpr::Lit(v) => write!(f, "{v}"),
            AstExpr::Binary { op, left, right } => {
                let sym = match op {
                    BinaryOp::Add => "+",
                    BinaryOp::Sub => "-",
                    BinaryOp::Mul => "*",
                    BinaryOp::Div => "/",
                };
                write!(f, "({left} {sym} {right})")
            }
            AstExpr::Agg { func, arg } => match arg {
                Some(a) => write!(f, "{func}({a})"),
                None => write!(f, "{func}(*)"),
            },
            AstExpr::Subquery(_) => f.write_str("(<subquery>)"),
        }
    }
}

/// A comparison predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct AstPred {
    pub left: AstExpr,
    pub op: CmpOp,
    pub right: AstExpr,
}

impl fmt::Display for AstPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// One SELECT-list entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: AstExpr,
    pub alias: Option<String>,
}

/// One FROM-list entry: a base table or view, with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    pub name: String,
    pub alias: Option<String>,
}

impl FromItem {
    /// The name this item is referred to by in the rest of the query.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    pub from: Vec<FromItem>,
    pub where_preds: Vec<AstPred>,
    pub group_by: Vec<AstExpr>,
    pub having: Vec<AstPred>,
    /// `ORDER BY <output column> [ASC|DESC], ...` — names must refer to
    /// output columns (by alias or column name).
    pub order_by: Vec<(String, bool)>,
    /// `LIMIT n`.
    pub limit: Option<usize>,
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Select(SelectStmt),
    /// `CREATE VIEW name[(col, ...)] AS select`
    CreateView {
        name: String,
        columns: Option<Vec<String>>,
        query: SelectStmt,
    },
    /// `CREATE MATERIALIZED VIEW name[(col, ...)] AS select` — like a
    /// view, but its extent is computed and stored in the catalog.
    CreateMaterializedView {
        name: String,
        columns: Option<Vec<String>>,
        query: SelectStmt,
    },
    /// `INSERT INTO table VALUES (lit, ...), ...` — literal rows only.
    Insert {
        table: String,
        rows: Vec<Vec<AstExpr>>,
    },
    /// `REFRESH MATERIALIZED VIEW name` — rebuild the extent from
    /// scratch.
    RefreshMaterializedView {
        name: String,
    },
    /// `UPDATE table SET col = expr, ... [WHERE pred AND ...]` —
    /// single-table; SET expressions are evaluated against the *old*
    /// row (`SET sal = sal * 1.1` works), aggregates and subqueries are
    /// rejected at bind time.
    Update {
        table: String,
        sets: Vec<(String, AstExpr)>,
        preds: Vec<AstPred>,
    },
    /// `DELETE FROM table [WHERE pred AND ...]` — single-table.
    Delete {
        table: String,
        preds: Vec<AstPred>,
    },
    /// `EXPLAIN VERIFY select` — optimize the query and run the static
    /// plan-integrity analyzer over the chosen plan, without executing.
    ExplainVerify(SelectStmt),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_agg_walks_arithmetic() {
        let e = AstExpr::Binary {
            op: BinaryOp::Add,
            left: Box::new(AstExpr::col("x")),
            right: Box::new(AstExpr::Agg {
                func: AggFunc::Sum,
                arg: Some(Box::new(AstExpr::col("y"))),
            }),
        };
        assert!(e.has_agg());
        assert!(!AstExpr::col("x").has_agg());
    }

    #[test]
    fn binding_name_prefers_alias() {
        let f = FromItem {
            name: "emp".into(),
            alias: Some("e1".into()),
        };
        assert_eq!(f.binding_name(), "e1");
        let g = FromItem {
            name: "dept".into(),
            alias: None,
        };
        assert_eq!(g.binding_name(), "dept");
    }

    #[test]
    fn display_forms() {
        assert_eq!(AstExpr::qcol("e", "sal").to_string(), "e.sal");
        let p = AstPred {
            left: AstExpr::col("age"),
            op: CmpOp::Lt,
            right: AstExpr::Lit(Value::Int(22)),
        };
        assert_eq!(p.to_string(), "age < 22");
    }
}
