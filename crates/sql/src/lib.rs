//! # aggview-sql — SQL frontend for the aggregate-view optimizer
//!
//! A small, from-scratch SQL layer sufficient to state every query in
//! the paper verbatim:
//!
//! * [`lexer`] / [`parser`] / [`ast`] — `SELECT`-`FROM`-`WHERE`-
//!   `GROUP BY`-`HAVING` with arithmetic expressions, the aggregate
//!   functions of [`aggview_common::AggFunc`], `CREATE VIEW`, and
//!   scalar aggregate subqueries in `WHERE` (correlated or not);
//! * [`binder`] — name resolution and lowering to the canonical
//!   multi-block form ([`aggview_core::CanonicalQuery`], the paper's
//!   Figure 3): view references become [`aggview_core::ViewDef`]s,
//!   non-aggregate views are merged into the referencing block
//!   (traditional view reduction), and correlated aggregate subqueries
//!   are **flattened** into joins with aggregate views
//!   ([`flatten`], after Kim's type-A/type-JA algorithms — the pathway
//!   the paper's Section 1 builds on);
//! * [`session`] — a convenience REPL-style API: `CREATE VIEW` + query
//!   → optimize → execute, returning rows plus measured IO, plus the
//!   materialized-view statements (`CREATE MATERIALIZED VIEW`,
//!   `INSERT INTO ... VALUES` with incremental extent maintenance, and
//!   `REFRESH MATERIALIZED VIEW`).

#![forbid(unsafe_code)]

pub mod ast;
pub mod binder;
pub mod flatten;
pub mod lexer;
pub mod parser;
pub mod session;

pub use binder::{bind, bind_matview, BoundQuery};
pub use parser::parse;
pub use session::{retry_backoff, Session, SqlResult, RETRY_BACKOFF_BASE, RETRY_BACKOFF_CAP};
