//! SQL tokenizer.

use aggview_common::{AggViewError, Result};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (kept verbatim; keyword matching is
    /// case-insensitive at the parser level).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (single-quoted; `''` escapes a quote).
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Token {
    /// The identifier text, if this is an identifier matching `kw`
    /// case-insensitively.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::Semicolon => f.write_str(";"),
            Token::Star => f.write_str("*"),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Slash => f.write_str("/"),
            Token::Eq => f.write_str("="),
            Token::Ne => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::Le => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::Ge => f.write_str(">="),
        }
    }
}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                out.push(Token::Ne);
                i += 2;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(AggViewError::Parse("unterminated string".into()));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        AggViewError::Parse(format!("bad float literal `{text}`"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        AggViewError::Parse(format!("bad integer literal `{text}`"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(AggViewError::Parse(format!(
                    "unexpected character `{other}`"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_example1_sql() {
        let toks = tokenize("select e1.sal from emp e1, A1 b where e1.dno = b.dno and e1.age < 22")
            .unwrap();
        assert!(toks.contains(&Token::Ident("sal".into())));
        assert!(toks.contains(&Token::Lt));
        assert!(toks.contains(&Token::Int(22)));
        assert_eq!(toks.iter().filter(|t| **t == Token::Dot).count(), 4);
    }

    #[test]
    fn numbers_ints_floats_exponents() {
        let toks = tokenize("42 3.5 1e6 2.5e-3 7").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(42),
                Token::Float(3.5),
                Token::Float(1e6),
                Token::Float(2.5e-3),
                Token::Int(7)
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize("'o''brien'").unwrap();
        assert_eq!(toks, vec![Token::Str("o'brien".into())]);
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("= <> != < <= > >=").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("select -- comment here\n x").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn keyword_matching_is_case_insensitive() {
        let toks = tokenize("SeLeCt").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(!toks[0].is_kw("from"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("select @").is_err());
    }
}
