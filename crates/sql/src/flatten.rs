//! Flattening of scalar aggregate subqueries (Kim's algorithms).
//!
//! The paper's Section 1: "The result of Kim's transformation on a query
//! with nested subqueries is a query that is a join of base tables and
//! one or more aggregate views. Thus, using Kim's transformation, the
//! result of optimizing queries containing aggregate views can be used
//! for optimizing an important class of queries with correlated nested
//! subqueries."
//!
//! Supported shapes:
//!
//! * **type-A** (uncorrelated): `o.x > (SELECT AGG(i.y) FROM inner ...)`
//!   — becomes an aggregate view with *no* grouping columns joined by
//!   the comparison predicate alone;
//! * **type-JA** (correlated by equality): the correlation predicates
//!   `i.c = o.c` become the view's grouping columns and reappear as join
//!   predicates between the view and the outer block.
//!
//! Semantics note: flattening uses an inner join, so outer tuples whose
//! subquery ranges over an empty set are dropped. Under SQL's NULL
//! semantics a comparison with a NULL aggregate is *unknown*, which also
//! drops the tuple — except for COUNT, where SQL yields 0 instead of
//! NULL (the classic "COUNT bug" [Kim82/GW87]). Since this engine has no
//! NULLs (paper Section 2), COUNT subqueries over potentially-empty
//! ranges are rejected rather than silently mis-evaluated.

use crate::ast::{AstExpr, AstPred};
use crate::binder::{bind_scalar, resolve_col, Scope};
use aggview_common::{AggFunc, AggSpec, AggViewError, Col, Expr, Predicate, Result, ViewId};
use aggview_core::query::{QueryEnv, ViewDef};
use aggview_storage::Catalog;

/// Flatten one WHERE predicate containing a scalar aggregate subquery.
///
/// Returns the new view definition and the predicates to add to the
/// outer block (correlation joins plus the rewritten comparison).
pub(crate) fn flatten_subquery(
    pred: &AstPred,
    outer_scopes: &[Scope],
    env: &mut QueryEnv,
    view_index: u32,
    catalog: &Catalog,
) -> Result<(ViewDef, Vec<Predicate>)> {
    // Normalize: subquery on the right.
    let (outer_expr, op, sub) = match (&pred.left, &pred.right) {
        (e, AstExpr::Subquery(s)) if !e.has_subquery() => (e, pred.op, s.as_ref()),
        (AstExpr::Subquery(s), e) if !e.has_subquery() => (e, pred.op.flipped(), s.as_ref()),
        _ => {
            return Err(AggViewError::Bind(
                "exactly one side of a predicate may be a subquery".into(),
            ))
        }
    };

    // The subquery must be a single-aggregate scalar select.
    if sub.items.len() != 1 || !sub.group_by.is_empty() || !sub.having.is_empty() {
        return Err(AggViewError::Bind(
            "scalar subquery must select exactly one aggregate and have no \
             GROUP BY/HAVING"
                .into(),
        ));
    }
    let AstExpr::Agg { func, arg } = &sub.items[0].expr else {
        return Err(AggViewError::Bind(
            "scalar subquery must select an aggregate".into(),
        ));
    };
    if *func == AggFunc::Count {
        return Err(AggViewError::Bind(
            "COUNT subqueries are not supported: with inner-join flattening \
             they exhibit the classic COUNT bug on empty ranges (see module \
             docs)"
                .into(),
        ));
    }

    // Inner scopes: base tables only.
    let mut inner_scopes: Vec<Scope> = Vec::new();
    let mut rels = Vec::new();
    for item in &sub.from {
        let table = catalog.get(&item.name)?;
        let rel = env.add_rel(table.name().to_string());
        rels.push(rel);
        let outputs = table
            .schema()
            .fields()
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), Col::base(rel, i)))
            .collect();
        inner_scopes.push(Scope {
            name: item.binding_name().to_ascii_lowercase(),
            outputs,
        });
    }

    // Partition the subquery's WHERE into local predicates and
    // correlation equalities (inner column = outer column).
    let mut local = Vec::new();
    let mut group_cols = Vec::new();
    let mut join_preds = Vec::new();
    for p in &sub.where_preds {
        let l_inner = bind_scalar(&p.left, &inner_scopes);
        let r_inner = bind_scalar(&p.right, &inner_scopes);
        match (l_inner, r_inner) {
            (Ok(l), Ok(r)) => local.push(Predicate::new(l, p.op, r)),
            (inner, outer_side) => {
                // One side failed inner resolution → try it as an outer
                // reference; correlation must be `inner.col = outer.col`.
                if p.op != aggview_common::CmpOp::Eq {
                    return Err(AggViewError::Bind(format!(
                        "unsupported non-equality correlation `{p}`"
                    )));
                }
                let (inner_expr, outer_ast) = match (inner, outer_side) {
                    (Ok(l), _) => (l, &p.right),
                    (_, Ok(r)) => (r, &p.left),
                    (Err(e), Err(_)) => return Err(e),
                };
                let Expr::Col(inner_col) = inner_expr else {
                    return Err(AggViewError::Bind(format!(
                        "correlation side `{p}` must be a bare column"
                    )));
                };
                let AstExpr::Col { qualifier, name } = outer_ast else {
                    return Err(AggViewError::Bind(format!(
                        "correlation side `{p}` must reference an outer column"
                    )));
                };
                let outer_col = resolve_col(qualifier.as_deref(), name, outer_scopes)?;
                if !group_cols.contains(&inner_col) {
                    group_cols.push(inner_col);
                }
                join_preds.push(Predicate::eq_cols(outer_col, inner_col));
            }
        }
    }

    let agg_spec = AggSpec {
        func: *func,
        arg: arg
            .as_ref()
            .map(|a| bind_scalar(a, &inner_scopes))
            .transpose()?,
    };
    let owner = ViewId::View(view_index);
    let vdef = ViewDef {
        index: view_index,
        rels,
        preds: local,
        group_cols,
        aggs: vec![agg_spec],
        having: vec![],
    };

    // The comparison itself: outer expression vs the view's aggregate.
    let outer_bound = bind_scalar(outer_expr, outer_scopes)?;
    join_preds.push(Predicate::new(
        outer_bound,
        op,
        Expr::Col(Col::agg(owner, 0)),
    ));
    Ok((vdef, join_preds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Stmt;
    use crate::binder::{bind, ViewRegistry};
    use crate::parser::parse;
    use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

    fn setup() -> Catalog {
        gen_empdept(&EmpDeptConfig {
            n_depts: 4,
            emps_per_dept: 5,
            ..Default::default()
        })
        .unwrap()
    }

    fn select(sql: &str) -> crate::ast::SelectStmt {
        match parse(sql).unwrap() {
            Stmt::Select(s) => s,
            _ => panic!(),
        }
    }

    #[test]
    fn type_ja_correlated_flattening() {
        let cat = setup();
        let reg = ViewRegistry::new();
        let s = select(
            "select e1.sal from emp e1 where \
             e1.sal > (select avg(e2.sal) from emp e2 where e2.dno = e1.dno)",
        );
        let bq = bind(&s, &cat, &reg).unwrap();
        let v = &bq.query.views[0];
        assert_eq!(v.group_cols.len(), 1);
        assert!(v.preds.is_empty());
        // join: e1.dno = e2.dno, comparison: e1.sal > V#a0
        assert_eq!(bq.query.preds.len(), 2);
        assert!(bq.query.preds.iter().any(|p| p.uses_agg()));
    }

    #[test]
    fn type_a_uncorrelated_flattening() {
        let cat = setup();
        let reg = ViewRegistry::new();
        let s = select(
            "select e1.sal from emp e1 where \
             e1.sal > (select avg(e2.sal) from emp e2 where e2.age < 30)",
        );
        let bq = bind(&s, &cat, &reg).unwrap();
        let v = &bq.query.views[0];
        assert!(v.group_cols.is_empty(), "type-A: scalar view");
        assert_eq!(v.preds.len(), 1, "local filter stays in the view");
        assert_eq!(bq.query.preds.len(), 1, "only the comparison joins");
    }

    #[test]
    fn subquery_on_left_side_flips() {
        let cat = setup();
        let reg = ViewRegistry::new();
        let s = select(
            "select e1.sal from emp e1 where \
             (select avg(e2.sal) from emp e2 where e2.dno = e1.dno) < e1.sal",
        );
        let bq = bind(&s, &cat, &reg).unwrap();
        let cmp = bq.query.preds.iter().find(|p| p.uses_agg()).unwrap();
        assert_eq!(cmp.op, aggview_common::CmpOp::Gt, "flipped to outer > agg");
    }

    #[test]
    fn count_bug_is_rejected_not_mis_evaluated() {
        let cat = setup();
        let reg = ViewRegistry::new();
        let s = select(
            "select e1.sal from emp e1 where \
             0 = (select count(e2.eno) from emp e2 where e2.dno = e1.dno)",
        );
        let err = bind(&s, &cat, &reg).unwrap_err();
        assert!(err.message().contains("COUNT bug"));
    }

    #[test]
    fn malformed_subqueries_rejected() {
        let cat = setup();
        let reg = ViewRegistry::new();
        for sql in [
            // non-aggregate subquery
            "select sal from emp e1 where e1.sal > (select sal from emp e2)",
            // grouped subquery
            "select sal from emp e1 where e1.sal > (select avg(sal) from emp e2 group by dno)",
            // non-equality correlation
            "select sal from emp e1 where e1.sal > (select avg(e2.sal) from emp e2 where e2.dno < e1.dno)",
        ] {
            assert!(bind(&select(sql), &cat, &reg).is_err(), "{sql}");
        }
    }
}
