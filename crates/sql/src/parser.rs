//! Recursive-descent parser.

use crate::ast::{AstExpr, AstPred, FromItem, SelectItem, SelectStmt, Stmt};
use crate::lexer::{tokenize, Token};
use aggview_common::{AggFunc, AggViewError, BinaryOp, CmpOp, Result, Value};

/// Parse one statement (`SELECT ...` or `CREATE VIEW ...`); a trailing
/// semicolon is allowed.
pub fn parse(sql: &str) -> Result<Stmt> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_semi();
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a script of semicolon-separated statements.
pub fn parse_script(sql: &str) -> Result<Vec<Stmt>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    while !p.at_eof() {
        out.push(p.statement()?);
        p.eat_semi();
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn eat_semi(&mut self) {
        while matches!(self.peek(), Some(Token::Semicolon)) {
            self.pos += 1;
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(AggViewError::Parse(format!(
                "unexpected trailing token `{}`",
                self.tokens[self.pos]
            )))
        }
    }

    fn kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.kw(kw) {
            Ok(())
        } else {
            Err(AggViewError::Parse(format!(
                "expected `{kw}`, found `{}`",
                self.peek()
                    .map(ToString::to_string)
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(AggViewError::Parse(format!(
                "expected `{t}`, found `{}`",
                self.peek()
                    .map(ToString::to_string)
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(AggViewError::Parse(format!(
                "expected identifier, found `{}`",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn statement(&mut self) -> Result<Stmt> {
        if self.peek().is_some_and(|t| t.is_kw("create")) {
            self.create_view()
        } else if self.peek().is_some_and(|t| t.is_kw("insert")) {
            self.insert()
        } else if self.peek().is_some_and(|t| t.is_kw("refresh")) {
            self.expect_kw("refresh")?;
            self.expect_kw("materialized")?;
            self.expect_kw("view")?;
            let name = self.ident()?;
            Ok(Stmt::RefreshMaterializedView { name })
        } else if self.peek().is_some_and(|t| t.is_kw("update")) {
            self.update()
        } else if self.peek().is_some_and(|t| t.is_kw("delete")) {
            self.delete()
        } else if self.peek().is_some_and(|t| t.is_kw("explain")) {
            self.expect_kw("explain")?;
            self.expect_kw("verify")?;
            Ok(Stmt::ExplainVerify(self.select()?))
        } else {
            Ok(Stmt::Select(self.select()?))
        }
    }

    fn create_view(&mut self) -> Result<Stmt> {
        self.expect_kw("create")?;
        let materialized = self.kw("materialized");
        self.expect_kw("view")?;
        let name = self.ident()?;
        let columns = if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let mut cols = vec![self.ident()?];
            while self.peek() == Some(&Token::Comma) {
                self.pos += 1;
                cols.push(self.ident()?);
            }
            self.expect(&Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("as")?;
        let query = self.select()?;
        Ok(if materialized {
            Stmt::CreateMaterializedView {
                name,
                columns,
                query,
            }
        } else {
            Stmt::CreateView {
                name,
                columns,
                query,
            }
        })
    }

    fn insert(&mut self) -> Result<Stmt> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        self.expect_kw("values")?;
        let mut rows = vec![self.value_row()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            rows.push(self.value_row()?);
        }
        Ok(Stmt::Insert { table, rows })
    }

    fn update(&mut self) -> Result<Stmt> {
        self.expect_kw("update")?;
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut sets = vec![self.set_item()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            sets.push(self.set_item()?);
        }
        Ok(Stmt::Update {
            table,
            sets,
            preds: self.opt_where()?,
        })
    }

    fn set_item(&mut self) -> Result<(String, AstExpr)> {
        let col = self.ident()?;
        self.expect(&Token::Eq)?;
        Ok((col, self.expr()?))
    }

    fn delete(&mut self) -> Result<Stmt> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        Ok(Stmt::Delete {
            table,
            preds: self.opt_where()?,
        })
    }

    fn opt_where(&mut self) -> Result<Vec<AstPred>> {
        let mut preds = Vec::new();
        if self.kw("where") {
            preds.push(self.predicate()?);
            while self.kw("and") {
                preds.push(self.predicate()?);
            }
        }
        Ok(preds)
    }

    fn value_row(&mut self) -> Result<Vec<AstExpr>> {
        self.expect(&Token::LParen)?;
        let mut vals = vec![self.expr()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            vals.push(self.expr()?);
        }
        self.expect(&Token::RParen)?;
        Ok(vals)
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let _ = self.kw("all") || self.kw("distinct"); // tolerated, no-op
        let mut items = vec![self.select_item()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            items.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let mut from = vec![self.from_item()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            from.push(self.from_item()?);
        }
        let mut where_preds = Vec::new();
        if self.kw("where") {
            where_preds.push(self.predicate()?);
            while self.kw("and") {
                where_preds.push(self.predicate()?);
            }
        }
        let mut group_by = Vec::new();
        if self.kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.expr()?);
            while self.peek() == Some(&Token::Comma) {
                self.pos += 1;
                group_by.push(self.expr()?);
            }
        }
        let mut having = Vec::new();
        if self.kw("having") {
            having.push(self.predicate()?);
            while self.kw("and") {
                having.push(self.predicate()?);
            }
        }
        let mut order_by = Vec::new();
        if self.kw("order") {
            self.expect_kw("by")?;
            loop {
                let name = self.ident()?;
                let desc = if self.kw("desc") {
                    true
                } else {
                    let _ = self.kw("asc");
                    false
                };
                order_by.push((name, desc));
                if self.peek() != Some(&Token::Comma) {
                    break;
                }
                self.pos += 1;
            }
        }
        let limit = if self.kw("limit") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(AggViewError::Parse(format!(
                        "LIMIT expects a non-negative integer, found `{}`",
                        other
                            .map(|t| t.to_string())
                            .unwrap_or_else(|| "end of input".into())
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            where_preds,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let expr = self.expr()?;
        let alias = if self.kw("as") {
            Some(self.ident()?)
        } else {
            match self.peek() {
                // Bare alias (not a clause keyword).
                Some(Token::Ident(s))
                    if !["from", "where", "group", "having", "order", "limit"]
                        .iter()
                        .any(|k| s.eq_ignore_ascii_case(k)) =>
                {
                    Some(self.ident()?)
                }
                _ => None,
            }
        };
        Ok(SelectItem { expr, alias })
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_item(&mut self) -> Result<FromItem> {
        let name = self.ident()?;
        let alias = match self.peek() {
            Some(Token::Ident(s))
                if !["where", "group", "having", "order", "limit"]
                    .iter()
                    .any(|k| s.eq_ignore_ascii_case(k)) =>
            {
                Some(self.ident()?)
            }
            _ => None,
        };
        Ok(FromItem { name, alias })
    }

    fn predicate(&mut self) -> Result<AstPred> {
        let left = self.expr()?;
        let op = match self.next() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            other => {
                return Err(AggViewError::Parse(format!(
                    "expected comparison operator, found `{}`",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                )))
            }
        };
        let right = self.expr()?;
        Ok(AstPred { left, op, right })
    }

    /// Additive-precedence expression.
    fn expr(&mut self) -> Result<AstExpr> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.term()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<AstExpr> {
        let mut left = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.factor()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<AstExpr> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(AstExpr::Lit(Value::Int(i)))
            }
            Some(Token::Float(x)) => {
                self.pos += 1;
                Ok(AstExpr::Lit(Value::Float(x)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(AstExpr::Lit(Value::str(s)))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                let inner = self.factor()?;
                Ok(AstExpr::Binary {
                    op: BinaryOp::Sub,
                    left: Box::new(AstExpr::Lit(Value::Int(0))),
                    right: Box::new(inner),
                })
            }
            Some(Token::LParen) => {
                self.pos += 1;
                // Subquery or parenthesized expression.
                if self.peek().is_some_and(|t| t.is_kw("select")) {
                    let sub = self.select()?;
                    self.expect(&Token::RParen)?;
                    Ok(AstExpr::Subquery(Box::new(sub)))
                } else {
                    let e = self.expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(e)
                }
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                // Aggregate call?
                if let Some(func) = agg_func(&name) {
                    if self.peek() == Some(&Token::LParen) {
                        self.pos += 1;
                        if self.peek() == Some(&Token::Star) {
                            self.pos += 1;
                            self.expect(&Token::RParen)?;
                            if func != AggFunc::Count {
                                return Err(AggViewError::Parse(format!(
                                    "{func}(*) is not valid SQL"
                                )));
                            }
                            return Ok(AstExpr::Agg { func, arg: None });
                        }
                        let arg = self.expr()?;
                        self.expect(&Token::RParen)?;
                        return Ok(AstExpr::Agg {
                            func,
                            arg: Some(Box::new(arg)),
                        });
                    }
                }
                // Qualified column?
                if self.peek() == Some(&Token::Dot) {
                    self.pos += 1;
                    let col = self.ident()?;
                    Ok(AstExpr::Col {
                        qualifier: Some(name),
                        name: col,
                    })
                } else {
                    Ok(AstExpr::Col {
                        qualifier: None,
                        name,
                    })
                }
            }
            other => Err(AggViewError::Parse(format!(
                "expected expression, found `{}`",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }
}

fn agg_func(name: &str) -> Option<AggFunc> {
    let n = name.to_ascii_lowercase();
    match n.as_str() {
        "count" => Some(AggFunc::Count),
        "sum" => Some(AggFunc::Sum),
        "min" => Some(AggFunc::Min),
        "max" => Some(AggFunc::Max),
        "avg" => Some(AggFunc::Avg),
        "stddev" => Some(AggFunc::StdDev),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse(sql).unwrap() {
            Stmt::Select(s) => s,
            _ => panic!("expected select"),
        }
    }

    #[test]
    fn parses_paper_example1_view() {
        // (A1) from the paper.
        let stmt = parse(
            "create view A1(dno, Asal) as select e2.dno, avg(e2.sal) from emp e2 group by e2.dno",
        )
        .unwrap();
        let Stmt::CreateView {
            name,
            columns,
            query,
        } = stmt
        else {
            panic!("expected create view")
        };
        assert_eq!(name, "A1");
        assert_eq!(columns.unwrap(), vec!["dno", "Asal"]);
        assert_eq!(query.group_by.len(), 1);
        assert!(query.items[1].expr.has_agg());
    }

    #[test]
    fn parses_paper_example1_outer() {
        let s = sel(
            "select e1.sal from emp e1, A1 b where e1.dno = b.dno and e1.age < 22 and e1.sal > b.Asal",
        );
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[1].binding_name(), "b");
        assert_eq!(s.where_preds.len(), 3);
    }

    #[test]
    fn parses_paper_query_b_with_having() {
        let s = sel(
            "select e1.sal from emp e1, emp e2 where e1.dno = e2.dno and e1.age < 22 \
             group by e2.dno, e1.eno, e1.sal having e1.sal > avg(e2.sal)",
        );
        assert_eq!(s.group_by.len(), 3);
        assert_eq!(s.having.len(), 1);
        assert!(s.having[0].right.has_agg());
    }

    #[test]
    fn parses_correlated_subquery() {
        let s = sel("select e1.sal from emp e1 where e1.age < 22 and \
             e1.sal > (select avg(e2.sal) from emp e2 where e2.dno = e1.dno)");
        assert!(s.where_preds[1].right.has_subquery());
    }

    #[test]
    fn arithmetic_precedence() {
        let s = sel("select a + b * c from t");
        let AstExpr::Binary { op, right, .. } = &s.items[0].expr else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Add);
        assert!(matches!(
            right.as_ref(),
            AstExpr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn count_star_and_aliases() {
        let s = sel("select count(*) as n, sum(qty) total from lineitem group by ono");
        assert_eq!(s.items[0].alias.as_deref(), Some("n"));
        assert_eq!(s.items[1].alias.as_deref(), Some("total"));
        assert!(matches!(
            s.items[0].expr,
            AstExpr::Agg {
                func: AggFunc::Count,
                arg: None
            }
        ));
    }

    #[test]
    fn rejects_sum_star() {
        assert!(parse("select sum(*) from t").is_err());
    }

    #[test]
    fn parse_script_multiple_statements() {
        let stmts = parse_script(
            "create view v as select dno, avg(sal) from emp group by dno; \
             select dno from v;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn unary_minus_and_parens() {
        let s = sel("select -(a + 2) from t");
        assert!(matches!(
            s.items[0].expr,
            AstExpr::Binary {
                op: BinaryOp::Sub,
                ..
            }
        ));
    }

    #[test]
    fn parses_create_materialized_view() {
        let stmt = parse(
            "create materialized view dsal(dno, total) as \
             select dno, sum(sal) from emp group by dno",
        )
        .unwrap();
        let Stmt::CreateMaterializedView { name, columns, .. } = stmt else {
            panic!("expected create materialized view")
        };
        assert_eq!(name, "dsal");
        assert_eq!(columns.unwrap(), vec!["dno", "total"]);
    }

    #[test]
    fn parses_insert_values() {
        let stmt =
            parse("insert into emp values (1, 'pat', 0, 950.5, 21), (2, 'sam', 1, 800.0, 45)")
                .unwrap();
        let Stmt::Insert { table, rows } = stmt else {
            panic!("expected insert")
        };
        assert_eq!(table, "emp");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 5);
        assert!(matches!(rows[0][1], AstExpr::Lit(Value::Str(_))));
    }

    #[test]
    fn parses_refresh_materialized_view() {
        let stmt = parse("refresh materialized view dsal;").unwrap();
        assert_eq!(
            stmt,
            Stmt::RefreshMaterializedView {
                name: "dsal".into()
            }
        );
        assert!(parse("refresh view dsal").is_err());
        assert!(parse("insert into emp (1)").is_err());
    }

    #[test]
    fn parses_update_with_sets_and_where() {
        let stmt =
            parse("update emp set sal = sal * 2, age = 30 where dno = 1 and sal < 500").unwrap();
        let Stmt::Update { table, sets, preds } = stmt else {
            panic!("expected update")
        };
        assert_eq!(table, "emp");
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].0, "sal");
        assert!(matches!(
            sets[0].1,
            AstExpr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
        assert_eq!(preds.len(), 2);
        // WHERE is optional.
        let Stmt::Update { preds, .. } = parse("update emp set age = 1").unwrap() else {
            panic!()
        };
        assert!(preds.is_empty());
        assert!(parse("update emp sal = 1").is_err());
        assert!(parse("update emp set sal").is_err());
    }

    #[test]
    fn parses_delete_with_and_without_where() {
        let stmt = parse("delete from emp where age > 60;").unwrap();
        let Stmt::Delete { table, preds } = stmt else {
            panic!("expected delete")
        };
        assert_eq!(table, "emp");
        assert_eq!(preds.len(), 1);
        let Stmt::Delete { preds, .. } = parse("delete from emp").unwrap() else {
            panic!()
        };
        assert!(preds.is_empty());
        assert!(parse("delete emp").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("select a from t bogus extra tokens !").is_err());
        assert!(parse("select from t").is_err());
        assert!(parse("select a").is_err());
    }
}
