//! A REPL-style session: parse → bind → optimize → execute.

use crate::ast::{AstExpr, AstPred, Stmt};
use crate::binder::{bind, bind_matview, BoundQuery, ViewRegistry};
use crate::parser::parse_script;
use aggview_common::predicate::eval_conjunction;
use aggview_common::{
    AggViewError, BinaryOp, Col, DataType, Expr, FaultInjector, Predicate, RelId, Result, Schema,
    Tuple, Value, ZSet,
};
use aggview_core::analyze::PlanAnalyzer;
use aggview_core::cost::{CardEstimator, CostModel};
use aggview_core::governor::{OptimizeOutcome, ResourceGovernor, ResourceLimits};
use aggview_core::optimizer::multi_view::{optimize_governed, Optimized};
use aggview_core::OptimizerConfig;
use aggview_executor::{Engine, ExecOptions};
use aggview_storage::Catalog;
use std::path::Path;
use std::time::Duration;

/// Deterministic exponential backoff before retry `attempt` (1-based):
/// 1 ms, 2 ms, 4 ms, ... capped at [`RETRY_BACKOFF_CAP`]. A pure
/// function of the attempt number — no wall clock, no randomness — so a
/// statement's retry schedule is fully reproducible.
pub fn retry_backoff(attempt: u32) -> Duration {
    let exp = attempt.saturating_sub(1).min(6);
    RETRY_BACKOFF_BASE
        .saturating_mul(1 << exp)
        .min(RETRY_BACKOFF_CAP)
}

/// First retry waits this long; each further retry doubles it.
pub const RETRY_BACKOFF_BASE: Duration = Duration::from_millis(1);

/// Backoff ceiling: retries never wait longer than this.
pub const RETRY_BACKOFF_CAP: Duration = Duration::from_millis(64);

/// The result of running a SELECT through the session.
#[derive(Debug, Clone)]
pub struct SqlResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Tuple>,
    /// Measured IO of the executed plan, in pages.
    pub io_pages: f64,
    /// The optimizer's estimated cost of the chosen plan.
    pub estimated_cost: f64,
    /// EXPLAIN-style rendering of the executed plan.
    pub plan: String,
    /// Whether the optimizer completed its full search or degraded to
    /// the traditional two-phase plan (and why).
    pub outcome: OptimizeOutcome,
    /// Retries consumed recovering from transient failures.
    pub retries: u32,
}

impl SqlResult {
    /// Render rows as simple aligned text (for examples and the
    /// quickstart).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.values().iter().map(ToString::to_string).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// A session holding a catalog, registered views, and optimizer
/// configuration.
pub struct Session {
    catalog: Catalog,
    registry: ViewRegistry,
    /// Cost-model parameters (page size, memory budget).
    pub model: CostModel,
    /// Optimizer configuration (pull-up level, push-down, gating).
    pub config: OptimizerConfig,
    /// Resource limits applied to every statement. A fresh
    /// [`ResourceGovernor`] is created per attempt so budgets reset
    /// between statements and between retries.
    pub limits: ResourceLimits,
    /// Automatic retries of retryable (transient) failures per
    /// statement. Non-retryable errors — cancellation, budget
    /// exhaustion, plan/bind errors — never retry.
    pub max_retries: u32,
    /// Executor parallelism and morsel tuning (REPL `.set threads N`).
    pub exec: ExecOptions,
    /// Live view subscriptions: every DML/refresh maintenance round
    /// publishes each maintained view's consolidated visible delta here
    /// (REPL `.subscribe`).
    pub subs: std::sync::Arc<aggview_executor::SubscriptionHub>,
    faults: Option<Box<dyn FaultInjector>>,
}

impl Session {
    /// Create a session over a catalog with default model and config.
    pub fn new(catalog: Catalog) -> Session {
        Session {
            catalog,
            registry: ViewRegistry::new(),
            model: CostModel::default(),
            config: OptimizerConfig::default(),
            limits: ResourceLimits::unlimited(),
            max_retries: 2,
            exec: ExecOptions::default(),
            subs: std::sync::Arc::new(aggview_executor::SubscriptionHub::new()),
            faults: None,
        }
    }

    /// Create a session over a **durable** catalog rooted at `dir`,
    /// recovering any previously committed state (see
    /// [`Catalog::open`]). Every DML statement the session executes is
    /// then written ahead to the WAL before it is applied.
    pub fn open(dir: impl AsRef<Path>) -> Result<Session> {
        Ok(Session::new(Catalog::open(dir)?))
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// True when this session's catalog persists its mutations.
    pub fn is_durable(&self) -> bool {
        self.catalog.is_durable()
    }

    /// Fold the catalog's committed state into a snapshot and truncate
    /// its WAL. Errors on a non-durable session.
    pub fn checkpoint(&self) -> Result<()> {
        self.catalog.checkpoint()
    }

    /// Install (or clear) a fault injector consulted at storage scans
    /// and executor operator boundaries. Testing hook; off by default.
    pub fn set_fault_injector(&mut self, faults: Option<Box<dyn FaultInjector>>) {
        self.faults = faults;
    }

    /// Number of registered views.
    pub fn view_count(&self) -> usize {
        self.registry.len()
    }

    /// Execute a script: `CREATE VIEW`s register views; `CREATE
    /// MATERIALIZED VIEW` additionally builds and stores the extent;
    /// `INSERT INTO ... VALUES` appends rows and incrementally
    /// maintains affected extents; `REFRESH MATERIALIZED VIEW` rebuilds
    /// one. The result of the **last SELECT** (or a status row for a
    /// trailing DML/materialization statement) is returned.
    pub fn execute(&mut self, sql: &str) -> Result<SqlResult> {
        let stmts = parse_script(sql)?;
        let mut last = None;
        for stmt in stmts {
            match stmt {
                Stmt::CreateView {
                    name,
                    columns,
                    query,
                } => {
                    self.registry.register(&name, columns, query);
                }
                Stmt::CreateMaterializedView {
                    name,
                    columns,
                    query,
                } => {
                    last = Some(self.create_matview(&name, columns, query)?);
                }
                Stmt::Insert { table, rows } => {
                    last = Some(self.insert_rows(&table, &rows)?);
                }
                Stmt::Update { table, sets, preds } => {
                    last = Some(self.update_stmt(&table, &sets, &preds)?);
                }
                Stmt::Delete { table, preds } => {
                    last = Some(self.delete_stmt(&table, &preds)?);
                }
                Stmt::RefreshMaterializedView { name } => {
                    let gov = ResourceGovernor::new(self.limits);
                    // A refresh is a maintenance round like any other:
                    // subscribers see its consolidated visible delta.
                    let watched = self.subs.has_subscribers(&name);
                    let before = if watched {
                        self.extent_rows(&name)
                    } else {
                        Vec::new()
                    };
                    let n = aggview_executor::matview::refresh(
                        &name,
                        &self.catalog,
                        self.model,
                        self.exec,
                        &gov,
                    )?;
                    if watched {
                        if let Some(meta) = self.catalog.matview(&name) {
                            let after = self.extent_rows(&name);
                            self.subs
                                .publish_diff(&meta.def.name, &meta.layout, &before, &after);
                        }
                    }
                    last = Some(status_result(format!(
                        "refreshed materialized view `{name}`: {n} extent row(s)"
                    )));
                }
                Stmt::Select(s) => {
                    let bound = bind(&s, &self.catalog, &self.registry)?;
                    let mut result = self.run_bound(&bound)?;
                    apply_order_and_limit(&mut result, &s.order_by, s.limit)?;
                    last = Some(result);
                }
                Stmt::ExplainVerify(s) => {
                    let bound = bind(&s, &self.catalog, &self.registry)?;
                    last = Some(self.verify_bound(&bound)?);
                }
            }
        }
        last.ok_or_else(|| AggViewError::Bind("script contains no SELECT".into()))
    }

    /// `CREATE MATERIALIZED VIEW`: bind the body to a self-contained
    /// definition, build and store its extent, and register the view
    /// for name resolution (so queries referencing it by name inline
    /// its body — the optimizer then picks the extent purely by cost).
    fn create_matview(
        &mut self,
        name: &str,
        columns: Option<Vec<String>>,
        query: crate::ast::SelectStmt,
    ) -> Result<SqlResult> {
        if self.catalog.matview(name).is_some() {
            return Err(AggViewError::Catalog(format!(
                "materialized view `{name}` already exists \
                 (use REFRESH MATERIALIZED VIEW to rebuild it)"
            )));
        }
        let def = bind_matview(
            name,
            columns.as_deref(),
            &query,
            &self.catalog,
            &self.registry,
        )?;
        let gov = ResourceGovernor::new(self.limits);
        let n = aggview_executor::matview::build_extent(
            &def,
            &self.catalog,
            self.model,
            self.exec,
            &gov,
        )?;
        self.registry.register(name, columns, query);
        Ok(status_result(format!(
            "materialized view `{name}`: {n} extent row(s)"
        )))
    }

    /// `INSERT INTO ... VALUES`: append literal rows to a base table,
    /// then maintain every materialized view that references it
    /// (incremental partial-state merge where possible, full rebuild
    /// otherwise).
    fn insert_rows(&mut self, table: &str, rows: &[Vec<AstExpr>]) -> Result<SqlResult> {
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(eval_literal)
                    .collect::<Result<Vec<Value>>>()
                    .map(Tuple::new)
            })
            .collect::<Result<_>>()?;
        let delta = ZSet::from_inserts(tuples.iter().cloned());
        let prev = self.catalog.append_rows(table, tuples.clone())?;
        let total = prev + tuples.len();
        let gov = ResourceGovernor::new(self.limits);
        let maintained = aggview_executor::delta::maintain_after_dml(
            table,
            &delta,
            &self.catalog,
            self.model,
            self.exec,
            &gov,
            Some(&self.subs),
        )?;
        Ok(status_result(format!(
            "inserted {} row(s) into `{table}` ({total} total){}",
            rows.len(),
            maintained_suffix(&maintained)
        )))
    }

    /// Current extent rows of a registered view ([] when the view or
    /// its extent is absent).
    fn extent_rows(&self, view: &str) -> Vec<Tuple> {
        self.catalog
            .matview(view)
            .and_then(|m| self.catalog.get(&m.extent).ok())
            .map(|t| t.rows().to_vec())
            .unwrap_or_default()
    }

    /// `UPDATE table SET col = expr, ... [WHERE ...]`: evaluate each SET
    /// expression against the *old* row for every matching row, replace
    /// the rows in place, and maintain dependent materialized views from
    /// the resulting Z-set delta (`-old ⊕ +new` per row).
    fn update_stmt(
        &mut self,
        table: &str,
        sets: &[(String, AstExpr)],
        preds: &[AstPred],
    ) -> Result<SqlResult> {
        let t = self.catalog.get(table)?;
        let schema = t.schema().clone();
        let bound_sets = bind_set_list(table, &schema, sets)?;
        let gov = ResourceGovernor::new(self.limits);
        let indices = matched_indices(table, &schema, t.rows(), preds, &gov)?;
        let mut replacements = Vec::with_capacity(indices.len());
        for &i in &indices {
            let old = &t.rows()[i];
            let mut vals = old.values().to_vec();
            for (pos, ty, expr) in &bound_sets {
                vals[*pos] = coerce_to(expr.eval(old)?, *ty);
            }
            replacements.push(Tuple::new(vals));
        }
        let pairs = self.catalog.update_rows(table, &indices, replacements)?;
        let n = pairs.len();
        let mut delta = ZSet::new();
        for (old, new) in pairs {
            delta.add(old, -1);
            delta.add(new, 1);
        }
        delta.consolidate();
        let maintained = aggview_executor::delta::maintain_after_dml(
            table,
            &delta,
            &self.catalog,
            self.model,
            self.exec,
            &gov,
            Some(&self.subs),
        )?;
        Ok(status_result(format!(
            "updated {n} row(s) in `{table}`{}",
            maintained_suffix(&maintained)
        )))
    }

    /// `DELETE FROM table [WHERE ...]`: remove matching rows and
    /// maintain dependent materialized views from the `-row` Z-set
    /// delta.
    fn delete_stmt(&mut self, table: &str, preds: &[AstPred]) -> Result<SqlResult> {
        let t = self.catalog.get(table)?;
        let schema = t.schema().clone();
        let gov = ResourceGovernor::new(self.limits);
        let indices = matched_indices(table, &schema, t.rows(), preds, &gov)?;
        let removed = self.catalog.delete_rows(table, &indices)?;
        let n = removed.len();
        let remaining = self.catalog.get(table)?.len();
        let delta = ZSet::from_deletes(removed);
        let maintained = aggview_executor::delta::maintain_after_dml(
            table,
            &delta,
            &self.catalog,
            self.model,
            self.exec,
            &gov,
            Some(&self.subs),
        )?;
        Ok(status_result(format!(
            "deleted {n} row(s) from `{table}` ({remaining} remaining){}",
            maintained_suffix(&maintained)
        )))
    }

    /// Bind and optimize without executing; returns the bound query and
    /// the optimizer result (for EXPLAIN-style inspection).
    pub fn plan(&mut self, sql: &str) -> Result<(BoundQuery, Optimized)> {
        let stmts = parse_script(sql)?;
        let mut select = None;
        for stmt in stmts {
            match stmt {
                Stmt::CreateView {
                    name,
                    columns,
                    query,
                }
                | Stmt::CreateMaterializedView {
                    name,
                    columns,
                    query,
                } => self.registry.register(&name, columns, query),
                // Planning-only surfaces never execute side effects.
                Stmt::Insert { .. }
                | Stmt::Update { .. }
                | Stmt::Delete { .. }
                | Stmt::RefreshMaterializedView { .. } => {}
                Stmt::Select(s) | Stmt::ExplainVerify(s) => select = Some(s),
            }
        }
        let s = select.ok_or_else(|| AggViewError::Bind("script contains no SELECT".into()))?;
        let bound = bind(&s, &self.catalog, &self.registry)?;
        let gov = ResourceGovernor::new(self.limits);
        let opt = optimize_governed(&bound.query, &self.catalog, self.model, &self.config, &gov)?;
        Ok((bound, opt))
    }

    /// EXPLAIN rendering of the chosen plan with per-operator estimated
    /// peak intermediate bytes (backs the REPL's `.explain`).
    pub fn explain(&mut self, sql: &str) -> Result<(String, Optimized)> {
        let (bound, opt) = self.plan(sql)?;
        let est = CardEstimator::new(self.model, &self.catalog, &bound.query.env);
        Ok((est.explain_with_peaks(&opt.plan), opt))
    }

    /// Optimize the script's last SELECT and run the static
    /// plan-integrity analyzer over the chosen plan, without executing
    /// it. Backs the REPL's `.lint` command and `EXPLAIN VERIFY`.
    ///
    /// The result has one `(code, severity, rule, finding)` row per
    /// finding — errors first, then warnings, each ordered by code — or
    /// a single `ok` row when the plan is clean; the `plan` and
    /// `estimated_cost` fields describe the analyzed plan.
    pub fn verify(&mut self, sql: &str) -> Result<SqlResult> {
        let stmts = parse_script(sql)?;
        let mut select = None;
        for stmt in stmts {
            match stmt {
                Stmt::CreateView {
                    name,
                    columns,
                    query,
                }
                | Stmt::CreateMaterializedView {
                    name,
                    columns,
                    query,
                } => self.registry.register(&name, columns, query),
                // Planning-only surfaces never execute side effects.
                Stmt::Insert { .. }
                | Stmt::Update { .. }
                | Stmt::Delete { .. }
                | Stmt::RefreshMaterializedView { .. } => {}
                Stmt::Select(s) | Stmt::ExplainVerify(s) => select = Some(s),
            }
        }
        let s = select.ok_or_else(|| AggViewError::Bind("script contains no SELECT".into()))?;
        let bound = bind(&s, &self.catalog, &self.registry)?;
        self.verify_bound(&bound)
    }

    fn verify_bound(&self, bound: &BoundQuery) -> Result<SqlResult> {
        let gov = ResourceGovernor::new(self.limits);
        let opt = optimize_governed(&bound.query, &self.catalog, self.model, &self.config, &gov)?;
        let analyzer = PlanAnalyzer::new(&self.catalog)
            .with_query(&bound.query)
            .with_model(self.model);
        let report = if opt.outcome.is_degraded() {
            analyzer.analyze_degraded(&opt.plan)
        } else {
            analyzer.analyze(&opt.plan)
        };
        let rows = if report.is_clean() {
            vec![Tuple::new(vec![
                Value::str("ok"),
                Value::str("info"),
                Value::str("ok"),
                Value::str("plan passes all integrity checks"),
            ])]
        } else {
            report
                .sorted()
                .iter()
                .map(|v| {
                    let finding = if v.path.is_empty() {
                        v.message.clone()
                    } else {
                        format!("at {}: {}", v.path, v.message)
                    };
                    Tuple::new(vec![
                        Value::str(v.code),
                        Value::str(v.severity.to_string()),
                        Value::str(v.rule),
                        Value::str(finding),
                    ])
                })
                .collect()
        };
        Ok(SqlResult {
            columns: vec![
                "code".into(),
                "severity".into(),
                "rule".into(),
                "finding".into(),
            ],
            rows,
            io_pages: 0.0,
            estimated_cost: opt.props.cost,
            plan: CardEstimator::new(self.model, &self.catalog, &bound.query.env)
                .explain_with_peaks(&opt.plan),
            outcome: opt.outcome,
            retries: 0,
        })
    }

    fn run_bound(&self, bound: &BoundQuery) -> Result<SqlResult> {
        let mut attempt: u32 = 0;
        loop {
            match self.run_bound_once(bound) {
                Ok(mut result) => {
                    result.retries = attempt;
                    return Ok(result);
                }
                Err(e) if e.is_retryable() && attempt < self.max_retries => {
                    attempt += 1;
                    std::thread::sleep(retry_backoff(attempt));
                }
                Err(e) if e.is_retryable() => {
                    // Retries exhausted: surface the attempt count in
                    // the error without laundering its variant (the
                    // caller can still see it was retryable).
                    let attempts = attempt + 1;
                    return Err(
                        e.map_message(|m| format!("{m} (gave up after {attempts} attempt(s))"))
                    );
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn run_bound_once(&self, bound: &BoundQuery) -> Result<SqlResult> {
        let gov = ResourceGovernor::new(self.limits);
        let opt = optimize_governed(&bound.query, &self.catalog, self.model, &self.config, &gov)?;
        let engine =
            Engine::new(&self.catalog, &bound.query.env, self.model).with_options(self.exec);
        let rs = engine.execute_governed(&opt.plan, &gov, self.faults.as_deref())?;
        // Reorder executed rows to the query's declared projection.
        let positions: Vec<usize> = bound
            .query
            .projection
            .iter()
            .map(|c| {
                rs.col_index(*c)
                    .ok_or_else(|| AggViewError::Exec(format!("plan lost projected column {c}")))
            })
            .collect::<Result<_>>()?;
        let rows: Vec<Tuple> = rs.rows.iter().map(|r| r.project(&positions)).collect();
        Ok(SqlResult {
            columns: bound.column_names.clone(),
            rows,
            io_pages: rs.io_pages,
            estimated_cost: opt.props.cost,
            plan: opt.plan.explain(),
            outcome: opt.outcome,
            retries: 0,
        })
    }
}

/// Render the `; maintained views: ...` suffix of a DML status row.
fn maintained_suffix(maintained: &[String]) -> String {
    if maintained.is_empty() {
        String::new()
    } else {
        format!("; maintained views: {}", maintained.join(", "))
    }
}

/// Lower a single-table DML scalar expression (WHERE operand or SET
/// right-hand side) to a bound [`Expr`] over the table's row layout.
/// Aggregates and subqueries are rejected; a qualifier, if present,
/// must name the target table.
fn dml_expr(table: &str, schema: &Schema, e: &AstExpr, what: &str) -> Result<Expr> {
    match e {
        AstExpr::Col { qualifier, name } => {
            if let Some(q) = qualifier {
                if !q.eq_ignore_ascii_case(table) {
                    return Err(AggViewError::Bind(format!(
                        "{what} references `{q}.{name}`, but only `{table}` is in scope"
                    )));
                }
            }
            let pos = schema.resolve(name)?;
            Ok(Expr::col(Col::base(RelId(0), pos)))
        }
        AstExpr::Lit(v) => Ok(Expr::val(v.clone())),
        AstExpr::Binary { op, left, right } => {
            Ok(dml_expr(table, schema, left, what)?
                .binary(*op, dml_expr(table, schema, right, what)?))
        }
        AstExpr::Agg { .. } => Err(AggViewError::Bind(format!(
            "{what} must not contain aggregates"
        ))),
        AstExpr::Subquery(_) => Err(AggViewError::Bind(format!(
            "{what} must not contain subqueries"
        ))),
    }
}

/// Identity layout for a single-table DML row: base column `i` lives at
/// tuple position `i`.
fn dml_layout(c: Col) -> Option<usize> {
    match c {
        Col::Base(b) => Some(b.col as usize),
        _ => None,
    }
}

/// Bind an UPDATE's SET list: each target column resolves to its
/// position (no column may be assigned twice) and each right-hand side
/// is bound against the old row.
fn bind_set_list(
    table: &str,
    schema: &Schema,
    sets: &[(String, AstExpr)],
) -> Result<Vec<(usize, DataType, aggview_common::expr::BoundExpr)>> {
    let mut out: Vec<(usize, DataType, aggview_common::expr::BoundExpr)> = Vec::new();
    for (name, e) in sets {
        let pos = schema.resolve(name)?;
        if out.iter().any(|(p, _, _)| *p == pos) {
            return Err(AggViewError::Bind(format!(
                "column `{name}` is SET more than once"
            )));
        }
        let expr = dml_expr(table, schema, e, "UPDATE SET expression")?;
        out.push((pos, schema.field(pos).ty, expr.bind(&dml_layout)?));
    }
    Ok(out)
}

/// Evaluate a DML WHERE conjunction over the table's rows, charging the
/// scan to the governor, and return the matching row positions (in
/// ascending order, as the catalog mutators require).
fn matched_indices(
    table: &str,
    schema: &Schema,
    rows: &[Tuple],
    preds: &[AstPred],
    gov: &ResourceGovernor,
) -> Result<Vec<usize>> {
    let bound = preds
        .iter()
        .map(|p| {
            Predicate::new(
                dml_expr(table, schema, &p.left, "WHERE predicate")?,
                p.op,
                dml_expr(table, schema, &p.right, "WHERE predicate")?,
            )
            .bind(&dml_layout)
        })
        .collect::<Result<Vec<_>>>()?;
    let mut indices = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        gov.charge_rows(1)?;
        if eval_conjunction(&bound, row)? {
            indices.push(i);
        }
    }
    Ok(indices)
}

/// Coerce an Int produced by SET arithmetic into the column's declared
/// Float type; all other mismatches surface as catalog type errors.
fn coerce_to(v: Value, ty: DataType) -> Value {
    match (&v, ty) {
        (Value::Int(i), DataType::Float) => Value::Float(*i as f64),
        _ => v,
    }
}

/// A single status row describing a DDL/DML statement's effect.
fn status_result(msg: String) -> SqlResult {
    SqlResult {
        columns: vec!["status".into()],
        rows: vec![Tuple::new(vec![Value::str(msg)])],
        io_pages: 0.0,
        estimated_cost: 0.0,
        plan: String::new(),
        outcome: OptimizeOutcome::Full,
        retries: 0,
    }
}

/// Constant-fold an `INSERT ... VALUES` expression: literals and
/// arithmetic over them (which is how the parser spells negative
/// numbers); anything referencing a column or subquery is rejected.
fn eval_literal(e: &AstExpr) -> Result<Value> {
    match e {
        AstExpr::Lit(v) => Ok(v.clone()),
        AstExpr::Binary { op, left, right } => {
            let l = eval_literal(left)?;
            let r = eval_literal(right)?;
            if let (Some(a), Some(b)) = (l.as_i64(), r.as_i64()) {
                let v = match op {
                    BinaryOp::Add => a.checked_add(b),
                    BinaryOp::Sub => a.checked_sub(b),
                    BinaryOp::Mul => a.checked_mul(b),
                    BinaryOp::Div => {
                        if b == 0 {
                            return Err(AggViewError::Bind(
                                "division by zero in INSERT value".into(),
                            ));
                        }
                        a.checked_div(b)
                    }
                };
                return v.map(Value::Int).ok_or_else(|| {
                    AggViewError::Bind(format!("integer overflow in INSERT value `{e}`"))
                });
            }
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return Err(AggViewError::Bind(format!(
                    "INSERT value `{e}` is not numeric"
                )));
            };
            Ok(Value::Float(match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => a / b,
            }))
        }
        other => Err(AggViewError::Bind(format!(
            "INSERT values must be literals, found `{other}`"
        ))),
    }
}

/// Apply a client-side ORDER BY / LIMIT to a finished result.
fn apply_order_and_limit(
    result: &mut SqlResult,
    order_by: &[(String, bool)],
    limit: Option<usize>,
) -> Result<()> {
    if !order_by.is_empty() {
        let keys: Vec<(usize, bool)> = order_by
            .iter()
            .map(|(name, desc)| {
                result
                    .columns
                    .iter()
                    .position(|c| c.eq_ignore_ascii_case(name))
                    .map(|i| (i, *desc))
                    .ok_or_else(|| {
                        AggViewError::Bind(format!(
                            "ORDER BY column `{name}` is not in the select list"
                        ))
                    })
            })
            .collect::<Result<_>>()?;
        result.rows.sort_by(|a, b| {
            for &(i, desc) in &keys {
                let ord = a.get(i).cmp(b.get(i));
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(n) = limit {
        result.rows.truncate(n);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

    fn session() -> Session {
        Session::new(
            gen_empdept(&EmpDeptConfig {
                n_depts: 6,
                emps_per_dept: 10,
                young_fraction: 0.3,
                seed: 21,
                ..Default::default()
            })
            .unwrap(),
        )
    }

    #[test]
    fn end_to_end_example1_view_vs_single_block() {
        let mut s = session();
        let via_view = s
            .execute(
                "create view A1(dno, Asal) as \
                   select e2.dno, avg(e2.sal) from emp e2 group by e2.dno; \
                 select e1.sal from emp e1, A1 b \
                  where e1.dno = b.dno and e1.age < 22 and e1.sal > b.Asal;",
            )
            .unwrap();
        let via_having = s
            .execute(
                "select e1.sal from emp e1, emp e2 \
                  where e1.dno = e2.dno and e1.age < 22 \
                  group by e2.dno, e1.eno, e1.sal having e1.sal > avg(e2.sal)",
            )
            .unwrap();
        let mut a: Vec<String> = via_view.rows.iter().map(|r| r.to_string()).collect();
        let mut b: Vec<String> = via_having.rows.iter().map(|r| r.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "paper's A1/A2 vs B must agree");
        assert!(!a.is_empty());
    }

    #[test]
    fn correlated_subquery_matches_view_form() {
        let mut s = session();
        let via_view = s
            .execute(
                "create view A1(dno, Asal) as \
                   select e2.dno, avg(e2.sal) from emp e2 group by e2.dno; \
                 select e1.sal from emp e1, A1 b \
                  where e1.dno = b.dno and e1.age < 22 and e1.sal > b.Asal;",
            )
            .unwrap();
        let via_subquery = s
            .execute(
                "select e1.sal from emp e1 where e1.age < 22 and \
                 e1.sal > (select avg(e2.sal) from emp e2 where e2.dno = e1.dno)",
            )
            .unwrap();
        let mut a: Vec<String> = via_view.rows.iter().map(|r| r.to_string()).collect();
        let mut b: Vec<String> = via_subquery.rows.iter().map(|r| r.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn example2_results() {
        let mut s = session();
        let r = s
            .execute(
                "select e.dno, avg(e.sal) from emp e, dept d \
                  where e.dno = d.dno and d.budget < 1000000 group by e.dno",
            )
            .unwrap();
        assert_eq!(r.columns, vec!["dno", "AVG(e.sal)"]);
        assert!(r.io_pages > 0.0);
        assert!(r.plan.contains("GroupBy"));
    }

    #[test]
    fn plan_without_execution() {
        let mut s = session();
        let (bound, opt) = s
            .plan("select dno, count(*) from emp group by dno having count(*) > 2")
            .unwrap();
        assert!(bound.query.group.is_some());
        assert!(opt.props.cost > 0.0);
    }

    #[test]
    fn to_table_renders() {
        let mut s = session();
        let r = s
            .execute("select dno, dname from dept where dno < 2")
            .unwrap();
        let t = r.to_table();
        assert!(t.contains("dno"));
        assert!(t.contains("dept0"));
    }

    #[test]
    fn script_without_select_errors() {
        let mut s = session();
        let err = s
            .execute("create view v as select dno, avg(sal) from emp group by dno")
            .unwrap_err();
        assert!(err.message().contains("no SELECT"));
        assert_eq!(s.view_count(), 1);
    }

    #[test]
    fn transient_faults_are_retried_bounded_times() {
        use aggview_common::ScheduledFaults;
        let mut s = session();
        // First attempt fails at its first consulted site; the retry
        // (fresh governor, same injector call counter) succeeds.
        s.set_fault_injector(Some(Box::new(ScheduledFaults::failing_calls([0]))));
        let r = s.execute("select eno from emp").unwrap();
        assert_eq!(r.retries, 1);
        assert!(!r.rows.is_empty());

        // More consecutive failures than max_retries allows: the error
        // surfaces, structured and retryable, with no panic, carrying
        // the attempt count.
        s.max_retries = 1;
        s.set_fault_injector(Some(Box::new(ScheduledFaults::failing_calls(0..100))));
        let err = s.execute("select eno from emp").unwrap_err();
        assert_eq!(err.kind(), "transient");
        assert!(err.is_retryable());
        assert!(
            err.message().contains("gave up after 2 attempt(s)"),
            "exhaustion must surface the attempt count: {err}"
        );
    }

    #[test]
    fn retry_backoff_is_pure_doubling_and_capped() {
        assert_eq!(retry_backoff(1), Duration::from_millis(1));
        assert_eq!(retry_backoff(2), Duration::from_millis(2));
        assert_eq!(retry_backoff(3), Duration::from_millis(4));
        assert_eq!(retry_backoff(7), Duration::from_millis(64));
        assert_eq!(retry_backoff(8), RETRY_BACKOFF_CAP);
        assert_eq!(retry_backoff(u32::MAX), RETRY_BACKOFF_CAP);
        // Pure: same input, same output — no hidden clock or RNG.
        for a in 0..10 {
            assert_eq!(retry_backoff(a), retry_backoff(a));
        }
    }

    #[test]
    fn tiny_search_budget_degrades_to_traditional_plan() {
        let mut s = session();
        let full = s
            .execute(
                "create view A1(dno, Asal) as \
                   select e2.dno, avg(e2.sal) from emp e2 group by e2.dno; \
                 select e1.sal from emp e1, A1 b \
                  where e1.dno = b.dno and e1.age < 22 and e1.sal > b.Asal;",
            )
            .unwrap();
        assert!(!full.outcome.is_degraded());

        s.limits = ResourceLimits::unlimited().with_max_plans(1);
        let degraded = s
            .execute(
                "select e1.sal from emp e1, A1 b \
                  where e1.dno = b.dno and e1.age < 22 and e1.sal > b.Asal;",
            )
            .unwrap();
        assert!(degraded.outcome.is_degraded());
        // Graceful degradation is not wrong results: same rows.
        let mut a: Vec<String> = full.rows.iter().map(|r| r.to_string()).collect();
        let mut b: Vec<String> = degraded.rows.iter().map(|r| r.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn row_budget_aborts_execution_with_structured_error() {
        let mut s = session();
        s.limits = ResourceLimits::unlimited().with_max_rows(3);
        // An unfiltered scan's static row floor is the whole table, so
        // admission control rejects the query before any operator runs…
        let err = s.execute("select eno from emp").unwrap_err();
        assert_eq!(err.kind(), "plan-inadmissible");
        assert!(!err.is_retryable(), "admission rejections must not retry");
        // …while a filtered scan (floor 0) is admitted and aborts
        // mid-run once the budget is actually exceeded.
        let err = s.execute("select eno from emp where age < 22").unwrap_err();
        assert_eq!(err.kind(), "resource-exhausted");
        assert!(!err.is_retryable(), "budget errors must not retry");
    }
}

#[cfg(test)]
mod matview_tests {
    use super::*;
    use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

    // Large enough that the extent (one row per department) is strictly
    // cheaper than rescanning emp: the matcher only wins on cost.
    fn session() -> Session {
        Session::new(
            gen_empdept(&EmpDeptConfig {
                n_depts: 30,
                emps_per_dept: 40,
                young_fraction: 0.3,
                seed: 33,
                ..Default::default()
            })
            .unwrap(),
        )
    }

    fn sorted_rows(r: &SqlResult) -> Vec<String> {
        let mut v: Vec<String> = r.rows.iter().map(|t| t.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn create_matview_builds_extent_and_answers_queries() {
        let mut s = session();
        let st = s
            .execute(
                "create materialized view dsal(dno, total, n) as \
                 select dno, sum(sal), count(*) from emp group by dno",
            )
            .unwrap();
        assert!(st.rows[0].get(0).to_string().contains("30 extent row"));
        assert!(s.catalog().matview("dsal").is_some());

        let with_mv = s
            .execute("select dno, sum(sal) from emp group by dno")
            .unwrap();
        assert!(
            with_mv.plan.contains("ExtentScan"),
            "expected extent access path, got:\n{}",
            with_mv.plan
        );
        s.config.use_matviews = false;
        let inlined = s
            .execute("select dno, sum(sal) from emp group by dno")
            .unwrap();
        assert_eq!(sorted_rows(&with_mv), sorted_rows(&inlined));
        assert!(with_mv.estimated_cost <= inlined.estimated_cost);
    }

    #[test]
    fn insert_maintains_extent_incrementally() {
        let mut s = session();
        s.execute(
            "create materialized view dsal(dno, total, n) as \
             select dno, sum(sal), count(*) from emp group by dno",
        )
        .unwrap();
        let st = s
            .execute("insert into emp values (9001, 'pat', 0, 1234.5, 25)")
            .unwrap();
        let msg = st.rows[0].get(0).to_string();
        assert!(msg.contains("maintained views: dsal"), "{msg}");
        let meta = s.catalog().matview("dsal").unwrap();
        assert!(
            !meta.is_stale(s.catalog()),
            "maintenance must refresh versions"
        );

        // The maintained extent agrees with recomputing from base data.
        let via_mv = s
            .execute("select dno, sum(sal) from emp group by dno")
            .unwrap();
        s.config.use_matviews = false;
        let inlined = s
            .execute("select dno, sum(sal) from emp group by dno")
            .unwrap();
        assert_eq!(sorted_rows(&via_mv), sorted_rows(&inlined));
    }

    #[test]
    fn stale_extent_is_bypassed_until_refresh() {
        let mut s = session();
        s.execute(
            "create materialized view dsal(dno, total, n) as \
             select dno, sum(sal), count(*) from emp group by dno",
        )
        .unwrap();
        // Programmatic append without maintenance: the extent goes
        // stale and the matcher must fall back to inlining.
        s.catalog()
            .append_rows(
                "emp",
                vec![Tuple::new(vec![
                    Value::Int(9002),
                    Value::str("sam"),
                    Value::Int(1),
                    Value::Float(700.0),
                    Value::Int(41),
                ])],
            )
            .unwrap();
        assert!(s.catalog().matview("dsal").unwrap().is_stale(s.catalog()));
        let stale = s
            .execute("select dno, sum(sal) from emp group by dno")
            .unwrap();
        assert!(
            !stale.plan.contains("ExtentScan"),
            "stale extents must not be scanned:\n{}",
            stale.plan
        );

        let st = s.execute("refresh materialized view dsal").unwrap();
        assert!(st.rows[0].get(0).to_string().contains("refreshed"));
        assert!(!s.catalog().matview("dsal").unwrap().is_stale(s.catalog()));
        let fresh = s
            .execute("select dno, sum(sal) from emp group by dno")
            .unwrap();
        assert!(fresh.plan.contains("ExtentScan"));
        assert_eq!(sorted_rows(&stale), sorted_rows(&fresh));
    }

    #[test]
    fn duplicate_matview_create_is_rejected() {
        let mut s = session();
        let ddl = "create materialized view dsal(dno, total, n) as \
                   select dno, sum(sal), count(*) from emp group by dno";
        s.execute(ddl).unwrap();
        let err = s.execute(ddl).unwrap_err();
        assert!(err.message().contains("already exists"), "{err}");
        // The original view survives the rejected re-create.
        assert!(s.catalog().matview("dsal").is_some());
    }

    #[test]
    fn insert_literal_overflow_is_an_error_not_a_panic() {
        let mut s = session();
        for sql in [
            "insert into emp values (9223372036854775807 + 1, 'x', 0, 1.0, 20)",
            "insert into emp values (9223372036854775807 * 2, 'x', 0, 1.0, 20)",
            "insert into emp values (-9223372036854775807 - 2, 'x', 0, 1.0, 20)",
        ] {
            let err = s.execute(sql).unwrap_err();
            assert!(err.message().contains("overflow"), "{sql}: got {err}");
        }
    }

    #[test]
    fn matview_body_errors_are_clear() {
        let mut s = session();
        for (sql, needle) in [
            (
                "create materialized view x as select dno from emp group by dno",
                "no aggregates",
            ),
            (
                "create materialized view x(a) as select sum(sal) from emp group by dno",
                "must appear in the select list",
            ),
            (
                "create materialized view x(d, t) as select dno, sum(sal) from emp \
                 group by dno having sum(sal) > 1",
                "HAVING",
            ),
        ] {
            let err = s.execute(sql).unwrap_err();
            assert!(err.message().contains(needle), "{sql}: got {err}");
        }
        let err = s
            .execute("insert into emp values (1, bogus, 2, 3.0, 4)")
            .unwrap_err();
        assert!(err.message().contains("literal"), "{err}");
        let err = s.execute("refresh materialized view ghost").unwrap_err();
        assert!(err.message().contains("unknown materialized view"));
    }
}

#[cfg(test)]
mod dml_tests {
    use super::*;
    use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

    fn session() -> Session {
        Session::new(
            gen_empdept(&EmpDeptConfig {
                n_depts: 4,
                emps_per_dept: 6,
                young_fraction: 0.5,
                seed: 7,
                ..Default::default()
            })
            .unwrap(),
        )
    }

    fn sorted_rows(r: &SqlResult) -> Vec<String> {
        let mut v: Vec<String> = r.rows.iter().map(|t| t.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn delete_removes_rows_and_maintains_views() {
        let mut s = session();
        s.execute(
            "create materialized view dsal(dno, total, n) as \
             select dno, sum(sal), count(*) from emp group by dno",
        )
        .unwrap();
        let st = s.execute("delete from emp where dno = 2").unwrap();
        let msg = st.rows[0].get(0).to_string();
        assert!(msg.contains("deleted 6 row(s)"), "{msg}");
        assert!(msg.contains("18 remaining"), "{msg}");
        assert!(msg.contains("maintained views: dsal"), "{msg}");
        let meta = s.catalog().matview("dsal").unwrap();
        assert!(!meta.is_stale(s.catalog()));

        // Extent answers agree with recomputing from base data, and the
        // emptied group's extent row is gone.
        let via_mv = s
            .execute("select dno, count(*) from emp group by dno")
            .unwrap();
        s.config.use_matviews = false;
        let inlined = s
            .execute("select dno, count(*) from emp group by dno")
            .unwrap();
        assert_eq!(sorted_rows(&via_mv), sorted_rows(&inlined));
        assert_eq!(via_mv.rows.len(), 3);
    }

    #[test]
    fn update_rewrites_rows_and_maintains_views() {
        let mut s = session();
        s.execute(
            "create materialized view dsal(dno, total, n) as \
             select dno, sum(sal), count(*) from emp group by dno",
        )
        .unwrap();
        // Move every young employee of dept 1 into dept 3 with a raise
        // computed from the OLD row.
        let st = s
            .execute("update emp set dno = 3, sal = sal + 100.0 where dno = 1 and age < 30")
            .unwrap();
        let msg = st.rows[0].get(0).to_string();
        assert!(msg.contains("updated"), "{msg}");
        assert!(msg.contains("maintained views: dsal"), "{msg}");
        let via_mv = s
            .execute("select dno, sum(sal), count(*) from emp group by dno")
            .unwrap();
        s.config.use_matviews = false;
        let inlined = s
            .execute("select dno, sum(sal), count(*) from emp group by dno")
            .unwrap();
        assert_eq!(sorted_rows(&via_mv), sorted_rows(&inlined));
    }

    #[test]
    fn update_without_where_touches_every_row() {
        let mut s = session();
        let st = s.execute("update emp set age = age + 1").unwrap();
        let msg = st.rows[0].get(0).to_string();
        assert!(msg.contains("updated 24 row(s)"), "{msg}");
    }

    #[test]
    fn dml_binding_errors_are_clear() {
        let mut s = session();
        for (sql, needle) in [
            ("delete from ghost where eno = 1", "unknown table"),
            ("delete from emp where bogus = 1", "bogus"),
            ("update emp set bogus = 1", "bogus"),
            ("update emp set sal = 1.0, sal = 2.0", "SET more than once"),
            (
                "update emp set sal = sum(sal)",
                "must not contain aggregates",
            ),
            ("update emp set sal = 1.0 where dept.dno = 1", "dept"),
        ] {
            let err = s.execute(sql).unwrap_err();
            assert!(err.message().contains(needle), "{sql}: got {err}");
        }
    }

    #[test]
    fn dml_scans_are_charged_against_the_row_budget() {
        let mut s = session();
        s.limits = ResourceLimits::unlimited().with_max_rows(3);
        let err = s.execute("delete from emp where age < 30").unwrap_err();
        assert_eq!(err.kind(), "resource-exhausted");
        let err = s
            .execute("update emp set sal = 0.0 where age < 30")
            .unwrap_err();
        assert_eq!(err.kind(), "resource-exhausted");
        // The budget abort left the table untouched.
        assert_eq!(s.catalog().get("emp").unwrap().rows().len(), 24);
    }

    #[test]
    fn subscribers_see_consolidated_dml_rounds() {
        let mut s = session();
        s.execute(
            "create materialized view dsal(dno, total, n) as \
             select dno, sum(sal), count(*) from emp group by dno",
        )
        .unwrap();
        let subs = s.subs.clone();
        subs.subscribe("repl", "dsal");
        s.execute("delete from emp where dno = 0").unwrap();
        let events = subs.drain("repl");
        assert_eq!(events.len(), 1, "{events:?}");
        assert!(
            matches!(&events[0], aggview_executor::ViewEvent::Deleted { row, .. }
                     if row.get(0) == &aggview_common::Value::Int(0)),
            "{events:?}"
        );
    }
}

#[cfg(test)]
mod durable_tests {
    use super::*;
    use aggview_common::{DataType, Schema};
    use aggview_storage::Table;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("aggview-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn emp_table() -> std::sync::Arc<Table> {
        Table::builder(
            "emp",
            Schema::of(&[
                ("eno", DataType::Int),
                ("dno", DataType::Int),
                ("sal", DataType::Float),
            ]),
        )
        .primary_key(&["eno"])
        .unwrap()
        .build()
        .unwrap()
    }

    #[test]
    fn durable_session_survives_reopen_and_checkpoint() {
        let dir = tmpdir("roundtrip");
        {
            let mut s = Session::open(&dir).unwrap();
            assert!(s.is_durable());
            s.catalog().add(emp_table()).unwrap();
            s.execute("insert into emp values (1, 0, 10.0)").unwrap();
            s.execute(
                "create materialized view dsal(dno, total) as \
                 select dno, sum(sal) from emp group by dno",
            )
            .unwrap();
            s.execute("insert into emp values (2, 0, 5.0)").unwrap();
        } // session dropped without any shutdown ceremony — the WAL has it all
        let mut s2 = Session::open(&dir).unwrap();
        let r = s2.execute("select eno from emp order by eno").unwrap();
        assert_eq!(r.rows.len(), 2);
        let meta = s2.catalog().matview("dsal").unwrap();
        assert!(
            !meta.is_stale(s2.catalog()),
            "maintained view must recover fresh: versions restored exactly"
        );
        s2.checkpoint().unwrap();
        drop(s2);
        let mut s3 = Session::open(&dir).unwrap();
        assert_eq!(s3.catalog().get("emp").unwrap().len(), 2);
        let r = s3.execute("select eno from emp order by eno").unwrap();
        assert_eq!(r.rows.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_memory_session_rejects_checkpoint() {
        let s = Session::new(Catalog::new());
        assert!(!s.is_durable());
        assert_eq!(s.checkpoint().unwrap_err().kind(), "catalog");
    }
}

#[cfg(test)]
mod order_limit_tests {
    use super::*;
    use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

    fn session() -> Session {
        Session::new(
            gen_empdept(&EmpDeptConfig {
                n_depts: 5,
                emps_per_dept: 6,
                young_fraction: 0.2,
                low_budget_fraction: 0.3,
                seed: 51,
            })
            .unwrap(),
        )
    }

    #[test]
    fn order_by_ascending_and_descending() {
        let mut s = session();
        let asc = s.execute("select eno, sal from emp order by sal").unwrap();
        let desc = s
            .execute("select eno, sal from emp order by sal desc")
            .unwrap();
        let sals = |r: &SqlResult| -> Vec<f64> {
            r.rows.iter().map(|t| t.get(1).as_f64().unwrap()).collect()
        };
        let a = sals(&asc);
        let d = sals(&desc);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(d.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(a.len(), d.len());
    }

    #[test]
    fn order_by_alias_and_multi_key() {
        let mut s = session();
        let r = s
            .execute("select dno, count(*) as n from emp group by dno order by n desc, dno")
            .unwrap();
        assert_eq!(r.rows.len(), 5);
        // All counts equal → tie-broken by dno ascending.
        let dnos: Vec<i64> = r.rows.iter().map(|t| t.get(0).as_i64().unwrap()).collect();
        assert!(dnos.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn limit_truncates() {
        let mut s = session();
        let r = s
            .execute("select eno from emp order by eno limit 3")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        let unlimited = s.execute("select eno from emp limit 1000").unwrap();
        assert_eq!(unlimited.rows.len(), 30);
    }

    #[test]
    fn order_by_unknown_column_errors() {
        let mut s = session();
        let err = s.execute("select eno from emp order by bogus").unwrap_err();
        assert!(err.message().contains("ORDER BY"));
        assert!(s.execute("select eno from emp limit -1").is_err());
    }
}
