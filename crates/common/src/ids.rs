//! Identity of relations, columns, and aggregates across query blocks.
//!
//! A query in the paper's canonical form (Figure 3) is a join among base
//! tables `B1..Bn` and aggregate views `Q1..Qm`, possibly under a top
//! group-by `G0`. Because the pull-up transformation *moves* group-by
//! operators across joins while preserving which logical aggregate is
//! being computed, columns need an identity that is independent of where
//! in the operator tree they are produced:
//!
//! * a base column is identified by the relation *instance* it comes from
//!   ([`ColRef`]) — instances matter because the same table may occur
//!   several times (`emp e1, emp e2` in the paper's Example 1);
//! * an aggregated column is identified by the group-by operator that
//!   logically defines it ([`AggRef`]), regardless of where that group-by
//!   ends up in a particular execution plan.

use std::fmt;

/// A relation *instance* within one query: the `i`-th entry of the
/// query's FROM-universe (base-table occurrences, in binder order).
///
/// `RelId`s index into per-query side tables mapping instance → base
/// table, and double as bit positions in the optimizer's subset bitsets,
/// so a query is limited to 64 relation instances (far beyond anything
/// the DP enumerator can explore anyway).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl RelId {
    /// Bit mask for subset bitsets.
    pub fn bit(self) -> u64 {
        1u64 << self.0
    }

    /// Index form for slice access.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifies a group-by operator of the canonical query: either one of
/// the aggregate views `Q1..Qm` or the top-level `G0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ViewId {
    /// The `i`-th aggregate view of the query (0-based).
    View(u32),
    /// The query's top-level group-by `G0`.
    Top,
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewId::View(i) => write!(f, "Q{}", i + 1),
            ViewId::Top => write!(f, "G0"),
        }
    }
}

/// A column of a base relation instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColRef {
    /// Which relation instance.
    pub rel: RelId,
    /// Column ordinal within that instance's base-table schema.
    pub col: u32,
}

impl ColRef {
    pub fn new(rel: RelId, col: usize) -> ColRef {
        ColRef {
            rel,
            col: col as u32,
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.c{}", self.rel, self.col)
    }
}

/// An aggregated column: the `idx`-th aggregate computed by group-by
/// operator `owner`.
///
/// Example: in the paper's `A1(dno, Asal)` view, `Asal = avg(e2.sal)` is
/// `AggRef { owner: ViewId::View(0), idx: 0 }` — whether the AVG is
/// evaluated inside the view (traditional plan) or deferred past the join
/// by pull-up, the reference is stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AggRef {
    /// The group-by operator that defines this aggregate.
    pub owner: ViewId,
    /// Ordinal among that operator's aggregate list.
    pub idx: u32,
}

impl AggRef {
    pub fn new(owner: ViewId, idx: usize) -> AggRef {
        AggRef {
            owner,
            idx: idx as u32,
        }
    }
}

impl fmt::Display for AggRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#a{}", self.owner, self.idx)
    }
}

/// A component of a decomposed (partial) aggregate state.
///
/// The *simple coalescing grouping* transformation (paper Section 4.2)
/// adds a group-by `G2` below a join that computes **partial** aggregate
/// states (e.g. `(sum, count)` for AVG); the original group-by `G1`
/// later coalesces them. Partial state components travel through join
/// operators like ordinary columns, so they need data-flow identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartRef {
    /// The logical aggregate being decomposed.
    pub agg: AggRef,
    /// Which component of its partial state (0-based; e.g. AVG has
    /// component 0 = running sum, component 1 = running count).
    pub part: u32,
}

impl fmt::Display for PartRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}~p{}", self.agg, self.part)
    }
}

/// A data-flow column in a plan: a base column, an aggregate output, or
/// one component of a partial aggregate state. Projection lists,
/// grouping-column lists, and operator output descriptions are all
/// `Vec<Col>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Col {
    /// Column of a base relation instance.
    Base(ColRef),
    /// Output of a group-by operator's aggregate list.
    Agg(AggRef),
    /// Component of a partial (decomposed) aggregate state.
    Part(PartRef),
}

impl Col {
    /// Convenience constructor for a base column.
    pub fn base(rel: RelId, col: usize) -> Col {
        Col::Base(ColRef::new(rel, col))
    }

    /// Convenience constructor for an aggregate column.
    pub fn agg(owner: ViewId, idx: usize) -> Col {
        Col::Agg(AggRef::new(owner, idx))
    }

    /// Convenience constructor for a partial-state component column.
    pub fn part(agg: AggRef, part: usize) -> Col {
        Col::Part(PartRef {
            agg,
            part: part as u32,
        })
    }

    /// The base column, if this is one.
    pub fn as_base(&self) -> Option<ColRef> {
        match self {
            Col::Base(c) => Some(*c),
            _ => None,
        }
    }

    /// The aggregate reference, if this is one.
    pub fn as_agg(&self) -> Option<AggRef> {
        match self {
            Col::Agg(a) => Some(*a),
            _ => None,
        }
    }

    /// True if this is an aggregate output column.
    pub fn is_agg(&self) -> bool {
        matches!(self, Col::Agg(_))
    }

    /// True if this is a partial-aggregate state component.
    pub fn is_part(&self) -> bool {
        matches!(self, Col::Part(_))
    }
}

impl fmt::Display for Col {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Col::Base(c) => c.fmt(f),
            Col::Agg(a) => a.fmt(f),
            Col::Part(p) => p.fmt(f),
        }
    }
}

impl From<ColRef> for Col {
    fn from(c: ColRef) -> Col {
        Col::Base(c)
    }
}

impl From<AggRef> for Col {
    fn from(a: AggRef) -> Col {
        Col::Agg(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relid_bits_are_disjoint() {
        let bits: u64 = (0..8).map(|i| RelId(i).bit()).fold(0, |a, b| {
            assert_eq!(a & b, 0, "bit overlap");
            a | b
        });
        assert_eq!(bits, 0xff);
    }

    #[test]
    fn col_accessors() {
        let b = Col::base(RelId(2), 3);
        let a = Col::agg(ViewId::View(0), 1);
        assert_eq!(b.as_base(), Some(ColRef::new(RelId(2), 3)));
        assert_eq!(b.as_agg(), None);
        assert_eq!(a.as_agg(), Some(AggRef::new(ViewId::View(0), 1)));
        assert!(a.is_agg());
        assert!(!b.is_agg());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Col::base(RelId(1), 0).to_string(), "r1.c0");
        assert_eq!(Col::agg(ViewId::View(0), 0).to_string(), "Q1#a0");
        assert_eq!(Col::agg(ViewId::Top, 2).to_string(), "G0#a2");
    }

    #[test]
    fn conversions_into_col() {
        let c: Col = ColRef::new(RelId(0), 1).into();
        assert!(!c.is_agg());
        let a: Col = AggRef::new(ViewId::Top, 0).into();
        assert!(a.is_agg());
    }

    #[test]
    fn ordering_is_stable_for_sorting() {
        let mut v = [
            Col::agg(ViewId::Top, 0),
            Col::base(RelId(1), 1),
            Col::base(RelId(0), 2),
        ];
        v.sort();
        assert_eq!(v[0], Col::base(RelId(0), 2));
        assert_eq!(v[1], Col::base(RelId(1), 1));
    }
}
