//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, AggViewError>;

/// Errors produced anywhere in the aggview workspace.
///
/// Variants are grouped by subsystem so call sites can match coarsely
/// (e.g. a REPL distinguishing parse errors from execution errors) while
/// the message carries the detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggViewError {
    /// Lexing or parsing of SQL text failed.
    Parse(String),
    /// Name resolution / semantic analysis failed (unknown table, ambiguous
    /// column, aggregate misuse, ...).
    Bind(String),
    /// A schema-level invariant was violated (arity mismatch, type
    /// mismatch, duplicate column, ...).
    Schema(String),
    /// Catalog lookup failed or a catalog invariant was violated.
    Catalog(String),
    /// A plan was structurally invalid (dangling column reference,
    /// non-legal operator tree in the paper's sense, ...).
    Plan(String),
    /// A plan failed static integrity analysis: the `PlanAnalyzer`
    /// found a type error, a violated transformation invariant
    /// (pull-up key rule, invariant-grouping condition, coalescing
    /// merge stage), or an inconsistent cost annotation. Raised by the
    /// pre-execution gate.
    PlanInvalid(String),
    /// A structurally valid plan was rejected by static admission
    /// control before execution: the dataflow pass derived a guaranteed
    /// lower bound on its resource use that already exceeds the
    /// governor's budget, so running it could only end in
    /// [`AggViewError::ResourceExhausted`] after wasted work. Never
    /// retryable — the bound is deterministic.
    PlanInadmissible(String),
    /// Runtime evaluation failure (division by zero, type error at
    /// evaluation time, ...).
    Exec(String),
    /// The optimizer could not produce a plan (e.g. empty relation set).
    Optimize(String),
    /// Work was cooperatively cancelled via a `CancellationToken`.
    Cancelled(String),
    /// A resource budget (deadline, row/byte budget, optimizer search
    /// budget) was exhausted before the work completed.
    ResourceExhausted(String),
    /// A transient infrastructure failure (injected fault, flaky scan).
    /// Retryable: retrying may succeed.
    Transient(String),
    /// An IO operation failed (WAL append, fsync, snapshot write or
    /// rename). IO failures are treated as transient — the device may
    /// recover — so this class is retryable. Durability code rolls the
    /// affected file back to its last committed prefix before
    /// surfacing the error, so a retry starts from a clean boundary.
    Io(String),
    /// On-disk state failed validation: a CRC-checked WAL record or
    /// snapshot decoded to garbage. Never retryable — corruption does
    /// not heal — and carries the byte offset and record index so the
    /// damaged region can be located. (A *torn tail* — an incomplete
    /// final WAL record from a crash mid-append — is not corruption;
    /// recovery silently truncates it.)
    Corrupt {
        /// Byte offset of the damaged record within its file.
        offset: u64,
        /// 0-based index of the damaged record.
        record: u64,
        /// What failed to validate.
        message: String,
    },
}

impl AggViewError {
    /// Short subsystem label, useful for log prefixes and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            AggViewError::Parse(_) => "parse",
            AggViewError::Bind(_) => "bind",
            AggViewError::Schema(_) => "schema",
            AggViewError::Catalog(_) => "catalog",
            AggViewError::Plan(_) => "plan",
            AggViewError::PlanInvalid(_) => "plan-invalid",
            AggViewError::PlanInadmissible(_) => "plan-inadmissible",
            AggViewError::Exec(_) => "exec",
            AggViewError::Optimize(_) => "optimize",
            AggViewError::Cancelled(_) => "cancelled",
            AggViewError::ResourceExhausted(_) => "resource-exhausted",
            AggViewError::Transient(_) => "transient",
            AggViewError::Io(_) => "io",
            AggViewError::Corrupt { .. } => "corrupt",
        }
    }

    /// True when retrying the same work may succeed.
    ///
    /// [`AggViewError::Transient`] and [`AggViewError::Io`] qualify:
    /// flaky infrastructure and failed IO may succeed on a second
    /// attempt. Cancellation and budget exhaustion are deliberate
    /// outcomes, [`AggViewError::Corrupt`] describes damage that will
    /// not heal, and the remaining variants are deterministic failures
    /// that would simply recur.
    pub fn is_retryable(&self) -> bool {
        matches!(self, AggViewError::Transient(_) | AggViewError::Io(_))
    }

    /// Rewrite the message in place, preserving the variant (used by
    /// the session's retry loop to append the attempt count without
    /// laundering the error class).
    pub fn map_message(self, f: impl FnOnce(String) -> String) -> AggViewError {
        match self {
            AggViewError::Parse(m) => AggViewError::Parse(f(m)),
            AggViewError::Bind(m) => AggViewError::Bind(f(m)),
            AggViewError::Schema(m) => AggViewError::Schema(f(m)),
            AggViewError::Catalog(m) => AggViewError::Catalog(f(m)),
            AggViewError::Plan(m) => AggViewError::Plan(f(m)),
            AggViewError::PlanInvalid(m) => AggViewError::PlanInvalid(f(m)),
            AggViewError::PlanInadmissible(m) => AggViewError::PlanInadmissible(f(m)),
            AggViewError::Exec(m) => AggViewError::Exec(f(m)),
            AggViewError::Optimize(m) => AggViewError::Optimize(f(m)),
            AggViewError::Cancelled(m) => AggViewError::Cancelled(f(m)),
            AggViewError::ResourceExhausted(m) => AggViewError::ResourceExhausted(f(m)),
            AggViewError::Transient(m) => AggViewError::Transient(f(m)),
            AggViewError::Io(m) => AggViewError::Io(f(m)),
            AggViewError::Corrupt {
                offset,
                record,
                message,
            } => AggViewError::Corrupt {
                offset,
                record,
                message: f(message),
            },
        }
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            AggViewError::Parse(m)
            | AggViewError::Bind(m)
            | AggViewError::Schema(m)
            | AggViewError::Catalog(m)
            | AggViewError::Plan(m)
            | AggViewError::PlanInvalid(m)
            | AggViewError::PlanInadmissible(m)
            | AggViewError::Exec(m)
            | AggViewError::Optimize(m)
            | AggViewError::Cancelled(m)
            | AggViewError::ResourceExhausted(m)
            | AggViewError::Transient(m)
            | AggViewError::Io(m)
            | AggViewError::Corrupt { message: m, .. } => m,
        }
    }
}

impl fmt::Display for AggViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggViewError::Corrupt { offset, record, .. } => write!(
                f,
                "{} error: {} (record {record} at byte offset {offset})",
                self.kind(),
                self.message()
            ),
            _ => write!(f, "{} error: {}", self.kind(), self.message()),
        }
    }
}

impl std::error::Error for AggViewError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = AggViewError::Parse("unexpected token `;`".into());
        assert_eq!(e.to_string(), "parse error: unexpected token `;`");
        assert_eq!(e.kind(), "parse");
        assert_eq!(e.message(), "unexpected token `;`");
    }

    #[test]
    fn kinds_are_distinct_per_variant() {
        let errs = [
            AggViewError::Parse(String::new()),
            AggViewError::Bind(String::new()),
            AggViewError::Schema(String::new()),
            AggViewError::Catalog(String::new()),
            AggViewError::Plan(String::new()),
            AggViewError::PlanInvalid(String::new()),
            AggViewError::PlanInadmissible(String::new()),
            AggViewError::Exec(String::new()),
            AggViewError::Optimize(String::new()),
            AggViewError::Cancelled(String::new()),
            AggViewError::ResourceExhausted(String::new()),
            AggViewError::Transient(String::new()),
            AggViewError::Io(String::new()),
            AggViewError::Corrupt {
                offset: 0,
                record: 0,
                message: String::new(),
            },
        ];
        let mut kinds: Vec<_> = errs.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), errs.len());
    }

    #[test]
    fn only_transient_and_io_are_retryable() {
        assert!(AggViewError::Transient("scan glitch".into()).is_retryable());
        assert!(AggViewError::Io("fsync failed".into()).is_retryable());
        for e in [
            AggViewError::Parse(String::new()),
            AggViewError::Exec(String::new()),
            AggViewError::PlanInvalid(String::new()),
            AggViewError::PlanInadmissible(String::new()),
            AggViewError::Cancelled(String::new()),
            AggViewError::ResourceExhausted(String::new()),
            AggViewError::Corrupt {
                offset: 16,
                record: 2,
                message: "bad crc".into(),
            },
        ] {
            assert!(!e.is_retryable(), "{} must not be retryable", e.kind());
        }
    }

    #[test]
    fn corrupt_carries_offset_and_record() {
        let e = AggViewError::Corrupt {
            offset: 128,
            record: 3,
            message: "crc mismatch".into(),
        };
        assert_eq!(e.kind(), "corrupt");
        assert_eq!(e.message(), "crc mismatch");
        let shown = e.to_string();
        assert!(shown.contains("record 3"), "{shown}");
        assert!(shown.contains("offset 128"), "{shown}");
    }

    #[test]
    fn map_message_preserves_variant() {
        let e = AggViewError::Transient("glitch".into()).map_message(|m| format!("{m} (retried)"));
        assert_eq!(e.kind(), "transient");
        assert_eq!(e.message(), "glitch (retried)");
        let c = AggViewError::Corrupt {
            offset: 1,
            record: 2,
            message: "bad".into(),
        }
        .map_message(|m| format!("{m}!"));
        assert_eq!(
            c,
            AggViewError::Corrupt {
                offset: 1,
                record: 2,
                message: "bad!".into()
            }
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&AggViewError::Exec("boom".into()));
    }
}
