//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, AggViewError>;

/// Errors produced anywhere in the aggview workspace.
///
/// Variants are grouped by subsystem so call sites can match coarsely
/// (e.g. a REPL distinguishing parse errors from execution errors) while
/// the message carries the detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggViewError {
    /// Lexing or parsing of SQL text failed.
    Parse(String),
    /// Name resolution / semantic analysis failed (unknown table, ambiguous
    /// column, aggregate misuse, ...).
    Bind(String),
    /// A schema-level invariant was violated (arity mismatch, type
    /// mismatch, duplicate column, ...).
    Schema(String),
    /// Catalog lookup failed or a catalog invariant was violated.
    Catalog(String),
    /// A plan was structurally invalid (dangling column reference,
    /// non-legal operator tree in the paper's sense, ...).
    Plan(String),
    /// A plan failed static integrity analysis: the `PlanAnalyzer`
    /// found a type error, a violated transformation invariant
    /// (pull-up key rule, invariant-grouping condition, coalescing
    /// merge stage), or an inconsistent cost annotation. Raised by the
    /// pre-execution gate.
    PlanInvalid(String),
    /// Runtime evaluation failure (division by zero, type error at
    /// evaluation time, ...).
    Exec(String),
    /// The optimizer could not produce a plan (e.g. empty relation set).
    Optimize(String),
    /// Work was cooperatively cancelled via a `CancellationToken`.
    Cancelled(String),
    /// A resource budget (deadline, row/byte budget, optimizer search
    /// budget) was exhausted before the work completed.
    ResourceExhausted(String),
    /// A transient infrastructure failure (injected fault, flaky scan).
    /// The only retryable class: retrying may succeed.
    Transient(String),
}

impl AggViewError {
    /// Short subsystem label, useful for log prefixes and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            AggViewError::Parse(_) => "parse",
            AggViewError::Bind(_) => "bind",
            AggViewError::Schema(_) => "schema",
            AggViewError::Catalog(_) => "catalog",
            AggViewError::Plan(_) => "plan",
            AggViewError::PlanInvalid(_) => "plan-invalid",
            AggViewError::Exec(_) => "exec",
            AggViewError::Optimize(_) => "optimize",
            AggViewError::Cancelled(_) => "cancelled",
            AggViewError::ResourceExhausted(_) => "resource-exhausted",
            AggViewError::Transient(_) => "transient",
        }
    }

    /// True when retrying the same work may succeed.
    ///
    /// Only [`AggViewError::Transient`] qualifies: cancellation and
    /// budget exhaustion are deliberate outcomes, and the remaining
    /// variants are deterministic failures that would simply recur.
    pub fn is_retryable(&self) -> bool {
        matches!(self, AggViewError::Transient(_))
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            AggViewError::Parse(m)
            | AggViewError::Bind(m)
            | AggViewError::Schema(m)
            | AggViewError::Catalog(m)
            | AggViewError::Plan(m)
            | AggViewError::PlanInvalid(m)
            | AggViewError::Exec(m)
            | AggViewError::Optimize(m)
            | AggViewError::Cancelled(m)
            | AggViewError::ResourceExhausted(m)
            | AggViewError::Transient(m) => m,
        }
    }
}

impl fmt::Display for AggViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind(), self.message())
    }
}

impl std::error::Error for AggViewError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = AggViewError::Parse("unexpected token `;`".into());
        assert_eq!(e.to_string(), "parse error: unexpected token `;`");
        assert_eq!(e.kind(), "parse");
        assert_eq!(e.message(), "unexpected token `;`");
    }

    #[test]
    fn kinds_are_distinct_per_variant() {
        let errs = [
            AggViewError::Parse(String::new()),
            AggViewError::Bind(String::new()),
            AggViewError::Schema(String::new()),
            AggViewError::Catalog(String::new()),
            AggViewError::Plan(String::new()),
            AggViewError::PlanInvalid(String::new()),
            AggViewError::Exec(String::new()),
            AggViewError::Optimize(String::new()),
            AggViewError::Cancelled(String::new()),
            AggViewError::ResourceExhausted(String::new()),
            AggViewError::Transient(String::new()),
        ];
        let mut kinds: Vec<_> = errs.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), errs.len());
    }

    #[test]
    fn only_transient_is_retryable() {
        assert!(AggViewError::Transient("scan glitch".into()).is_retryable());
        for e in [
            AggViewError::Parse(String::new()),
            AggViewError::Exec(String::new()),
            AggViewError::PlanInvalid(String::new()),
            AggViewError::Cancelled(String::new()),
            AggViewError::ResourceExhausted(String::new()),
        ] {
            assert!(!e.is_retryable(), "{} must not be retryable", e.kind());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&AggViewError::Exec("boom".into()));
    }
}
