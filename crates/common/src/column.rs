//! Typed column vectors — the storage unit of columnar batches.
//!
//! A [`ColumnVec`] stores one column of a batch as a contiguous typed
//! vector (`Vec<i64>`, `Vec<f64>`, `Vec<Arc<str>>`, `Vec<bool>`), so hot
//! kernels run tight per-column loops over primitive slices instead of
//! matching a [`Value`] enum per cell. Columns whose values do not all
//! share one runtime type degrade to [`ColumnVec::Mixed`], which keeps
//! the row-at-a-time `Value` representation — correctness never depends
//! on a column being typed, only speed does.
//!
//! The paper's engine has no NULLs (Section 2), so columns carry no
//! validity bitmap; selection vectors (`Vec<u32>` of surviving row
//! indices) play that role for filtered batches instead.

use crate::hash::{fx_mix, fx_str, fx_value};
use crate::tuple::Tuple;
use crate::value::{DataType, Value};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of typed→Mixed column demotions.
///
/// A demotion is silent at the call site ([`ColumnVec::push_value`] and
/// [`ColumnVec::from_tuples_col`] just keep going), so this counter is
/// the only way to observe that a column the planner certified as typed
/// actually fell back to the `Value`-enum representation at runtime.
/// The executor snapshots it around each query to attribute demotions
/// per execution; under concurrent queries the attribution is
/// best-effort (the count itself never under-reports).
static MIXED_DEMOTIONS: AtomicU64 = AtomicU64::new(0);

/// Monotone process-wide demotion count (see [`ColumnVec::Mixed`]).
pub fn mixed_demotions() -> u64 {
    MIXED_DEMOTIONS.load(Ordering::Relaxed)
}

/// One column of a batch, stored as a typed vector when possible.
#[derive(Debug, Clone)]
pub enum ColumnVec {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<Arc<str>>),
    Bool(Vec<bool>),
    /// Fallback for columns without a single runtime type.
    Mixed(Vec<Value>),
}

impl ColumnVec {
    /// An empty column of the given declared type.
    pub fn with_type(ty: DataType) -> ColumnVec {
        match ty {
            DataType::Int => ColumnVec::Int(Vec::new()),
            DataType::Float => ColumnVec::Float(Vec::new()),
            DataType::Str => ColumnVec::Str(Vec::new()),
            DataType::Bool => ColumnVec::Bool(Vec::new()),
        }
    }

    /// An empty column of the same representation as `self`.
    pub fn empty_like(&self) -> ColumnVec {
        match self {
            ColumnVec::Int(_) => ColumnVec::Int(Vec::new()),
            ColumnVec::Float(_) => ColumnVec::Float(Vec::new()),
            ColumnVec::Str(_) => ColumnVec::Str(Vec::new()),
            ColumnVec::Bool(_) => ColumnVec::Bool(Vec::new()),
            ColumnVec::Mixed(_) => ColumnVec::Mixed(Vec::new()),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int(v) => v.len(),
            ColumnVec::Float(v) => v.len(),
            ColumnVec::Str(v) => v.len(),
            ColumnVec::Bool(v) => v.len(),
            ColumnVec::Mixed(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `i` as an owned [`Value`] (cheap: strings are `Arc`).
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            ColumnVec::Int(v) => Value::Int(v[i]),
            ColumnVec::Float(v) => Value::Float(v[i]),
            ColumnVec::Str(v) => Value::Str(v[i].clone()),
            ColumnVec::Bool(v) => Value::Bool(v[i]),
            ColumnVec::Mixed(v) => v[i].clone(),
        }
    }

    /// Byte width of the value at `i`, matching [`Value::width`].
    pub fn width_at(&self, i: usize) -> usize {
        match self {
            ColumnVec::Int(_) | ColumnVec::Float(_) => 8,
            ColumnVec::Str(v) => v[i].len().max(1),
            ColumnVec::Bool(_) => 1,
            ColumnVec::Mixed(v) => v[i].width(),
        }
    }

    /// Total byte width of the column (the sum of [`Value::width`] over
    /// every entry — identical to summing the widths of the tuples the
    /// column came from).
    pub fn total_bytes(&self) -> u64 {
        match self {
            ColumnVec::Int(v) => 8 * v.len() as u64,
            ColumnVec::Float(v) => 8 * v.len() as u64,
            ColumnVec::Str(v) => v.iter().map(|s| s.len().max(1) as u64).sum(),
            ColumnVec::Bool(v) => v.len() as u64,
            ColumnVec::Mixed(v) => v.iter().map(|x| x.width() as u64).sum(),
        }
    }

    /// Transpose tuple position `p` of `rows` into a column declared as
    /// `ty`. Column-major: the variant dispatch happens once per column
    /// and the typed sweep copies payloads into a pre-reserved vector;
    /// the first value that does not match the declared type (only
    /// possible on ill-typed data) demotes the column to `Mixed` and the
    /// remainder goes through [`ColumnVec::push_value`], producing
    /// exactly what a row-major `push_value` loop would.
    pub fn from_tuples_col(rows: &[Tuple], p: usize, ty: DataType) -> ColumnVec {
        let mut col = ColumnVec::with_type(ty);
        let typed = match &mut col {
            ColumnVec::Int(out) => fill_typed(rows, p, out, |v| match v {
                Value::Int(x) => Some(*x),
                _ => None,
            }),
            ColumnVec::Float(out) => fill_typed(rows, p, out, |v| match v {
                Value::Float(x) => Some(*x),
                _ => None,
            }),
            ColumnVec::Str(out) => fill_typed(rows, p, out, |v| match v {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            }),
            ColumnVec::Bool(out) => fill_typed(rows, p, out, |v| match v {
                Value::Bool(b) => Some(*b),
                _ => None,
            }),
            ColumnVec::Mixed(out) => {
                out.extend(rows.iter().map(|r| r.get(p).clone()));
                rows.len()
            }
        };
        for row in &rows[typed..] {
            col.push_value(row.get(p).clone());
        }
        col
    }

    /// Append a value, degrading to `Mixed` on a type mismatch.
    pub fn push_value(&mut self, v: Value) {
        match (&mut *self, v) {
            (ColumnVec::Int(xs), Value::Int(x)) => xs.push(x),
            (ColumnVec::Float(xs), Value::Float(x)) => xs.push(x),
            (ColumnVec::Str(xs), Value::Str(s)) => xs.push(s),
            (ColumnVec::Bool(xs), Value::Bool(b)) => xs.push(b),
            (ColumnVec::Mixed(xs), v) => xs.push(v),
            (_, v) => {
                self.make_mixed();
                if let ColumnVec::Mixed(xs) = self {
                    xs.push(v);
                }
            }
        }
    }

    fn make_mixed(&mut self) {
        if matches!(self, ColumnVec::Mixed(_)) {
            return;
        }
        MIXED_DEMOTIONS.fetch_add(1, Ordering::Relaxed);
        let vals: Vec<Value> = (0..self.len()).map(|i| self.value_at(i)).collect();
        *self = ColumnVec::Mixed(vals);
    }

    /// Append `src[idx]` for every index in `sel`, returning the byte
    /// width appended. This is the late-materialization gather: output
    /// columns are assembled from selection vectors without ever building
    /// intermediate row tuples.
    pub fn append_gather(&mut self, src: &ColumnVec, sel: &[u32]) -> u64 {
        match (&mut *self, src) {
            (ColumnVec::Int(out), ColumnVec::Int(xs)) => {
                out.extend(sel.iter().map(|&i| xs[i as usize]));
                8 * sel.len() as u64
            }
            (ColumnVec::Float(out), ColumnVec::Float(xs)) => {
                out.extend(sel.iter().map(|&i| xs[i as usize]));
                8 * sel.len() as u64
            }
            (ColumnVec::Str(out), ColumnVec::Str(xs)) => {
                let mut w = 0u64;
                out.extend(sel.iter().map(|&i| {
                    let s = &xs[i as usize];
                    w += s.len().max(1) as u64;
                    s.clone()
                }));
                w
            }
            (ColumnVec::Bool(out), ColumnVec::Bool(xs)) => {
                out.extend(sel.iter().map(|&i| xs[i as usize]));
                sel.len() as u64
            }
            _ => {
                let mut w = 0u64;
                for &i in sel {
                    w += src.width_at(i as usize) as u64;
                    self.push_value(src.value_at(i as usize));
                }
                w
            }
        }
    }

    /// Append the contiguous range `range` of `src` (the unselective
    /// fast path of a filterless scan), returning the byte width added.
    pub fn append_range(&mut self, src: &ColumnVec, range: Range<usize>) -> u64 {
        match (&mut *self, src) {
            (ColumnVec::Int(out), ColumnVec::Int(xs)) => {
                out.extend_from_slice(&xs[range.clone()]);
                8 * range.len() as u64
            }
            (ColumnVec::Float(out), ColumnVec::Float(xs)) => {
                out.extend_from_slice(&xs[range.clone()]);
                8 * range.len() as u64
            }
            (ColumnVec::Str(out), ColumnVec::Str(xs)) => {
                let mut w = 0u64;
                out.extend(xs[range].iter().map(|s| {
                    w += s.len().max(1) as u64;
                    s.clone()
                }));
                w
            }
            (ColumnVec::Bool(out), ColumnVec::Bool(xs)) => {
                out.extend_from_slice(&xs[range.clone()]);
                range.len() as u64
            }
            _ => {
                let mut w = 0u64;
                for i in range {
                    w += src.width_at(i) as u64;
                    self.push_value(src.value_at(i));
                }
                w
            }
        }
    }

    /// Append every entry of `src`, preserving order (chunk stitching).
    pub fn append_column(&mut self, src: &ColumnVec) {
        self.append_range(src, 0..src.len());
    }

    /// Value equality between `self[i]` and `other[j]` under the same
    /// cross-numeric rules as [`Value::eq`] (`Int(3) == Float(3.0)`,
    /// floats by total order, cross-type otherwise unequal).
    pub fn eq_rows(&self, i: usize, other: &ColumnVec, j: usize) -> bool {
        use std::cmp::Ordering::Equal;
        match (self, other) {
            (ColumnVec::Int(a), ColumnVec::Int(b)) => a[i] == b[j],
            (ColumnVec::Float(a), ColumnVec::Float(b)) => a[i].total_cmp(&b[j]) == Equal,
            (ColumnVec::Int(a), ColumnVec::Float(b)) => (a[i] as f64).total_cmp(&b[j]) == Equal,
            (ColumnVec::Float(a), ColumnVec::Int(b)) => a[i].total_cmp(&(b[j] as f64)) == Equal,
            (ColumnVec::Str(a), ColumnVec::Str(b)) => a[i] == b[j],
            (ColumnVec::Bool(a), ColumnVec::Bool(b)) => a[i] == b[j],
            _ => self.value_at(i) == other.value_at(j),
        }
    }

    /// Fold rows `range` of this column into the per-row hash chain
    /// `out` (`out[k]` accumulates row `range.start + k`). The chain
    /// preserves [`Value`]'s collision guarantee: equal values — across
    /// Int/Float — fold identically, whether the column is typed or
    /// `Mixed`.
    pub fn hash_fx_into(&self, range: Range<usize>, out: &mut [u64]) {
        debug_assert_eq!(range.len(), out.len());
        match self {
            ColumnVec::Int(xs) => {
                for (o, &x) in out.iter_mut().zip(&xs[range]) {
                    *o = fx_mix(fx_mix(*o, 0), (x as f64).to_bits());
                }
            }
            ColumnVec::Float(xs) => {
                for (o, &x) in out.iter_mut().zip(&xs[range]) {
                    *o = fx_mix(fx_mix(*o, 0), x.to_bits());
                }
            }
            ColumnVec::Str(xs) => {
                for (o, s) in out.iter_mut().zip(&xs[range]) {
                    *o = fx_str(*o, s);
                }
            }
            ColumnVec::Bool(xs) => {
                for (o, &b) in out.iter_mut().zip(&xs[range]) {
                    *o = fx_mix(fx_mix(*o, 2), u64::from(b));
                }
            }
            ColumnVec::Mixed(xs) => {
                for (o, v) in out.iter_mut().zip(&xs[range]) {
                    *o = fx_value(*o, v);
                }
            }
        }
    }

    /// Typed slice views, used by vectorized kernels to specialize loops.
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            ColumnVec::Int(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<&[f64]> {
        match self {
            ColumnVec::Float(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str_col(&self) -> Option<&[Arc<str>]> {
        match self {
            ColumnVec::Str(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<&[bool]> {
        match self {
            ColumnVec::Bool(v) => Some(v),
            _ => None,
        }
    }
}

/// Typed transpose sweep: extract `p` of every row while the payload
/// matches, returning how many rows were consumed (all of them for
/// well-typed data).
fn fill_typed<T>(
    rows: &[Tuple],
    p: usize,
    out: &mut Vec<T>,
    extract: impl Fn(&Value) -> Option<T>,
) -> usize {
    out.reserve(rows.len());
    for (k, row) in rows.iter().enumerate() {
        match extract(row.get(p)) {
            Some(x) => out.push(x),
            None => return k,
        }
    }
    rows.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::FX_SEED;

    #[test]
    fn typed_push_and_mixed_degradation() {
        let mut c = ColumnVec::with_type(DataType::Int);
        c.push_value(Value::Int(1));
        c.push_value(Value::Int(2));
        assert!(c.as_int().is_some());
        c.push_value(Value::str("oops"));
        assert!(c.as_int().is_none());
        assert_eq!(c.len(), 3);
        assert_eq!(c.value_at(0), Value::Int(1));
        assert_eq!(c.value_at(2), Value::str("oops"));
    }

    #[test]
    fn demotions_bump_the_process_counter() {
        let before = mixed_demotions();
        let mut c = ColumnVec::with_type(DataType::Int);
        c.push_value(Value::Int(1));
        c.push_value(Value::str("oops"));
        // Other tests may demote concurrently; the counter only grows.
        assert!(mixed_demotions() > before);
        // Already-Mixed columns never re-count.
        let mid = mixed_demotions();
        c.push_value(Value::Bool(true));
        assert_eq!(mixed_demotions(), mid);
    }

    #[test]
    fn widths_match_value_widths() {
        let mut c = ColumnVec::with_type(DataType::Str);
        c.push_value(Value::str("abcd"));
        c.push_value(Value::str(""));
        assert_eq!(c.width_at(0), 4);
        assert_eq!(c.width_at(1), 1); // empty strings charge 1, like Value::width
        assert_eq!(c.total_bytes(), 5);
        let mut m = ColumnVec::Mixed(vec![Value::Int(1), Value::Bool(true)]);
        m.push_value(Value::str("xy"));
        assert_eq!(m.total_bytes(), 8 + 1 + 2);
    }

    #[test]
    fn gather_and_range_append_preserve_values() {
        let src = ColumnVec::Float(vec![1.0, 2.0, 3.0, 4.0]);
        let mut out = src.empty_like();
        let w = out.append_gather(&src, &[3, 1]);
        assert_eq!(w, 16);
        assert_eq!(out.value_at(0), Value::Float(4.0));
        assert_eq!(out.value_at(1), Value::Float(2.0));
        let w2 = out.append_range(&src, 0..2);
        assert_eq!(w2, 16);
        assert_eq!(out.len(), 4);
        assert_eq!(out.value_at(3), Value::Float(2.0));
    }

    #[test]
    fn eq_rows_is_cross_numeric() {
        let a = ColumnVec::Int(vec![3, 4]);
        let b = ColumnVec::Float(vec![3.0, 4.5]);
        assert!(a.eq_rows(0, &b, 0));
        assert!(!a.eq_rows(1, &b, 1));
        let m = ColumnVec::Mixed(vec![Value::Float(3.0)]);
        assert!(a.eq_rows(0, &m, 0));
        let s = ColumnVec::Str(vec![Arc::from("3")]);
        assert!(!a.eq_rows(0, &s, 0)); // cross-type is unequal, not an error
    }

    #[test]
    fn typed_and_mixed_hash_chains_agree() {
        let typed = ColumnVec::Int(vec![7, 8]);
        let mixed = ColumnVec::Mixed(vec![Value::Int(7), Value::Float(8.0)]);
        let mut ht = vec![FX_SEED; 2];
        let mut hm = vec![FX_SEED; 2];
        typed.hash_fx_into(0..2, &mut ht);
        mixed.hash_fx_into(0..2, &mut hm);
        assert_eq!(ht, hm);
        assert_ne!(ht[0], ht[1]);
    }
}
