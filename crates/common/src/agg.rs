//! Aggregate functions and their decomposition into partial states.
//!
//! The paper's transformations put two requirements on aggregates:
//!
//! 1. **Pull-up** (Section 3) merely *defers* where an aggregate is
//!    computed, so any function works.
//! 2. **Simple coalescing grouping** (Section 4.2) "requires that the
//!    aggregating functions ... satisfy the property of being
//!    *decomposable*, e.g., we must be able to subsequently coalesce two
//!    groups that agree on the grouping columns." [`PartialAggState`]
//!    implements that decomposition: a lower group-by produces partial
//!    states, joins duplicate/route them like ordinary columns, and the
//!    upper group-by merges states and finalizes.
//!
//! Built-ins: COUNT, COUNT(*), SUM, MIN, MAX, AVG, and — as the paper's
//! example of a user-defined aggregate without side effects — population
//! standard deviation (`STDDEV`). All are decomposable.

use crate::error::{AggViewError, Result};
use crate::expr::Expr;
use crate::value::{DataType, Value};
use std::fmt;

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// COUNT(expr) or COUNT(*) (argument-less in [`AggSpec`]).
    Count,
    Sum,
    Min,
    Max,
    Avg,
    /// Population standard deviation — stands in for the paper's
    /// "user-defined (without side-effects)" aggregate example.
    StdDev,
}

impl AggFunc {
    /// Result type given the argument type (`None` for COUNT(*)).
    pub fn output_type(self, arg: Option<DataType>) -> Result<DataType> {
        match self {
            AggFunc::Count => Ok(DataType::Int),
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                let t = arg
                    .ok_or_else(|| AggViewError::Schema(format!("{self} requires an argument")))?;
                if self == AggFunc::Sum && !t.is_numeric() {
                    return Err(AggViewError::Schema(format!("SUM over non-numeric {t}")));
                }
                Ok(t)
            }
            AggFunc::Avg | AggFunc::StdDev => {
                let t = arg
                    .ok_or_else(|| AggViewError::Schema(format!("{self} requires an argument")))?;
                if !t.is_numeric() {
                    return Err(AggViewError::Schema(format!("{self} over non-numeric {t}")));
                }
                Ok(DataType::Float)
            }
        }
    }

    /// All built-ins are decomposable; a hook for user-defined aggregates
    /// that are not (holistic functions like MEDIAN would return false,
    /// disabling simple coalescing for queries that use them).
    pub fn is_decomposable(self) -> bool {
        true
    }

    /// Types of the partial-state components, in component order.
    pub fn partial_types(self, arg: Option<DataType>) -> Result<Vec<DataType>> {
        Ok(match self {
            AggFunc::Count => vec![DataType::Int],
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                vec![self.output_type(arg)?]
            }
            AggFunc::Avg => vec![DataType::Float, DataType::Int],
            AggFunc::StdDev => vec![DataType::Float, DataType::Float, DataType::Int],
        })
    }

    /// Number of partial-state components.
    pub fn partial_arity(self) -> usize {
        match self {
            AggFunc::Count | AggFunc::Sum | AggFunc::Min | AggFunc::Max => 1,
            AggFunc::Avg => 2,
            AggFunc::StdDev => 3,
        }
    }

    /// Whether the aggregate's value changes when input rows are
    /// duplicated (the paper's duplicate-factor treatment): COUNT, SUM,
    /// AVG, and STDDEV must be scaled by a join's replication count,
    /// while MIN/MAX are insensitive to duplicates.
    pub fn is_duplicate_sensitive(self) -> bool {
        !matches!(self, AggFunc::Min | AggFunc::Max)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
            AggFunc::StdDev => "STDDEV",
        };
        f.write_str(s)
    }
}

/// One aggregate computation: function plus argument expression
/// (`None` = COUNT(*)).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggSpec {
    pub func: AggFunc,
    pub arg: Option<Expr>,
}

impl AggSpec {
    pub fn new(func: AggFunc, arg: Expr) -> AggSpec {
        AggSpec {
            func,
            arg: Some(arg),
        }
    }

    /// COUNT(*).
    pub fn count_star() -> AggSpec {
        AggSpec {
            func: AggFunc::Count,
            arg: None,
        }
    }

    /// The aggregating columns of this spec (paper Section 2: the `b1..bn`
    /// columns).
    pub fn cols_used(&self) -> std::collections::BTreeSet<crate::ids::Col> {
        self.arg.as_ref().map(Expr::cols_used).unwrap_or_default()
    }
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            Some(e) => write!(f, "{}({})", self.func, e),
            None => write!(f, "{}(*)", self.func),
        }
    }
}

/// How a [`PartialAggState::retract_components`] call concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retraction {
    /// The state now reflects the group minus the retracted rows.
    Retracted,
    /// The retraction touched information the state cannot invert
    /// (a MIN/MAX extremum tie): the group must be recomputed from
    /// base data. The state is unchanged.
    NeedsRecompute,
}

/// A partial aggregate state: the decomposed representation of one
/// aggregate over a subset of a group's tuples.
///
/// State components are plain [`Value`]s so they can travel through join
/// operators inside tuples (identified by [`crate::ids::PartRef`]
/// columns).
#[derive(Debug, Clone, PartialEq)]
pub struct PartialAggState {
    func: AggFunc,
    state: Vec<Value>,
}

impl PartialAggState {
    /// State for an empty subset of tuples.
    pub fn empty(func: AggFunc) -> PartialAggState {
        let state = match func {
            AggFunc::Count => vec![Value::Int(0)],
            // MIN/MAX/SUM over the empty set have no identity value we
            // can represent without NULLs; use a sentinel empty count so
            // merge/finalize can detect it.
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => vec![],
            AggFunc::Avg => vec![Value::Float(0.0), Value::Int(0)],
            AggFunc::StdDev => vec![Value::Float(0.0), Value::Float(0.0), Value::Int(0)],
        };
        PartialAggState { func, state }
    }

    /// Absorb one raw input value (`None` only for COUNT(*)).
    pub fn update(&mut self, arg: Option<&Value>) -> Result<()> {
        match self.func {
            AggFunc::Count => {
                let n = state_i64(&self.state[0], "COUNT")?;
                self.state[0] = Value::Int(checked_count(n, 1, "COUNT")?);
            }
            AggFunc::Sum => {
                let v = require_arg(arg, "SUM")?;
                match self.state.first() {
                    None => self.state.push(numeric_clone(v, "SUM")?),
                    Some(cur) => {
                        self.state[0] = add_numeric(cur, v)?;
                    }
                }
            }
            AggFunc::Min => {
                let v = require_arg(arg, "MIN")?;
                match self.state.first() {
                    None => self.state.push(v.clone()),
                    Some(cur) if v < cur => self.state[0] = v.clone(),
                    _ => {}
                }
            }
            AggFunc::Max => {
                let v = require_arg(arg, "MAX")?;
                match self.state.first() {
                    None => self.state.push(v.clone()),
                    Some(cur) if v > cur => self.state[0] = v.clone(),
                    _ => {}
                }
            }
            AggFunc::Avg => {
                let v = require_arg(arg, "AVG")?;
                let x = as_number(v, "AVG")?;
                let s = state_f64(&self.state[0], "AVG sum")?;
                let n = state_i64(&self.state[1], "AVG count")?;
                self.state[0] = Value::Float(s + x);
                self.state[1] = Value::Int(checked_count(n, 1, "AVG count")?);
            }
            AggFunc::StdDev => {
                let v = require_arg(arg, "STDDEV")?;
                let x = as_number(v, "STDDEV")?;
                let s = state_f64(&self.state[0], "STDDEV sum")?;
                let q = state_f64(&self.state[1], "STDDEV sumsq")?;
                let n = state_i64(&self.state[2], "STDDEV count")?;
                self.state[0] = Value::Float(s + x);
                self.state[1] = Value::Float(q + x * x);
                self.state[2] = Value::Int(checked_count(n, 1, "STDDEV count")?);
            }
        }
        Ok(())
    }

    /// Absorb one raw input value as if it occurred `n` times — the
    /// duplicate-factor treatment eager aggregation needs when a join
    /// replicates each kept-side row once per matching pushed-side
    /// group (whose row count travels as a COUNT column).
    ///
    /// Equivalent to calling [`update`](Self::update) `n` times, but
    /// exact for integer SUM/COUNT (checked multiply) and O(1). `n`
    /// must be positive: a join match always carries at least one row.
    pub fn update_weighted(&mut self, arg: Option<&Value>, n: i64) -> Result<()> {
        if n <= 0 {
            return Err(AggViewError::Exec(format!(
                "non-positive duplicate factor {n} for {}",
                self.func
            )));
        }
        match self.func {
            AggFunc::Count => {
                let cur = state_i64(&self.state[0], "COUNT")?;
                self.state[0] = Value::Int(checked_count(cur, n, "COUNT")?);
            }
            AggFunc::Sum => {
                let v = require_arg(arg, "SUM")?;
                let scaled = mul_numeric(v, n)?;
                match self.state.first() {
                    None => self.state.push(scaled),
                    Some(cur) => self.state[0] = add_numeric(cur, &scaled)?,
                }
            }
            // Duplicate-insensitive: the weight is irrelevant.
            AggFunc::Min | AggFunc::Max => self.update(arg)?,
            AggFunc::Avg => {
                let v = require_arg(arg, "AVG")?;
                let x = as_number(v, "AVG")?;
                let s = state_f64(&self.state[0], "AVG sum")?;
                let c = state_i64(&self.state[1], "AVG count")?;
                self.state[0] = Value::Float(s + x * n as f64);
                self.state[1] = Value::Int(checked_count(c, n, "AVG count")?);
            }
            AggFunc::StdDev => {
                let v = require_arg(arg, "STDDEV")?;
                let x = as_number(v, "STDDEV")?;
                let s = state_f64(&self.state[0], "STDDEV sum")?;
                let q = state_f64(&self.state[1], "STDDEV sumsq")?;
                let c = state_i64(&self.state[2], "STDDEV count")?;
                self.state[0] = Value::Float(s + x * n as f64);
                self.state[1] = Value::Float(q + x * x * n as f64);
                self.state[2] = Value::Int(checked_count(c, n, "STDDEV count")?);
            }
        }
        Ok(())
    }

    /// Coalesce another partial state of the same aggregate into this one
    /// — the operation the upper group-by of simple coalescing performs.
    pub fn merge(&mut self, other: &PartialAggState) -> Result<()> {
        if self.func != other.func {
            return Err(AggViewError::Exec(format!(
                "cannot merge {} state into {} state",
                other.func, self.func
            )));
        }
        self.merge_components(&other.state)
    }

    /// Coalesce raw state components (as read out of a tuple).
    ///
    /// Generic over owned (`&[Value]`) and borrowed (`&[&Value]`)
    /// component slices so hot executor loops can pass references to
    /// values still sitting inside an input tuple.
    pub fn merge_components<V: std::borrow::Borrow<Value>>(&mut self, other: &[V]) -> Result<()> {
        let first = other.first().map(std::borrow::Borrow::borrow);
        match self.func {
            AggFunc::Count => {
                let a = state_i64(&self.state[0], "COUNT")?;
                let b = first
                    .and_then(Value::as_i64)
                    .ok_or_else(|| AggViewError::Exec("bad COUNT partial state".into()))?;
                self.state[0] = Value::Int(checked_count(a, b, "COUNT")?);
            }
            AggFunc::Sum => match (self.state.first().cloned(), first) {
                (_, None) => {}
                (None, Some(v)) => self.state.push(v.clone()),
                (Some(cur), Some(v)) => self.state[0] = add_numeric(&cur, v)?,
            },
            AggFunc::Min => match (self.state.first().cloned(), first) {
                (_, None) => {}
                (None, Some(v)) => self.state.push(v.clone()),
                (Some(cur), Some(v)) => {
                    if v < &cur {
                        self.state[0] = v.clone();
                    }
                }
            },
            AggFunc::Max => match (self.state.first().cloned(), first) {
                (_, None) => {}
                (None, Some(v)) => self.state.push(v.clone()),
                (Some(cur), Some(v)) => {
                    if v > &cur {
                        self.state[0] = v.clone();
                    }
                }
            },
            AggFunc::Avg => {
                if other.len() != 2 {
                    return Err(AggViewError::Exec("bad AVG partial state".into()));
                }
                let s = state_f64(&self.state[0], "AVG sum")? + partial_f64(other[0].borrow())?;
                let n = checked_count(
                    state_i64(&self.state[1], "AVG count")?,
                    partial_i64(other[1].borrow())?,
                    "AVG count",
                )?;
                self.state[0] = Value::Float(s);
                self.state[1] = Value::Int(n);
            }
            AggFunc::StdDev => {
                if other.len() != 3 {
                    return Err(AggViewError::Exec("bad STDDEV partial state".into()));
                }
                let s = state_f64(&self.state[0], "STDDEV sum")? + partial_f64(other[0].borrow())?;
                let q =
                    state_f64(&self.state[1], "STDDEV sumsq")? + partial_f64(other[1].borrow())?;
                let n = checked_count(
                    state_i64(&self.state[2], "STDDEV count")?,
                    partial_i64(other[2].borrow())?,
                    "STDDEV count",
                )?;
                self.state[0] = Value::Float(s);
                self.state[1] = Value::Float(q);
                self.state[2] = Value::Int(n);
            }
        }
        Ok(())
    }

    /// Retract raw state components: the inverse of
    /// [`merge_components`](Self::merge_components), used by Z-set view
    /// maintenance to subtract deleted rows' contribution from a stored
    /// group.
    ///
    /// COUNT/SUM/AVG/STDDEV subtract exactly (their partial states form
    /// a group under addition). MIN/MAX are *not* invertible: the state
    /// only remembers the extremum, so retracting a partial whose
    /// extremum ties the stored one may or may not change the group —
    /// those return [`Retraction::NeedsRecompute`] and the maintainer
    /// recomputes that group from base data. A retraction that is
    /// impossible for any consistent history (negative count, deleting
    /// a value strictly beyond the stored extremum) is an execution
    /// error; callers treat it as "fall back to rebuild".
    pub fn retract_components<V: std::borrow::Borrow<Value>>(
        &mut self,
        other: &[V],
    ) -> Result<Retraction> {
        let first = other.first().map(std::borrow::Borrow::borrow);
        match self.func {
            AggFunc::Count => {
                let a = state_i64(&self.state[0], "COUNT")?;
                let b = first
                    .and_then(Value::as_i64)
                    .ok_or_else(|| AggViewError::Exec("bad COUNT partial state".into()))?;
                self.state[0] = Value::Int(checked_retract_count(a, b, "COUNT")?);
            }
            AggFunc::Sum => match (self.state.first().cloned(), first) {
                (_, None) => {}
                (None, Some(_)) => {
                    return Err(AggViewError::Exec("SUM retraction from empty state".into()))
                }
                (Some(cur), Some(v)) => self.state[0] = sub_numeric(&cur, v)?,
            },
            AggFunc::Min | AggFunc::Max => match (self.state.first().cloned(), first) {
                (_, None) => {}
                (None, Some(_)) => {
                    return Err(AggViewError::Exec(format!(
                        "{} retraction from empty state",
                        self.func
                    )))
                }
                (Some(cur), Some(v)) => {
                    let beats_stored = if self.func == AggFunc::Min {
                        v < &cur
                    } else {
                        v > &cur
                    };
                    if beats_stored {
                        return Err(AggViewError::Exec(format!(
                            "{} retraction of {v} beyond stored extremum {cur}",
                            self.func
                        )));
                    }
                    if v == &cur {
                        // The deleted rows reached the stored extremum;
                        // only base data knows whether a duplicate
                        // survives.
                        return Ok(Retraction::NeedsRecompute);
                    }
                }
            },
            AggFunc::Avg => {
                if other.len() != 2 {
                    return Err(AggViewError::Exec("bad AVG partial state".into()));
                }
                let s = state_f64(&self.state[0], "AVG sum")? - partial_f64(other[0].borrow())?;
                let n = checked_retract_count(
                    state_i64(&self.state[1], "AVG count")?,
                    partial_i64(other[1].borrow())?,
                    "AVG count",
                )?;
                self.state[0] = Value::Float(s);
                self.state[1] = Value::Int(n);
            }
            AggFunc::StdDev => {
                if other.len() != 3 {
                    return Err(AggViewError::Exec("bad STDDEV partial state".into()));
                }
                let s = state_f64(&self.state[0], "STDDEV sum")? - partial_f64(other[0].borrow())?;
                let q =
                    state_f64(&self.state[1], "STDDEV sumsq")? - partial_f64(other[1].borrow())?;
                let n = checked_retract_count(
                    state_i64(&self.state[2], "STDDEV count")?,
                    partial_i64(other[2].borrow())?,
                    "STDDEV count",
                )?;
                self.state[0] = Value::Float(s);
                self.state[1] = Value::Float(q);
                self.state[2] = Value::Int(n);
            }
        }
        Ok(Retraction::Retracted)
    }

    /// The rows remaining in the group according to this state's own
    /// counter, when the function keeps one: COUNT's count, AVG's and
    /// STDDEV's row counts. `None` for SUM/MIN/MAX, whose states cannot
    /// witness emptiness.
    pub fn count_component(&self) -> Option<i64> {
        match self.func {
            AggFunc::Count => self.state.first().and_then(Value::as_i64),
            AggFunc::Avg => self.state.get(1).and_then(Value::as_i64),
            AggFunc::StdDev => self.state.get(2).and_then(Value::as_i64),
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => None,
        }
    }

    /// The state components (for embedding into tuples). For SUM/MIN/MAX
    /// the empty state has no components; callers must not emit tuples
    /// for empty groups (grouped aggregation never does).
    pub fn components(&self) -> &[Value] {
        &self.state
    }

    /// Final aggregate value.
    pub fn finalize(&self) -> Result<Value> {
        match self.func {
            AggFunc::Count => Ok(self.state[0].clone()),
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                self.state.first().cloned().ok_or_else(|| {
                    AggViewError::Exec(format!("{} over empty group (NULL unsupported)", self.func))
                })
            }
            AggFunc::Avg => {
                let s = state_f64(&self.state[0], "AVG sum")?;
                let n = state_i64(&self.state[1], "AVG count")?;
                if n == 0 {
                    Err(AggViewError::Exec(
                        "AVG over empty group (NULL unsupported)".into(),
                    ))
                } else {
                    Ok(Value::Float(s / n as f64))
                }
            }
            AggFunc::StdDev => {
                let s = state_f64(&self.state[0], "STDDEV sum")?;
                let q = state_f64(&self.state[1], "STDDEV sumsq")?;
                let n = state_i64(&self.state[2], "STDDEV count")?;
                if n == 0 {
                    Err(AggViewError::Exec(
                        "STDDEV over empty group (NULL unsupported)".into(),
                    ))
                } else {
                    let mean = s / n as f64;
                    let var = (q / n as f64 - mean * mean).max(0.0);
                    Ok(Value::Float(var.sqrt()))
                }
            }
        }
    }

    /// The function this state decomposes.
    pub fn func(&self) -> AggFunc {
        self.func
    }
}

/// Direct (non-decomposed) accumulator — a thin convenience wrapper over
/// [`PartialAggState`] used by the executor's one-shot aggregation path.
#[derive(Debug, Clone)]
pub struct AggAccumulator {
    state: PartialAggState,
}

impl AggAccumulator {
    pub fn new(func: AggFunc) -> AggAccumulator {
        AggAccumulator {
            state: PartialAggState::empty(func),
        }
    }

    /// Absorb one input value.
    pub fn update(&mut self, arg: Option<&Value>) -> Result<()> {
        self.state.update(arg)
    }

    /// Final result.
    pub fn finalize(&self) -> Result<Value> {
        self.state.finalize()
    }
}

fn require_arg<'v>(arg: Option<&'v Value>, func: &str) -> Result<&'v Value> {
    arg.ok_or_else(|| AggViewError::Exec(format!("{func} requires an argument")))
}

fn as_number(v: &Value, func: &str) -> Result<f64> {
    v.as_f64()
        .ok_or_else(|| AggViewError::Exec(format!("{func} over non-numeric value {v}")))
}

fn numeric_clone(v: &Value, func: &str) -> Result<Value> {
    match v {
        Value::Int(_) | Value::Float(_) => Ok(v.clone()),
        other => Err(AggViewError::Exec(format!(
            "{func} over non-numeric value {other}"
        ))),
    }
}

/// Add two numeric values, staying exact for Int + Int. Integer overflow
/// is an execution error, not a silently wrong result.
fn add_numeric(a: &Value, b: &Value) -> Result<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x
            .checked_add(*y)
            .map(Value::Int)
            .ok_or_else(|| AggViewError::Exec(format!("SUM overflow ({x} + {y})"))),
        _ => {
            let x = as_number(a, "SUM")?;
            let y = as_number(b, "SUM")?;
            Ok(Value::Float(x + y))
        }
    }
}

/// A state value that should be of the given shape but — because partial
/// states travel through joins as ordinary column values — might not be.
fn state_f64(v: &Value, what: &str) -> Result<f64> {
    v.as_f64()
        .ok_or_else(|| AggViewError::Exec(format!("corrupt {what} state: {v}")))
}

fn state_i64(v: &Value, what: &str) -> Result<i64> {
    v.as_i64()
        .ok_or_else(|| AggViewError::Exec(format!("corrupt {what} state: {v}")))
}

fn checked_count(a: i64, b: i64, what: &str) -> Result<i64> {
    a.checked_add(b)
        .ok_or_else(|| AggViewError::Exec(format!("{what} overflow")))
}

/// Subtract a retracted count; a negative result means the delta deletes
/// rows the group never contained — no consistent history produces it.
fn checked_retract_count(a: i64, b: i64, what: &str) -> Result<i64> {
    match a.checked_sub(b) {
        Some(n) if n >= 0 => Ok(n),
        _ => Err(AggViewError::Exec(format!(
            "{what} retraction below zero ({a} - {b})"
        ))),
    }
}

/// Scale a numeric value by an integer factor, staying exact for Int.
fn mul_numeric(v: &Value, n: i64) -> Result<Value> {
    match v {
        Value::Int(x) => x
            .checked_mul(n)
            .map(Value::Int)
            .ok_or_else(|| AggViewError::Exec(format!("SUM overflow ({x} * {n})"))),
        _ => Ok(Value::Float(as_number(v, "SUM")? * n as f64)),
    }
}

/// Subtract two numeric values, staying exact for Int − Int.
fn sub_numeric(a: &Value, b: &Value) -> Result<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x
            .checked_sub(*y)
            .map(Value::Int)
            .ok_or_else(|| AggViewError::Exec(format!("SUM retraction overflow ({x} - {y})"))),
        _ => {
            let x = as_number(a, "SUM")?;
            let y = as_number(b, "SUM")?;
            Ok(Value::Float(x - y))
        }
    }
}

fn partial_f64(v: &Value) -> Result<f64> {
    v.as_f64()
        .ok_or_else(|| AggViewError::Exec("non-numeric partial state".into()))
}

fn partial_i64(v: &Value) -> Result<i64> {
    v.as_i64()
        .ok_or_else(|| AggViewError::Exec("non-integer partial count".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, vals: &[Value]) -> Value {
        let mut acc = AggAccumulator::new(func);
        for v in vals {
            acc.update(Some(v)).unwrap();
        }
        acc.finalize().unwrap()
    }

    #[test]
    fn count_star() {
        let mut acc = AggAccumulator::new(AggFunc::Count);
        for _ in 0..5 {
            acc.update(None).unwrap();
        }
        assert_eq!(acc.finalize().unwrap(), Value::Int(5));
    }

    #[test]
    fn sum_int_stays_exact() {
        let v = run(AggFunc::Sum, &[Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(v, Value::Int(6));
    }

    #[test]
    fn sum_mixed_promotes() {
        let v = run(AggFunc::Sum, &[Value::Int(1), Value::Float(0.5)]);
        assert_eq!(v, Value::Float(1.5));
    }

    #[test]
    fn min_max_over_strings() {
        let vals = [Value::str("pear"), Value::str("apple"), Value::str("fig")];
        assert_eq!(run(AggFunc::Min, &vals), Value::str("apple"));
        assert_eq!(run(AggFunc::Max, &vals), Value::str("pear"));
    }

    #[test]
    fn avg_matches_paper_example_semantics() {
        // avg(sal) over a department's salaries.
        let v = run(
            AggFunc::Avg,
            &[
                Value::Float(100.0),
                Value::Float(200.0),
                Value::Float(300.0),
            ],
        );
        assert_eq!(v, Value::Float(200.0));
    }

    #[test]
    fn stddev_population() {
        let v = run(
            AggFunc::StdDev,
            &[
                Value::Float(2.0),
                Value::Float(4.0),
                Value::Float(4.0),
                Value::Float(4.0),
                Value::Float(5.0),
                Value::Float(5.0),
                Value::Float(7.0),
                Value::Float(9.0),
            ],
        );
        assert_eq!(v, Value::Float(2.0));
    }

    #[test]
    fn empty_group_finalize_errors_for_value_functions() {
        for f in [
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
            AggFunc::StdDev,
        ] {
            assert!(AggAccumulator::new(f).finalize().is_err(), "{f}");
        }
        assert_eq!(
            AggAccumulator::new(AggFunc::Count).finalize().unwrap(),
            Value::Int(0)
        );
    }

    /// Core decomposability property: splitting the input arbitrarily,
    /// computing partials, then merging, equals one-shot aggregation.
    #[test]
    fn merge_equals_oneshot_for_every_function() {
        let vals: Vec<Value> = (1..=10).map(|i| Value::Float(i as f64 * 1.5)).collect();
        for f in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
            AggFunc::StdDev,
        ] {
            for split in 0..=vals.len() {
                let mut a = PartialAggState::empty(f);
                let mut b = PartialAggState::empty(f);
                for v in &vals[..split] {
                    a.update(Some(v)).unwrap();
                }
                for v in &vals[split..] {
                    b.update(Some(v)).unwrap();
                }
                a.merge(&b).unwrap();
                let direct = run(f, &vals);
                let merged = a.finalize().unwrap();
                match (merged.as_f64(), direct.as_f64()) {
                    (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "{f} split {split}"),
                    _ => assert_eq!(merged, direct, "{f} split {split}"),
                }
            }
        }
    }

    #[test]
    fn sum_int_overflow_is_an_error_not_a_wrap() {
        let mut acc = AggAccumulator::new(AggFunc::Sum);
        acc.update(Some(&Value::Int(i64::MAX))).unwrap();
        let err = acc.update(Some(&Value::Int(1))).unwrap_err();
        assert_eq!(err.kind(), "exec");
        assert!(err.message().contains("SUM overflow"), "{err}");
    }

    #[test]
    fn count_merge_overflow_is_an_error() {
        let mut a = PartialAggState::empty(AggFunc::Count);
        a.update(None).unwrap();
        let err = a.merge_components(&[Value::Int(i64::MAX)]).unwrap_err();
        assert!(err.message().contains("COUNT overflow"), "{err}");
    }

    #[test]
    fn merge_components_round_trips_through_values() {
        let mut a = PartialAggState::empty(AggFunc::Avg);
        a.update(Some(&Value::Float(10.0))).unwrap();
        let comps: Vec<Value> = a.components().to_vec();
        let mut b = PartialAggState::empty(AggFunc::Avg);
        b.update(Some(&Value::Float(30.0))).unwrap();
        b.merge_components(&comps).unwrap();
        assert_eq!(b.finalize().unwrap(), Value::Float(20.0));
    }

    #[test]
    fn merge_mismatched_functions_rejected() {
        let mut a = PartialAggState::empty(AggFunc::Sum);
        let b = PartialAggState::empty(AggFunc::Avg);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn partial_types_and_arity_agree() {
        for f in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
            AggFunc::StdDev,
        ] {
            let tys = f.partial_types(Some(DataType::Float)).unwrap();
            assert_eq!(tys.len(), f.partial_arity(), "{f}");
            assert!(f.is_decomposable());
        }
    }

    #[test]
    fn output_types() {
        assert_eq!(AggFunc::Count.output_type(None).unwrap(), DataType::Int);
        assert_eq!(
            AggFunc::Sum.output_type(Some(DataType::Int)).unwrap(),
            DataType::Int
        );
        assert_eq!(
            AggFunc::Avg.output_type(Some(DataType::Int)).unwrap(),
            DataType::Float
        );
        assert!(AggFunc::Sum.output_type(Some(DataType::Str)).is_err());
        assert!(AggFunc::Avg.output_type(None).is_err());
        assert_eq!(
            AggFunc::Min.output_type(Some(DataType::Str)).unwrap(),
            DataType::Str
        );
    }

    /// Retraction inverts merge for the additive functions: merging a
    /// partial then retracting the same partial is the identity.
    #[test]
    fn retract_inverts_merge_for_additive_functions() {
        let vals: Vec<Value> = (1..=6).map(Value::Int).collect();
        for f in [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::StdDev] {
            let mut base = PartialAggState::empty(f);
            for v in &vals {
                base.update(Some(v)).unwrap();
            }
            let before = base.clone();
            let mut delta = PartialAggState::empty(f);
            delta.update(Some(&Value::Int(2))).unwrap();
            delta.update(Some(&Value::Int(5))).unwrap();
            base.merge(&delta).unwrap();
            let outcome = base.retract_components(delta.components()).unwrap();
            assert_eq!(outcome, Retraction::Retracted, "{f}");
            assert_eq!(base, before, "{f}");
        }
    }

    #[test]
    fn min_retraction_of_non_extremum_is_exact() {
        let mut s = PartialAggState::empty(AggFunc::Min);
        s.update(Some(&Value::Int(3))).unwrap();
        let mut d = PartialAggState::empty(AggFunc::Min);
        d.update(Some(&Value::Int(7))).unwrap();
        assert_eq!(
            s.retract_components(d.components()).unwrap(),
            Retraction::Retracted
        );
        assert_eq!(s.finalize().unwrap(), Value::Int(3));
    }

    #[test]
    fn minmax_extremum_tie_needs_recompute() {
        for (f, tie) in [(AggFunc::Min, 3i64), (AggFunc::Max, 9i64)] {
            let mut s = PartialAggState::empty(f);
            for v in [3i64, 9] {
                s.update(Some(&Value::Int(v))).unwrap();
            }
            let mut d = PartialAggState::empty(f);
            d.update(Some(&Value::Int(tie))).unwrap();
            assert_eq!(
                s.retract_components(d.components()).unwrap(),
                Retraction::NeedsRecompute,
                "{f}"
            );
            // State is left untouched for the recompute path.
            assert_eq!(
                s.finalize().unwrap(),
                Value::Int(if tie == 3 { 3 } else { 9 })
            );
        }
    }

    #[test]
    fn impossible_retractions_are_errors() {
        // Deleting below a stored MIN, or more rows than COUNT holds,
        // cannot arise from a consistent history.
        let mut m = PartialAggState::empty(AggFunc::Min);
        m.update(Some(&Value::Int(5))).unwrap();
        let mut d = PartialAggState::empty(AggFunc::Min);
        d.update(Some(&Value::Int(1))).unwrap();
        assert!(m.retract_components(d.components()).is_err());

        let mut c = PartialAggState::empty(AggFunc::Count);
        c.update(None).unwrap();
        let err = c.retract_components(&[Value::Int(2)]).unwrap_err();
        assert!(err.message().contains("below zero"), "{err}");
    }

    #[test]
    fn count_component_witnesses_emptiness() {
        let mut c = PartialAggState::empty(AggFunc::Count);
        c.update(None).unwrap();
        assert_eq!(c.count_component(), Some(1));
        let mut a = PartialAggState::empty(AggFunc::Avg);
        a.update(Some(&Value::Int(4))).unwrap();
        assert_eq!(a.count_component(), Some(1));
        let s = PartialAggState::empty(AggFunc::Sum);
        assert_eq!(s.count_component(), None);
    }

    /// Weighted update equals n plain updates for every function, with
    /// exact integer arithmetic where the plain path is exact.
    #[test]
    fn weighted_update_equals_repeated_update() {
        let vals = [Value::Int(3), Value::Float(12.5), Value::Int(-2)];
        for f in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
            AggFunc::StdDev,
        ] {
            for n in [1i64, 2, 7] {
                let mut weighted = PartialAggState::empty(f);
                let mut repeated = PartialAggState::empty(f);
                for v in &vals {
                    let arg = if f == AggFunc::Count { None } else { Some(v) };
                    weighted.update_weighted(arg, n).unwrap();
                    for _ in 0..n {
                        repeated.update(arg).unwrap();
                    }
                }
                assert_eq!(weighted, repeated, "{f} x{n}");
            }
        }
    }

    #[test]
    fn weighted_update_rejects_non_positive_factor_and_overflow() {
        let mut s = PartialAggState::empty(AggFunc::Sum);
        assert!(s.update_weighted(Some(&Value::Int(1)), 0).is_err());
        assert!(s.update_weighted(Some(&Value::Int(1)), -3).is_err());
        let err = s
            .update_weighted(Some(&Value::Int(i64::MAX)), 2)
            .unwrap_err();
        assert!(err.message().contains("SUM overflow"), "{err}");
    }

    #[test]
    fn duplicate_sensitivity_classification() {
        assert!(AggFunc::Count.is_duplicate_sensitive());
        assert!(AggFunc::Sum.is_duplicate_sensitive());
        assert!(AggFunc::Avg.is_duplicate_sensitive());
        assert!(AggFunc::StdDev.is_duplicate_sensitive());
        assert!(!AggFunc::Min.is_duplicate_sensitive());
        assert!(!AggFunc::Max.is_duplicate_sensitive());
    }

    #[test]
    fn agg_spec_display_and_cols() {
        use crate::ids::{Col, RelId};
        let spec = AggSpec::new(AggFunc::Avg, Expr::col(Col::base(RelId(1), 3)));
        assert_eq!(spec.to_string(), "AVG(r1.c3)");
        assert_eq!(spec.cols_used().len(), 1);
        assert_eq!(AggSpec::count_star().to_string(), "COUNT(*)");
        assert!(AggSpec::count_star().cols_used().is_empty());
    }
}
