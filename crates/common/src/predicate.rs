//! Comparison predicates.
//!
//! Queries are conjunctions of simple comparison predicates
//! (`Vec<Predicate>`), matching the paper's `cond1 and ... and condn`
//! WHERE shape and `agg_cond1 and ... and agg_condk` HAVING shape.
//! A predicate that references an aggregated column can only be evaluated
//! at or above the group-by that computes the aggregate — this is exactly
//! the constraint the pull-up transformation manages by moving such
//! predicates into the deferred group-by's HAVING clause (Definition 1,
//! item 4).

use crate::error::Result;
use crate::expr::{BoundExpr, Expr};
use crate::ids::{Col, ColRef, RelId};
use crate::tuple::Tuple;
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The operator with its operand sides swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Apply the comparison to an ordering result.
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// Default selectivity guess used by the cost model when no
    /// statistics apply (System-R style constants).
    pub fn default_selectivity(self) -> f64 {
        match self {
            CmpOp::Eq => 0.1,
            CmpOp::Ne => 0.9,
            _ => 1.0 / 3.0,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A single comparison predicate `left op right`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Predicate {
    pub left: Expr,
    pub op: CmpOp,
    pub right: Expr,
}

impl Predicate {
    pub fn new(left: Expr, op: CmpOp, right: Expr) -> Predicate {
        Predicate { left, op, right }
    }

    /// `col op constant` selection predicate.
    pub fn cmp_const(col: impl Into<Col>, op: CmpOp, v: impl Into<crate::Value>) -> Predicate {
        Predicate::new(Expr::col(col.into()), op, Expr::val(v))
    }

    /// Equality between two columns (the common equijoin predicate).
    pub fn eq_cols(a: impl Into<Col>, b: impl Into<Col>) -> Predicate {
        Predicate::new(Expr::col(a.into()), CmpOp::Eq, Expr::col(b.into()))
    }

    /// All columns referenced on either side.
    pub fn cols_used(&self) -> BTreeSet<Col> {
        let mut c = self.left.cols_used();
        c.extend(self.right.cols_used());
        c
    }

    /// Base columns referenced on either side.
    pub fn base_cols_used(&self) -> BTreeSet<ColRef> {
        self.cols_used()
            .into_iter()
            .filter_map(|c| c.as_base())
            .collect()
    }

    /// Base relation instances referenced on either side.
    pub fn rels_used(&self) -> BTreeSet<RelId> {
        self.base_cols_used().into_iter().map(|c| c.rel).collect()
    }

    /// True if the predicate reads any aggregated column.
    ///
    /// Such predicates "need to be deferred since an aggregation can take
    /// place only when the group-by is executed" (paper, Section 3).
    pub fn uses_agg(&self) -> bool {
        self.left.uses_agg() || self.right.uses_agg()
    }

    /// If this is a bare column-equals-column predicate, return the pair.
    pub fn as_col_eq_col(&self) -> Option<(Col, Col)> {
        if self.op != CmpOp::Eq {
            return None;
        }
        match (&self.left, &self.right) {
            (Expr::Col(a), Expr::Col(b)) => Some((*a, *b)),
            _ => None,
        }
    }

    /// Rewrite column references through `f`.
    pub fn map_cols(&self, f: &impl Fn(Col) -> Col) -> Predicate {
        Predicate {
            left: self.left.map_cols(f),
            op: self.op,
            right: self.right.map_cols(f),
        }
    }

    /// Bind both sides against a tuple layout.
    pub fn bind(&self, layout: &impl Fn(Col) -> Option<usize>) -> Result<BoundPredicate> {
        Ok(BoundPredicate {
            left: self.left.bind(layout)?,
            op: self.op,
            right: self.right.bind(layout)?,
        })
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// A predicate with column references resolved to tuple positions.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundPredicate {
    pub left: BoundExpr,
    pub op: CmpOp,
    pub right: BoundExpr,
}

impl BoundPredicate {
    /// Evaluate against a tuple. Incomparable operands (e.g. string vs
    /// int) are an execution error — the binder prevents this for
    /// well-typed queries.
    ///
    /// The common shapes (column/constant on both sides) compare by
    /// reference without cloning either operand; only nested arithmetic
    /// takes the materializing path.
    pub fn eval(&self, t: &Tuple) -> Result<bool> {
        let (l, r): (&crate::Value, &crate::Value) = match (&self.left, &self.right) {
            (BoundExpr::Col(i), BoundExpr::Col(j)) => (t.get(*i), t.get(*j)),
            (BoundExpr::Col(i), BoundExpr::Const(v)) => (t.get(*i), v),
            (BoundExpr::Const(v), BoundExpr::Col(j)) => (v, t.get(*j)),
            (BoundExpr::Const(a), BoundExpr::Const(b)) => (a, b),
            _ => {
                let l = self.left.eval(t)?;
                let r = self.right.eval(t)?;
                return self.cmp_values(&l, &r);
            }
        };
        self.cmp_values(l, r)
    }

    /// Evaluate against the virtual concatenation `left ++ right`, where
    /// `left` has arity `split` — without materializing the combined
    /// tuple. Used for join residual predicates bound against the
    /// combined layout.
    pub fn eval_split(&self, left: &Tuple, right: &Tuple, split: usize) -> Result<bool> {
        let at = |i: usize| {
            if i < split {
                left.get(i)
            } else {
                right.get(i - split)
            }
        };
        let (l, r): (&crate::Value, &crate::Value) = match (&self.left, &self.right) {
            (BoundExpr::Col(i), BoundExpr::Col(j)) => (at(*i), at(*j)),
            (BoundExpr::Col(i), BoundExpr::Const(v)) => (at(*i), v),
            (BoundExpr::Const(v), BoundExpr::Col(j)) => (v, at(*j)),
            (BoundExpr::Const(a), BoundExpr::Const(b)) => (a, b),
            _ => {
                let get = |i: usize| at(i).clone();
                let l = self.left.eval_with(&get)?;
                let r = self.right.eval_with(&get)?;
                return self.cmp_values(&l, &r);
            }
        };
        self.cmp_values(l, r)
    }

    /// Evaluate with an arbitrary position-to-value accessor (batch rows
    /// that are not materialized as tuples). Semantics and error
    /// messages match [`eval`](Self::eval).
    pub fn eval_with(&self, get: &impl Fn(usize) -> crate::Value) -> Result<bool> {
        let l = self.left.eval_with(get)?;
        let r = self.right.eval_with(get)?;
        self.cmp_values(&l, &r)
    }

    fn cmp_values(&self, l: &crate::Value, r: &crate::Value) -> Result<bool> {
        match l.try_cmp(r) {
            Some(ord) => Ok(self.op.matches(ord)),
            None => Err(crate::AggViewError::Exec(format!(
                "cannot compare {l} {} {r}",
                self.op
            ))),
        }
    }
}

/// Evaluate a conjunction of bound predicates.
pub fn eval_conjunction(preds: &[BoundPredicate], t: &Tuple) -> Result<bool> {
    for p in preds {
        if !p.eval(t)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Evaluate a conjunction against the virtual concatenation
/// `left ++ right` (see [`BoundPredicate::eval_split`]).
pub fn eval_conjunction_split(
    preds: &[BoundPredicate],
    left: &Tuple,
    right: &Tuple,
    split: usize,
) -> Result<bool> {
    for p in preds {
        if !p.eval_split(left, right, split)? {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ViewId;
    use crate::tuple;
    use crate::value::Value;

    #[test]
    fn flipped_round_trips() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.flipped().flipped(), op);
        }
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
    }

    #[test]
    fn matches_orderings() {
        assert!(CmpOp::Le.matches(Ordering::Equal));
        assert!(CmpOp::Le.matches(Ordering::Less));
        assert!(!CmpOp::Le.matches(Ordering::Greater));
        assert!(CmpOp::Ne.matches(Ordering::Less));
        assert!(!CmpOp::Eq.matches(Ordering::Less));
    }

    #[test]
    fn join_predicate_classification() {
        let p = Predicate::eq_cols(Col::base(RelId(0), 2), Col::base(RelId(1), 0));
        assert_eq!(p.rels_used().len(), 2);
        assert!(!p.uses_agg());
        let (a, b) = p.as_col_eq_col().unwrap();
        assert_eq!(a, Col::base(RelId(0), 2));
        assert_eq!(b, Col::base(RelId(1), 0));
    }

    #[test]
    fn having_predicate_uses_agg() {
        // e1.sal > avg(e2.sal) — the paper's Example 1 comparison.
        let p = Predicate::new(
            Expr::col(Col::base(RelId(0), 3)),
            CmpOp::Gt,
            Expr::col(Col::agg(ViewId::View(0), 0)),
        );
        assert!(p.uses_agg());
        assert!(p.as_col_eq_col().is_none());
    }

    #[test]
    fn eval_selection() {
        // age < 22
        let p = Predicate::cmp_const(Col::base(RelId(0), 0), CmpOp::Lt, 22i64);
        let b = p
            .bind(&|c| match c {
                Col::Base(cr) if cr.col == 0 => Some(0),
                _ => None,
            })
            .unwrap();
        assert!(b.eval(&tuple![21i64]).unwrap());
        assert!(!b.eval(&tuple![22i64]).unwrap());
    }

    #[test]
    fn eval_conjunction_short_circuits_to_false() {
        let t = tuple![5i64];
        let yes = Predicate::cmp_const(Col::base(RelId(0), 0), CmpOp::Gt, 1i64);
        let no = Predicate::cmp_const(Col::base(RelId(0), 0), CmpOp::Gt, 9i64);
        let layout = |c: Col| match c {
            Col::Base(_) => Some(0),
            _ => None,
        };
        let preds = vec![yes.bind(&layout).unwrap(), no.bind(&layout).unwrap()];
        assert!(!eval_conjunction(&preds, &t).unwrap());
        assert!(eval_conjunction(&preds[..1], &t).unwrap());
        assert!(eval_conjunction(&[], &t).unwrap());
    }

    #[test]
    fn eval_split_matches_concat_eval() {
        // Positions 0..2 come from the left tuple, 2..4 from the right.
        let layout = |c: Col| match c {
            Col::Base(cr) if cr.rel == RelId(0) => Some(cr.col as usize),
            Col::Base(cr) if cr.rel == RelId(1) => Some(2 + cr.col as usize),
            _ => None,
        };
        let l = tuple![1i64, 5.0f64];
        let r = tuple![5i64, "x"];
        for p in [
            Predicate::eq_cols(Col::base(RelId(0), 1), Col::base(RelId(1), 0)),
            Predicate::cmp_const(Col::base(RelId(1), 0), CmpOp::Gt, 4i64),
            Predicate::new(
                Expr::col(Col::base(RelId(0), 0))
                    .binary(crate::BinaryOp::Add, Expr::col(Col::base(RelId(1), 0))),
                CmpOp::Eq,
                Expr::val(6i64),
            ),
        ] {
            let b = p.bind(&layout).unwrap();
            assert_eq!(
                b.eval_split(&l, &r, 2).unwrap(),
                b.eval(&l.concat(&r)).unwrap(),
                "split/concat disagree on {p}"
            );
        }
        // Error parity, including the message.
        let bad = Predicate::eq_cols(Col::base(RelId(0), 0), Col::base(RelId(1), 1))
            .bind(&layout)
            .unwrap();
        let e1 = bad.eval_split(&l, &r, 2).unwrap_err().to_string();
        let e2 = bad.eval(&l.concat(&r)).unwrap_err().to_string();
        assert_eq!(e1, e2);
        assert!(eval_conjunction_split(&[], &l, &r, 2).unwrap());
    }

    #[test]
    fn incomparable_types_error() {
        let p = Predicate::new(Expr::val("x"), CmpOp::Lt, Expr::val(3i64));
        let b = p.bind(&|_| None).unwrap();
        assert!(b.eval(&tuple![]).is_err());
    }

    #[test]
    fn numeric_cross_type_comparison_works() {
        let p = Predicate::new(Expr::val(3i64), CmpOp::Eq, Expr::val(3.0f64));
        assert!(p.bind(&|_| None).unwrap().eval(&tuple![]).unwrap());
    }

    #[test]
    fn display() {
        let p = Predicate::cmp_const(Col::base(RelId(1), 4), CmpOp::Ge, Value::Float(1e6));
        assert_eq!(p.to_string(), "r1.c4 >= 1000000");
    }

    #[test]
    fn default_selectivities_are_sane() {
        assert!(CmpOp::Eq.default_selectivity() < CmpOp::Lt.default_selectivity());
        assert!(CmpOp::Ne.default_selectivity() > 0.5);
    }
}
