//! Relation schemas.

use crate::error::{AggViewError, Result};
use crate::value::DataType;
use std::fmt;

/// A named, typed column of a base table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (unique within a schema, case-insensitive).
    pub name: String,
    /// Column type.
    pub ty: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, ty: DataType) -> Field {
        Field {
            name: name.into(),
            ty,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.ty)
    }
}

/// An ordered list of fields describing a base table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema, validating that column names are unique
    /// (case-insensitively, following SQL identifier semantics).
    pub fn new(fields: Vec<Field>) -> Result<Schema> {
        for (i, f) in fields.iter().enumerate() {
            for g in &fields[..i] {
                if f.name.eq_ignore_ascii_case(&g.name) {
                    return Err(AggViewError::Schema(format!(
                        "duplicate column name `{}`",
                        f.name
                    )));
                }
            }
        }
        Ok(Schema { fields })
    }

    /// Convenience constructor from `(name, type)` pairs; panics on
    /// duplicate names (intended for statically-known schemas in tests and
    /// generators).
    pub fn of(cols: &[(&str, DataType)]) -> Schema {
        Schema::new(
            cols.iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        )
        .expect("static schema must have unique column names")
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at ordinal `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Ordinal of the column named `name` (case-insensitive).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Like [`Schema::index_of`] but returns a bind error naming the
    /// missing column.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| AggViewError::Bind(format!("unknown column `{name}`")))
    }

    /// Fixed-width estimate of a row of this schema in bytes; the page/IO
    /// model uses this when no measured statistics exist.
    pub fn default_row_width(&self) -> usize {
        self.fields.iter().map(|f| f.ty.default_width()).sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            field.fmt(f)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp() -> Schema {
        Schema::of(&[
            ("eno", DataType::Int),
            ("name", DataType::Str),
            ("dno", DataType::Int),
            ("sal", DataType::Float),
            ("age", DataType::Int),
        ])
    }

    #[test]
    fn index_lookup_is_case_insensitive() {
        let s = emp();
        assert_eq!(s.index_of("SAL"), Some(3));
        assert_eq!(s.index_of("Sal"), Some(3));
        assert_eq!(s.index_of("salary"), None);
    }

    #[test]
    fn resolve_errors_name_the_column() {
        let err = emp().resolve("bogus").unwrap_err();
        assert_eq!(err.kind(), "bind");
        assert!(err.message().contains("bogus"));
    }

    #[test]
    fn duplicate_names_rejected_case_insensitively() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("A", DataType::Float),
        ])
        .unwrap_err();
        assert_eq!(err.kind(), "schema");
    }

    #[test]
    fn row_width_sums_defaults() {
        // 8 + 16 + 8 + 8 + 8
        assert_eq!(emp().default_row_width(), 48);
    }

    #[test]
    fn display_lists_fields() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Bool)]);
        assert_eq!(s.to_string(), "(a INT, b BOOL)");
    }

    #[test]
    fn empty_schema() {
        let s = Schema::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.default_row_width(), 0);
    }
}
