//! Shared vocabulary for the `aggview` workspace.
//!
//! This crate defines the data model used by every other crate in the
//! reproduction of Chaudhuri & Shim, *Optimizing Queries with Aggregate
//! Views* (EDBT 1996):
//!
//! * [`Value`] / [`DataType`] — the scalar type system (no NULLs, per the
//!   paper's Section 2 simplifying assumptions),
//! * [`Schema`] / [`Field`] — relation schemas,
//! * [`ColRef`] / [`Col`] / [`AggRef`] — column identity across query
//!   blocks (base columns vs. aggregated columns),
//! * [`Expr`] / [`Predicate`] — scalar expressions and conjunctive
//!   comparison predicates,
//! * [`AggFunc`] / [`AggSpec`] — aggregate functions, including the
//!   decomposability machinery needed by the *simple coalescing grouping*
//!   transformation (partial/combine/finalize states),
//! * [`hash`] — allocation-free, thread-consistent key hashing used by
//!   the executor's hash join, hash aggregation, and the partitioned
//!   parallel operators built on them,
//! * [`ColumnVec`] / [`Batch`] — typed column vectors and column-major
//!   batches, the data representation of the vectorized executor,
//! * [`AggViewError`] — the workspace-wide error type.

#![forbid(unsafe_code)]

pub mod agg;
pub mod batch;
pub mod column;
pub mod error;
pub mod expr;
pub mod fault;
pub mod hash;
pub mod ids;
pub mod predicate;
pub mod schema;
pub mod tuple;
pub mod value;
pub mod zset;

pub use agg::{AggAccumulator, AggFunc, AggSpec, PartialAggState, Retraction};
pub use batch::Batch;
pub use column::{mixed_demotions, ColumnVec};
pub use error::{AggViewError, Result};
pub use expr::{BinaryOp, Expr};
pub use fault::{
    registered_site, FaultInjector, IoFaultKind, NoFaults, RecordingFaults, ScheduledFaults,
    ScheduledIoFaults, SeededFaultInjector, REGISTERED_FAULT_SITES,
};
pub use hash::{hash_key, hash_values, key_matches_row, keys_equal, PrehashedMap};
pub use ids::{AggRef, Col, ColRef, PartRef, RelId, ViewId};
pub use predicate::{CmpOp, Predicate};
pub use schema::{Field, Schema};
pub use tuple::Tuple;
pub use value::{DataType, Value};
pub use zset::ZSet;
