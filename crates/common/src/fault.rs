//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultInjector`] is consulted at well-known *sites* (storage
//! scans, executor operator boundaries) and may turn any of those calls
//! into a [`AggViewError::Transient`] failure. Injectors are
//! deterministic — a given seed or schedule always fails the same
//! calls — so any failing run reproduces exactly.
//!
//! Injection is off by default everywhere: production paths pass no
//! injector and pay only an `Option` check.

use crate::error::{AggViewError, Result};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A hook consulted before fallible infrastructure work.
///
/// Implementations return `Err(AggViewError::Transient(_))` to simulate
/// an infrastructure failure at the call site, or `Ok(())` to let the
/// operation proceed. `site` names the instrumentation point (e.g.
/// `"storage.scan.emp"` or `"exec.join"`) so injectors can target
/// specific operators.
pub trait FaultInjector: Send + Sync + fmt::Debug {
    fn fault(&self, site: &str) -> Result<()>;
}

/// Convenience: consult an optional injector (the common call shape).
pub fn maybe_fault(injector: Option<&dyn FaultInjector>, site: &str) -> Result<()> {
    match injector {
        Some(f) => f.fault(site),
        None => Ok(()),
    }
}

/// Injector that never fails — equivalent to passing no injector.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn fault(&self, _site: &str) -> Result<()> {
        Ok(())
    }
}

/// Fails a deterministic pseudo-random subset of calls.
///
/// Each call's fate is a pure function of `(seed, site, call index)`,
/// so a seed fully determines the failure schedule regardless of
/// timing. `fail_per_mille` is the failure probability in thousandths
/// (0 = never, 1000 = always).
pub struct SeededFaultInjector {
    seed: u64,
    fail_per_mille: u16,
    calls: AtomicU64,
}

impl SeededFaultInjector {
    pub fn new(seed: u64, fail_per_mille: u16) -> SeededFaultInjector {
        SeededFaultInjector {
            seed,
            fail_per_mille: fail_per_mille.min(1000),
            calls: AtomicU64::new(0),
        }
    }

    /// Number of times the injector has been consulted.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for SeededFaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SeededFaultInjector")
            .field("seed", &self.seed)
            .field("fail_per_mille", &self.fail_per_mille)
            .field("calls", &self.calls())
            .finish()
    }
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector for SeededFaultInjector {
    fn fault(&self, site: &str) -> Result<()> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        let mut h = self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for b in site.bytes() {
            h = mix(h ^ b as u64);
        }
        if mix(h) % 1000 < self.fail_per_mille as u64 {
            Err(AggViewError::Transient(format!(
                "injected fault at {site} (call #{n}, seed {})",
                self.seed
            )))
        } else {
            Ok(())
        }
    }
}

/// Fails an explicit set of call indices (0-based, counted across all
/// sites in consultation order).
///
/// This is the building block for exhaustive fault-schedule testing:
/// a schedule like `[0, 3]` fails the first and fourth consulted call
/// and nothing else.
pub struct ScheduledFaults {
    schedule: Vec<u64>,
    calls: AtomicU64,
}

impl ScheduledFaults {
    pub fn failing_calls(schedule: impl IntoIterator<Item = u64>) -> ScheduledFaults {
        let mut schedule: Vec<u64> = schedule.into_iter().collect();
        schedule.sort_unstable();
        schedule.dedup();
        ScheduledFaults {
            schedule,
            calls: AtomicU64::new(0),
        }
    }

    /// Number of times the injector has been consulted.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for ScheduledFaults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScheduledFaults")
            .field("schedule", &self.schedule)
            .field("calls", &self.calls())
            .finish()
    }
}

impl FaultInjector for ScheduledFaults {
    fn fault(&self, site: &str) -> Result<()> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.schedule.binary_search(&n).is_ok() {
            Err(AggViewError::Transient(format!(
                "injected fault at {site} (call #{n}, scheduled)"
            )))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_never_fails() {
        for i in 0..100 {
            assert!(NoFaults.fault(&format!("site{i}")).is_ok());
        }
    }

    #[test]
    fn seeded_is_deterministic() {
        let run = |seed| {
            let inj = SeededFaultInjector::new(seed, 300);
            (0..200)
                .map(|i| inj.fault(&format!("s{}", i % 3)).is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
        assert!(run(7).iter().any(|&f| f), "p=0.3 over 200 calls must fire");
    }

    #[test]
    fn seeded_extremes() {
        let never = SeededFaultInjector::new(1, 0);
        let always = SeededFaultInjector::new(1, 1000);
        for _ in 0..50 {
            assert!(never.fault("x").is_ok());
            assert!(always.fault("x").is_err());
        }
    }

    #[test]
    fn scheduled_fails_exactly_listed_calls() {
        let inj = ScheduledFaults::failing_calls([1, 3]);
        let fates: Vec<bool> = (0..5).map(|_| inj.fault("s").is_err()).collect();
        assert_eq!(fates, [false, true, false, true, false]);
        assert_eq!(inj.calls(), 5);
    }

    #[test]
    fn injected_errors_are_transient_and_retryable() {
        let inj = ScheduledFaults::failing_calls([0]);
        let err = inj.fault("scan").unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(err.kind(), "transient");
        assert!(err.message().contains("scan"));
    }

    #[test]
    fn maybe_fault_short_circuits() {
        assert!(maybe_fault(None, "s").is_ok());
        let inj = ScheduledFaults::failing_calls([0]);
        assert!(maybe_fault(Some(&inj), "s").is_err());
    }
}
