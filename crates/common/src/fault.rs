//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultInjector`] is consulted at well-known *sites* (storage
//! scans, executor operator boundaries) and may turn any of those calls
//! into a [`AggViewError::Transient`] failure. Injectors are
//! deterministic — a given seed or schedule always fails the same
//! calls — so any failing run reproduces exactly.
//!
//! Injection is off by default everywhere: production paths pass no
//! injector and pay only an `Option` check.

use crate::error::{AggViewError, Result};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Every fault-injection site the workspace instruments, as registered
/// prefixes: a consulted site string either equals a registered entry
/// or extends it with a `.`-separated qualifier (`storage.scan.emp`
/// matches the registered `storage.scan`).
///
/// New instrumentation points MUST be added here — the workspace-level
/// `fault_sites` test asserts that every registered entry is exercised
/// by the governance/recovery suites and that every consulted site
/// resolves to exactly one registered entry, so an unregistered site
/// (or one that silently goes untested) fails CI.
pub const REGISTERED_FAULT_SITES: &[&str] = &[
    // Execution-time sites (consulted via `fault()`).
    "storage.scan",
    "exec.join",
    "exec.groupby",
    "exec.partial-groupby",
    // Durability IO sites (consulted via `io_fault()`).
    "wal.append",
    "wal.fsync",
    "wal.truncate",
    "snapshot.write",
    "snapshot.fsync",
    "snapshot.rename",
];

/// The registered entry a consulted site string resolves to, if any.
pub fn registered_site(site: &str) -> Option<&'static str> {
    REGISTERED_FAULT_SITES.iter().copied().find(|&r| {
        site == r || (site.starts_with(r) && site.as_bytes().get(r.len()) == Some(&b'.'))
    })
}

/// How an injected IO fault manifests at a durability site.
///
/// `Error` models fsync/rename failure (the operation performs no work
/// and reports [`AggViewError::Io`]); the other two model what a crash
/// can leave on disk: a prefix of the record (`ShortWrite`) or the
/// record followed by stale bytes from recycled space
/// (`TrailingGarbage`). Recovery must tolerate both tail shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoFaultKind {
    /// The operation fails cleanly: nothing is written.
    Error,
    /// Only a prefix of the bytes reaches the file (torn write), then
    /// the operation reports failure.
    ShortWrite,
    /// The full record reaches the file **followed by garbage bytes**;
    /// the operation reports success (the garbage models recycled disk
    /// space after the committed tail).
    TrailingGarbage,
}

impl IoFaultKind {
    /// All kinds, for exhaustive crash-point sweeps.
    pub const ALL: &'static [IoFaultKind] = &[
        IoFaultKind::Error,
        IoFaultKind::ShortWrite,
        IoFaultKind::TrailingGarbage,
    ];
}

/// A hook consulted before fallible infrastructure work.
///
/// Implementations return `Err(AggViewError::Transient(_))` to simulate
/// an infrastructure failure at the call site, or `Ok(())` to let the
/// operation proceed. `site` names the instrumentation point (e.g.
/// `"storage.scan.emp"` or `"exec.join"`) so injectors can target
/// specific operators.
///
/// Durability code additionally consults [`FaultInjector::io_fault`] at
/// its IO boundaries (`wal.append`, `snapshot.rename`, ...), which can
/// demand a *shaped* failure — torn write, trailing garbage — rather
/// than a plain error. The default implementation injects nothing, so
/// existing injectors are unaffected.
pub trait FaultInjector: Send + Sync + fmt::Debug {
    fn fault(&self, site: &str) -> Result<()>;

    /// Shaped IO fault to apply at a durability site, or `None` to let
    /// the IO proceed untouched.
    fn io_fault(&self, _site: &str) -> Option<IoFaultKind> {
        None
    }
}

/// Convenience: consult an optional injector (the common call shape).
pub fn maybe_fault(injector: Option<&dyn FaultInjector>, site: &str) -> Result<()> {
    match injector {
        Some(f) => f.fault(site),
        None => Ok(()),
    }
}

/// Injector that never fails — equivalent to passing no injector.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn fault(&self, _site: &str) -> Result<()> {
        Ok(())
    }
}

/// Fails a deterministic pseudo-random subset of calls.
///
/// Each call's fate is a pure function of `(seed, site, call index)`,
/// so a seed fully determines the failure schedule regardless of
/// timing. `fail_per_mille` is the failure probability in thousandths
/// (0 = never, 1000 = always).
pub struct SeededFaultInjector {
    seed: u64,
    fail_per_mille: u16,
    calls: AtomicU64,
}

impl SeededFaultInjector {
    pub fn new(seed: u64, fail_per_mille: u16) -> SeededFaultInjector {
        SeededFaultInjector {
            seed,
            fail_per_mille: fail_per_mille.min(1000),
            calls: AtomicU64::new(0),
        }
    }

    /// Number of times the injector has been consulted.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for SeededFaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SeededFaultInjector")
            .field("seed", &self.seed)
            .field("fail_per_mille", &self.fail_per_mille)
            .field("calls", &self.calls())
            .finish()
    }
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector for SeededFaultInjector {
    fn fault(&self, site: &str) -> Result<()> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        let mut h = self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for b in site.bytes() {
            h = mix(h ^ b as u64);
        }
        if mix(h) % 1000 < self.fail_per_mille as u64 {
            Err(AggViewError::Transient(format!(
                "injected fault at {site} (call #{n}, seed {})",
                self.seed
            )))
        } else {
            Ok(())
        }
    }
}

/// Fails an explicit set of call indices (0-based, counted across all
/// sites in consultation order).
///
/// This is the building block for exhaustive fault-schedule testing:
/// a schedule like `[0, 3]` fails the first and fourth consulted call
/// and nothing else.
pub struct ScheduledFaults {
    schedule: Vec<u64>,
    calls: AtomicU64,
}

impl ScheduledFaults {
    pub fn failing_calls(schedule: impl IntoIterator<Item = u64>) -> ScheduledFaults {
        let mut schedule: Vec<u64> = schedule.into_iter().collect();
        schedule.sort_unstable();
        schedule.dedup();
        ScheduledFaults {
            schedule,
            calls: AtomicU64::new(0),
        }
    }

    /// Number of times the injector has been consulted.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for ScheduledFaults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScheduledFaults")
            .field("schedule", &self.schedule)
            .field("calls", &self.calls())
            .finish()
    }
}

impl FaultInjector for ScheduledFaults {
    fn fault(&self, site: &str) -> Result<()> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.schedule.binary_search(&n).is_ok() {
            Err(AggViewError::Transient(format!(
                "injected fault at {site} (call #{n}, scheduled)"
            )))
        } else {
            Ok(())
        }
    }
}

/// Injects one shaped IO fault at the `nth` consultation (0-based) of
/// one target site, and nothing anywhere else.
///
/// This is the building block of the crash-point harness: for every
/// `(site, occurrence, kind)` triple it produces exactly the on-disk
/// state a crash at that point would leave, deterministically.
pub struct ScheduledIoFaults {
    site: String,
    nth: u64,
    kind: IoFaultKind,
    seen: AtomicU64,
}

impl ScheduledIoFaults {
    /// Fault the `nth` consultation of `site` (exact match) with `kind`.
    pub fn at(site: impl Into<String>, nth: u64, kind: IoFaultKind) -> ScheduledIoFaults {
        ScheduledIoFaults {
            site: site.into(),
            nth,
            kind,
            seen: AtomicU64::new(0),
        }
    }

    /// How many times the target site has been consulted.
    pub fn hits(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// True once the scheduled fault has actually been delivered.
    pub fn fired(&self) -> bool {
        self.hits() > self.nth
    }
}

impl fmt::Debug for ScheduledIoFaults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScheduledIoFaults")
            .field("site", &self.site)
            .field("nth", &self.nth)
            .field("kind", &self.kind)
            .field("hits", &self.hits())
            .finish()
    }
}

impl FaultInjector for ScheduledIoFaults {
    fn fault(&self, _site: &str) -> Result<()> {
        Ok(())
    }

    fn io_fault(&self, site: &str) -> Option<IoFaultKind> {
        if site != self.site {
            return None;
        }
        let n = self.seen.fetch_add(1, Ordering::Relaxed);
        (n == self.nth).then_some(self.kind)
    }
}

/// Never fails, but records every site consulted (both execution-time
/// `fault` sites and durability `io_fault` sites). Backs the fault-site
/// registry test: run a representative workload under a recorder and
/// assert every [`REGISTERED_FAULT_SITES`] entry was consulted.
#[derive(Debug, Default)]
pub struct RecordingFaults {
    sites: Mutex<Vec<String>>,
}

impl RecordingFaults {
    pub fn new() -> RecordingFaults {
        RecordingFaults::default()
    }

    fn record(&self, site: &str) {
        let mut sites = self.sites.lock().expect("recorder poisoned");
        if !sites.iter().any(|s| s == site) {
            sites.push(site.to_string());
        }
    }

    /// Distinct site strings consulted so far, in first-seen order.
    pub fn sites(&self) -> Vec<String> {
        self.sites.lock().expect("recorder poisoned").clone()
    }
}

impl FaultInjector for RecordingFaults {
    fn fault(&self, site: &str) -> Result<()> {
        self.record(site);
        Ok(())
    }

    fn io_fault(&self, site: &str) -> Option<IoFaultKind> {
        self.record(site);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_never_fails() {
        for i in 0..100 {
            assert!(NoFaults.fault(&format!("site{i}")).is_ok());
        }
    }

    #[test]
    fn seeded_is_deterministic() {
        let run = |seed| {
            let inj = SeededFaultInjector::new(seed, 300);
            (0..200)
                .map(|i| inj.fault(&format!("s{}", i % 3)).is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
        assert!(run(7).iter().any(|&f| f), "p=0.3 over 200 calls must fire");
    }

    #[test]
    fn seeded_extremes() {
        let never = SeededFaultInjector::new(1, 0);
        let always = SeededFaultInjector::new(1, 1000);
        for _ in 0..50 {
            assert!(never.fault("x").is_ok());
            assert!(always.fault("x").is_err());
        }
    }

    #[test]
    fn scheduled_fails_exactly_listed_calls() {
        let inj = ScheduledFaults::failing_calls([1, 3]);
        let fates: Vec<bool> = (0..5).map(|_| inj.fault("s").is_err()).collect();
        assert_eq!(fates, [false, true, false, true, false]);
        assert_eq!(inj.calls(), 5);
    }

    #[test]
    fn injected_errors_are_transient_and_retryable() {
        let inj = ScheduledFaults::failing_calls([0]);
        let err = inj.fault("scan").unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(err.kind(), "transient");
        assert!(err.message().contains("scan"));
    }

    #[test]
    fn maybe_fault_short_circuits() {
        assert!(maybe_fault(None, "s").is_ok());
        let inj = ScheduledFaults::failing_calls([0]);
        assert!(maybe_fault(Some(&inj), "s").is_err());
    }

    #[test]
    fn registry_entries_are_unique_and_prefix_free() {
        for (i, a) in REGISTERED_FAULT_SITES.iter().enumerate() {
            for b in &REGISTERED_FAULT_SITES[i + 1..] {
                assert_ne!(a, b, "duplicate registry entry");
                assert!(
                    !b.starts_with(&format!("{a}.")) && !a.starts_with(&format!("{b}.")),
                    "registry entries {a} and {b} shadow each other"
                );
            }
        }
    }

    #[test]
    fn registered_site_matches_exact_and_qualified() {
        assert_eq!(registered_site("exec.join"), Some("exec.join"));
        assert_eq!(registered_site("storage.scan.emp"), Some("storage.scan"));
        assert_eq!(registered_site("storage.scanner"), None);
        assert_eq!(registered_site("bogus.site"), None);
    }

    #[test]
    fn scheduled_io_faults_fire_exactly_once_at_nth() {
        let inj = ScheduledIoFaults::at("wal.append", 2, IoFaultKind::ShortWrite);
        assert_eq!(inj.io_fault("wal.fsync"), None, "other sites untouched");
        assert_eq!(inj.io_fault("wal.append"), None);
        assert_eq!(inj.io_fault("wal.append"), None);
        assert!(!inj.fired());
        assert_eq!(inj.io_fault("wal.append"), Some(IoFaultKind::ShortWrite));
        assert!(inj.fired());
        assert_eq!(inj.io_fault("wal.append"), None, "fires only once");
        assert!(inj.fault("anything").is_ok());
    }

    #[test]
    fn default_io_fault_is_none() {
        assert_eq!(NoFaults.io_fault("wal.append"), None);
        let sched = ScheduledFaults::failing_calls([0]);
        assert_eq!(sched.io_fault("wal.append"), None);
    }

    #[test]
    fn recorder_collects_distinct_sites() {
        let rec = RecordingFaults::new();
        rec.fault("exec.join").unwrap();
        rec.fault("exec.join").unwrap();
        assert_eq!(rec.io_fault("wal.append"), None);
        assert_eq!(rec.sites(), vec!["exec.join", "wal.append"]);
    }
}
