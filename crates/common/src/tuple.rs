//! Runtime tuples.

use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// A runtime row: a fixed-arity sequence of values.
///
/// Tuples are the unit of data flow between executor operators. They are
/// deliberately simple — positional access only; column-name resolution
/// happens once, at plan-build time, producing positional indexes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Construct from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple { values }
    }

    /// Arity of the tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at position `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Consume and return the underlying values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Concatenate two tuples (used by join operators).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Project positions `idxs` into a new tuple.
    pub fn project(&self, idxs: &[usize]) -> Tuple {
        Tuple {
            values: idxs.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Total byte width of the tuple under the page/IO model.
    pub fn width(&self) -> usize {
        self.values.iter().map(Value::width).sum()
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Tuple {
        Tuple { values }
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Tuple {
        Tuple {
            values: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            v.fmt(f)?;
        }
        write!(f, "]")
    }
}

/// Build a tuple from literal-ish values: `tuple![1i64, 2.5, "x"]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_preserves_order() {
        let a = tuple![1i64, "x"];
        let b = tuple![true];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c[0], Value::Int(1));
        assert_eq!(c[2], Value::Bool(true));
    }

    #[test]
    fn project_reorders_and_duplicates() {
        let t = tuple![10i64, 20i64, 30i64];
        let p = t.project(&[2, 0, 0]);
        assert_eq!(p, tuple![30i64, 10i64, 10i64]);
    }

    #[test]
    fn width_sums_value_widths() {
        assert_eq!(tuple![1i64, "abc"].width(), 11);
    }

    #[test]
    fn display() {
        assert_eq!(tuple![1i64, "a"].to_string(), "[1, a]");
    }

    #[test]
    fn from_iterator() {
        let t: Tuple = (0..3).map(Value::Int).collect();
        assert_eq!(t.arity(), 3);
    }

    #[test]
    fn tuples_order_lexicographically() {
        let mut v = [tuple![2i64, 1i64], tuple![1i64, 9i64], tuple![1i64, 2i64]];
        v.sort();
        assert_eq!(v[0], tuple![1i64, 2i64]);
        assert_eq!(v[2], tuple![2i64, 1i64]);
    }
}
