//! Scalar values and their types.
//!
//! The paper (Section 2) assumes a database without NULLs, so [`Value`]
//! has no null variant; executor operators and the binder enforce this.
//! Floats use a *total order* (`f64::total_cmp`) so values can serve as
//! grouping keys in hash tables and sort keys in sort-based operators.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The scalar types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float with total ordering.
    Float,
    /// Immutable UTF-8 string (cheaply clonable).
    Str,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Whether the type participates in arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Width in bytes used by the page/IO model. Strings are charged a
    /// fixed declared width; actual average widths live in table
    /// statistics and override this when available.
    pub fn default_width(self) -> usize {
        match self {
            DataType::Int | DataType::Float => 8,
            DataType::Str => 16,
            DataType::Bool => 1,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STRING",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A scalar runtime value.
///
/// `Str` uses `Arc<str>` so that tuples — which are cloned freely by join
/// operators — stay cheap to copy.
#[derive(Debug, Clone)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    Bool(bool),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The runtime type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Bool(_) => DataType::Bool,
        }
    }

    /// Numeric view of the value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view of the value, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Approximate in-memory/page width of this value in bytes, used by
    /// the IO accounting layer.
    pub fn width(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len().max(1),
            Value::Bool(_) => 1,
        }
    }

    /// Compare two values of possibly different numeric types.
    ///
    /// Int and Float compare numerically; other cross-type comparisons
    /// return `None`.
    pub fn try_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.total_cmp(b)),
            (Value::Int(a), Value::Float(b)) => Some((*a as f64).total_cmp(b)),
            (Value::Float(a), Value::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.try_cmp(other) == Some(Ordering::Equal)
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: cross-type comparisons fall back to ordering by type
    /// tag so that heterogeneous collections can still be sorted
    /// deterministically (used by result-set comparison in tests).
    fn cmp(&self, other: &Self) -> Ordering {
        self.try_cmp(other)
            .unwrap_or_else(|| self.type_rank().cmp(&other.type_rank()))
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Int and Float that compare equal must hash equally: hash every
        // numeric through its f64 bit pattern.
        match self {
            Value::Int(i) => {
                state.write_u8(0);
                state.write_u64((*i as f64).to_bits());
            }
            Value::Float(f) => {
                state.write_u8(0);
                state.write_u64(f.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(1);
                s.hash(state);
            }
            Value::Bool(b) => {
                state.write_u8(2);
                b.hash(state);
            }
        }
    }
}

impl Value {
    fn type_rank(&self) -> u8 {
        match self {
            Value::Int(_) | Value::Float(_) => 0,
            Value::Str(_) => 1,
            Value::Bool(_) => 2,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_equality_is_numeric() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn equal_values_hash_equally_across_types() {
        assert_eq!(hash_of(&Value::Int(42)), hash_of(&Value::Float(42.0)));
    }

    #[test]
    fn ordering_is_total_and_consistent() {
        let mut vs = [
            Value::str("b"),
            Value::Int(2),
            Value::Bool(true),
            Value::Float(1.5),
            Value::str("a"),
            Value::Int(1),
        ];
        vs.sort();
        // Numerics first (1, 1.5, 2), then strings, then bools.
        assert_eq!(vs[0], Value::Int(1));
        assert_eq!(vs[1], Value::Float(1.5));
        assert_eq!(vs[2], Value::Int(2));
        assert_eq!(vs[3], Value::str("a"));
        assert_eq!(vs[4], Value::str("b"));
        assert_eq!(vs[5], Value::Bool(true));
    }

    #[test]
    fn cross_type_cmp_returns_none() {
        assert_eq!(Value::Int(1).try_cmp(&Value::str("1")), None);
        assert_eq!(Value::Bool(true).try_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn widths() {
        assert_eq!(Value::Int(7).width(), 8);
        assert_eq!(Value::str("abcd").width(), 4);
        assert_eq!(Value::Bool(false).width(), 1);
        assert_eq!(DataType::Str.default_width(), 16);
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(DataType::Float.to_string(), "FLOAT");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::str("x"));
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Float(4.5).as_f64(), Some(4.5));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Int(4).as_i64(), Some(4));
        assert_eq!(Value::Float(4.5).as_i64(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("s").as_str(), Some("s"));
    }
}
