//! Scalar expressions over plan columns.
//!
//! Expressions are *symbolic*: they reference [`Col`]s (base or aggregate
//! columns), not tuple positions. Before evaluation they are bound
//! against a concrete operator output layout ([`Expr::bind`]), producing
//! a positional [`BoundExpr`] that evaluates against [`Tuple`]s.

use crate::error::{AggViewError, Result};
use crate::ids::{Col, ColRef, RelId};
use crate::tuple::Tuple;
use crate::value::{DataType, Value};
use std::collections::BTreeSet;
use std::fmt;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl BinaryOp {
    fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Reference to a data-flow column.
    Col(Col),
    /// Literal constant.
    Const(Value),
    /// Binary arithmetic over numeric operands.
    Binary {
        op: BinaryOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
}

impl Expr {
    /// Column reference expression.
    pub fn col(c: impl Into<Col>) -> Expr {
        Expr::Col(c.into())
    }

    /// Constant expression.
    pub fn val(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// `self op other`.
    pub fn binary(self, op: BinaryOp, other: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// All columns referenced by this expression.
    pub fn cols_used(&self) -> BTreeSet<Col> {
        let mut out = BTreeSet::new();
        self.collect_cols(&mut out);
        out
    }

    fn collect_cols(&self, out: &mut BTreeSet<Col>) {
        match self {
            Expr::Col(c) => {
                out.insert(*c);
            }
            Expr::Const(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_cols(out);
                right.collect_cols(out);
            }
        }
    }

    /// Base relation instances referenced (aggregate columns contribute
    /// nothing here — they belong to a group-by operator, not a relation).
    pub fn rels_used(&self) -> BTreeSet<RelId> {
        self.cols_used()
            .into_iter()
            .filter_map(|c| c.as_base().map(|b| b.rel))
            .collect()
    }

    /// Base columns referenced.
    pub fn base_cols_used(&self) -> BTreeSet<ColRef> {
        self.cols_used()
            .into_iter()
            .filter_map(|c| c.as_base())
            .collect()
    }

    /// True if any referenced column is an aggregate output.
    pub fn uses_agg(&self) -> bool {
        self.cols_used().iter().any(Col::is_agg)
    }

    /// Rewrite every column reference through `f` (used when plan
    /// transformations re-home columns).
    pub fn map_cols(&self, f: &impl Fn(Col) -> Col) -> Expr {
        match self {
            Expr::Col(c) => Expr::Col(f(*c)),
            Expr::Const(v) => Expr::Const(v.clone()),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.map_cols(f)),
                right: Box::new(right.map_cols(f)),
            },
        }
    }

    /// Static result type given the types of referenced columns.
    ///
    /// Arithmetic requires numeric operands; `Int op Int` stays `Int`
    /// except division, which is `Float` (SQL-style `avg` semantics are
    /// handled by the aggregate layer, not here).
    pub fn data_type(&self, col_type: &impl Fn(Col) -> DataType) -> Result<DataType> {
        match self {
            Expr::Col(c) => Ok(col_type(*c)),
            Expr::Const(v) => Ok(v.data_type()),
            Expr::Binary { op, left, right } => {
                let lt = left.data_type(col_type)?;
                let rt = right.data_type(col_type)?;
                if !lt.is_numeric() || !rt.is_numeric() {
                    return Err(AggViewError::Schema(format!(
                        "arithmetic `{}` requires numeric operands, got {lt} and {rt}",
                        op.symbol()
                    )));
                }
                if *op == BinaryOp::Div || lt == DataType::Float || rt == DataType::Float {
                    Ok(DataType::Float)
                } else {
                    Ok(DataType::Int)
                }
            }
        }
    }

    /// Bind symbolic column references to tuple positions.
    ///
    /// `layout` maps a column to its position in the tuple the bound
    /// expression will be evaluated against; unknown columns are a plan
    /// error (the paper's "legal operator tree" condition).
    pub fn bind(&self, layout: &impl Fn(Col) -> Option<usize>) -> Result<BoundExpr> {
        match self {
            Expr::Col(c) => layout(*c)
                .map(BoundExpr::Col)
                .ok_or_else(|| AggViewError::Plan(format!("column {c} not available in input"))),
            Expr::Const(v) => Ok(BoundExpr::Const(v.clone())),
            Expr::Binary { op, left, right } => Ok(BoundExpr::Binary {
                op: *op,
                left: Box::new(left.bind(layout)?),
                right: Box::new(right.bind(layout)?),
            }),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => c.fmt(f),
            Expr::Const(v) => v.fmt(f),
            Expr::Binary { op, left, right } => {
                write!(f, "({} {} {})", left, op.symbol(), right)
            }
        }
    }
}

/// An expression with column references resolved to tuple positions.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    Col(usize),
    Const(Value),
    Binary {
        op: BinaryOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
    },
}

impl BoundExpr {
    /// Evaluate against a tuple.
    pub fn eval(&self, t: &Tuple) -> Result<Value> {
        match self {
            BoundExpr::Col(i) => Ok(t.get(*i).clone()),
            BoundExpr::Const(v) => Ok(v.clone()),
            BoundExpr::Binary { op, left, right } => {
                let l = left.eval(t)?;
                let r = right.eval(t)?;
                eval_binary(*op, &l, &r)
            }
        }
    }

    /// Evaluate with an arbitrary position-to-value accessor.
    ///
    /// Lets operators evaluate bound expressions against rows that are
    /// not materialized as a single [`Tuple`] — a column-major batch
    /// row, or the virtual concatenation of a build and a probe tuple —
    /// with identical semantics and error messages to [`eval`](Self::eval).
    pub fn eval_with(&self, get: &impl Fn(usize) -> Value) -> Result<Value> {
        match self {
            BoundExpr::Col(i) => Ok(get(*i)),
            BoundExpr::Const(v) => Ok(v.clone()),
            BoundExpr::Binary { op, left, right } => {
                let l = left.eval_with(get)?;
                let r = right.eval_with(get)?;
                eval_binary(*op, &l, &r)
            }
        }
    }
}

fn eval_binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    // Integer arithmetic stays exact except division; overflow is an
    // execution error rather than a silently wrapped result.
    let overflow =
        |a: i64, b: i64| AggViewError::Exec(format!("integer overflow ({a} {} {b})", op.symbol()));
    if let (Some(a), Some(b)) = (l.as_i64(), r.as_i64()) {
        return match op {
            BinaryOp::Add => a
                .checked_add(b)
                .map(Value::Int)
                .ok_or_else(|| overflow(a, b)),
            BinaryOp::Sub => a
                .checked_sub(b)
                .map(Value::Int)
                .ok_or_else(|| overflow(a, b)),
            BinaryOp::Mul => a
                .checked_mul(b)
                .map(Value::Int)
                .ok_or_else(|| overflow(a, b)),
            BinaryOp::Div => {
                if b == 0 {
                    Err(AggViewError::Exec("division by zero".into()))
                } else {
                    Ok(Value::Float(a as f64 / b as f64))
                }
            }
        };
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(AggViewError::Exec(format!(
                "arithmetic on non-numeric values {l} and {r}"
            )))
        }
    };
    match op {
        BinaryOp::Add => Ok(Value::Float(a + b)),
        BinaryOp::Sub => Ok(Value::Float(a - b)),
        BinaryOp::Mul => Ok(Value::Float(a * b)),
        BinaryOp::Div => {
            if b == 0.0 {
                Err(AggViewError::Exec("division by zero".into()))
            } else {
                Ok(Value::Float(a / b))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ViewId;
    use crate::tuple;

    fn c0() -> Expr {
        Expr::col(Col::base(RelId(0), 0))
    }
    fn c1() -> Expr {
        Expr::col(Col::base(RelId(1), 1))
    }

    #[test]
    fn cols_and_rels_used() {
        let e = c0().binary(BinaryOp::Add, c1().binary(BinaryOp::Mul, Expr::val(2i64)));
        assert_eq!(e.cols_used().len(), 2);
        let rels = e.rels_used();
        assert!(rels.contains(&RelId(0)) && rels.contains(&RelId(1)));
        assert!(!e.uses_agg());
        let a = Expr::col(Col::agg(ViewId::View(0), 0));
        assert!(a.uses_agg());
        assert!(a.rels_used().is_empty());
    }

    #[test]
    fn bind_and_eval_arithmetic() {
        let e = c0().binary(BinaryOp::Add, Expr::val(10i64));
        let layout = |c: Col| match c {
            Col::Base(b) if b.rel == RelId(0) && b.col == 0 => Some(1),
            _ => None,
        };
        let b = e.bind(&layout).unwrap();
        let v = b.eval(&tuple!["ignored", 5i64]).unwrap();
        assert_eq!(v, Value::Int(15));
    }

    #[test]
    fn bind_fails_on_missing_column() {
        let e = c0();
        let err = e.bind(&|_| None).unwrap_err();
        assert_eq!(err.kind(), "plan");
    }

    #[test]
    fn int_division_is_float_and_checked() {
        let e = Expr::val(7i64).binary(BinaryOp::Div, Expr::val(2i64));
        let v = e.bind(&|_| None).unwrap().eval(&tuple![]).unwrap();
        assert_eq!(v, Value::Float(3.5));
        let z = Expr::val(1i64).binary(BinaryOp::Div, Expr::val(0i64));
        assert!(z.bind(&|_| None).unwrap().eval(&tuple![]).is_err());
    }

    #[test]
    fn mixed_arithmetic_promotes_to_float() {
        let e = Expr::val(2i64).binary(BinaryOp::Mul, Expr::val(1.5f64));
        let v = e.bind(&|_| None).unwrap().eval(&tuple![]).unwrap();
        assert_eq!(v, Value::Float(3.0));
    }

    #[test]
    fn type_inference() {
        let ct = |_: Col| DataType::Int;
        assert_eq!(
            c0().binary(BinaryOp::Add, c1()).data_type(&ct).unwrap(),
            DataType::Int
        );
        assert_eq!(
            c0().binary(BinaryOp::Div, c1()).data_type(&ct).unwrap(),
            DataType::Float
        );
        let st = |_: Col| DataType::Str;
        assert!(c0().binary(BinaryOp::Add, c1()).data_type(&st).is_err());
    }

    #[test]
    fn map_cols_rewrites_references() {
        let e = c0().binary(BinaryOp::Sub, c1());
        let shifted = e.map_cols(&|c| match c {
            Col::Base(b) => Col::base(RelId(b.rel.0 + 10), b.col as usize),
            other => other,
        });
        let rels = shifted.rels_used();
        assert!(rels.contains(&RelId(10)) && rels.contains(&RelId(11)));
    }

    #[test]
    fn arithmetic_on_strings_fails_at_eval() {
        let e = Expr::val("a").binary(BinaryOp::Add, Expr::val("b"));
        assert!(e.bind(&|_| None).unwrap().eval(&tuple![]).is_err());
    }

    #[test]
    fn display_is_parenthesized() {
        let e = c0().binary(BinaryOp::Add, Expr::val(1i64));
        assert_eq!(e.to_string(), "(r0.c0 + 1)");
    }
}
