//! Allocation-free key hashing for hash joins and hash aggregation.
//!
//! The executor's hash operators used to materialize a `Vec<Value>` key
//! per input row and use it as a `HashMap` key — one heap allocation
//! plus one `Value` clone per key column *per row*. The helpers here
//! hash key columns **in place** (through [`Value`]'s `Hash` impl, so
//! `Int(3)` and `Float(3.0)` still collide as they must) and compare
//! candidate rows positionally, so the hot probe/accumulate loops touch
//! no allocator at all. Collisions are resolved by comparing the actual
//! key values, never trusting the 64-bit hash alone.
//!
//! The hasher is a fixed-key SipHash-1-3-style mix via
//! [`std::collections::hash_map::DefaultHasher`] seeded identically on
//! every thread, so **the same key hashes to the same bucket on every
//! worker** — the property partitioned parallel operators rely on to
//! route build and probe rows of one key to the same partition.

use crate::tuple::Tuple;
use crate::value::Value;
use std::hash::{Hash, Hasher};

/// Hash the projection `key_pos` of `row` without cloning any values.
///
/// Equal keys (under [`Value`]'s cross-numeric equality) hash equally,
/// on any thread.
pub fn hash_key(row: &Tuple, key_pos: &[usize]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for &i in key_pos {
        row.get(i).hash(&mut h);
    }
    h.finish()
}

/// Hash a contiguous prefix-less slice of values (an already-projected
/// key tuple).
pub fn hash_values(values: &[Value]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

/// Positional key equality: `a[a_pos[i]] == b[b_pos[i]]` for all `i`.
///
/// Used to confirm hash matches; `a_pos` and `b_pos` must have equal
/// length (the operator builds both from the same equi-key list).
pub fn keys_equal(a: &Tuple, a_pos: &[usize], b: &Tuple, b_pos: &[usize]) -> bool {
    debug_assert_eq!(a_pos.len(), b_pos.len());
    a_pos.iter().zip(b_pos).all(|(&i, &j)| a.get(i) == b.get(j))
}

/// Key equality between an already-projected key tuple (`key[i]`) and
/// the projection `pos` of `row`.
pub fn key_matches_row(key: &Tuple, row: &Tuple, pos: &[usize]) -> bool {
    debug_assert_eq!(key.arity(), pos.len());
    key.values().iter().zip(pos).all(|(k, &i)| k == row.get(i))
}

/// A map keyed by an already-computed 64-bit key hash.
///
/// The key *is* a SipHash output, so running it through the map's own
/// SipHash again on every insert and lookup would only burn cycles.
/// [`Prehashed`] passes the key straight through as the bucket hash.
pub type PrehashedMap<V> = std::collections::HashMap<u64, V, BuildPrehashed>;

/// `BuildHasher` for [`PrehashedMap`].
#[derive(Debug, Default, Clone, Copy)]
pub struct BuildPrehashed;

impl std::hash::BuildHasher for BuildPrehashed {
    type Hasher = Prehashed;
    fn build_hasher(&self) -> Prehashed {
        Prehashed(0)
    }
}

/// Identity hasher over a single `u64` write (see [`PrehashedMap`]).
#[derive(Debug, Default)]
pub struct Prehashed(u64);

impl Hasher for Prehashed {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are expected; fold anything else in cheaply so
        // the hasher stays total.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }
}

/// Seed for the fx-style columnar hash chain ([`fx_mix`]).
pub const FX_SEED: u64 = 0x517c_c1b7_2722_0a95;

/// One multiply-rotate mixing step for the columnar hash chain.
///
/// The row-at-a-time operators hash through [`std::collections::hash_map::DefaultHasher`]
/// (SipHash), which costs more per value than some whole batch kernels.
/// Columnar operators instead fold each key column into a per-row `u64`
/// with this multiply-rotate step. The hash function is a *private*
/// detail of each operator execution — candidates are always confirmed
/// by comparing the key values, and group/candidate order never depends
/// on hash values — so the batch path is free to use a cheaper mix than
/// the row path. Equal keys must still collide: numerics are fed as
/// their `f64` bit pattern with a shared tag, exactly like
/// [`Value`](crate::Value)'s `Hash` impl.
#[inline]
pub fn fx_mix(h: u64, x: u64) -> u64 {
    const K: u64 = 0x9e37_79b9_7f4a_7c15;
    (h ^ x).rotate_left(23).wrapping_mul(K)
}

/// Fold a string into the hash chain (length-suffixed 8-byte chunks, so
/// `"ab" ++ "c"` and `"a" ++ "bc"` cannot collide by concatenation).
#[inline]
pub fn fx_str(h: u64, s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut h = fx_mix(h, 1); // Str tag, mirroring Value::hash
    for chunk in bytes.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        h = fx_mix(h, u64::from_le_bytes(buf));
    }
    fx_mix(h, bytes.len() as u64)
}

/// Fold one [`Value`] into the hash chain with the same cross-numeric
/// collision guarantee as [`Value`]'s `Hash` impl: `Int(3)` and
/// `Float(3.0)` produce the same chain.
#[inline]
pub fn fx_value(h: u64, v: &Value) -> u64 {
    match v {
        Value::Int(i) => fx_mix(fx_mix(h, 0), (*i as f64).to_bits()),
        Value::Float(f) => fx_mix(fx_mix(h, 0), f.to_bits()),
        Value::Str(s) => fx_str(h, s),
        Value::Bool(b) => fx_mix(fx_mix(h, 2), u64::from(*b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn fx_cross_numeric_values_collide() {
        assert_eq!(
            fx_value(FX_SEED, &Value::Int(3)),
            fx_value(FX_SEED, &Value::Float(3.0))
        );
        assert_ne!(
            fx_value(FX_SEED, &Value::Int(3)),
            fx_value(FX_SEED, &Value::Int(4))
        );
    }

    #[test]
    fn fx_str_is_length_suffixed() {
        let ab_c = fx_str(fx_str(FX_SEED, "ab"), "c");
        let a_bc = fx_str(fx_str(FX_SEED, "a"), "bc");
        assert_ne!(ab_c, a_bc);
        assert_eq!(fx_str(FX_SEED, "hello"), fx_str(FX_SEED, "hello"));
    }

    #[test]
    fn equal_keys_hash_equally_without_cloning() {
        let a = tuple![1i64, "x", 3.5f64];
        let b = tuple!["pad", 1i64, 3.5f64, "x"];
        // a[0,1,2] vs b[1,3,2] project the same key.
        assert_eq!(hash_key(&a, &[0, 1, 2]), hash_key(&b, &[1, 3, 2]));
        assert!(keys_equal(&a, &[0, 1, 2], &b, &[1, 3, 2]));
    }

    #[test]
    fn cross_numeric_keys_collide_as_required() {
        let a = tuple![3i64];
        let b = tuple![3.0f64];
        assert_eq!(hash_key(&a, &[0]), hash_key(&b, &[0]));
        assert!(keys_equal(&a, &[0], &b, &[0]));
    }

    #[test]
    fn different_keys_compare_unequal() {
        let a = tuple![1i64, 2i64];
        let b = tuple![1i64, 3i64];
        assert!(!keys_equal(&a, &[0, 1], &b, &[0, 1]));
    }

    #[test]
    fn hash_values_matches_hash_key_of_projection() {
        let row = tuple![7i64, "k", true];
        let key = row.project(&[2, 0]);
        assert_eq!(hash_values(key.values()), hash_key(&row, &[2, 0]));
        assert!(key_matches_row(&key, &row, &[2, 0]));
        assert!(!key_matches_row(&key, &row, &[2, 1]));
    }

    #[test]
    fn prehashed_map_roundtrips_u64_keys() {
        let mut m: PrehashedMap<i32> = PrehashedMap::default();
        for k in [0u64, 1, u64::MAX, 0xdead_beef] {
            m.insert(k, (k % 97) as i32);
        }
        for k in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(m[&k], (k % 97) as i32);
        }
        assert!(!m.contains_key(&2));
    }

    #[test]
    fn empty_key_is_consistent() {
        // Degenerate grouping (global aggregate routed through the same
        // code path): every row has the same empty key.
        let a = tuple![1i64];
        let b = tuple!["z"];
        assert_eq!(hash_key(&a, &[]), hash_key(&b, &[]));
        assert!(keys_equal(&a, &[], &b, &[]));
    }
}
