//! Column-major batches: the unit of work of the vectorized executor.
//!
//! A [`Batch`] is a set of equal-length [`ColumnVec`]s plus an explicit
//! row count (so zero-column projections still know how many rows they
//! carry). Operators transpose base-table tuples into batches at scans,
//! process fixed-size tiles with per-column kernels, and materialize
//! back to `Vec<Tuple>` ([`Batch::to_tuples`]) only at plan boundaries —
//! the result set, matview extent builds, and verification.
//!
//! Byte accounting is representation-independent: a batch's
//! [`total_bytes`](Batch::total_bytes) equals the sum of
//! [`Tuple::width`] over the rows it would materialize to, so IO-page
//! and peak-intermediate numbers match the row-at-a-time path exactly.

use crate::column::ColumnVec;
use crate::hash::FX_SEED;
use crate::tuple::Tuple;
use crate::value::{DataType, Value};
use std::ops::Range;

/// A column-major batch of rows.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    cols: Vec<ColumnVec>,
    len: usize,
}

impl Batch {
    /// Build from columns, which must share one length.
    pub fn new(cols: Vec<ColumnVec>) -> Batch {
        let len = cols.first().map_or(0, ColumnVec::len);
        debug_assert!(cols.iter().all(|c| c.len() == len));
        Batch { cols, len }
    }

    /// An empty batch with one typed column per entry of `types`.
    pub fn empty_typed(types: &[DataType]) -> Batch {
        Batch {
            cols: types.iter().map(|&t| ColumnVec::with_type(t)).collect(),
            len: 0,
        }
    }

    /// An empty batch with the same column representations as `self`.
    pub fn empty_like(&self) -> Batch {
        Batch {
            cols: self.cols.iter().map(ColumnVec::empty_like).collect(),
            len: 0,
        }
    }

    /// A zero-column batch of `len` rows (projection to nothing).
    pub fn zero_cols(len: usize) -> Batch {
        Batch {
            cols: Vec::new(),
            len,
        }
    }

    /// Assemble from columns plus an explicit row count (used by kernels
    /// that build output columns independently — e.g. join emit gathers
    /// from two source batches — and for zero-column outputs).
    pub fn from_parts(cols: Vec<ColumnVec>, len: usize) -> Batch {
        debug_assert!(cols.iter().all(|c| c.len() == len));
        Batch { cols, len }
    }

    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn col(&self, i: usize) -> &ColumnVec {
        &self.cols[i]
    }

    pub fn cols(&self) -> &[ColumnVec] {
        &self.cols
    }

    /// Consume the batch into its columns.
    pub fn into_cols(self) -> Vec<ColumnVec> {
        self.cols
    }

    /// The value of column `col` at row `row`.
    pub fn value_at(&self, col: usize, row: usize) -> Value {
        self.cols[col].value_at(row)
    }

    /// Total byte width (= Σ [`Tuple::width`] of the materialized rows).
    pub fn total_bytes(&self) -> u64 {
        self.cols.iter().map(ColumnVec::total_bytes).sum()
    }

    /// Transpose row-major tuples into a batch. `project` selects which
    /// tuple positions become columns (in order); `types` gives each
    /// output column's declared type (mismatching values degrade that
    /// column to `Mixed`).
    pub fn from_tuples(rows: &[Tuple], project: &[usize], types: &[DataType]) -> Batch {
        debug_assert_eq!(project.len(), types.len());
        let cols: Vec<ColumnVec> = project
            .iter()
            .zip(types)
            .map(|(&p, &t)| ColumnVec::from_tuples_col(rows, p, t))
            .collect();
        Batch {
            cols,
            len: rows.len(),
        }
    }

    /// Materialize back to row-major tuples (the late-materialization
    /// boundary).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        (0..self.len)
            .map(|r| Tuple::new(self.cols.iter().map(|c| c.value_at(r)).collect()))
            .collect()
    }

    /// Append all rows of `other` (column representations must line up —
    /// both sides come from the same kernel).
    pub fn append(&mut self, other: &Batch) {
        debug_assert_eq!(self.n_cols(), other.n_cols());
        for (dst, src) in self.cols.iter_mut().zip(&other.cols) {
            dst.append_column(src);
        }
        self.len += other.len;
    }

    /// Gather `positions` of the rows selected by `sel` (or the whole
    /// `range` when `sel` is `None`) from `src` into `self`, returning
    /// the byte width appended.
    pub fn gather_from(
        &mut self,
        src: &Batch,
        positions: &[usize],
        sel: Option<&[u32]>,
        range: Range<usize>,
    ) -> u64 {
        debug_assert_eq!(self.n_cols(), positions.len());
        let mut bytes = 0u64;
        match sel {
            Some(sel) => {
                for (dst, &p) in self.cols.iter_mut().zip(positions) {
                    bytes += dst.append_gather(&src.cols[p], sel);
                }
                self.len += sel.len();
            }
            None => {
                for (dst, &p) in self.cols.iter_mut().zip(positions) {
                    bytes += dst.append_range(&src.cols[p], range.clone());
                }
                self.len += range.len();
            }
        }
        bytes
    }

    /// Per-row key hashes over `key_pos` for rows `range`, written into
    /// `out` (cleared and refilled). Uses the fx chain seeded at
    /// [`FX_SEED`]; equal keys (cross-numeric included) hash equally.
    pub fn hash_rows(&self, key_pos: &[usize], range: Range<usize>, out: &mut Vec<u64>) {
        out.clear();
        out.resize(range.len(), FX_SEED);
        for &k in key_pos {
            self.cols[k].hash_fx_into(range.clone(), out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn sample() -> Batch {
        let rows = vec![
            tuple![1i64, "a", 1.5f64],
            tuple![2i64, "bb", 2.5f64],
            tuple![3i64, "ccc", 3.5f64],
        ];
        Batch::from_tuples(
            &rows,
            &[0, 1, 2],
            &[DataType::Int, DataType::Str, DataType::Float],
        )
    }

    #[test]
    fn transpose_round_trips() {
        let b = sample();
        assert_eq!(b.len(), 3);
        assert_eq!(b.n_cols(), 3);
        let rows = b.to_tuples();
        assert_eq!(rows[1], tuple![2i64, "bb", 2.5f64]);
        let tuple_bytes: usize = rows.iter().map(Tuple::width).sum();
        assert_eq!(b.total_bytes(), tuple_bytes as u64);
    }

    #[test]
    fn gather_selects_and_projects() {
        let b = sample();
        let mut out = Batch::new(vec![b.col(2).empty_like(), b.col(0).empty_like()]);
        let w = out.gather_from(&b, &[2, 0], Some(&[2, 0]), 0..0);
        assert_eq!(out.len(), 2);
        assert_eq!(out.to_tuples()[0], tuple![3.5f64, 3i64]);
        assert_eq!(w, 32);
        // Range gather (no selection) appends contiguously.
        let w2 = out.gather_from(&b, &[2, 0], None, 1..3);
        assert_eq!(out.len(), 4);
        assert_eq!(w2, 32);
    }

    #[test]
    fn zero_col_batches_track_row_count() {
        let b = sample();
        let mut out = Batch::zero_cols(0);
        let w = out.gather_from(&b, &[], Some(&[0, 1, 2]), 0..0);
        assert_eq!(out.len(), 3);
        assert_eq!(w, 0);
        assert_eq!(out.to_tuples().len(), 3);
        assert_eq!(out.to_tuples()[0], tuple![]);
    }

    #[test]
    fn hash_rows_collides_only_on_equal_keys() {
        let b = sample();
        let mut h = Vec::new();
        b.hash_rows(&[0], 0..3, &mut h);
        assert_eq!(h.len(), 3);
        assert_ne!(h[0], h[1]);
        // Same key values in a different column layout hash equally.
        let b2 = Batch::new(vec![ColumnVec::Float(vec![1.0, 2.0, 3.0])]);
        let mut h2 = Vec::new();
        b2.hash_rows(&[0], 0..3, &mut h2);
        assert_eq!(h, h2); // Int(k) vs Float(k) must collide
    }

    #[test]
    fn empty_key_hashes_are_uniform() {
        let b = sample();
        let mut h = Vec::new();
        b.hash_rows(&[], 0..3, &mut h);
        assert!(h.iter().all(|&x| x == h[0]));
    }
}
