//! Z-sets: weighted multisets of tuples, the delta algebra of
//! incremental view maintenance.
//!
//! A [`ZSet`] maps each distinct row to a signed 64-bit weight. A batch
//! of DML is a Z-set: INSERT contributes `+1` per row, DELETE `-1`, and
//! UPDATE is the sum `-old ⊕ +new`. Weights compose additively under
//! [`merge`](ZSet::merge), negate under [`negate`](ZSet::negate), and
//! rows whose weights cancel disappear on
//! [`consolidate`](ZSet::consolidate) — exactly the algebra that lets
//! decomposable aggregates *retract*: merging a negative-weight partial
//! subtracts a row's contribution instead of re-aggregating the group.
//!
//! The index reuses the prehashed-key machinery from [`crate::hash`]:
//! rows are bucketed by [`hash_values`] into a [`PrehashedMap`] of
//! candidate lists and confirmed by value comparison, so lookups never
//! trust the 64-bit hash alone (`Int(3)` and `Float(3.0)` hash equally
//! and must stay distinct entries when unequal — they compare equal
//! under [`crate::Value`]'s cross-numeric equality, so they coalesce,
//! which is the same identity the executor's grouping uses).

use crate::hash::{hash_values, PrehashedMap};
use crate::tuple::Tuple;
use std::fmt;

/// A weighted multiset of rows: each distinct tuple carries a signed
/// multiplicity. The zero-weight invariant is *lazy*: entries may hold
/// weight 0 between mutations; [`consolidate`](ZSet::consolidate) drops
/// them, and the iteration/accessor API already skips them.
#[derive(Debug, Clone, Default)]
pub struct ZSet {
    /// hash(row) → indexes into `entries` with that hash.
    index: PrehashedMap<Vec<u32>>,
    /// Distinct rows with their current weight (may be 0 until
    /// consolidation).
    entries: Vec<(Tuple, i64)>,
}

impl ZSet {
    /// The empty Z-set.
    pub fn new() -> ZSet {
        ZSet::default()
    }

    /// A Z-set of insertions: weight `+1` per row (duplicates add up).
    pub fn from_inserts<I: IntoIterator<Item = Tuple>>(rows: I) -> ZSet {
        let mut z = ZSet::new();
        for r in rows {
            z.add(r, 1);
        }
        z
    }

    /// A Z-set of deletions: weight `-1` per row (duplicates add up).
    pub fn from_deletes<I: IntoIterator<Item = Tuple>>(rows: I) -> ZSet {
        let mut z = ZSet::new();
        for r in rows {
            z.add(r, -1);
        }
        z
    }

    /// Add `weight` to `row`'s multiplicity (saturating on overflow —
    /// weights are DML counts, which cannot realistically reach 2^63,
    /// and saturation keeps the algebra total without a panic path).
    pub fn add(&mut self, row: Tuple, weight: i64) {
        let h = hash_values(row.values());
        let bucket = self.index.entry(h).or_default();
        for &i in bucket.iter() {
            let entry = &mut self.entries[i as usize];
            if entry.0 == row {
                entry.1 = entry.1.saturating_add(weight);
                return;
            }
        }
        bucket.push(self.entries.len() as u32);
        self.entries.push((row, weight));
    }

    /// Current weight of `row` (0 when absent).
    pub fn weight(&self, row: &Tuple) -> i64 {
        let h = hash_values(row.values());
        match self.index.get(&h) {
            None => 0,
            Some(bucket) => bucket
                .iter()
                .map(|&i| &self.entries[i as usize])
                .find(|(r, _)| r == row)
                .map_or(0, |&(_, w)| w),
        }
    }

    /// Fold `other` into `self` (pointwise weight addition).
    pub fn merge(&mut self, other: &ZSet) {
        for (row, w) in other.iter() {
            self.add(row.clone(), w);
        }
    }

    /// Flip the sign of every weight (`Δ ↦ −Δ`).
    pub fn negate(&mut self) {
        for e in &mut self.entries {
            e.1 = e.1.checked_neg().unwrap_or(i64::MAX);
        }
    }

    /// Drop zero-weight entries and rebuild the index compactly.
    pub fn consolidate(&mut self) {
        if self.entries.iter().all(|&(_, w)| w != 0) {
            return;
        }
        let entries = std::mem::take(&mut self.entries);
        self.index.clear();
        for (row, w) in entries {
            if w != 0 {
                let h = hash_values(row.values());
                self.index
                    .entry(h)
                    .or_default()
                    .push(self.entries.len() as u32);
                self.entries.push((row, w));
            }
        }
    }

    /// Iterate non-zero `(row, weight)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.entries
            .iter()
            .filter(|&&(_, w)| w != 0)
            .map(|(r, w)| (r, *w))
    }

    /// Number of distinct rows with non-zero weight.
    pub fn distinct_len(&self) -> usize {
        self.entries.iter().filter(|&&(_, w)| w != 0).count()
    }

    /// True when every weight is zero (the additive identity).
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|&(_, w)| w == 0)
    }

    /// Sum of absolute weights — the multiset cardinality of the delta,
    /// i.e. how many physical row changes it represents.
    pub fn total_multiplicity(&self) -> u64 {
        self.entries
            .iter()
            .map(|&(_, w)| w.unsigned_abs())
            .fold(0u64, u64::saturating_add)
    }

    /// Split into plain multisets: rows with positive weight repeated
    /// `w` times, and rows with negative weight repeated `|w|` times.
    /// This realizes the Z-set as two relations an ordinary SPJ plan
    /// can scan (the delta-substituted catalog technique).
    pub fn expand(&self) -> (Vec<Tuple>, Vec<Tuple>) {
        let mut plus = Vec::new();
        let mut minus = Vec::new();
        for (row, w) in self.iter() {
            let (dst, n) = if w > 0 {
                (&mut plus, w.unsigned_abs())
            } else {
                (&mut minus, w.unsigned_abs())
            };
            for _ in 0..n {
                dst.push(row.clone());
            }
        }
        (plus, minus)
    }
}

impl fmt::Display for ZSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (row, w)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{row}×{w:+}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn inserts_then_deletes_cancel() {
        let mut z = ZSet::from_inserts([tuple![1i64, "a"], tuple![2i64, "b"]]);
        z.merge(&ZSet::from_deletes([tuple![1i64, "a"]]));
        assert_eq!(z.weight(&tuple![1i64, "a"]), 0);
        assert_eq!(z.weight(&tuple![2i64, "b"]), 1);
        assert_eq!(z.distinct_len(), 1);
        z.consolidate();
        assert_eq!(z.iter().count(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    fn duplicates_accumulate_weight() {
        let mut z = ZSet::new();
        z.add(tuple![7i64], 1);
        z.add(tuple![7i64], 1);
        z.add(tuple![7i64], -3);
        assert_eq!(z.weight(&tuple![7i64]), -1);
        assert_eq!(z.total_multiplicity(), 1);
    }

    #[test]
    fn negate_flips_all_weights() {
        let mut z = ZSet::from_inserts([tuple![1i64], tuple![1i64], tuple![2i64]]);
        z.negate();
        assert_eq!(z.weight(&tuple![1i64]), -2);
        assert_eq!(z.weight(&tuple![2i64]), -1);
    }

    #[test]
    fn expand_realizes_multiplicities() {
        let mut z = ZSet::new();
        z.add(tuple![1i64], 2);
        z.add(tuple![2i64], -1);
        z.add(tuple![3i64], 0);
        let (plus, minus) = z.expand();
        assert_eq!(plus, vec![tuple![1i64], tuple![1i64]]);
        assert_eq!(minus, vec![tuple![2i64]]);
    }

    #[test]
    fn cross_numeric_rows_coalesce_like_grouping() {
        // Int(3) == Float(3.0) under Value equality, so they are one
        // entry — the same identity hash aggregation uses.
        let mut z = ZSet::new();
        z.add(tuple![3i64], 1);
        z.add(tuple![3.0f64], 1);
        assert_eq!(z.distinct_len(), 1);
        assert_eq!(z.weight(&tuple![3i64]), 2);
    }

    #[test]
    fn empty_zset_is_identity() {
        let mut z = ZSet::new();
        assert!(z.is_empty());
        z.add(tuple![1i64], 1);
        z.add(tuple![1i64], -1);
        assert!(z.is_empty());
        z.consolidate();
        assert_eq!(z.iter().count(), 0);
        assert_eq!(z.total_multiplicity(), 0);
    }

    #[test]
    fn display_shows_signed_weights() {
        let mut z = ZSet::new();
        z.add(tuple![1i64], 2);
        z.add(tuple![2i64], -1);
        let s = z.to_string();
        assert!(s.contains("+2"), "{s}");
        assert!(s.contains("-1"), "{s}");
    }
}
