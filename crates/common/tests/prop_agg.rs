//! Property tests for aggregate decomposability — the algebraic law the
//! simple coalescing transformation rests on: splitting any input into
//! any partition and merging partial states must equal one-shot
//! aggregation.

use aggview_common::{AggAccumulator, AggFunc, PartialAggState, Value};
use proptest::prelude::*;

const FUNCS: [AggFunc; 6] = [
    AggFunc::Count,
    AggFunc::Sum,
    AggFunc::Min,
    AggFunc::Max,
    AggFunc::Avg,
    AggFunc::StdDev,
];

fn oneshot(func: AggFunc, vals: &[f64]) -> Value {
    let mut acc = AggAccumulator::new(func);
    for v in vals {
        acc.update(Some(&Value::Float(*v))).unwrap();
    }
    acc.finalize().unwrap()
}

fn approx_eq(a: &Value, b: &Value) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-7 * scale
        }
        _ => a == b,
    }
}

proptest! {
    /// Two-way split: partial(A) ⊕ partial(B) == oneshot(A ∪ B).
    #[test]
    fn merge_two_way(
        vals in proptest::collection::vec(-1e6f64..1e6, 1..60),
        split in 0usize..60,
        fidx in 0usize..FUNCS.len(),
    ) {
        let func = FUNCS[fidx];
        let split = split.min(vals.len());
        let mut a = PartialAggState::empty(func);
        let mut b = PartialAggState::empty(func);
        for v in &vals[..split] {
            a.update(Some(&Value::Float(*v))).unwrap();
        }
        for v in &vals[split..] {
            b.update(Some(&Value::Float(*v))).unwrap();
        }
        a.merge(&b).unwrap();
        let merged = a.finalize().unwrap();
        let direct = oneshot(func, &vals);
        prop_assert!(
            approx_eq(&merged, &direct),
            "{func}: merged {merged} vs direct {direct}"
        );
    }

    /// N-way random partition, merged through tuple components (the path
    /// the executor uses).
    #[test]
    fn merge_n_way_via_components(
        vals in proptest::collection::vec(-1e4f64..1e4, 1..40),
        assignment in proptest::collection::vec(0usize..4, 1..40),
        fidx in 0usize..FUNCS.len(),
    ) {
        let func = FUNCS[fidx];
        let mut parts = vec![PartialAggState::empty(func); 4];
        for (i, v) in vals.iter().enumerate() {
            let p = assignment.get(i).copied().unwrap_or(0);
            parts[p].update(Some(&Value::Float(*v))).unwrap();
        }
        let mut total = PartialAggState::empty(func);
        for p in &parts {
            let comps: Vec<Value> = p.components().to_vec();
            total.merge_components(&comps).unwrap();
        }
        let merged = total.finalize().unwrap();
        let direct = oneshot(func, &vals);
        prop_assert!(
            approx_eq(&merged, &direct),
            "{func}: merged {merged} vs direct {direct}"
        );
    }

    /// Merging is order-insensitive (commutative + associative on the
    /// observable result).
    #[test]
    fn merge_order_insensitive(
        a in proptest::collection::vec(-1e5f64..1e5, 1..20),
        b in proptest::collection::vec(-1e5f64..1e5, 1..20),
        fidx in 0usize..FUNCS.len(),
    ) {
        let func = FUNCS[fidx];
        let mk = |vals: &[f64]| {
            let mut s = PartialAggState::empty(func);
            for v in vals {
                s.update(Some(&Value::Float(*v))).unwrap();
            }
            s
        };
        let mut ab = mk(&a);
        ab.merge(&mk(&b)).unwrap();
        let mut ba = mk(&b);
        ba.merge(&mk(&a)).unwrap();
        prop_assert!(approx_eq(
            &ab.finalize().unwrap(),
            &ba.finalize().unwrap()
        ));
    }

    /// Merging an empty state is the identity.
    #[test]
    fn merge_empty_is_identity(
        vals in proptest::collection::vec(-1e5f64..1e5, 1..20),
        fidx in 0usize..FUNCS.len(),
    ) {
        let func = FUNCS[fidx];
        let mut s = PartialAggState::empty(func);
        for v in &vals {
            s.update(Some(&Value::Float(*v))).unwrap();
        }
        let before = s.finalize().unwrap();
        s.merge(&PartialAggState::empty(func)).unwrap();
        prop_assert!(approx_eq(&s.finalize().unwrap(), &before));
    }
}

proptest! {
    /// Value ordering is a total order consistent with equality and
    /// hashing (hash-equal for order-equal values).
    #[test]
    fn value_order_total_and_hash_consistent(
        xs in proptest::collection::vec(-1e9f64..1e9, 2..20)
    ) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut vs: Vec<Value> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| if i % 2 == 0 { Value::Float(*x) } else { Value::Int(*x as i64) })
            .collect();
        vs.sort();
        for w in vs.windows(2) {
            prop_assert!(w[0] <= w[1]);
            if w[0] == w[1] {
                let h = |v: &Value| {
                    let mut s = DefaultHasher::new();
                    v.hash(&mut s);
                    s.finish()
                };
                prop_assert_eq!(h(&w[0]), h(&w[1]));
            }
        }
    }
}
