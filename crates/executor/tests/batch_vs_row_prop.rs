//! Differential property test: the vectorized (batch) executor must be
//! observationally identical to the row-at-a-time reference — the same
//! rows in the same order with bitwise-equal values, the same IO-page
//! charges, the same per-operator breakdown, and the same peak
//! intermediate bytes — across serial and multi-threaded execution.
//!
//! Small, non-divisor `morsel_rows`/`batch_rows` force chunk and tile
//! boundaries to fall mid-input so stitching order is exercised.

use aggview_common::{AggFunc, AggRef, AggSpec, CmpOp, Col, Expr, Predicate, RelId, Value, ViewId};
use aggview_core::cost::CostModel;
use aggview_core::plan::{all_cols, GroupBySpec, PartialGroupSpec, Plan};
use aggview_core::query::QueryEnv;
use aggview_executor::{Engine, ExecMode, ExecOptions, ResultSet};
use aggview_storage::datagen::{gen_random_catalog, RandomCatalogConfig};
use aggview_storage::Catalog;
use proptest::prelude::*;

fn setup(seed: u64, max_rows: usize) -> (Catalog, QueryEnv) {
    let cat = gen_random_catalog(&RandomCatalogConfig {
        n_tables: 2,
        rows: (1, max_rows),
        join_domain: (1, 30),
        seed,
    })
    .unwrap();
    (cat, QueryEnv::new(vec!["t0".into(), "t1".into()]))
}

fn options(mode: ExecMode, threads: usize) -> ExecOptions {
    ExecOptions {
        threads,
        morsel_rows: 16,
        parallel_threshold: 1,
        batch_rows: 7,
        mode,
    }
}

/// A randomized select-project-join(-group-by) plan. `shape` picks the
/// operator mix, `cut` parameterizes the filter/having constants.
fn random_plan(shape: usize, cut: i64) -> Plan {
    let scan0 =
        |filters: Vec<Predicate>| Plan::scan(RelId(0), "t0", filters, all_cols(RelId(0), 4));
    let scan1 = Plan::scan(RelId(1), "t1", vec![], all_cols(RelId(1), 4));
    let eq = Predicate::eq_cols(Col::base(RelId(0), 1), Col::base(RelId(1), 1));
    let theta = Predicate::new(
        Expr::col(Col::base(RelId(0), 2)),
        CmpOp::Gt,
        Expr::col(Col::base(RelId(1), 2)),
    );
    match shape % 5 {
        // Filtered scan, mixing Int and Float constants over Int data.
        0 => scan0(vec![
            Predicate::cmp_const(Col::base(RelId(0), 1), CmpOp::Lt, Value::Int(cut)),
            Predicate::cmp_const(
                Col::base(RelId(0), 2),
                CmpOp::Ge,
                Value::Float(cut as f64 / 2.0),
            ),
        ]),
        // Hash join with a residual theta predicate.
        1 => Plan::join_all(scan0(vec![]), scan1, vec![eq, theta]),
        // Pure theta join: the nested-loop kernel.
        2 => Plan::join_all(scan0(vec![]), scan1, vec![theta]),
        // Group-by over a join, with HAVING.
        3 => Plan::group_by_all(
            Plan::join_all(scan0(vec![]), scan1, vec![eq]),
            GroupBySpec {
                owner: ViewId::Top,
                group_cols: vec![Col::base(RelId(0), 1)],
                aggs: vec![
                    AggSpec::count_star(),
                    AggSpec::new(AggFunc::Avg, Expr::col(Col::base(RelId(0), 3))),
                ],
                having: vec![Predicate::new(
                    Expr::col(Col::agg(ViewId::Top, 0)),
                    CmpOp::Ge,
                    Expr::val(Value::Int(cut.rem_euclid(8))),
                )],
            },
        ),
        // Partial aggregation below the join, coalesced above it.
        _ => {
            let aref = AggRef::new(ViewId::Top, 0);
            let agg = AggSpec::new(AggFunc::Sum, Expr::col(Col::base(RelId(0), 3)));
            Plan::group_by_all(
                Plan::join_all(
                    Plan::partial_group_by_all(
                        scan0(vec![]),
                        PartialGroupSpec {
                            group_cols: vec![Col::base(RelId(0), 1)],
                            aggs: vec![(aref, agg.clone())],
                        },
                    ),
                    scan1,
                    vec![eq],
                ),
                GroupBySpec {
                    owner: ViewId::Top,
                    group_cols: vec![Col::base(RelId(0), 1)],
                    aggs: vec![agg],
                    having: vec![],
                },
            )
        }
    }
}

/// Bitwise result identity: row order, value bits (Debug distinguishes
/// -0.0 from 0.0 and every NaN payload the executor can produce), IO
/// charges, breakdown, and the peak-intermediate high-water mark.
fn assert_identical(row: &ResultSet, batch: &ResultSet) -> Result<(), String> {
    if format!("{:?}", row.rows) != format!("{:?}", batch.rows) {
        return Err(format!(
            "rows diverge:\n  row:   {:?}\n  batch: {:?}",
            row.rows, batch.rows
        ));
    }
    if row.io_pages.to_bits() != batch.io_pages.to_bits() {
        return Err(format!(
            "io_pages diverge: {} vs {}",
            row.io_pages, batch.io_pages
        ));
    }
    if row.peak_intermediate_bytes != batch.peak_intermediate_bytes {
        return Err(format!(
            "peak bytes diverge: {} vs {}",
            row.peak_intermediate_bytes, batch.peak_intermediate_bytes
        ));
    }
    if row.breakdown.len() != batch.breakdown.len() {
        return Err("breakdown length diverges".into());
    }
    for (a, b) in row.breakdown.iter().zip(&batch.breakdown) {
        if a.op != b.op || a.pages.to_bits() != b.pages.to_bits() {
            return Err(format!("breakdown diverges: {a:?} vs {b:?}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Row and batch execution agree bit-for-bit at 1 and 4 threads.
    #[test]
    fn batch_mode_is_byte_identical_to_row_mode(
        seed in 0u64..5000,
        rows in 1usize..250,
        shape in 0usize..5,
        cut in -5i64..35,
    ) {
        let (cat, env) = setup(seed, rows);
        let plan = random_plan(shape, cut);
        for threads in [1usize, 4] {
            let row_engine = Engine::new(&cat, &env, CostModel::default())
                .with_options(options(ExecMode::Row, threads));
            let batch_engine = Engine::new(&cat, &env, CostModel::default())
                .with_options(options(ExecMode::Batch, threads));
            match (row_engine.execute(&plan), batch_engine.execute(&plan)) {
                (Ok(r), Ok(b)) => {
                    if let Err(e) = assert_identical(&r, &b) {
                        prop_assert!(false, "threads={}: {}", threads, e);
                    }
                }
                // Error *order* may differ between evaluation styles,
                // but an erroring plan must error in both modes.
                (Err(_), Err(_)) => {}
                (Ok(_), Err(e)) => prop_assert!(false, "batch errored, row ok: {e}"),
                (Err(e), Ok(_)) => prop_assert!(false, "row errored, batch ok: {e}"),
            }
        }
    }
}
