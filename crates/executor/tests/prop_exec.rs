//! Property tests for executor correctness: physical alternatives must
//! agree, and the coalescing (partial → merge) path must match direct
//! aggregation, on randomized databases.

use aggview_common::{AggFunc, AggRef, AggSpec, Col, Expr, Predicate, RelId, ViewId};
use aggview_core::cost::CostModel;
use aggview_core::plan::{all_cols, GroupBySpec, JoinAlgo, PartialGroupSpec, Plan};
use aggview_core::query::QueryEnv;
use aggview_executor::{assert_equivalent, Engine};
use aggview_storage::datagen::{gen_random_catalog, RandomCatalogConfig};
use aggview_storage::Catalog;
use proptest::prelude::*;

fn setup(seed: u64, max_rows: usize) -> (Catalog, QueryEnv) {
    let cat = gen_random_catalog(&RandomCatalogConfig {
        n_tables: 2,
        rows: (1, max_rows),
        join_domain: (1, 30),
        seed,
    })
    .unwrap();
    (cat, QueryEnv::new(vec!["t0".into(), "t1".into()]))
}

fn join_plan(algo: JoinAlgo) -> Plan {
    let mut p = Plan::join_all(
        Plan::scan(RelId(0), "t0", vec![], all_cols(RelId(0), 4)),
        Plan::scan(RelId(1), "t1", vec![], all_cols(RelId(1), 4)),
        vec![Predicate::eq_cols(
            Col::base(RelId(0), 1),
            Col::base(RelId(1), 1),
        )],
    );
    if let Plan::Join { algo: a, .. } = &mut p {
        *a = algo;
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All join algorithms produce the same multiset of rows.
    #[test]
    fn join_algorithms_agree(seed in 0u64..5000, rows in 1usize..300) {
        let (cat, env) = setup(seed, rows);
        let engine = Engine::new(&cat, &env, CostModel::default());
        let reference = engine.execute(&join_plan(JoinAlgo::NestedLoop)).unwrap();
        for algo in [JoinAlgo::Hash, JoinAlgo::SortMerge, JoinAlgo::BlockNested, JoinAlgo::Auto] {
            let rs = engine.execute(&join_plan(algo)).unwrap();
            prop_assert!(assert_equivalent(&reference, &rs).is_ok(), "{algo:?} diverges");
        }
    }

    /// Partial aggregation below the join + coalescing above equals the
    /// direct group-by, for every decomposable aggregate.
    #[test]
    fn coalescing_equals_direct(seed in 0u64..5000, rows in 1usize..200, fidx in 0usize..5) {
        let funcs = [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg];
        let func = funcs[fidx];
        let (cat, env) = setup(seed, rows);
        let engine = Engine::new(&cat, &env, CostModel::default());
        let agg = AggSpec::new(func, Expr::col(Col::base(RelId(0), 3)));
        let jp = Predicate::eq_cols(Col::base(RelId(0), 1), Col::base(RelId(1), 1));
        let gspec = GroupBySpec {
            owner: ViewId::Top,
            group_cols: vec![Col::base(RelId(0), 1)],
            aggs: vec![agg.clone()],
            having: vec![],
        };

        let direct = Plan::group_by_all(
            Plan::join_all(
                Plan::scan(RelId(0), "t0", vec![], all_cols(RelId(0), 4)),
                Plan::scan(RelId(1), "t1", vec![], all_cols(RelId(1), 4)),
                vec![jp.clone()],
            ),
            gspec.clone(),
        );

        let aref = AggRef::new(ViewId::Top, 0);
        let partial = Plan::partial_group_by_all(
            Plan::scan(RelId(0), "t0", vec![], all_cols(RelId(0), 4)),
            PartialGroupSpec {
                group_cols: vec![Col::base(RelId(0), 1)],
                aggs: vec![(aref, agg)],
            },
        );
        let coalesced = Plan::group_by_all(
            Plan::join_all(
                partial,
                Plan::scan(RelId(1), "t1", vec![], all_cols(RelId(1), 4)),
                vec![jp],
            ),
            gspec,
        );

        let a = engine.execute(&direct).unwrap();
        let b = engine.execute(&coalesced).unwrap();
        prop_assert!(
            assert_equivalent(&a, &b).is_ok(),
            "{func} coalescing diverges"
        );
    }

    /// Scan filters match brute-force filtering.
    #[test]
    fn scan_filters_are_exact(seed in 0u64..5000, cut in -5i64..35) {
        let (cat, env) = setup(seed, 150);
        let engine = Engine::new(&cat, &env, CostModel::default());
        let plan = Plan::scan(
            RelId(0),
            "t0",
            vec![Predicate::cmp_const(
                Col::base(RelId(0), 1),
                aggview_common::CmpOp::Lt,
                aggview_common::Value::Int(cut),
            )],
            all_cols(RelId(0), 4),
        );
        let rs = engine.execute(&plan).unwrap();
        let expect = cat
            .get("t0")
            .unwrap()
            .rows()
            .iter()
            .filter(|r| r.get(1).as_i64().unwrap() < cut)
            .count();
        prop_assert_eq!(rs.rows.len(), expect);
    }

    /// HAVING is equivalent to filtering the grouped output.
    #[test]
    fn having_equals_post_filter(seed in 0u64..5000, threshold in 0i64..40) {
        let (cat, env) = setup(seed, 150);
        let engine = Engine::new(&cat, &env, CostModel::default());
        let mk = |having: Vec<Predicate>| {
            Plan::group_by_all(
                Plan::scan(RelId(0), "t0", vec![], all_cols(RelId(0), 4)),
                GroupBySpec {
                    owner: ViewId::Top,
                    group_cols: vec![Col::base(RelId(0), 1)],
                    aggs: vec![AggSpec::count_star()],
                    having,
                },
            )
        };
        let unfiltered = engine.execute(&mk(vec![])).unwrap();
        let havinged = engine
            .execute(&mk(vec![Predicate::new(
                Expr::col(Col::agg(ViewId::Top, 0)),
                aggview_common::CmpOp::Ge,
                Expr::val(aggview_common::Value::Int(threshold)),
            )]))
            .unwrap();
        let cnt_idx = unfiltered.col_index(Col::agg(ViewId::Top, 0)).unwrap();
        let expect = unfiltered
            .rows
            .iter()
            .filter(|r| r.get(cnt_idx).as_i64().unwrap() >= threshold)
            .count();
        prop_assert_eq!(havinged.rows.len(), expect);
    }
}
