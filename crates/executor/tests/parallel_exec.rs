//! Parallel execution correctness: for every operator, the morsel-driven
//! parallel path at `threads ∈ {2, 4, 8}` must produce the same results
//! as the serial path on randomized databases — *exactly* (same rows,
//! same order) for scans and joins, whose chunked outputs are stitched
//! in input order, and as an equivalent multiset for aggregation, where
//! the two-phase merge may associate float sums differently.
//!
//! The governance tests check the other half of the contract: shared
//! row/byte budgets and cancellation are honoured from inside a
//! parallel operator with bounded overshoot.

use aggview_common::{AggFunc, AggSpec, CmpOp, Col, Expr, Predicate, RelId, Value, ViewId};
use aggview_core::analyze::dataflow;
use aggview_core::cost::CostModel;
use aggview_core::governor::{ResourceGovernor, ResourceLimits};
use aggview_core::plan::{all_cols, GroupBySpec, Plan};
use aggview_core::query::QueryEnv;
use aggview_executor::{assert_equivalent, Engine, ExecOptions};
use aggview_storage::datagen::{gen_random_catalog, RandomCatalogConfig};
use aggview_storage::Catalog;
use proptest::prelude::*;

fn setup(seed: u64, max_rows: usize) -> (Catalog, QueryEnv) {
    let cat = gen_random_catalog(&RandomCatalogConfig {
        n_tables: 2,
        rows: (1, max_rows),
        join_domain: (1, 30),
        seed,
    })
    .unwrap();
    (cat, QueryEnv::new(vec!["t0".into(), "t1".into()]))
}

/// Parallel options that take the multi-worker path even on tiny inputs.
fn par(threads: usize) -> ExecOptions {
    ExecOptions {
        threads,
        morsel_rows: 32,
        parallel_threshold: 1,
        ..ExecOptions::serial()
    }
}

const THREADS: [usize; 3] = [2, 4, 8];

fn filter_scan() -> Plan {
    Plan::scan(
        RelId(0),
        "t0",
        vec![Predicate::cmp_const(
            Col::base(RelId(0), 1),
            CmpOp::Lt,
            Value::Int(20),
        )],
        all_cols(RelId(0), 4),
    )
}

fn join_plan() -> Plan {
    Plan::join_all(
        filter_scan(),
        Plan::scan(RelId(1), "t1", vec![], all_cols(RelId(1), 4)),
        vec![Predicate::eq_cols(
            Col::base(RelId(0), 1),
            Col::base(RelId(1), 1),
        )],
    )
}

fn group_plan(func: AggFunc, having: Vec<Predicate>) -> Plan {
    Plan::group_by_all(
        join_plan(),
        GroupBySpec {
            owner: ViewId::Top,
            group_cols: vec![Col::base(RelId(1), 2)],
            aggs: vec![
                AggSpec::count_star(),
                AggSpec::new(func, Expr::col(Col::base(RelId(0), 3))),
            ],
            having,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scans and joins stitch worker chunks in input order, so the
    /// parallel output is byte-identical to the serial one — including
    /// the peak intermediate footprint.
    #[test]
    fn parallel_scan_and_join_match_serial_exactly(
        seed in 0u64..5000,
        rows in 1usize..300,
        t_idx in 0usize..3,
    ) {
        let (cat, env) = setup(seed, rows);
        let serial = Engine::new(&cat, &env, CostModel::default())
            .with_options(ExecOptions::with_threads(1));
        let parallel = Engine::new(&cat, &env, CostModel::default())
            .with_options(par(THREADS[t_idx]));
        for plan in [filter_scan(), join_plan()] {
            let a = serial.execute(&plan).unwrap();
            let b = parallel.execute(&plan).unwrap();
            prop_assert_eq!(&a.rows, &b.rows, "row order diverged");
            prop_assert_eq!(a.peak_intermediate_bytes, b.peak_intermediate_bytes);
        }
    }

    /// Two-phase aggregation agrees with single-phase for every
    /// decomposable aggregate, up to canonical float rounding.
    #[test]
    fn parallel_group_by_matches_serial(
        seed in 0u64..5000,
        rows in 1usize..250,
        fidx in 0usize..5,
        t_idx in 0usize..3,
    ) {
        let funcs = [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg];
        let (cat, env) = setup(seed, rows);
        let plan = group_plan(funcs[fidx], vec![]);
        let a = Engine::new(&cat, &env, CostModel::default())
            .with_options(ExecOptions::with_threads(1))
            .execute(&plan)
            .unwrap();
        let b = Engine::new(&cat, &env, CostModel::default())
            .with_options(par(THREADS[t_idx]))
            .execute(&plan)
            .unwrap();
        prop_assert!(
            assert_equivalent(&a, &b).is_ok(),
            "{} two-phase aggregation diverges at {} threads",
            funcs[fidx],
            THREADS[t_idx]
        );
    }

    /// HAVING filters see fully coalesced groups — a group split across
    /// workers must be merged before the predicate is applied.
    #[test]
    fn parallel_having_matches_serial(
        seed in 0u64..5000,
        rows in 1usize..250,
        threshold in 0i64..10,
        t_idx in 0usize..3,
    ) {
        let (cat, env) = setup(seed, rows);
        let plan = group_plan(
            AggFunc::Max,
            vec![Predicate::new(
                Expr::col(Col::agg(ViewId::Top, 0)),
                CmpOp::Ge,
                Expr::val(Value::Int(threshold)),
            )],
        );
        let a = Engine::new(&cat, &env, CostModel::default())
            .with_options(ExecOptions::with_threads(1))
            .execute(&plan)
            .unwrap();
        let b = Engine::new(&cat, &env, CostModel::default())
            .with_options(par(THREADS[t_idx]))
            .execute(&plan)
            .unwrap();
        prop_assert!(assert_equivalent(&a, &b).is_ok(), "HAVING diverges under parallelism");
    }
}

#[test]
fn parallel_row_budget_aborts_with_bounded_overshoot() {
    let (cat, env) = setup(42, 300);
    let threads = 4;
    let engine = Engine::new(&cat, &env, CostModel::default()).with_options(par(threads));

    // Sit just above the dataflow row floor: small enough that the join
    // still blows the budget mid-run, large enough that static admission
    // control lets the plan start (a cap at or under the floor would be
    // rejected with `PlanInadmissible` before any operator runs).
    let floor = dataflow::analyze_plan(&join_plan(), &cat, Some(env.rel_tables.as_slice()))
        .bounds
        .min_rows;
    let cap = floor + 5;
    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_rows(cap));
    let err = engine
        .execute_governed(&join_plan(), &gov, None)
        .unwrap_err();
    assert_eq!(err.kind(), "resource-exhausted");
    // Charges are per output tuple through a shared atomic: each worker
    // stops at its own first failed charge, so the overshoot is bounded
    // by one tuple per worker.
    assert!(
        gov.rows_used() <= cap + threads as u64,
        "abort was not prompt: {} rows charged against a cap of {cap} on {threads} workers",
        gov.rows_used()
    );
}

#[test]
fn parallel_byte_budget_aborts_with_structured_error() {
    let (cat, env) = setup(43, 300);
    let engine = Engine::new(&cat, &env, CostModel::default()).with_options(par(4));
    let plan = group_plan(AggFunc::Sum, vec![]);
    // Just above the static byte floor so admission passes but the
    // real (wider) tuples exhaust the budget mid-run.
    let floor = dataflow::analyze_plan(&plan, &cat, Some(env.rel_tables.as_slice()))
        .bounds
        .min_bytes;
    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_bytes(floor + 48));
    let err = engine.execute_governed(&plan, &gov, None).unwrap_err();
    assert_eq!(err.kind(), "resource-exhausted");
    assert!(!err.is_retryable());
}

#[test]
fn cancellation_is_observed_inside_parallel_operators() {
    let (cat, env) = setup(44, 300);
    let engine = Engine::new(&cat, &env, CostModel::default()).with_options(par(8));
    let gov = ResourceGovernor::unlimited();
    gov.token().cancel();
    let err = engine
        .execute_governed(&join_plan(), &gov, None)
        .unwrap_err();
    assert_eq!(err.kind(), "cancelled");
    assert!(!err.is_retryable());
}
