//! Executor edge cases: empty inputs, empty groups, degenerate keys,
//! zero-width projections, and concurrent catalog access.

use aggview_common::{
    AggFunc, AggSpec, CmpOp, Col, DataType, Expr, Predicate, RelId, Schema, Value, ViewId,
};
use aggview_core::cost::CostModel;
use aggview_core::plan::{all_cols, GroupBySpec, Plan};
use aggview_core::query::QueryEnv;
use aggview_executor::Engine;
use aggview_storage::{Catalog, Table};
use std::sync::Arc;

fn empty_and_tiny() -> (Catalog, QueryEnv) {
    let cat = Catalog::new();
    cat.add(
        Table::builder(
            "empty",
            Schema::of(&[("a", DataType::Int), ("b", DataType::Float)]),
        )
        .primary_key(&["a"])
        .unwrap()
        .build()
        .unwrap(),
    )
    .unwrap();
    let mut tiny = Table::builder(
        "tiny",
        Schema::of(&[("a", DataType::Int), ("b", DataType::Float)]),
    )
    .primary_key(&["a"])
    .unwrap();
    tiny.push(aggview_common::tuple![1i64, 10.0]).unwrap();
    tiny.push(aggview_common::tuple![2i64, 20.0]).unwrap();
    cat.add(tiny.build().unwrap()).unwrap();
    (cat, QueryEnv::new(vec!["empty".into(), "tiny".into()]))
}

#[test]
fn scan_of_empty_table_charges_nothing_and_yields_nothing() {
    let (cat, env) = empty_and_tiny();
    let engine = Engine::new(&cat, &env, CostModel::default());
    let rs = engine
        .execute(&Plan::scan(
            RelId(0),
            "empty",
            vec![],
            all_cols(RelId(0), 2),
        ))
        .unwrap();
    assert!(rs.rows.is_empty());
    assert_eq!(rs.io_pages, 0.0);
}

#[test]
fn group_by_over_empty_input_yields_no_groups() {
    let (cat, env) = empty_and_tiny();
    let engine = Engine::new(&cat, &env, CostModel::default());
    let plan = Plan::group_by_all(
        Plan::scan(RelId(0), "empty", vec![], all_cols(RelId(0), 2)),
        GroupBySpec {
            owner: ViewId::Top,
            group_cols: vec![Col::base(RelId(0), 0)],
            aggs: vec![AggSpec::new(
                AggFunc::Sum,
                Expr::col(Col::base(RelId(0), 1)),
            )],
            having: vec![],
        },
    );
    let rs = engine.execute(&plan).unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn scalar_aggregate_over_nonempty_input_yields_one_row() {
    // Empty grouping-column list: one global group.
    let (cat, env) = empty_and_tiny();
    let engine = Engine::new(&cat, &env, CostModel::default());
    let plan = Plan::group_by_all(
        Plan::scan(RelId(1), "tiny", vec![], all_cols(RelId(1), 2)),
        GroupBySpec {
            owner: ViewId::Top,
            group_cols: vec![],
            aggs: vec![AggSpec::new(
                AggFunc::Avg,
                Expr::col(Col::base(RelId(1), 1)),
            )],
            having: vec![],
        },
    );
    let rs = engine.execute(&plan).unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0].get(0), &Value::Float(15.0));
}

#[test]
fn join_with_empty_side_is_empty() {
    let (cat, env) = empty_and_tiny();
    let engine = Engine::new(&cat, &env, CostModel::default());
    let plan = Plan::join_all(
        Plan::scan(RelId(0), "empty", vec![], all_cols(RelId(0), 2)),
        Plan::scan(RelId(1), "tiny", vec![], all_cols(RelId(1), 2)),
        vec![Predicate::eq_cols(
            Col::base(RelId(0), 0),
            Col::base(RelId(1), 0),
        )],
    );
    let rs = engine.execute(&plan).unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn filter_eliminating_all_rows_then_aggregate() {
    let (cat, env) = empty_and_tiny();
    let engine = Engine::new(&cat, &env, CostModel::default());
    let plan = Plan::group_by_all(
        Plan::scan(
            RelId(1),
            "tiny",
            vec![Predicate::cmp_const(
                Col::base(RelId(1), 0),
                CmpOp::Gt,
                Value::Int(100),
            )],
            all_cols(RelId(1), 2),
        ),
        GroupBySpec {
            owner: ViewId::Top,
            group_cols: vec![Col::base(RelId(1), 0)],
            aggs: vec![AggSpec::count_star()],
            having: vec![],
        },
    );
    let rs = engine.execute(&plan).unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn catalog_is_safely_shared_across_threads() {
    let (cat, _) = empty_and_tiny();
    let cat = Arc::new(cat);
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let cat = Arc::clone(&cat);
            std::thread::spawn(move || {
                let env = QueryEnv::new(vec!["empty".into(), "tiny".into()]);
                let engine = Engine::new(&cat, &env, CostModel::default());
                let plan = Plan::scan(RelId(1), "tiny", vec![], all_cols(RelId(1), 2));
                let rs = engine.execute(&plan).unwrap();
                assert_eq!(rs.rows.len(), 2, "thread {i}");
                rs.rows.len()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 2);
    }
}

#[test]
fn optimizer_handles_empty_tables_gracefully() {
    use aggview_core::optimizer::multi_view::optimize;
    use aggview_core::query::{CanonicalQuery, TopGroup};
    use aggview_core::OptimizerConfig;
    let (cat, _) = empty_and_tiny();
    let mut env = QueryEnv::default();
    let e = env.add_rel("empty");
    let t = env.add_rel("tiny");
    let q = CanonicalQuery {
        env,
        views: vec![],
        base_rels: vec![e, t],
        preds: vec![Predicate::eq_cols(Col::base(e, 0), Col::base(t, 0))],
        group: Some(TopGroup {
            group_cols: vec![Col::base(t, 0)],
            aggs: vec![AggSpec::count_star()],
            having: vec![],
        }),
        projection: vec![Col::base(t, 0), Col::agg(ViewId::Top, 0)],
    };
    let opt = optimize(&q, &cat, CostModel::default(), &OptimizerConfig::default()).unwrap();
    let engine = Engine::new(&cat, &q.env, CostModel::default());
    let rs = engine.execute(&opt.plan).unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn duplicate_join_values_multiply_correctly() {
    // tiny ⋈ tiny on a constant-equal column produces a full cross of
    // matching keys.
    let cat = Catalog::new();
    let mut b = Table::builder(
        "dups",
        Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]),
    );
    for i in 0..4 {
        b.push(aggview_common::tuple![1i64, i as i64]).unwrap();
    }
    cat.add(b.build().unwrap()).unwrap();
    let env = QueryEnv::new(vec!["dups".into(), "dups".into()]);
    let engine = Engine::new(&cat, &env, CostModel::default());
    let plan = Plan::join_all(
        Plan::scan(RelId(0), "dups", vec![], all_cols(RelId(0), 2)),
        Plan::scan(RelId(1), "dups", vec![], all_cols(RelId(1), 2)),
        vec![Predicate::eq_cols(
            Col::base(RelId(0), 0),
            Col::base(RelId(1), 0),
        )],
    );
    let rs = engine.execute(&plan).unwrap();
    assert_eq!(rs.rows.len(), 16, "4×4 matches on the shared key");
}
