//! The recursive plan evaluator.
//!
//! Evaluation is materialized (each operator consumes and produces
//! `Vec<Tuple>` in row mode, a columnar [`Batch`] in the default batch
//! mode); IO is *accounted*, not performed: every operator charges the
//! pages the paper's cost model says it would transfer, computed from
//! the **actual** sizes of its inputs and outputs via the shared
//! formulas in [`aggview_core::cost::ops`].
//!
//! The two modes ([`crate::parallel::ExecMode`]) are observationally
//! identical — same rows in the same order, same IO pages, same peak
//! intermediate bytes, same governor/fault/analyzer behavior — and the
//! row path is kept as the executable reference the differential tests
//! compare the vectorized path against. Batches materialize back to
//! rows only at the plan boundary ([`ResultSet::rows`]).

use crate::parallel::{self, ExecMode, ExecOptions, JoinEmit};
use crate::partition::AggInput;
use crate::vector;
use aggview_common::expr::BoundExpr;
use aggview_common::fault::{maybe_fault, FaultInjector};
use aggview_common::{
    AggFunc, AggRef, AggViewError, Batch, Col, ColumnVec, DataType, Predicate, RelId, Result, Tuple,
};
use aggview_core::analyze::dataflow;
use aggview_core::cost::ops::{self, JoinSides};
use aggview_core::cost::CostModel;
use aggview_core::governor::ResourceGovernor;
use aggview_core::plan::{AggAlgo, GroupBySpec, JoinAlgo, PartialAggSpec, PartialGroupSpec, Plan};
use aggview_core::query::QueryEnv;
use aggview_storage::Catalog;
use std::collections::HashMap;

/// One operator's measured IO charge.
#[derive(Debug, Clone, PartialEq)]
pub struct IoBreakdown {
    /// Operator description (e.g. `scan emp`, `join[hash]`).
    pub op: String,
    /// Pages charged.
    pub pages: f64,
}

/// The result of executing a plan.
#[derive(Debug, Clone)]
pub struct ResultSet {
    /// Output layout: `rows[i][k]` is the value of `cols[k]`.
    pub cols: Vec<Col>,
    /// Output tuples.
    pub rows: Vec<Tuple>,
    /// Total measured IO in pages.
    pub io_pages: f64,
    /// Per-operator breakdown, in post-order.
    pub breakdown: Vec<IoBreakdown>,
    /// Largest materialized operator output, in bytes — the memory
    /// high-water mark the paper's transformations try to shrink.
    pub peak_intermediate_bytes: u64,
    /// Typed→Mixed column demotions observed during this execution.
    /// Zero for any plan the dataflow pass certifies Mixed-free; a
    /// non-zero count means a column the planner typed fell back to the
    /// `Value`-enum representation (attribution is best-effort when
    /// queries run concurrently in one process).
    pub mixed_demotions: u64,
}

impl ResultSet {
    /// Position of a column in the layout.
    pub fn col_index(&self, c: Col) -> Option<usize> {
        self.cols.iter().position(|x| *x == c)
    }
}

/// Plan evaluator bound to a catalog and query environment.
#[derive(Debug, Clone, Copy)]
pub struct Engine<'a> {
    pub catalog: &'a Catalog,
    pub env: &'a QueryEnv,
    pub model: CostModel,
    /// Parallelism and morsel tuning for data-parallel operators.
    pub options: ExecOptions,
}

/// Per-execution state threaded through the operator tree: the IO
/// breakdown being accumulated, the resource governor consulted at
/// every operator boundary, and the (off-by-default) fault injector.
struct ExecCtx<'e> {
    breakdown: Vec<IoBreakdown>,
    gov: &'e ResourceGovernor,
    faults: Option<&'e dyn FaultInjector>,
    options: ExecOptions,
    peak_bytes: u64,
}

impl ExecCtx<'_> {
    /// Charge one materialized output tuple against the row and byte
    /// budgets. Called exactly once per tuple an operator produces, at
    /// the moment it is produced, so a budget overrun aborts within the
    /// operator that crossed it.
    fn charge_tuple(&self, t: &Tuple) -> Result<()> {
        self.gov.charge_rows(1)?;
        self.gov.charge_bytes(t.width() as u64)
    }

    /// Record one operator's materialized output size for the peak
    /// intermediate high-water mark.
    fn note_op_output(&mut self, bytes: u64) {
        self.peak_bytes = self.peak_bytes.max(bytes);
    }
}

/// One operator's materialized output: row-major in row mode, columnar
/// in batch mode. The mode is fixed per execution, so an operator's
/// children always hand it the representation it expects; rows are
/// materialized from batches only at the plan boundary.
enum Data {
    Rows(Vec<Tuple>),
    Batch(Batch),
}

impl Data {
    fn len(&self) -> usize {
        match self {
            Data::Rows(r) => r.len(),
            Data::Batch(b) => b.len(),
        }
    }

    /// Late materialization: row-major output at the plan boundary.
    fn into_rows(self) -> Vec<Tuple> {
        match self {
            Data::Rows(r) => r,
            Data::Batch(b) => b.to_tuples(),
        }
    }
}

/// Collect every input position a bound predicate reads.
fn bound_cols(preds: &[aggview_common::predicate::BoundPredicate], out: &mut Vec<usize>) {
    fn walk(e: &BoundExpr, out: &mut Vec<usize>) {
        match e {
            BoundExpr::Col(i) => out.push(*i),
            BoundExpr::Const(_) => {}
            BoundExpr::Binary { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
        }
    }
    for p in preds {
        walk(&p.left, out);
        walk(&p.right, out);
    }
}

impl<'a> Engine<'a> {
    pub fn new(catalog: &'a Catalog, env: &'a QueryEnv, model: CostModel) -> Self {
        Engine {
            catalog,
            env,
            model,
            options: ExecOptions::default(),
        }
    }

    /// Replace the executor options (thread count, morsel size).
    pub fn with_options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// Execute a plan, returning rows and measured IO.
    pub fn execute(&self, plan: &Plan) -> Result<ResultSet> {
        self.execute_governed(plan, &ResourceGovernor::unlimited(), None)
    }

    /// Execute a plan under a [`ResourceGovernor`] and an optional
    /// [`FaultInjector`].
    ///
    /// Every operator checks cancellation and the wall-clock deadline on
    /// entry, and charges each materialized output tuple against the
    /// governor's row/byte budgets, so runaway intermediates abort with
    /// [`AggViewError::ResourceExhausted`] (or
    /// [`AggViewError::Cancelled`]) within one operator boundary rather
    /// than exhausting memory. The fault injector, when present, is
    /// consulted at storage scans and operator entries and may surface
    /// [`AggViewError::Transient`] failures for robustness testing.
    ///
    /// Before any work starts, the plan must pass the static
    /// [`aggview_core::PlanAnalyzer`] integrity gate; a defective plan
    /// is rejected with [`AggViewError::PlanInvalid`] instead of being
    /// executed. When the governor carries a row or byte budget, the
    /// dataflow pass then derives guaranteed lower bounds on the plan's
    /// materialized output; a plan whose *floor* already exceeds a
    /// budget can only end in [`AggViewError::ResourceExhausted`] after
    /// wasted work, so it is rejected up front with
    /// [`AggViewError::PlanInadmissible`].
    pub fn execute_governed(
        &self,
        plan: &Plan,
        gov: &ResourceGovernor,
        faults: Option<&dyn FaultInjector>,
    ) -> Result<ResultSet> {
        plan.validate(self.catalog, &self.env.rel_tables)?;
        aggview_core::PlanAnalyzer::new(self.catalog)
            .with_env(self.env)
            .verify(plan)?;
        self.admit(plan, gov)?;
        let demotions_before = aggview_common::mixed_demotions();
        let mut ctx = ExecCtx {
            breakdown: Vec::new(),
            gov,
            faults,
            options: self.options,
            peak_bytes: 0,
        };
        let (cols, data) = self.exec(plan, &mut ctx)?;
        let io_pages = ctx.breakdown.iter().map(|b| b.pages).sum();
        Ok(ResultSet {
            cols,
            rows: data.into_rows(),
            io_pages,
            breakdown: ctx.breakdown,
            peak_intermediate_bytes: ctx.peak_bytes,
            mixed_demotions: aggview_common::mixed_demotions().saturating_sub(demotions_before),
        })
    }

    /// Static admission control: reject a plan whose guaranteed minimum
    /// resource use already exceeds the governor's budgets. The bounds
    /// are sums of per-operator output floors, mirroring how the
    /// governor charges cumulatively at every operator boundary, so a
    /// rejection is never spurious: executing the plan would provably
    /// exhaust the same budget mid-run.
    fn admit(&self, plan: &Plan, gov: &ResourceGovernor) -> Result<()> {
        let limits = gov.limits();
        if limits.max_rows.is_none() && limits.max_bytes.is_none() {
            return Ok(());
        }
        let flow = dataflow::analyze_plan(plan, self.catalog, Some(self.env.rel_tables.as_slice()));
        if let Some(cap) = limits.max_rows {
            if flow.bounds.min_rows > cap {
                return Err(AggViewError::PlanInadmissible(format!(
                    "plan materializes at least {} rows, over the {cap}-row budget",
                    flow.bounds.min_rows
                )));
            }
        }
        if let Some(cap) = limits.max_bytes {
            if flow.bounds.min_bytes > cap {
                return Err(AggViewError::PlanInadmissible(format!(
                    "plan materializes at least {} bytes, over the {cap}-byte budget",
                    flow.bounds.min_bytes
                )));
            }
        }
        Ok(())
    }

    fn exec(&self, plan: &Plan, ctx: &mut ExecCtx<'_>) -> Result<(Vec<Col>, Data)> {
        match plan {
            Plan::Scan {
                rel,
                table,
                filters,
                project,
            } => self.exec_scan(*rel, table, filters, project, ctx),
            Plan::Join {
                algo,
                left,
                right,
                preds,
                project,
            } => self.exec_join(*algo, left, right, preds, project, ctx),
            Plan::GroupBy {
                algo,
                input,
                spec,
                project,
            } => self.exec_group_by(plan, *algo, input, spec, project, ctx),
            Plan::PartialGroupBy {
                algo,
                input,
                spec,
                project,
            } => self.exec_partial_group_by(plan, *algo, input, spec, project, ctx),
            Plan::PartialAggregate {
                algo,
                input,
                spec,
                project,
            } => self.exec_partial_aggregate(plan, *algo, input, spec, project, ctx),
            Plan::EmptyScan { project, types, .. } => self.exec_empty_scan(project, types, ctx),
            Plan::ExtentScan {
                view,
                table,
                cols,
                outputs,
                filters,
                project,
                ..
            } => self.exec_extent_scan(view, table, cols, outputs, filters, project, ctx),
        }
    }

    /// A subtree the dataflow pass proved empty: produce the declared
    /// layout with zero rows, charging no IO and touching no storage.
    /// In batch mode the (empty) columns are typed from the operator's
    /// recorded schema so downstream kernels stay on their fast paths.
    fn exec_empty_scan(
        &self,
        project: &[Col],
        types: &[DataType],
        ctx: &mut ExecCtx<'_>,
    ) -> Result<(Vec<Col>, Data)> {
        ctx.gov.check_interrupt()?;
        ctx.breakdown.push(IoBreakdown {
            op: "empty-scan".into(),
            pages: 0.0,
        });
        ctx.note_op_output(0);
        let data = match ctx.options.mode {
            ExecMode::Row => Data::Rows(Vec::new()),
            ExecMode::Batch => Data::Batch(Batch::from_parts(
                types.iter().map(|&t| ColumnVec::with_type(t)).collect(),
                0,
            )),
        };
        Ok((project.to_vec(), data))
    }

    /// Scan a materialized-view extent: read the extent table like a
    /// base table, but expose each physical column under the logical
    /// identity the matcher assigned it (group column, finalized
    /// aggregate, or stored partial-state component).
    #[allow(clippy::too_many_arguments)]
    fn exec_extent_scan(
        &self,
        view: &str,
        table: &str,
        cols: &[usize],
        outputs: &[Col],
        filters: &[Predicate],
        project: &[Col],
        ctx: &mut ExecCtx<'_>,
    ) -> Result<(Vec<Col>, Data)> {
        ctx.gov.check_interrupt()?;
        maybe_fault(ctx.faults, &format!("storage.scan.{table}"))?;
        let t = self.catalog.get(table)?;
        let bytes: usize = t.rows().iter().map(Tuple::width).sum();
        let pages = self.model.page.pages_for_bytes(bytes as f64);
        ctx.breakdown.push(IoBreakdown {
            op: format!("extent-scan {table} (matview {view})"),
            pages: ops::scan_io(pages),
        });
        // Logical identity `outputs[i]` lives at physical column `cols[i]`.
        let layout: HashMap<Col, usize> = outputs
            .iter()
            .enumerate()
            .map(|(i, &o)| (o, cols[i]))
            .collect();
        let bound: Vec<_> = filters
            .iter()
            .map(|p| p.bind(&|c| layout.get(&c).copied()))
            .collect::<Result<_>>()?;
        let positions: Vec<usize> = project
            .iter()
            .map(|c| {
                layout.get(c).copied().ok_or_else(|| {
                    AggViewError::Plan(format!("extent scan projects unmapped column {c}"))
                })
            })
            .collect::<Result<_>>()?;
        let data = self.scan_tail(
            ctx,
            t.rows(),
            t.schema(),
            filters,
            &layout,
            &bound,
            &positions,
        )?;
        Ok((project.to_vec(), data))
    }

    /// Shared tail of both scan operators: run the pushed-down filters
    /// and the projection over the table's rows in the active mode.
    ///
    /// `layout` maps logical columns to *physical* tuple positions, and
    /// `bound` are `filters` already bound against it (so any
    /// unknown-column error has already surfaced). The batch path
    /// transposes only the physical columns the filters and projection
    /// actually touch, re-binding onto that compact layout — which
    /// cannot fail — before running the columnar kernel.
    #[allow(clippy::too_many_arguments)]
    fn scan_tail(
        &self,
        ctx: &mut ExecCtx<'_>,
        rows: &[Tuple],
        schema: &aggview_common::Schema,
        filters: &[Predicate],
        layout: &HashMap<Col, usize>,
        bound: &[aggview_common::predicate::BoundPredicate],
        positions: &[usize],
    ) -> Result<Data> {
        match ctx.options.mode {
            ExecMode::Row => {
                let (out, out_bytes) =
                    parallel::filter_project(&ctx.options, ctx.gov, rows, bound, positions)?;
                ctx.note_op_output(out_bytes);
                Ok(Data::Rows(out))
            }
            ExecMode::Batch => {
                let mut used: Vec<usize> = positions.to_vec();
                bound_cols(bound, &mut used);
                used.sort_unstable();
                used.dedup();
                let remap: HashMap<usize, usize> =
                    used.iter().enumerate().map(|(n, &p)| (p, n)).collect();
                let types: Vec<DataType> = used.iter().map(|&p| schema.field(p).ty).collect();
                let bound_c: Vec<_> = filters
                    .iter()
                    .map(|p| p.bind(&|c| layout.get(&c).and_then(|fp| remap.get(fp)).copied()))
                    .collect::<Result<_>>()?;
                let cpos: Vec<usize> = positions.iter().map(|p| remap[p]).collect();
                let (out, out_bytes) = vector::scan_filter_project(
                    &ctx.options,
                    ctx.gov,
                    rows,
                    &used,
                    &types,
                    &bound_c,
                    &cpos,
                )?;
                ctx.note_op_output(out_bytes);
                Ok(Data::Batch(out))
            }
        }
    }

    fn exec_scan(
        &self,
        rel: RelId,
        table: &str,
        filters: &[Predicate],
        project: &[Col],
        ctx: &mut ExecCtx<'_>,
    ) -> Result<(Vec<Col>, Data)> {
        ctx.gov.check_interrupt()?;
        maybe_fault(ctx.faults, &format!("storage.scan.{table}"))?;
        let t = self.catalog.get(table)?;
        // The scan reads the whole table.
        let bytes: usize = t.rows().iter().map(Tuple::width).sum();
        let pages = self.model.page.pages_for_bytes(bytes as f64);
        ctx.breakdown.push(IoBreakdown {
            op: format!("scan {table}"),
            pages: ops::scan_io(pages),
        });
        // Bind filters against the base layout.
        let base_cols: Vec<Col> = (0..t.schema().len()).map(|c| Col::base(rel, c)).collect();
        let layout = layout_map(&base_cols);
        let bound: Vec<_> = filters
            .iter()
            .map(|p| p.bind(&|c| layout.get(&c).copied()))
            .collect::<Result<_>>()?;
        let positions: Vec<usize> = project
            .iter()
            .map(|c| {
                layout.get(c).copied().ok_or_else(|| {
                    AggViewError::Plan(format!("scan projection of foreign column {c}"))
                })
            })
            .collect::<Result<_>>()?;
        let data = self.scan_tail(
            ctx,
            t.rows(),
            t.schema(),
            filters,
            &layout,
            &bound,
            &positions,
        )?;
        Ok((project.to_vec(), data))
    }

    fn exec_join(
        &self,
        algo: JoinAlgo,
        left: &Plan,
        right: &Plan,
        preds: &[Predicate],
        project: &[Col],
        ctx: &mut ExecCtx<'_>,
    ) -> Result<(Vec<Col>, Data)> {
        ctx.gov.check_interrupt()?;
        maybe_fault(ctx.faults, "exec.join")?;
        let (lcols, ldata) = self.exec(left, ctx)?;
        let (rcols, rdata) = self.exec(right, ctx)?;
        let sides = JoinSides {
            left_rows: ldata.len() as f64,
            left_pages: self.pages_of_data(&ldata),
            right_rows: rdata.len() as f64,
            right_pages: self.pages_of_data(&rdata),
        };
        let mem = self.model.io.mem_pages;
        let (algo, charge) = match algo {
            JoinAlgo::Auto => ops::best_join(&sides, preds, mem),
            a => {
                if !ops::join_algo_applicable(a, preds) {
                    return Err(AggViewError::Exec(format!(
                        "join algorithm {a} requires an equality predicate"
                    )));
                }
                (a, ops::join_io(a, &sides, preds, mem))
            }
        };
        ctx.breakdown.push(IoBreakdown {
            op: format!("join[{algo}]"),
            pages: charge,
        });

        // Combined layout: left columns then right columns.
        let mut all_cols = lcols.clone();
        all_cols.extend(rcols.iter().copied());
        let layout = layout_map(&all_cols);
        let llayout = layout_map(&lcols);
        let rlayout = layout_map(&rcols);

        // Split predicates once, by reference: hashable equalities become
        // positional key pairs, everything else stays residual.
        let mut eq_keys: Vec<(usize, usize)> = Vec::new(); // (left pos, right pos)
        let mut residual: Vec<&Predicate> = Vec::new();
        for p in preds {
            match p.as_col_eq_col() {
                Some((a, b)) => {
                    match (llayout.get(&a), rlayout.get(&b)) {
                        (Some(&la), Some(&rb)) => {
                            eq_keys.push((la, rb));
                            continue;
                        }
                        _ => {
                            if let (Some(&lb), Some(&ra)) = (llayout.get(&b), rlayout.get(&a)) {
                                eq_keys.push((lb, ra));
                                continue;
                            }
                        }
                    }
                    residual.push(p);
                }
                None => residual.push(p),
            }
        }
        let bound_residual: Vec<_> = residual
            .iter()
            .map(|p| p.bind(&|c| layout.get(&c).copied()))
            .collect::<Result<_>>()?;
        let positions: Vec<usize> = project
            .iter()
            .map(|c| {
                layout.get(c).copied().ok_or_else(|| {
                    AggViewError::Plan(format!("join projects unavailable column {c}"))
                })
            })
            .collect::<Result<_>>()?;

        // Build on the smaller input, probe the larger (hash join only).
        let build_left = ldata.len() <= rdata.len();
        let (build_pos, probe_pos): (Vec<usize>, Vec<usize>) = if build_left {
            eq_keys.iter().copied().unzip()
        } else {
            eq_keys.iter().map(|&(l, r)| (r, l)).unzip()
        };
        // Peak accounting: the hash path holds the entire build side
        // resident while probing, and the nested-loop path materializes
        // the same side as its inner input — charge both uniformly, the
        // same way the cost model's Join arm prices build residency.
        let held_bytes = if build_left {
            bytes_of_data(&ldata)
        } else {
            bytes_of_data(&rdata)
        };
        let build_hint = if build_left {
            self.stats_rows_hint(left)
        } else {
            self.stats_rows_hint(right)
        };

        let (out, out_bytes) = match (ldata, rdata) {
            (Data::Rows(lrows), Data::Rows(rrows)) => {
                let (out, bytes) = if eq_keys.is_empty() {
                    parallel::nested_loop_join(
                        &ctx.options,
                        ctx.gov,
                        &lrows,
                        &rrows,
                        &bound_residual,
                        &positions,
                    )?
                } else {
                    let (build, probe) = if build_left {
                        (&lrows, &rrows)
                    } else {
                        (&rrows, &lrows)
                    };
                    let index =
                        parallel::build_index(&ctx.options, ctx.gov, build, &build_pos, build_hint)?;
                    let emit = JoinEmit::new(&positions, lcols.len(), build_left);
                    parallel::probe_join(
                        &ctx.options,
                        ctx.gov,
                        build,
                        probe,
                        &index,
                        &build_pos,
                        &probe_pos,
                        &bound_residual,
                        build_left,
                        &emit,
                    )?
                };
                (Data::Rows(out), bytes)
            }
            (Data::Batch(lb), Data::Batch(rb)) => {
                let (out, bytes) = if eq_keys.is_empty() {
                    vector::nested_loop_join(
                        &ctx.options,
                        ctx.gov,
                        &lb,
                        &rb,
                        &bound_residual,
                        &positions,
                    )?
                } else {
                    let (build, probe) = if build_left { (&lb, &rb) } else { (&rb, &lb) };
                    let index =
                        vector::build_index(&ctx.options, ctx.gov, build, &build_pos, build_hint)?;
                    vector::probe_join(
                        &ctx.options,
                        ctx.gov,
                        build,
                        probe,
                        &index,
                        &build_pos,
                        &probe_pos,
                        &bound_residual,
                        build_left,
                        lcols.len(),
                        &positions,
                    )?
                };
                (Data::Batch(out), bytes)
            }
            // The mode is fixed per execution, so siblings always agree.
            _ => {
                return Err(AggViewError::Exec(
                    "join inputs in mixed row/batch representations".into(),
                ))
            }
        };
        ctx.note_op_output(out_bytes + held_bytes);
        Ok((project.to_vec(), out))
    }

    fn exec_group_by(
        &self,
        node: &Plan,
        algo: AggAlgo,
        input: &Plan,
        spec: &GroupBySpec,
        project: &[Col],
        ctx: &mut ExecCtx<'_>,
    ) -> Result<(Vec<Col>, Data)> {
        ctx.gov.check_interrupt()?;
        maybe_fault(ctx.faults, "exec.groupby")?;
        let (icols, idata) = self.exec(input, ctx)?;
        let layout = layout_map(&icols);

        // Group-key positions.
        let key_pos: Vec<usize> = spec
            .group_cols
            .iter()
            .map(|c| {
                layout.get(c).copied().ok_or_else(|| {
                    AggViewError::Plan(format!("grouping column {c} missing from input"))
                })
            })
            .collect::<Result<_>>()?;

        // Per-aggregate input mode: raw expression or partial components.
        // When an eager partial aggregate below the join pre-folded one
        // side, its duplicate-factor count rides one slot past the real
        // aggregates; duplicate-sensitive raw aggregates scale by it.
        let cnt_pos = layout
            .get(&Col::part(AggRef::new(spec.owner, spec.aggs.len()), 0))
            .copied();
        let mut inputs = Vec::with_capacity(spec.aggs.len());
        for (i, a) in spec.aggs.iter().enumerate() {
            let aref = spec.agg_ref(i);
            let first = Col::part(aref, 0);
            if layout.contains_key(&first) {
                let comps: Vec<usize> = (0..a.func.partial_arity())
                    .map(|k| {
                        layout.get(&Col::part(aref, k)).copied().ok_or_else(|| {
                            AggViewError::Plan(format!("partial component {k} of {aref} missing"))
                        })
                    })
                    .collect::<Result<_>>()?;
                inputs.push(AggInput::Partial(comps));
            } else {
                match (&a.arg, cnt_pos) {
                    (arg, Some(cpos)) if a.func.is_duplicate_sensitive() => {
                        let bound = match arg {
                            Some(e) => Some(e.bind(&|c| layout.get(&c).copied())?),
                            None => None,
                        };
                        inputs.push(AggInput::Scaled(bound, cpos));
                    }
                    (Some(e), _) => {
                        inputs.push(AggInput::Raw(e.bind(&|c| layout.get(&c).copied())?));
                    }
                    (None, _) => inputs.push(AggInput::RawCountStar),
                }
            }
        }

        // Accumulate (two-phase when parallel: per-worker tables, then a
        // coalescing merge).
        let funcs: Vec<AggFunc> = spec.aggs.iter().map(|a| a.func).collect();

        // Finalize, apply HAVING, project.
        let mut out_cols: Vec<Col> = spec.group_cols.clone();
        out_cols.extend(spec.agg_cols());
        let out_layout = layout_map(&out_cols);
        let bound_having: Vec<_> = spec
            .having
            .iter()
            .map(|p| p.bind(&|c| out_layout.get(&c).copied()))
            .collect::<Result<_>>()?;
        let positions: Vec<usize> = project
            .iter()
            .map(|c| {
                out_layout.get(c).copied().ok_or_else(|| {
                    AggViewError::Plan(format!("group-by projects unavailable column {c}"))
                })
            })
            .collect::<Result<_>>()?;

        let in_pages = self.pages_of_data(&idata);
        let (out_data, out_bytes) = match idata {
            Data::Rows(irows) => {
                let table = parallel::accumulate_groups(
                    &ctx.options,
                    ctx.gov,
                    &irows,
                    &key_pos,
                    &inputs,
                    &funcs,
                )?;
                let mut out = Vec::with_capacity(table.len());
                let mut out_bytes = 0u64;
                for g in table.groups {
                    let mut values = g.key.into_values();
                    for s in &g.states {
                        values.push(s.finalize()?);
                    }
                    let full = Tuple::new(values);
                    if eval_all(&bound_having, &full)? {
                        let t = full.project(&positions);
                        ctx.charge_tuple(&t)?;
                        out_bytes += t.width() as u64;
                        out.push(t);
                    }
                }
                (Data::Rows(out), out_bytes)
            }
            Data::Batch(ib) => {
                let table = vector::accumulate_groups(
                    &ctx.options,
                    ctx.gov,
                    &ib,
                    &key_pos,
                    &inputs,
                    &funcs,
                )?;
                let ngroups = table.len();
                let (keys, states, n_aggs) = table.into_key_columns();
                // Finalize into aggregate columns, visiting states in the
                // row path's group-major order so any finalize error is
                // the same one it would surface. Columns are pre-typed
                // from the dataflow certificate where it resolves one
                // (projected aggregates of a Mixed-free plan); anything
                // unresolved — e.g. a HAVING-only aggregate — stays on
                // the Mixed fallback rather than risking a counted
                // demotion.
                let node_types = dataflow::output_types(node, self.catalog);
                let mut cols = keys;
                cols.extend(spec.agg_cols().iter().map(|c| {
                    match node_types.as_ref().and_then(|m| m.get(c)) {
                        Some(&ty) => ColumnVec::with_type(ty),
                        None => ColumnVec::Mixed(Vec::with_capacity(ngroups)),
                    }
                }));
                let agg_base = cols.len() - n_aggs;
                for g in 0..ngroups {
                    for j in 0..n_aggs {
                        let v = states[g * n_aggs + j].finalize()?;
                        cols[agg_base + j].push_value(v);
                    }
                }
                let full = Batch::from_parts(cols, ngroups);
                let sel = vector::filter_tile(&bound_having, &full)?;
                let mut out = Batch::from_parts(
                    positions
                        .iter()
                        .map(|&p| full.col(p).empty_like())
                        .collect(),
                    0,
                );
                let bytes = out.gather_from(&full, &positions, sel.as_deref(), 0..ngroups);
                ctx.gov.charge_output_bulk(out.len() as u64, bytes)?;
                (Data::Batch(out), bytes)
            }
        };
        ctx.note_op_output(out_bytes);

        // Charge: group-by over the materialized input.
        let out_pages = self.model.page.pages_for_bytes(out_bytes as f64);
        let io = self.model.io;
        let (algo, charge) = match algo {
            AggAlgo::Auto => ops::best_agg(in_pages, out_pages, &io),
            AggAlgo::Hash => (AggAlgo::Hash, ops::hash_agg_io(in_pages, out_pages, &io)),
            AggAlgo::Sort => (AggAlgo::Sort, ops::sort_agg_io(in_pages, io.mem_pages)),
        };
        ctx.breakdown.push(IoBreakdown {
            op: format!("groupby[{algo}] {}", spec.owner),
            pages: charge,
        });
        Ok((project.to_vec(), out_data))
    }

    fn exec_partial_group_by(
        &self,
        node: &Plan,
        algo: AggAlgo,
        input: &Plan,
        spec: &PartialGroupSpec,
        project: &[Col],
        ctx: &mut ExecCtx<'_>,
    ) -> Result<(Vec<Col>, Data)> {
        ctx.gov.check_interrupt()?;
        maybe_fault(ctx.faults, "exec.partial-groupby")?;
        let (icols, idata) = self.exec(input, ctx)?;
        let layout = layout_map(&icols);
        let key_pos: Vec<usize> = spec
            .group_cols
            .iter()
            .map(|c| {
                layout.get(c).copied().ok_or_else(|| {
                    AggViewError::Plan(format!("partial grouping column {c} missing"))
                })
            })
            .collect::<Result<_>>()?;
        let inputs: Vec<AggInput> = spec
            .aggs
            .iter()
            .map(|(_, a)| match &a.arg {
                Some(e) => Ok(AggInput::Raw(e.bind(&|c| layout.get(&c).copied())?)),
                None => Ok(AggInput::RawCountStar),
            })
            .collect::<Result<_>>()?;
        let funcs: Vec<AggFunc> = spec.aggs.iter().map(|(_, a)| a.func).collect();

        // Output layout: group cols then partial components per agg.
        let mut out_cols: Vec<Col> = spec.group_cols.clone();
        out_cols.extend(spec.all_part_cols());
        let out_layout = layout_map(&out_cols);
        let positions: Vec<usize> = project
            .iter()
            .map(|c| {
                out_layout.get(c).copied().ok_or_else(|| {
                    AggViewError::Plan(format!("partial group-by projects unavailable column {c}"))
                })
            })
            .collect::<Result<_>>()?;

        let in_pages = self.pages_of_data(&idata);
        let (out_data, out_bytes) = match idata {
            Data::Rows(irows) => {
                let table = parallel::accumulate_groups(
                    &ctx.options,
                    ctx.gov,
                    &irows,
                    &key_pos,
                    &inputs,
                    &funcs,
                )?;
                let mut out = Vec::with_capacity(table.len());
                let mut out_bytes = 0u64;
                for g in table.groups {
                    let mut values = g.key.into_values();
                    for s in &g.states {
                        // Non-empty groups always have full component vectors.
                        values.extend(s.components().iter().cloned());
                    }
                    let full = Tuple::new(values);
                    let t = full.project(&positions);
                    ctx.charge_tuple(&t)?;
                    out_bytes += t.width() as u64;
                    out.push(t);
                }
                (Data::Rows(out), out_bytes)
            }
            Data::Batch(ib) => {
                let table = vector::accumulate_groups(
                    &ctx.options,
                    ctx.gov,
                    &ib,
                    &key_pos,
                    &inputs,
                    &funcs,
                )?;
                let ngroups = table.len();
                let (keys, states, n_aggs) = table.into_key_columns();
                let n_comps: usize = funcs.iter().map(|f| f.partial_arity()).sum();
                // Pre-type the partial-state component columns from the
                // dataflow certificate (same contract as the full
                // group-by's aggregate columns).
                let node_types = dataflow::output_types(node, self.catalog);
                let mut cols = keys;
                cols.extend(spec.all_part_cols().iter().map(|c| {
                    match node_types.as_ref().and_then(|m| m.get(c)) {
                        Some(&ty) => ColumnVec::with_type(ty),
                        None => ColumnVec::Mixed(Vec::with_capacity(ngroups)),
                    }
                }));
                let comp_base = cols.len() - n_comps;
                for g in 0..ngroups {
                    let mut cc = comp_base;
                    for j in 0..n_aggs {
                        for v in states[g * n_aggs + j].components() {
                            cols[cc].push_value(v.clone());
                            cc += 1;
                        }
                    }
                }
                let full = Batch::from_parts(cols, ngroups);
                let mut out = Batch::from_parts(
                    positions
                        .iter()
                        .map(|&p| full.col(p).empty_like())
                        .collect(),
                    0,
                );
                let bytes = out.gather_from(&full, &positions, None, 0..ngroups);
                ctx.gov.charge_output_bulk(out.len() as u64, bytes)?;
                (Data::Batch(out), bytes)
            }
        };
        ctx.note_op_output(out_bytes);

        let out_pages = self.model.page.pages_for_bytes(out_bytes as f64);
        let io = self.model.io;
        let (algo, charge) = match algo {
            AggAlgo::Auto => ops::best_agg(in_pages, out_pages, &io),
            AggAlgo::Hash => (AggAlgo::Hash, ops::hash_agg_io(in_pages, out_pages, &io)),
            AggAlgo::Sort => (AggAlgo::Sort, ops::sort_agg_io(in_pages, io.mem_pages)),
        };
        ctx.breakdown.push(IoBreakdown {
            op: format!("partial-groupby[{algo}]"),
            pages: charge,
        });
        Ok((project.to_vec(), out_data))
    }

    /// Eager partial aggregation below a join (Yan–Larson push-down):
    /// fold the input into per-group partial states *before* the join,
    /// optionally carrying a per-group COUNT(*) so the merge above can
    /// scale the partner side's duplicate-sensitive aggregates.
    fn exec_partial_aggregate(
        &self,
        node: &Plan,
        algo: AggAlgo,
        input: &Plan,
        spec: &PartialAggSpec,
        project: &[Col],
        ctx: &mut ExecCtx<'_>,
    ) -> Result<(Vec<Col>, Data)> {
        ctx.gov.check_interrupt()?;
        maybe_fault(ctx.faults, "exec.partial-agg")?;
        let (icols, idata) = self.exec(input, ctx)?;
        let layout = layout_map(&icols);
        let key_pos: Vec<usize> = spec
            .group_cols
            .iter()
            .map(|c| {
                layout.get(c).copied().ok_or_else(|| {
                    AggViewError::Plan(format!("eager grouping column {c} missing from input"))
                })
            })
            .collect::<Result<_>>()?;
        // Pushed aggregates plus, when the node carries one, the
        // duplicate-factor COUNT(*) as a final synthetic aggregate.
        let mut inputs: Vec<AggInput> = spec
            .aggs
            .iter()
            .map(|(_, a)| match &a.arg {
                Some(e) => Ok(AggInput::Raw(e.bind(&|c| layout.get(&c).copied())?)),
                None => Ok(AggInput::RawCountStar),
            })
            .collect::<Result<_>>()?;
        let mut funcs: Vec<AggFunc> = spec.aggs.iter().map(|(_, a)| a.func).collect();
        if spec.count.is_some() {
            funcs.push(AggFunc::Count);
            inputs.push(AggInput::RawCountStar);
        }

        // Output layout: group cols, partial components per agg, then
        // the count column last (matching the synthetic Count's order).
        let mut out_cols: Vec<Col> = spec.group_cols.clone();
        out_cols.extend(spec.all_part_cols());
        let out_layout = layout_map(&out_cols);
        let positions: Vec<usize> = project
            .iter()
            .map(|c| {
                out_layout.get(c).copied().ok_or_else(|| {
                    AggViewError::Plan(format!(
                        "eager partial aggregate projects unavailable column {c}"
                    ))
                })
            })
            .collect::<Result<_>>()?;

        let in_pages = self.pages_of_data(&idata);
        let (out_data, out_bytes) = match idata {
            Data::Rows(irows) => {
                let table = parallel::accumulate_groups(
                    &ctx.options,
                    ctx.gov,
                    &irows,
                    &key_pos,
                    &inputs,
                    &funcs,
                )?;
                let mut out = Vec::with_capacity(table.len());
                let mut out_bytes = 0u64;
                for g in table.groups {
                    let mut values = g.key.into_values();
                    for s in &g.states {
                        // Non-empty groups always have full component vectors.
                        values.extend(s.components().iter().cloned());
                    }
                    let full = Tuple::new(values);
                    let t = full.project(&positions);
                    ctx.charge_tuple(&t)?;
                    out_bytes += t.width() as u64;
                    out.push(t);
                }
                (Data::Rows(out), out_bytes)
            }
            Data::Batch(ib) => {
                let table = vector::accumulate_groups(
                    &ctx.options,
                    ctx.gov,
                    &ib,
                    &key_pos,
                    &inputs,
                    &funcs,
                )?;
                let ngroups = table.len();
                let (keys, states, n_aggs) = table.into_key_columns();
                let n_comps: usize = funcs.iter().map(|f| f.partial_arity()).sum();
                // Pre-type the partial-state component columns from the
                // dataflow certificate (same contract as the full
                // group-by's aggregate columns).
                let node_types = dataflow::output_types(node, self.catalog);
                let mut cols = keys;
                cols.extend(spec.all_part_cols().iter().map(|c| {
                    match node_types.as_ref().and_then(|m| m.get(c)) {
                        Some(&ty) => ColumnVec::with_type(ty),
                        None => ColumnVec::Mixed(Vec::with_capacity(ngroups)),
                    }
                }));
                let comp_base = cols.len() - n_comps;
                for g in 0..ngroups {
                    let mut cc = comp_base;
                    for j in 0..n_aggs {
                        for v in states[g * n_aggs + j].components() {
                            cols[cc].push_value(v.clone());
                            cc += 1;
                        }
                    }
                }
                let full = Batch::from_parts(cols, ngroups);
                let mut out = Batch::from_parts(
                    positions
                        .iter()
                        .map(|&p| full.col(p).empty_like())
                        .collect(),
                    0,
                );
                let bytes = out.gather_from(&full, &positions, None, 0..ngroups);
                ctx.gov.charge_output_bulk(out.len() as u64, bytes)?;
                (Data::Batch(out), bytes)
            }
        };
        ctx.note_op_output(out_bytes);

        let out_pages = self.model.page.pages_for_bytes(out_bytes as f64);
        let io = self.model.io;
        let (algo, charge) = match algo {
            AggAlgo::Auto => ops::best_agg(in_pages, out_pages, &io),
            AggAlgo::Hash => (AggAlgo::Hash, ops::hash_agg_io(in_pages, out_pages, &io)),
            AggAlgo::Sort => (AggAlgo::Sort, ops::sort_agg_io(in_pages, io.mem_pages)),
        };
        ctx.breakdown.push(IoBreakdown {
            op: format!("partial-agg[{algo}]"),
            pages: charge,
        });
        Ok((project.to_vec(), out_data))
    }

    /// Row-count hint for pre-sizing a hash-join build table: available
    /// when the build input is a bare table scan with fresh statistics.
    fn stats_rows_hint(&self, plan: &Plan) -> Option<usize> {
        match plan {
            Plan::Scan { table, .. } | Plan::ExtentScan { table, .. } => {
                if self.catalog.stats_fresh(table) {
                    Some(self.catalog.get(table).ok()?.stats().rows as usize)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn pages_of(&self, rows: &[Tuple]) -> f64 {
        let bytes: usize = rows.iter().map(Tuple::width).sum();
        self.model.page.pages_for_bytes(bytes as f64)
    }

    /// Mode-independent page count of an operator output (batch byte
    /// totals equal the widths of the tuples they materialize to).
    fn pages_of_data(&self, d: &Data) -> f64 {
        match d {
            Data::Rows(r) => self.pages_of(r),
            Data::Batch(b) => self.model.page.pages_for_bytes(b.total_bytes() as f64),
        }
    }
}

fn layout_map(cols: &[Col]) -> HashMap<Col, usize> {
    cols.iter().enumerate().map(|(i, c)| (*c, i)).collect()
}

/// Mode-independent byte size of a materialized operator input.
fn bytes_of_data(d: &Data) -> u64 {
    match d {
        Data::Rows(r) => r.iter().map(|t| t.width() as u64).sum(),
        Data::Batch(b) => b.total_bytes() as u64,
    }
}

pub(crate) fn eval_all(
    preds: &[aggview_common::predicate::BoundPredicate],
    t: &Tuple,
) -> Result<bool> {
    for p in preds {
        if !p.eval(t)? {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::{AggFunc, AggSpec, CmpOp, Expr, RelId, Value, ViewId};
    use aggview_core::plan::all_cols;
    use aggview_core::query::examples::{dept, emp};
    use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

    fn setup() -> (Catalog, QueryEnv) {
        let cat = gen_empdept(&EmpDeptConfig {
            n_depts: 5,
            emps_per_dept: 8,
            young_fraction: 0.25,
            low_budget_fraction: 0.5,
            seed: 11,
        })
        .unwrap();
        (cat, QueryEnv::new(vec!["emp".into(), "dept".into()]))
    }

    fn engine<'a>(cat: &'a Catalog, env: &'a QueryEnv) -> Engine<'a> {
        Engine::new(cat, env, CostModel::default())
    }

    #[test]
    fn scan_with_filter() {
        let (cat, env) = setup();
        let e = engine(&cat, &env);
        let plan = Plan::scan(
            RelId(0),
            "emp",
            vec![Predicate::cmp_const(
                Col::base(RelId(0), emp::AGE),
                CmpOp::Lt,
                Value::Int(22),
            )],
            all_cols(RelId(0), 5),
        );
        let rs = e.execute(&plan).unwrap();
        let total = cat.get("emp").unwrap().len();
        assert!(rs.rows.len() < total && !rs.rows.is_empty());
        assert!(rs.io_pages > 0.0);
        // Every surviving row satisfies the filter.
        let age = rs.col_index(Col::base(RelId(0), emp::AGE)).unwrap();
        assert!(rs.rows.iter().all(|r| r.get(age).as_i64().unwrap() < 22));
    }

    #[test]
    fn hash_join_matches_nested_loop_semantics() {
        let (cat, env) = setup();
        let e = engine(&cat, &env);
        let jp = Predicate::eq_cols(
            Col::base(RelId(0), emp::DNO),
            Col::base(RelId(1), dept::DNO),
        );
        let mk = |algo: JoinAlgo| {
            let mut p = Plan::join_all(
                Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5)),
                Plan::scan(RelId(1), "dept", vec![], all_cols(RelId(1), 4)),
                vec![jp.clone()],
            );
            if let Plan::Join { algo: a, .. } = &mut p {
                *a = algo;
            }
            p
        };
        let h = e.execute(&mk(JoinAlgo::Hash)).unwrap();
        let n = e.execute(&mk(JoinAlgo::NestedLoop)).unwrap();
        let mut hr = h.rows.clone();
        let mut nr = n.rows.clone();
        hr.sort();
        nr.sort();
        assert_eq!(hr, nr);
        // FK join: one output row per employee.
        assert_eq!(hr.len(), cat.get("emp").unwrap().len());
    }

    #[test]
    fn group_by_avg_per_department() {
        let (cat, env) = setup();
        let e = engine(&cat, &env);
        let plan = Plan::group_by_all(
            Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5)),
            GroupBySpec {
                owner: ViewId::View(0),
                group_cols: vec![Col::base(RelId(0), emp::DNO)],
                aggs: vec![AggSpec::new(
                    AggFunc::Avg,
                    Expr::col(Col::base(RelId(0), emp::SAL)),
                )],
                having: vec![],
            },
        );
        let rs = e.execute(&plan).unwrap();
        assert_eq!(rs.rows.len(), 5);
        // Cross-check one group against a direct computation.
        let emp_t = cat.get("emp").unwrap();
        let dno0: Vec<f64> = emp_t
            .rows()
            .iter()
            .filter(|r| r.get(emp::DNO).as_i64() == Some(0))
            .map(|r| r.get(emp::SAL).as_f64().unwrap())
            .collect();
        let expect = dno0.iter().sum::<f64>() / dno0.len() as f64;
        let dno_idx = rs.col_index(Col::base(RelId(0), emp::DNO)).unwrap();
        let avg_idx = rs.col_index(Col::agg(ViewId::View(0), 0)).unwrap();
        let got = rs
            .rows
            .iter()
            .find(|r| r.get(dno_idx).as_i64() == Some(0))
            .unwrap()
            .get(avg_idx)
            .as_f64()
            .unwrap();
        assert!((got - expect).abs() < 1e-9);
    }

    #[test]
    fn having_filters_groups() {
        let (cat, env) = setup();
        let e = engine(&cat, &env);
        let mk = |having: Vec<Predicate>| {
            Plan::group_by_all(
                Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5)),
                GroupBySpec {
                    owner: ViewId::Top,
                    group_cols: vec![Col::base(RelId(0), emp::DNO)],
                    aggs: vec![AggSpec::count_star()],
                    having,
                },
            )
        };
        let all = e.execute(&mk(vec![])).unwrap();
        let some = e
            .execute(&mk(vec![Predicate::new(
                Expr::col(Col::agg(ViewId::Top, 0)),
                CmpOp::Gt,
                Expr::val(Value::Int(100)),
            )]))
            .unwrap();
        assert_eq!(all.rows.len(), 5);
        assert!(some.rows.is_empty(), "no dept has >100 emps");
    }

    #[test]
    fn partial_then_coalesce_equals_direct() {
        // SUM(sal) by dno computed (a) directly, (b) partial on emp then
        // coalesced after joining dept.
        let (cat, env) = setup();
        let e = engine(&cat, &env);
        let agg = AggSpec::new(AggFunc::Sum, Expr::col(Col::base(RelId(0), emp::SAL)));
        let jp = Predicate::eq_cols(
            Col::base(RelId(0), emp::DNO),
            Col::base(RelId(1), dept::DNO),
        );

        let direct = Plan::group_by_all(
            Plan::join_all(
                Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5)),
                Plan::scan(RelId(1), "dept", vec![], all_cols(RelId(1), 4)),
                vec![jp.clone()],
            ),
            GroupBySpec {
                owner: ViewId::Top,
                group_cols: vec![Col::base(RelId(0), emp::DNO)],
                aggs: vec![agg.clone()],
                having: vec![],
            },
        );

        let aref = aggview_common::AggRef::new(ViewId::Top, 0);
        let partial = Plan::partial_group_by_all(
            Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5)),
            PartialGroupSpec {
                group_cols: vec![Col::base(RelId(0), emp::DNO)],
                aggs: vec![(aref, agg.clone())],
            },
        );
        let coalesced = Plan::group_by_all(
            Plan::join_all(
                partial,
                Plan::scan(RelId(1), "dept", vec![], all_cols(RelId(1), 4)),
                vec![jp],
            ),
            GroupBySpec {
                owner: ViewId::Top,
                group_cols: vec![Col::base(RelId(0), emp::DNO)],
                aggs: vec![agg],
                having: vec![],
            },
        );

        let a = e.execute(&direct).unwrap();
        let b = e.execute(&coalesced).unwrap();
        crate::verify::assert_equivalent(&a, &b).unwrap();
    }

    #[test]
    fn explicit_hash_join_without_equality_errors() {
        let (cat, env) = setup();
        let e = engine(&cat, &env);
        let mut p = Plan::join_all(
            Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5)),
            Plan::scan(RelId(1), "dept", vec![], all_cols(RelId(1), 4)),
            vec![],
        );
        if let Plan::Join { algo, .. } = &mut p {
            *algo = JoinAlgo::Hash;
        }
        assert!(e.execute(&p).is_err());
    }

    #[test]
    fn io_breakdown_covers_all_operators() {
        let (cat, env) = setup();
        let e = engine(&cat, &env);
        let plan = Plan::group_by_all(
            Plan::join_all(
                Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5)),
                Plan::scan(RelId(1), "dept", vec![], all_cols(RelId(1), 4)),
                vec![Predicate::eq_cols(
                    Col::base(RelId(0), emp::DNO),
                    Col::base(RelId(1), dept::DNO),
                )],
            ),
            GroupBySpec {
                owner: ViewId::Top,
                group_cols: vec![Col::base(RelId(0), emp::DNO)],
                aggs: vec![AggSpec::count_star()],
                having: vec![],
            },
        );
        let rs = e.execute(&plan).unwrap();
        assert_eq!(rs.breakdown.len(), 4); // 2 scans, 1 join, 1 group-by
        assert!(rs.breakdown[0].op.starts_with("scan"));
        assert!((rs.io_pages - rs.breakdown.iter().map(|b| b.pages).sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn theta_join_residual_predicates() {
        // emp self-join on dno with sal comparison: residual preds.
        let (cat, _env) = setup();
        let env2 = QueryEnv::new(vec!["emp".into(), "emp".into()]);
        let e = Engine::new(&cat, &env2, CostModel::default());
        let plan = Plan::join_all(
            Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5)),
            Plan::scan(RelId(1), "emp", vec![], all_cols(RelId(1), 5)),
            vec![
                Predicate::eq_cols(Col::base(RelId(0), emp::DNO), Col::base(RelId(1), emp::DNO)),
                Predicate::new(
                    Expr::col(Col::base(RelId(0), emp::SAL)),
                    CmpOp::Gt,
                    Expr::col(Col::base(RelId(1), emp::SAL)),
                ),
            ],
        );
        let rs = e.execute(&plan).unwrap();
        let s0 = rs.col_index(Col::base(RelId(0), emp::SAL)).unwrap();
        let s1 = rs.col_index(Col::base(RelId(1), emp::SAL)).unwrap();
        assert!(!rs.rows.is_empty());
        assert!(rs
            .rows
            .iter()
            .all(|r| r.get(s0).as_f64().unwrap() > r.get(s1).as_f64().unwrap()));
    }
}
