//! Multiset comparison of result sets.
//!
//! Two equivalent plans may emit columns in different orders and floats
//! with different rounding (AVG accumulated in a different association
//! order), so comparison (a) aligns columns by identity, (b)
//! canonicalizes floats to a fixed precision, then (c) compares sorted
//! row multisets.

use crate::engine::ResultSet;
use aggview_common::{AggViewError, Result, Tuple, Value};

/// Float canonicalization precision (decimal digits).
const FLOAT_DIGITS: i32 = 6;

fn canonical_value(v: &Value) -> Value {
    match v {
        Value::Float(f) => {
            let scale = 10f64.powi(FLOAT_DIGITS);
            let r = (f * scale).round() / scale;
            // Ints masquerading as floats compare equal to Ints already.
            Value::Float(r)
        }
        other => other.clone(),
    }
}

/// Rows of `rs` restricted to columns `order`, canonicalized and sorted.
pub fn canonical_rows(rs: &ResultSet, order: &[aggview_common::Col]) -> Result<Vec<Tuple>> {
    let positions: Vec<usize> = order
        .iter()
        .map(|c| {
            rs.col_index(*c)
                .ok_or_else(|| AggViewError::Exec(format!("result misses column {c}")))
        })
        .collect::<Result<_>>()?;
    let mut rows: Vec<Tuple> = rs
        .rows
        .iter()
        .map(|r| {
            positions
                .iter()
                .map(|&i| canonical_value(r.get(i)))
                .collect()
        })
        .collect();
    rows.sort();
    Ok(rows)
}

/// Assert two result sets are multiset-equal over `a`'s column set.
///
/// Returns a descriptive error naming the first divergence.
pub fn assert_equivalent(a: &ResultSet, b: &ResultSet) -> Result<()> {
    let ra = canonical_rows(a, &a.cols)?;
    let rb = canonical_rows(b, &a.cols)?;
    if ra.len() != rb.len() {
        return Err(AggViewError::Exec(format!(
            "result sizes differ: {} vs {}",
            ra.len(),
            rb.len()
        )));
    }
    for (i, (x, y)) in ra.iter().zip(&rb).enumerate() {
        if x != y {
            // Canonical rows follow `a.cols` order, so the position of
            // the first unequal value names the offending column.
            let k = x
                .values()
                .iter()
                .zip(y.values())
                .position(|(u, v)| u != v)
                .unwrap_or(0);
            return Err(AggViewError::Exec(format!(
                "row {i} differs at column {} (position {k}): {} vs {} — full rows {x} vs {y}",
                a.cols[k],
                x.get(k),
                y.get(k),
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::{tuple, Col, RelId};

    fn rs(cols: Vec<Col>, rows: Vec<Tuple>) -> ResultSet {
        ResultSet {
            cols,
            rows,
            io_pages: 0.0,
            breakdown: vec![],
            peak_intermediate_bytes: 0,
            mixed_demotions: 0,
        }
    }

    #[test]
    fn equal_up_to_row_order() {
        let c = vec![Col::base(RelId(0), 0)];
        let a = rs(c.clone(), vec![tuple![1i64], tuple![2i64]]);
        let b = rs(c, vec![tuple![2i64], tuple![1i64]]);
        assert_equivalent(&a, &b).unwrap();
    }

    #[test]
    fn equal_up_to_column_order() {
        let c0 = Col::base(RelId(0), 0);
        let c1 = Col::base(RelId(0), 1);
        let a = rs(vec![c0, c1], vec![tuple![1i64, "x"]]);
        let b = rs(vec![c1, c0], vec![tuple!["x", 1i64]]);
        assert_equivalent(&a, &b).unwrap();
    }

    #[test]
    fn float_jitter_tolerated() {
        let c = vec![Col::base(RelId(0), 0)];
        let a = rs(c.clone(), vec![tuple![1.0000000001f64]]);
        let b = rs(c, vec![tuple![0.9999999999f64]]);
        assert_equivalent(&a, &b).unwrap();
    }

    #[test]
    fn real_differences_detected() {
        let c = vec![Col::base(RelId(0), 0)];
        let a = rs(c.clone(), vec![tuple![1i64]]);
        let b = rs(c.clone(), vec![tuple![2i64]]);
        let err = assert_equivalent(&a, &b).unwrap_err();
        assert!(err.message().contains("differs"));
        let short = rs(c, vec![]);
        assert!(assert_equivalent(&a, &short).is_err());
    }

    #[test]
    fn first_differing_column_is_named() {
        let c0 = Col::base(RelId(0), 0);
        let c1 = Col::base(RelId(0), 1);
        let a = rs(vec![c0, c1], vec![tuple![1i64, "x"]]);
        let b = rs(vec![c0, c1], vec![tuple![1i64, "y"]]);
        let err = assert_equivalent(&a, &b).unwrap_err();
        assert_eq!(err.kind(), "exec");
        assert!(err.message().contains("r0.c1"), "{}", err.message());
        assert!(err.message().contains("position 1"), "{}", err.message());
    }

    #[test]
    fn missing_column_is_an_error() {
        let a = rs(vec![Col::base(RelId(0), 0)], vec![]);
        let b = rs(vec![Col::base(RelId(0), 1)], vec![]);
        assert!(assert_equivalent(&a, &b).is_err());
    }
}
