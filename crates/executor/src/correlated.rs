//! Naive correlated-subquery evaluation (the pre-flattening baseline).
//!
//! The paper's Section 1 observes that Kim-style flattening turns a
//! correlated nested query into a join with an aggregate view, at which
//! point the optimization machinery applies. This module provides the
//! *unflattened* baseline: tuple-at-a-time evaluation of the type-JA
//! shape
//!
//! ```sql
//! SELECT <outer cols> FROM outer o
//!  WHERE <outer filters>
//!    AND o.val <cmp> (SELECT AGG(i.agg_col) FROM inner i
//!                      WHERE i.corr_col = o.corr_col)
//! ```
//!
//! charging one full inner-table scan per qualifying outer tuple —
//! exactly what a naive nested-loops evaluator does on an unindexed
//! table. Experiment E7 compares this against the flattened, optimized
//! plan.

use aggview_common::{AggAccumulator, AggFunc, AggViewError, CmpOp, Predicate, Result, Tuple};
use aggview_core::cost::CostModel;
use aggview_storage::Catalog;

/// A correlated aggregate query in Kim's type-JA shape.
#[derive(Debug, Clone)]
pub struct CorrelatedQuery {
    /// Outer table name.
    pub outer: String,
    /// Inner table name.
    pub inner: String,
    /// Selection predicates on the outer table (bound to its schema
    /// positions via `RelId(0)` columns).
    pub outer_filters: Vec<Predicate>,
    /// Correlation: `inner[corr_inner] = outer[corr_outer]`.
    pub corr_outer: usize,
    pub corr_inner: usize,
    /// Comparison: `outer[cmp_col] op AGG(inner[agg_col])`.
    pub cmp_col: usize,
    pub op: CmpOp,
    pub agg: AggFunc,
    pub agg_col: usize,
    /// Output: outer column positions.
    pub project: Vec<usize>,
}

/// Result of a correlated evaluation.
#[derive(Debug, Clone)]
pub struct CorrelatedResult {
    pub rows: Vec<Tuple>,
    /// Measured IO in pages (outer scan + one inner scan per qualifying
    /// outer tuple).
    pub io_pages: f64,
    /// Number of inner scans performed.
    pub inner_scans: u64,
}

/// Evaluate naively, charging one inner scan per qualifying outer tuple.
pub fn execute_correlated(
    q: &CorrelatedQuery,
    catalog: &Catalog,
    model: &CostModel,
) -> Result<CorrelatedResult> {
    let outer = catalog.get(&q.outer)?;
    let inner = catalog.get(&q.inner)?;
    let outer_bytes: usize = outer.rows().iter().map(Tuple::width).sum();
    let inner_bytes: usize = inner.rows().iter().map(Tuple::width).sum();
    let outer_pages = model.page.pages_for_bytes(outer_bytes as f64);
    let inner_pages = model.page.pages_for_bytes(inner_bytes as f64);

    // Bind outer filters positionally (they use RelId(0) base columns).
    let bound: Vec<_> = q
        .outer_filters
        .iter()
        .map(|p| {
            p.bind(&|c| match c.as_base() {
                Some(b) if b.rel.0 == 0 => Some(b.col as usize),
                _ => None,
            })
        })
        .collect::<Result<_>>()?;

    let mut io_pages = outer_pages;
    let mut inner_scans = 0u64;
    let mut rows = Vec::new();
    'outer: for o in outer.rows() {
        for b in &bound {
            if !b.eval(o)? {
                continue 'outer;
            }
        }
        // One full inner scan for this outer tuple.
        inner_scans += 1;
        io_pages += inner_pages;
        let mut acc = AggAccumulator::new(q.agg);
        let corr = o.get(q.corr_outer);
        let mut matched = false;
        for i in inner.rows() {
            if i.get(q.corr_inner) == corr {
                acc.update(Some(i.get(q.agg_col)))?;
                matched = true;
            }
        }
        if !matched {
            // SQL semantics: empty subquery yields NULL; with no NULLs in
            // this engine the comparison is simply false (row dropped) —
            // matching the flattened inner-join semantics.
            continue;
        }
        let agg_val = acc.finalize()?;
        let ord = o
            .get(q.cmp_col)
            .try_cmp(&agg_val)
            .ok_or_else(|| AggViewError::Exec("incomparable correlated comparison".into()))?;
        if q.op.matches(ord) {
            rows.push(o.project(&q.project));
        }
    }
    Ok(CorrelatedResult {
        rows,
        io_pages,
        inner_scans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::{Col, RelId, Value};
    use aggview_core::query::examples::emp;
    use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

    fn setup() -> Catalog {
        gen_empdept(&EmpDeptConfig {
            n_depts: 4,
            emps_per_dept: 6,
            young_fraction: 0.3,
            seed: 3,
            ..Default::default()
        })
        .unwrap()
    }

    /// The paper's Example 1 as a correlated query.
    fn example1() -> CorrelatedQuery {
        CorrelatedQuery {
            outer: "emp".into(),
            inner: "emp".into(),
            outer_filters: vec![Predicate::cmp_const(
                Col::base(RelId(0), emp::AGE),
                CmpOp::Lt,
                Value::Int(22),
            )],
            corr_outer: emp::DNO,
            corr_inner: emp::DNO,
            cmp_col: emp::SAL,
            op: CmpOp::Gt,
            agg: AggFunc::Avg,
            agg_col: emp::SAL,
            project: vec![emp::SAL],
        }
    }

    #[test]
    fn matches_direct_computation() {
        let cat = setup();
        let q = example1();
        let model = CostModel::default();
        let res = execute_correlated(&q, &cat, &model).unwrap();

        // Direct reference computation.
        let t = cat.get("emp").unwrap();
        let mut expect = Vec::new();
        for o in t.rows() {
            if o.get(emp::AGE).as_i64().unwrap() >= 22 {
                continue;
            }
            let dno = o.get(emp::DNO).as_i64().unwrap();
            let sals: Vec<f64> = t
                .rows()
                .iter()
                .filter(|r| r.get(emp::DNO).as_i64() == Some(dno))
                .map(|r| r.get(emp::SAL).as_f64().unwrap())
                .collect();
            let avg = sals.iter().sum::<f64>() / sals.len() as f64;
            if o.get(emp::SAL).as_f64().unwrap() > avg {
                expect.push(o.project(&[emp::SAL]));
            }
        }
        let mut got = res.rows.clone();
        got.sort();
        expect.sort();
        assert_eq!(got, expect);
        assert!(!got.is_empty(), "test data should produce matches");
    }

    #[test]
    fn io_scales_with_qualifying_outer_tuples() {
        let cat = setup();
        let q = example1();
        let model = CostModel::default();
        let res = execute_correlated(&q, &cat, &model).unwrap();
        let young = cat
            .get("emp")
            .unwrap()
            .rows()
            .iter()
            .filter(|r| r.get(emp::AGE).as_i64().unwrap() < 22)
            .count() as u64;
        assert_eq!(res.inner_scans, young);
        assert!(res.io_pages >= young as f64, "one inner page minimum each");
    }

    #[test]
    fn unmatched_outer_tuples_are_dropped() {
        // Correlate on a column value that never matches: empty result.
        let cat = setup();
        let mut q = example1();
        q.corr_outer = emp::ENO; // eno values exceed dno domain mostly
        let model = CostModel::default();
        let res = execute_correlated(&q, &cat, &model).unwrap();
        // Some eno values (0..3) collide with dno values 0..3; others drop.
        assert!(res.rows.len() < 30);
    }
}
