//! # aggview-executor — plan execution with page-IO accounting
//!
//! Executes [`aggview_core::Plan`] operator trees against an
//! [`aggview_storage::Catalog`] and *measures* the IO each operator
//! would incur, using the **same charging formulas** as the optimizer's
//! cost model ([`aggview_core::cost::ops`]) evaluated over actual —
//! rather than estimated — cardinalities and widths. Estimated vs.
//! measured cost therefore differ only by estimation error, which
//! experiment E9 quantifies.
//!
//! * [`engine`] — the recursive evaluator: scans with pushed-down
//!   filters, hash/nested-loop joins, hash aggregation with HAVING, and
//!   partial aggregation with coalescing (the executor detects partial
//!   aggregate states in a group-by's input by their
//!   [`aggview_common::PartRef`] columns and merges instead of
//!   re-aggregating);
//! * [`parallel`] / [`partition`] — the morsel-driven parallel path:
//!   contiguous worker chunks over a `std::thread::scope` pool,
//!   hash-partitioned join builds, and two-phase aggregation (per-worker
//!   [`partition::GroupTable`]s coalesced by a global merge — the
//!   physical form of the paper's simple coalescing grouping). Thread
//!   count and morsel size come from [`ExecOptions`]
//!   (`AGGVIEW_THREADS`, REPL `.set threads N`);
//! * [`matview`] — building and maintaining materialized aggregate-view
//!   extents: full builds/refreshes through the governed engine, and
//!   incremental insert maintenance that coalesces a delta into the
//!   stored partial states via [`partition::GroupTable::merge_from`];
//! * [`correlated`] — naive tuple-at-a-time evaluation of correlated
//!   aggregate subqueries (Kim's type-JA shape), the baseline the
//!   flattening pathway (experiment E7) is measured against;
//! * [`verify`] — multiset result comparison used by every
//!   plan-equivalence test.

#![forbid(unsafe_code)]

pub mod correlated;
pub mod delta;
pub mod engine;
pub mod matview;
pub mod parallel;
pub mod partition;
pub mod subscribe;
pub mod vector;
pub mod verify;

pub use delta::{dependency_graph, DependencyGraph};
pub use engine::{Engine, IoBreakdown, ResultSet};
pub use parallel::{ExecMode, ExecOptions};
pub use subscribe::{SubscriptionHub, ViewEvent};
pub use verify::{assert_equivalent, canonical_rows};
