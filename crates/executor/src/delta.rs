//! Z-set delta maintenance of materialized aggregate-view extents.
//!
//! [`crate::matview::apply_delta`] handles insert-only deltas: fold the
//! new rows through the view's SPJ plan and coalesce the resulting
//! partial states into the extent. This module generalizes maintenance
//! to **signed** deltas ([`aggview_common::ZSet`]: row → weight, with
//! UPDATE = `-old ⊕ +new` and DELETE = `-row`):
//!
//! 1. **Admission** — same preconditions as the insert path (the view
//!    references the modified table exactly once, every aggregate
//!    stores partial state, the recorded base versions are exactly one
//!    mutation behind on the modified table and current elsewhere);
//!    anything else falls back to a full rebuild.
//! 2. **Delta propagation** — the Z-set expands into a *plus* and a
//!    *minus* multiset; each is run through the view's SPJ plan over a
//!    delta-substituted catalog (the modified table replaced by the
//!    delta rows, other base tables joined as-is — sound because the
//!    modified table occurs once, so `Δ(R ⋈ S) = ΔR ⋈ S`).
//! 3. **Merge and retraction** — plus groups coalesce in through
//!    [`GroupTable::merge_from`]; minus groups *retract* via
//!    [`aggview_common::PartialAggState::retract_components`].
//!    COUNT/SUM/AVG subtract exactly; MIN/MAX retracting a non-extremum
//!    are exact, retracting the stored extremum reports
//!    [`Retraction::NeedsRecompute`]. Impossible retractions (evidence
//!    of drift) abandon the incremental path and rebuild.
//! 4. **Group recompute & deletion** — groups needing recompute (MIN/MAX
//!    extremum retraction, or any retraction in a view with no COUNT/AVG
//!    aggregate to witness emptiness) are re-aggregated from one
//!    governed run of the view's SPJ plan, filtered to exactly those
//!    group keys; groups whose count component reaches zero — or that
//!    the recompute finds no rows for — are deleted from the extent.
//!
//! The module also exposes the base-table → dependent-view
//! [`DependencyGraph`] (REPL `.deps`), and the [`maintain_after_dml`]
//! round driver, which publishes each maintained view's consolidated
//! visible-projection delta to an optional [`SubscriptionHub`].

use crate::engine::Engine;
use crate::matview;
use crate::parallel::ExecOptions;
use crate::partition::{AggInput, GroupTable};
use crate::subscribe::SubscriptionHub;
use aggview_common::{AggFunc, AggViewError, Result, Retraction, Tuple, ZSet};
use aggview_core::cost::CostModel;
use aggview_core::governor::ResourceGovernor;
use aggview_core::query::QueryEnv;
use aggview_storage::{stores_partial_state, Catalog, MatViewMeta, Table};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Which base tables feed which materialized views.
///
/// Views depend only on base tables (view bodies are self-contained
/// SPJ-plus-group-by — never other views), so invalidation order is
/// single level: a base-table mutation dirties exactly its dependent
/// views, which are maintained in registration (name) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyGraph {
    /// `table → sorted dependent view names`, sorted by table.
    pub edges: Vec<(String, Vec<String>)>,
}

impl DependencyGraph {
    /// Views that must be maintained when `table` changes.
    pub fn views_on(&self, table: &str) -> &[String] {
        let key = table.to_ascii_lowercase();
        self.edges
            .iter()
            .find(|(t, _)| *t == key)
            .map_or(&[], |(_, v)| v.as_slice())
    }

    /// Render as indented text (REPL `.deps`).
    pub fn render(&self) -> String {
        if self.edges.is_empty() {
            return "no materialized views registered\n".to_string();
        }
        let mut out = String::new();
        for (table, views) in &self.edges {
            out.push_str(table);
            out.push('\n');
            for v in views {
                out.push_str("  └─ ");
                out.push_str(v);
                out.push('\n');
            }
        }
        out
    }
}

/// Build the dependency graph from the catalog's registered views.
pub fn dependency_graph(catalog: &Catalog) -> DependencyGraph {
    let mut map: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for name in catalog.matview_names() {
        if let Some(meta) = catalog.matview(&name) {
            for t in &meta.def.tables {
                map.entry(t.to_ascii_lowercase())
                    .or_default()
                    .push(meta.def.name.clone());
            }
        }
    }
    for views in map.values_mut() {
        views.sort();
        views.dedup();
    }
    DependencyGraph {
        edges: map.into_iter().collect(),
    }
}

/// Maintain every registered view that references `table` after the
/// Z-set `delta` has been applied to the base table: retractable
/// incremental maintenance where admissible, full rebuild otherwise.
/// When a [`SubscriptionHub`] is supplied, each maintained view's
/// consolidated visible-projection delta is published as one round.
/// Returns the names of the views maintained.
pub fn maintain_after_dml(
    table: &str,
    delta: &ZSet,
    catalog: &Catalog,
    model: CostModel,
    options: ExecOptions,
    gov: &ResourceGovernor,
    hub: Option<&SubscriptionHub>,
) -> Result<Vec<String>> {
    let mut maintained = Vec::new();
    for meta in catalog.matviews_on(table) {
        let name = meta.def.name.clone();
        let watched = hub.is_some_and(|h| h.has_subscribers(&name));
        let before = if watched {
            extent_rows(catalog, &meta)
        } else {
            Vec::new()
        };
        if !apply_zset_delta(&name, table, delta, catalog, model, options, gov)? {
            matview::build_extent(&meta.def, catalog, model, options, gov)?;
        }
        if watched {
            if let Some(h) = hub {
                let after = extent_rows(catalog, &meta);
                h.publish_diff(&name, &meta.layout, &before, &after);
            }
        }
        maintained.push(name);
    }
    Ok(maintained)
}

/// The view's current extent rows ([] when the extent table is absent,
/// e.g. quarantined after a crash).
fn extent_rows(catalog: &Catalog, meta: &MatViewMeta) -> Vec<Tuple> {
    catalog
        .get(&meta.extent)
        .map(|t| t.rows().to_vec())
        .unwrap_or_default()
}

/// Incrementally fold a signed delta on base `table` into the extent of
/// `view`. Returns `Ok(false)` — extent untouched — when the view is
/// inadmissible for incremental maintenance or the delta's evidence
/// contradicts the stored state (either way the caller rebuilds);
/// `Ok(true)` when the extent now reflects the delta and its recorded
/// versions are current.
pub fn apply_zset_delta(
    view: &str,
    table: &str,
    delta: &ZSet,
    catalog: &Catalog,
    model: CostModel,
    options: ExecOptions,
    gov: &ResourceGovernor,
) -> Result<bool> {
    let mut meta = catalog
        .matview(view)
        .ok_or_else(|| AggViewError::Catalog(format!("unknown materialized view `{view}`")))?;
    let def = meta.def.clone();
    let occurrences = def
        .tables
        .iter()
        .filter(|t| t.eq_ignore_ascii_case(table))
        .count();
    if occurrences != 1 || !def.aggs.iter().all(|a| stores_partial_state(a.func)) {
        return Ok(false);
    }

    // Version gate, as in the insert path: the extent absorbs exactly
    // this delta only if the modified table is one version past the
    // recorded build and every other base is unchanged. A DML statement
    // that matched no rows bumps nothing — then the extent is already
    // current and there is nothing to fold.
    let versions: Vec<u64> = def.tables.iter().map(|t| catalog.data_version(t)).collect();
    let recorded = &meta.base_versions;
    let untouched = recorded.iter().zip(&versions).all(|(&r, &c)| c == r);
    if delta.is_empty() && untouched {
        return Ok(true);
    }
    let in_sync =
        def.tables
            .iter()
            .zip(recorded)
            .zip(&versions)
            .all(|((name, &recorded), &current)| {
                if name.eq_ignore_ascii_case(table) {
                    current == recorded + 1
                } else {
                    current == recorded
                }
            });
    if !in_sync {
        return Ok(false);
    }
    if delta.is_empty() {
        // The table was rebuilt but its multiset is unchanged (e.g. an
        // UPDATE to identical values): restamp, nothing to fold.
        meta.base_versions = versions;
        catalog.update_matview(meta)?;
        return Ok(true);
    }

    // Propagate the delta through the view's SPJ body: the plus and
    // minus expansions each run the plan over a delta-substituted
    // catalog and fold to per-group partial states.
    let (plus, minus) = delta.expand();
    let plus_gt = delta_fold(&def, table, &plus, catalog, model, options, gov)?;
    let minus_gt = delta_fold(&def, table, &minus, catalog, model, options, gov)?;

    // Reconstruct the extent's group table from its stored states.
    let extent = catalog.get(&meta.extent)?;
    let key_pos: Vec<usize> = (0..meta.layout.key_cols).collect();
    let inputs: Vec<AggInput> = meta
        .layout
        .aggs
        .iter()
        .map(|a| AggInput::Partial(a.components.clone()))
        .collect();
    let funcs: Vec<AggFunc> = def.aggs.iter().map(|a| a.func).collect();
    let mut gt = GroupTable::new();
    for r in extent.rows() {
        gov.charge_rows(1)?;
        gt.accumulate(r, &key_pos, &inputs, &funcs)?;
    }
    gt.merge_from(plus_gt)?;

    // Retract the minus groups. A COUNT or AVG aggregate witnesses group
    // emptiness through its count component; without one, every group
    // the minus side touches must be recomputed to learn whether it
    // still exists.
    let count_src = funcs
        .iter()
        .position(|f| matches!(f, AggFunc::Count | AggFunc::Avg));
    let mut recompute: HashSet<Tuple> = HashSet::new();
    let mut touched: Vec<usize> = Vec::new();
    for g in minus_gt.groups {
        gov.charge_rows(1)?;
        let Some(slot) = gt.find(&g.key) else {
            // Retracting from a group the extent never had: the delta
            // contradicts the stored state — rebuild.
            return Ok(false);
        };
        let mut needs_recompute = count_src.is_none();
        let states = &mut gt.groups[slot].states;
        for (mine, theirs) in states.iter_mut().zip(&g.states) {
            match mine.retract_components(theirs.components()) {
                Ok(Retraction::Retracted) => {}
                Ok(Retraction::NeedsRecompute) => needs_recompute = true,
                // Impossible retraction (below zero, beyond extremum):
                // stored state and delta disagree — rebuild.
                Err(_) => return Ok(false),
            }
        }
        if needs_recompute {
            recompute.insert(gt.groups[slot].key.clone());
        }
        touched.push(slot);
    }

    // Delete groups whose count component reached zero; groups without a
    // count witness are already queued for recompute.
    let mut dead: HashSet<usize> = HashSet::new();
    if let Some(ci) = count_src {
        for &slot in &touched {
            if recompute.contains(&gt.groups[slot].key) {
                continue;
            }
            match gt.groups[slot].states[ci].count_component() {
                Some(0) => {
                    dead.insert(slot);
                }
                Some(_) => {}
                None => {
                    recompute.insert(gt.groups[slot].key.clone());
                }
            }
        }
    }

    // Targeted recompute: one governed run of the view's SPJ plan over
    // the *current* base tables, folded only for the queued group keys.
    // Keys the recompute finds no rows for are dead groups.
    if !recompute.is_empty() {
        let rgt = refold_keys(&def, catalog, &recompute, model, options, gov)?;
        let mut fresh: BTreeMap<Tuple, Vec<aggview_common::PartialAggState>> =
            rgt.groups.into_iter().map(|g| (g.key, g.states)).collect();
        for key in &recompute {
            let Some(slot) = gt.find(key) else {
                // Recompute keys were drawn from `gt` above.
                return Err(AggViewError::Exec(format!(
                    "maintenance lost track of group {key} in view `{view}`"
                )));
            };
            match fresh.remove(key) {
                Some(states) => gt.groups[slot].states = states,
                None => {
                    dead.insert(slot);
                }
            }
        }
    }

    // Emit the surviving groups as extent rows and swap the extent in.
    let mut rows = Vec::with_capacity(gt.len().saturating_sub(dead.len()));
    for (slot, g) in gt.groups.into_iter().enumerate() {
        if dead.contains(&slot) {
            continue;
        }
        let mut vals = g.key.into_values();
        for (s, a) in g.states.iter().zip(&def.aggs) {
            vals.push(s.finalize()?);
            if stores_partial_state(a.func) {
                vals.extend(s.components().iter().cloned());
            }
        }
        let row = Tuple::new(vals);
        gov.charge_output(1, row.width() as u64)?;
        rows.push(row);
    }
    let rebuilt = matview::materialize(&def, catalog, rows)?;
    catalog.add_or_replace(rebuilt)?;
    // Stamp the versions verified above, not a re-read (a concurrent
    // mutation between the gate and here must leave the extent stale).
    meta.base_versions = versions;
    catalog.update_matview(meta)?;
    Ok(true)
}

/// Run the view's SPJ plan with the modified table's rows replaced by
/// `rows` (every other base table joined as-is) and fold the result to
/// per-group partial states.
fn delta_fold(
    def: &aggview_storage::MatViewDef,
    table: &str,
    rows: &[Tuple],
    catalog: &Catalog,
    model: CostModel,
    options: ExecOptions,
    gov: &ResourceGovernor,
) -> Result<GroupTable> {
    if rows.is_empty() {
        return Ok(GroupTable::new());
    }
    let base = catalog.get(table)?;
    let mut builder = Table::builder(base.name(), base.schema().clone());
    for r in rows {
        builder.push(r.clone())?;
    }
    let delta_table = builder.build()?;
    let tmp = Catalog::new();
    for name in &def.tables {
        if name.eq_ignore_ascii_case(table) {
            tmp.add_or_replace(Arc::clone(&delta_table))?;
        } else {
            tmp.add_or_replace(catalog.get(name)?)?;
        }
    }
    let plan = matview::spj_plan(def, &tmp)?;
    let env = QueryEnv::new(def.tables.clone());
    let engine = Engine::new(&tmp, &env, model).with_options(options);
    let rs = engine.execute_governed(&plan, gov, None)?;
    matview::fold(def, &rs)
}

/// Re-aggregate exactly the groups in `keys` from the current base
/// tables: one governed run of the view's full SPJ plan whose rows are
/// folded only when their group-key projection is queued.
fn refold_keys(
    def: &aggview_storage::MatViewDef,
    catalog: &Catalog,
    keys: &HashSet<Tuple>,
    model: CostModel,
    options: ExecOptions,
    gov: &ResourceGovernor,
) -> Result<GroupTable> {
    let plan = matview::spj_plan(def, catalog)?;
    let env = QueryEnv::new(def.tables.clone());
    let engine = Engine::new(catalog, &env, model).with_options(options);
    let rs = engine.execute_governed(&plan, gov, None)?;
    let key_pos: Vec<usize> = def
        .group_cols
        .iter()
        .map(|&c| {
            rs.col_index(c).ok_or_else(|| {
                AggViewError::Exec(format!(
                    "grouping column {c} missing from the view's result"
                ))
            })
        })
        .collect::<Result<_>>()?;
    let mut inputs = Vec::with_capacity(def.aggs.len());
    for a in &def.aggs {
        match &a.arg {
            Some(e) => inputs.push(AggInput::Raw(e.bind(&|c| rs.col_index(c))?)),
            None => inputs.push(AggInput::RawCountStar),
        }
    }
    let funcs: Vec<AggFunc> = def.aggs.iter().map(|a| a.func).collect();
    let mut gt = GroupTable::new();
    for r in &rs.rows {
        if !keys.contains(&r.project(&key_pos)) {
            continue;
        }
        gt.accumulate(r, &key_pos, &inputs, &funcs)?;
    }
    Ok(gt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::{AggSpec, CmpOp, Col, DataType, Expr, Predicate, RelId, Schema, Value};
    use aggview_storage::MatViewDef;

    /// A small emp/dept catalog with **binary-exact** salaries
    /// (multiples of 12.5): float SUM/AVG retraction is then exact
    /// arithmetic, so incremental maintenance must be byte-identical to
    /// a refresh. 5 departments × 8 employees; even slots are young
    /// (age < 30).
    fn setup() -> Catalog {
        let cat = Catalog::new();
        let mut e = Table::builder(
            "emp",
            Schema::of(&[
                ("eno", DataType::Int),
                ("name", DataType::Str),
                ("dno", DataType::Int),
                ("sal", DataType::Float),
                ("age", DataType::Int),
            ]),
        )
        .primary_key(&["eno"])
        .unwrap();
        let mut eno = 0i64;
        for dno in 0..5i64 {
            for k in 0..8i64 {
                let sal = 1000.0 + (dno * 8 + k) as f64 * 12.5;
                let age = if k % 2 == 0 { 22 + k } else { 31 + k };
                e.push(emp(eno, dno, sal, age)).unwrap();
                eno += 1;
            }
        }
        cat.add(e.build().unwrap()).unwrap();
        let mut d = Table::builder(
            "dept",
            Schema::of(&[
                ("dno", DataType::Int),
                ("dname", DataType::Str),
                ("budget", DataType::Float),
            ]),
        )
        .primary_key(&["dno"])
        .unwrap();
        for dno in 0..5i64 {
            d.push(Tuple::new(vec![
                Value::Int(dno),
                Value::Str(format!("d{dno}").into()),
                Value::Float(1000.0 * (dno + 1) as f64),
            ]))
            .unwrap();
        }
        cat.add(d.build().unwrap()).unwrap();
        cat
    }

    fn exec_env() -> (CostModel, ExecOptions, ResourceGovernor) {
        (
            CostModel::default(),
            ExecOptions::default(),
            ResourceGovernor::unlimited(),
        )
    }

    /// SELECT dno, SUM(sal), COUNT(*) FROM emp GROUP BY dno —
    /// emp(eno, name, dno, sal, age).
    fn sum_count_view(name: &str) -> MatViewDef {
        MatViewDef {
            name: name.into(),
            tables: vec!["emp".into()],
            preds: vec![],
            group_cols: vec![Col::base(RelId(0), 2)],
            aggs: vec![
                AggSpec::new(AggFunc::Sum, Expr::col(Col::base(RelId(0), 3))),
                AggSpec::count_star(),
            ],
            column_names: vec!["dno".into(), "ssal".into(), "n".into()],
        }
    }

    /// SELECT dno, MIN(sal), COUNT(*) FROM emp GROUP BY dno.
    fn min_view(name: &str) -> MatViewDef {
        MatViewDef {
            name: name.into(),
            tables: vec!["emp".into()],
            preds: vec![],
            group_cols: vec![Col::base(RelId(0), 2)],
            aggs: vec![
                AggSpec::new(AggFunc::Min, Expr::col(Col::base(RelId(0), 3))),
                AggSpec::count_star(),
            ],
            column_names: vec!["dno".into(), "msal".into(), "n".into()],
        }
    }

    fn emp(eno: i64, dno: i64, sal: f64, age: i64) -> Tuple {
        Tuple::new(vec![
            Value::Int(eno),
            Value::Str(format!("e{eno}").into()),
            Value::Int(dno),
            Value::Float(sal),
            Value::Int(age),
        ])
    }

    fn extent_sorted(cat: &Catalog, view: &str) -> Vec<Tuple> {
        let meta = cat.matview(view).unwrap();
        let mut rows = cat.get(&meta.extent).unwrap().rows().to_vec();
        rows.sort();
        rows
    }

    /// Refresh must agree with whatever incremental maintenance left.
    fn assert_matches_refresh(cat: &Catalog, view: &str) {
        let (model, opts, gov) = exec_env();
        let incremental = extent_sorted(cat, view);
        matview::refresh(view, cat, model, opts, &gov).unwrap();
        assert_eq!(incremental, extent_sorted(cat, view), "view `{view}`");
    }

    #[test]
    fn delete_retracts_sum_and_count() {
        let cat = setup();
        let (model, opts, gov) = exec_env();
        matview::build_extent(&sum_count_view("v"), &cat, model, opts, &gov).unwrap();
        let victims = cat.delete_rows("emp", &[0, 3, 17]).unwrap();
        let delta = ZSet::from_deletes(victims);
        assert!(
            apply_zset_delta("v", "emp", &delta, &cat, model, opts, &gov).unwrap(),
            "pure COUNT/SUM deletes are exactly retractable"
        );
        assert!(!cat.matview("v").unwrap().is_stale(&cat));
        assert_matches_refresh(&cat, "v");
    }

    #[test]
    fn update_moves_rows_between_groups() {
        let cat = setup();
        let (model, opts, gov) = exec_env();
        matview::build_extent(&sum_count_view("v"), &cat, model, opts, &gov).unwrap();
        // Move emp row 1 to another department with a new salary.
        let old = cat.get("emp").unwrap().rows()[1].clone();
        let mut vals = old.values().to_vec();
        vals[2] = Value::Int(4);
        vals[3] = Value::Float(4321.0);
        let new = Tuple::new(vals);
        cat.update_rows("emp", &[1], vec![new.clone()]).unwrap();
        let mut delta = ZSet::new();
        delta.add(old, -1);
        delta.add(new, 1);
        assert!(apply_zset_delta("v", "emp", &delta, &cat, model, opts, &gov).unwrap());
        assert_matches_refresh(&cat, "v");
    }

    #[test]
    fn deleting_a_whole_group_removes_its_extent_row() {
        let cat = setup();
        let (model, opts, gov) = exec_env();
        matview::build_extent(&sum_count_view("v"), &cat, model, opts, &gov).unwrap();
        // Delete every employee of dept 2.
        let rows = cat.get("emp").unwrap().rows().to_vec();
        let indices: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.get(2) == &Value::Int(2))
            .map(|(i, _)| i)
            .collect();
        assert!(!indices.is_empty());
        let victims = cat.delete_rows("emp", &indices).unwrap();
        let delta = ZSet::from_deletes(victims);
        assert!(apply_zset_delta("v", "emp", &delta, &cat, model, opts, &gov).unwrap());
        let extent = extent_sorted(&cat, "v");
        assert!(
            extent.iter().all(|r| r.get(0) != &Value::Int(2)),
            "emptied group must disappear: {extent:?}"
        );
        assert_matches_refresh(&cat, "v");
    }

    #[test]
    fn min_retraction_recomputes_only_on_extremum() {
        let cat = setup();
        let (model, opts, gov) = exec_env();
        matview::build_extent(&min_view("m"), &cat, model, opts, &gov).unwrap();
        // Find dept 0's minimum-salary employee and delete them: the
        // stored MIN must be recomputed, and must agree with refresh.
        let rows = cat.get("emp").unwrap().rows().to_vec();
        let (idx, _) = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.get(2) == &Value::Int(0))
            .min_by(|(_, a), (_, b)| a.get(3).cmp(b.get(3)))
            .unwrap();
        let victims = cat.delete_rows("emp", &[idx]).unwrap();
        let delta = ZSet::from_deletes(victims);
        assert!(apply_zset_delta("m", "emp", &delta, &cat, model, opts, &gov).unwrap());
        assert_matches_refresh(&cat, "m");

        // Deleting a non-extremum row is exact (no recompute needed,
        // same outcome either way).
        let rows = cat.get("emp").unwrap().rows().to_vec();
        let (idx, _) = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.get(2) == &Value::Int(1))
            .max_by(|(_, a), (_, b)| a.get(3).cmp(b.get(3)))
            .unwrap();
        let victims = cat.delete_rows("emp", &[idx]).unwrap();
        let delta = ZSet::from_deletes(victims);
        assert!(apply_zset_delta("m", "emp", &delta, &cat, model, opts, &gov).unwrap());
        assert_matches_refresh(&cat, "m");
    }

    #[test]
    fn filtered_join_view_maintains_through_dml() {
        let cat = setup();
        let (model, opts, gov) = exec_env();
        // SELECT e.dno, AVG(sal) FROM emp e, dept d
        //  WHERE e.dno = d.dno AND e.age < 30 GROUP BY e.dno
        let def = MatViewDef {
            name: "jv".into(),
            tables: vec!["emp".into(), "dept".into()],
            preds: vec![
                Predicate::eq_cols(Col::base(RelId(0), 2), Col::base(RelId(1), 0)),
                Predicate::cmp_const(Col::base(RelId(0), 4), CmpOp::Lt, Value::Int(30)),
            ],
            group_cols: vec![Col::base(RelId(0), 2)],
            aggs: vec![AggSpec::new(
                AggFunc::Avg,
                Expr::col(Col::base(RelId(0), 3)),
            )],
            column_names: vec!["dno".into(), "asal".into()],
        };
        matview::build_extent(&def, &cat, model, opts, &gov).unwrap();
        // A mixed round: delete one young employee, update another.
        let rows = cat.get("emp").unwrap().rows().to_vec();
        let young: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.get(4).as_i64().unwrap() < 30)
            .map(|(i, _)| i)
            .collect();
        assert!(young.len() >= 2);
        let victims = cat.delete_rows("emp", &[young[0]]).unwrap();
        let delta = ZSet::from_deletes(victims);
        assert!(
            maintain_after_dml("emp", &delta, &cat, model, opts, &gov, None)
                .unwrap()
                .contains(&"jv".to_string())
        );
        assert_matches_refresh(&cat, "jv");
    }

    #[test]
    fn no_op_dml_restamps_without_work() {
        let cat = setup();
        let (model, opts, gov) = exec_env();
        matview::build_extent(&sum_count_view("v"), &cat, model, opts, &gov).unwrap();
        // Empty delta over untouched bases: trivially fresh.
        assert!(apply_zset_delta("v", "emp", &ZSet::new(), &cat, model, opts, &gov).unwrap());
        // Update a row to identical values: version bumps, delta cancels
        // to empty, and the extent is restamped fresh without a fold.
        let row = cat.get("emp").unwrap().rows()[0].clone();
        cat.update_rows("emp", &[0], vec![row.clone()]).unwrap();
        let mut delta = ZSet::new();
        delta.add(row.clone(), -1);
        delta.add(row, 1);
        delta.consolidate();
        assert!(delta.is_empty());
        assert!(apply_zset_delta("v", "emp", &delta, &cat, model, opts, &gov).unwrap());
        assert!(!cat.matview("v").unwrap().is_stale(&cat));
        assert_matches_refresh(&cat, "v");
    }

    #[test]
    fn contradictory_delta_falls_back_to_rebuild() {
        let cat = setup();
        let (model, opts, gov) = exec_env();
        matview::build_extent(&sum_count_view("v"), &cat, model, opts, &gov).unwrap();
        // Retract a row from a department that does not exist: the
        // incremental path must refuse (and report false) rather than
        // fabricate a negative group.
        cat.mark_modified("emp").unwrap();
        let delta = ZSet::from_deletes([emp(9999, 77, 100.0, 20)]);
        assert!(!apply_zset_delta("v", "emp", &delta, &cat, model, opts, &gov).unwrap());
        // maintain_after_dml rebuilds on the fallback.
        let names = maintain_after_dml("emp", &delta, &cat, model, opts, &gov, None).unwrap();
        assert_eq!(names, vec!["v".to_string()]);
        assert!(!cat.matview("v").unwrap().is_stale(&cat));
    }

    #[test]
    fn version_drift_refuses_incremental() {
        let cat = setup();
        let (model, opts, gov) = exec_env();
        matview::build_extent(&sum_count_view("v"), &cat, model, opts, &gov).unwrap();
        // Two mutations since the build: the single delta cannot cover
        // both.
        cat.mark_modified("emp").unwrap();
        let victims = cat.delete_rows("emp", &[0]).unwrap();
        let delta = ZSet::from_deletes(victims);
        assert!(!apply_zset_delta("v", "emp", &delta, &cat, model, opts, &gov).unwrap());
        assert!(cat.matview("v").unwrap().is_stale(&cat));
    }

    #[test]
    fn budget_abort_leaves_extent_stale_not_torn() {
        let cat = setup();
        let (model, opts, _) = exec_env();
        let gov = ResourceGovernor::unlimited();
        matview::build_extent(&sum_count_view("v"), &cat, model, opts, &gov).unwrap();
        let before = extent_sorted(&cat, "v");
        let victims = cat.delete_rows("emp", &[0]).unwrap();
        let delta = ZSet::from_deletes(victims);
        // A governor too tight for even the extent reconstruction:
        // maintenance must abort with a structured error...
        let tight = ResourceGovernor::new(
            aggview_core::governor::ResourceLimits::unlimited().with_max_rows(2),
        );
        let err = apply_zset_delta("v", "emp", &delta, &cat, model, opts, &tight).unwrap_err();
        assert_eq!(err.kind(), "resource-exhausted");
        // ...leaving the old extent bytes intact and the view stale —
        // never a half-merged extent stamped fresh.
        assert_eq!(extent_sorted(&cat, "v"), before);
        assert!(cat.matview("v").unwrap().is_stale(&cat));
        // A later unbudgeted round repairs it.
        let gov = ResourceGovernor::unlimited();
        let names = maintain_after_dml("emp", &delta, &cat, model, opts, &gov, None).unwrap();
        assert_eq!(names, vec!["v".to_string()]);
        assert!(!cat.matview("v").unwrap().is_stale(&cat));
        assert_matches_refresh(&cat, "v");
    }

    #[test]
    fn rounds_publish_consolidated_events_to_subscribers() {
        let cat = setup();
        let (model, opts, gov) = exec_env();
        matview::build_extent(&sum_count_view("v"), &cat, model, opts, &gov).unwrap();
        let hub = SubscriptionHub::new();
        hub.subscribe("watcher", "v");
        // Delete all of dept 3 (a Deleted event) and one row of dept 0
        // (an Updated event) in a single round.
        let rows = cat.get("emp").unwrap().rows().to_vec();
        let mut indices: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.get(2) == &Value::Int(3))
            .map(|(i, _)| i)
            .collect();
        indices.push(
            rows.iter()
                .enumerate()
                .find(|(i, r)| r.get(2) == &Value::Int(0) && !indices.contains(i))
                .map(|(i, _)| i)
                .unwrap(),
        );
        indices.sort();
        let victims = cat.delete_rows("emp", &indices).unwrap();
        let delta = ZSet::from_deletes(victims);
        maintain_after_dml("emp", &delta, &cat, model, opts, &gov, Some(&hub)).unwrap();
        let events = hub.drain("watcher");
        use crate::subscribe::ViewEvent;
        assert!(
            events.iter().any(
                |e| matches!(e, ViewEvent::Deleted { row, .. } if row.get(0) == &Value::Int(3))
            ),
            "{events:?}"
        );
        assert!(
            events.iter().any(
                |e| matches!(e, ViewEvent::Updated { new, .. } if new.get(0) == &Value::Int(0))
            ),
            "{events:?}"
        );
        assert_eq!(events.len(), 2, "consolidated: exactly one event per group");
    }

    #[test]
    fn dependency_graph_maps_tables_to_views() {
        let cat = setup();
        let (model, opts, gov) = exec_env();
        matview::build_extent(&sum_count_view("a"), &cat, model, opts, &gov).unwrap();
        let def = MatViewDef {
            name: "b".into(),
            tables: vec!["emp".into(), "dept".into()],
            preds: vec![Predicate::eq_cols(
                Col::base(RelId(0), 2),
                Col::base(RelId(1), 0),
            )],
            group_cols: vec![Col::base(RelId(0), 2)],
            aggs: vec![AggSpec::count_star()],
            column_names: vec!["dno".into(), "n".into()],
        };
        matview::build_extent(&def, &cat, model, opts, &gov).unwrap();
        let g = dependency_graph(&cat);
        assert_eq!(g.views_on("emp"), &["a".to_string(), "b".to_string()]);
        assert_eq!(g.views_on("EMP"), g.views_on("emp"));
        assert_eq!(g.views_on("dept"), &["b".to_string()]);
        assert!(g.views_on("nosuch").is_empty());
        let text = g.render();
        assert!(text.contains("emp"), "{text}");
        assert!(text.contains("└─ b"), "{text}");
        assert_eq!(
            dependency_graph(&Catalog::new()).render(),
            "no materialized views registered\n"
        );
    }
}
