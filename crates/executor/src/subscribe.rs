//! Live materialized-view subscriptions.
//!
//! Sessions register interest in a materialized view and receive, per
//! maintenance round, the **consolidated delta** of the view's visible
//! projection (group keys plus finalized aggregate columns — stored
//! partial-state components are an implementation detail and never
//! leave the engine): a [`ViewEvent::Created`] for each new group, an
//! [`ViewEvent::Updated`] for each group whose visible values changed,
//! and a [`ViewEvent::Deleted`] for each group that disappeared. Rounds
//! that leave the projection untouched publish nothing.
//!
//! Queues are **bounded**. When a publish would overflow a subscriber's
//! queue, the queue degrades: everything buffered is dropped and
//! replaced by a single [`ViewEvent::Resync`] marker telling the
//! subscriber to re-read the extents of every view it follows before
//! trusting further deltas. Events published after the marker are
//! deliverable again (resync first, then replay), so a slow consumer
//! loses granularity, never correctness.

use aggview_common::Tuple;
use aggview_storage::ExtentLayout;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Default per-subscriber queue bound (events, not rounds).
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// One change to a materialized view's visible projection, or the
/// overflow marker.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewEvent {
    /// A group appeared.
    Created { view: String, row: Tuple },
    /// A group's visible values changed.
    Updated {
        view: String,
        old: Tuple,
        new: Tuple,
    },
    /// A group disappeared.
    Deleted { view: String, row: Tuple },
    /// The subscriber's queue overflowed: buffered events were dropped;
    /// re-read the extent of every subscribed view before applying any
    /// later events.
    Resync { view: String },
}

impl ViewEvent {
    /// The view this event concerns.
    pub fn view(&self) -> &str {
        match self {
            ViewEvent::Created { view, .. }
            | ViewEvent::Updated { view, .. }
            | ViewEvent::Deleted { view, .. }
            | ViewEvent::Resync { view } => view,
        }
    }
}

impl fmt::Display for ViewEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewEvent::Created { view, row } => write!(f, "created {view}: {row}"),
            ViewEvent::Updated { view, old, new } => {
                write!(f, "updated {view}: {old} -> {new}")
            }
            ViewEvent::Deleted { view, row } => write!(f, "deleted {view}: {row}"),
            ViewEvent::Resync { view } => {
                write!(f, "resync {view}: events were dropped, re-read the extent")
            }
        }
    }
}

/// The visible projection of an extent row: group keys then finalized
/// aggregate values, skipping stored partial-state component columns.
pub fn visible_projection(layout: &ExtentLayout, row: &Tuple) -> Tuple {
    let mut pos: Vec<usize> = (0..layout.key_cols).collect();
    pos.extend(layout.aggs.iter().map(|a| a.finalized));
    row.project(&pos)
}

/// Diff two extent snapshots into the consolidated events of one
/// maintenance round, keyed on the group key (the leading
/// `layout.key_cols` columns). Created/Updated events follow the
/// after-snapshot's row order; Deleted events follow key order.
pub fn diff_round(
    view: &str,
    layout: &ExtentLayout,
    before: &[Tuple],
    after: &[Tuple],
) -> Vec<ViewEvent> {
    let key_pos: Vec<usize> = (0..layout.key_cols).collect();
    let mut old: BTreeMap<Tuple, Tuple> = before
        .iter()
        .map(|r| (r.project(&key_pos), visible_projection(layout, r)))
        .collect();
    let mut events = Vec::new();
    for r in after {
        let key = r.project(&key_pos);
        let now = visible_projection(layout, r);
        match old.remove(&key) {
            Some(prev) if prev == now => {}
            Some(prev) => events.push(ViewEvent::Updated {
                view: view.to_string(),
                old: prev,
                new: now,
            }),
            None => events.push(ViewEvent::Created {
                view: view.to_string(),
                row: now,
            }),
        }
    }
    for (_, prev) in old {
        events.push(ViewEvent::Deleted {
            view: view.to_string(),
            row: prev,
        });
    }
    events
}

#[derive(Debug, Default)]
struct Subscriber {
    /// Lowercased view names this subscriber follows.
    views: BTreeSet<String>,
    queue: VecDeque<ViewEvent>,
}

/// Fan-out hub: subscribers (by name) follow materialized views and
/// drain their queued [`ViewEvent`]s at their own pace.
#[derive(Debug)]
pub struct SubscriptionHub {
    capacity: usize,
    subs: Mutex<BTreeMap<String, Subscriber>>,
}

impl Default for SubscriptionHub {
    fn default() -> SubscriptionHub {
        SubscriptionHub::new()
    }
}

impl SubscriptionHub {
    /// A hub with the default queue bound.
    pub fn new() -> SubscriptionHub {
        SubscriptionHub::with_capacity(DEFAULT_QUEUE_CAPACITY)
    }

    /// A hub bounding each subscriber's queue at `capacity` events
    /// (minimum 1 — the Resync marker must always fit).
    pub fn with_capacity(capacity: usize) -> SubscriptionHub {
        SubscriptionHub {
            capacity: capacity.max(1),
            subs: Mutex::new(BTreeMap::new()),
        }
    }

    /// Subscribe `who` to `view` (idempotent).
    pub fn subscribe(&self, who: &str, view: &str) {
        let mut subs = self.subs.lock();
        subs.entry(who.to_string())
            .or_default()
            .views
            .insert(view.to_ascii_lowercase());
    }

    /// Unsubscribe `who` from `view`; true when a subscription existed.
    /// Already-queued events for the view remain drainable.
    pub fn unsubscribe(&self, who: &str, view: &str) -> bool {
        let mut subs = self.subs.lock();
        subs.get_mut(who)
            .is_some_and(|s| s.views.remove(&view.to_ascii_lowercase()))
    }

    /// The views `who` currently follows, sorted.
    pub fn subscriptions(&self, who: &str) -> Vec<String> {
        let subs = self.subs.lock();
        subs.get(who)
            .map(|s| s.views.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// True when at least one subscriber follows `view` — publishers use
    /// this to skip snapshotting extents nobody is watching.
    pub fn has_subscribers(&self, view: &str) -> bool {
        let key = view.to_ascii_lowercase();
        let subs = self.subs.lock();
        subs.values().any(|s| s.views.contains(&key))
    }

    /// Remove every queued event for `who` and return them in arrival
    /// order.
    pub fn drain(&self, who: &str) -> Vec<ViewEvent> {
        let mut subs = self.subs.lock();
        subs.get_mut(who)
            .map(|s| s.queue.drain(..).collect())
            .unwrap_or_default()
    }

    /// Queued-event count for `who`.
    pub fn pending(&self, who: &str) -> usize {
        let subs = self.subs.lock();
        subs.get(who).map_or(0, |s| s.queue.len())
    }

    /// Deliver one round's consolidated events for `view` to every
    /// subscriber following it, applying the bounded-queue overflow
    /// contract per subscriber.
    pub fn publish(&self, view: &str, events: &[ViewEvent]) {
        if events.is_empty() {
            return;
        }
        let key = view.to_ascii_lowercase();
        let mut subs = self.subs.lock();
        for s in subs.values_mut().filter(|s| s.views.contains(&key)) {
            if s.queue.len() + events.len() > self.capacity {
                // Overflow: collapse everything buffered into a single
                // resync marker, then deliver this round's events if
                // they fit on their own.
                s.queue.clear();
                s.queue.push_back(ViewEvent::Resync {
                    view: view.to_string(),
                });
                if events.len() < self.capacity {
                    s.queue.extend(events.iter().cloned());
                }
            } else {
                s.queue.extend(events.iter().cloned());
            }
        }
    }

    /// Diff two extent snapshots and publish the round (see
    /// [`diff_round`]); the common caller-side shape around a
    /// maintenance or refresh round.
    pub fn publish_diff(
        &self,
        view: &str,
        layout: &ExtentLayout,
        before: &[Tuple],
        after: &[Tuple],
    ) {
        self.publish(view, &diff_round(view, layout, before, after));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::tuple;
    use aggview_storage::matview::AggColumns;

    /// Layout of `(dno, total, __total_p0, n, __n_p0)`: one key column,
    /// SUM with one component, COUNT with one component.
    fn layout() -> ExtentLayout {
        ExtentLayout {
            key_cols: 1,
            aggs: vec![
                AggColumns {
                    finalized: 1,
                    components: vec![2],
                },
                AggColumns {
                    finalized: 3,
                    components: vec![4],
                },
            ],
            width: 5,
        }
    }

    #[test]
    fn diff_emits_consolidated_created_updated_deleted() {
        let l = layout();
        let before = vec![
            tuple![0i64, 10.0f64, 10.0f64, 2i64, 2i64],
            tuple![1i64, 7.0f64, 7.0f64, 1i64, 1i64],
        ];
        let after = vec![
            tuple![0i64, 15.0f64, 15.0f64, 3i64, 3i64], // updated
            tuple![2i64, 4.0f64, 4.0f64, 1i64, 1i64],   // created
        ]; // dno=1 deleted
        let ev = diff_round("v", &l, &before, &after);
        assert_eq!(ev.len(), 3);
        assert_eq!(
            ev[0],
            ViewEvent::Updated {
                view: "v".into(),
                old: tuple![0i64, 10.0f64, 2i64],
                new: tuple![0i64, 15.0f64, 3i64],
            }
        );
        assert_eq!(
            ev[1],
            ViewEvent::Created {
                view: "v".into(),
                row: tuple![2i64, 4.0f64, 1i64],
            }
        );
        assert_eq!(
            ev[2],
            ViewEvent::Deleted {
                view: "v".into(),
                row: tuple![1i64, 7.0f64, 1i64],
            }
        );
    }

    #[test]
    fn unchanged_rounds_publish_nothing() {
        let l = layout();
        let rows = vec![tuple![0i64, 10.0f64, 10.0f64, 2i64, 2i64]];
        assert!(diff_round("v", &l, &rows, &rows).is_empty());
        // Component-only drift (never happens in practice, but the
        // visible projection must mask it) is also silent.
        let after = vec![tuple![0i64, 10.0f64, 99.0f64, 2i64, 7i64]];
        assert!(diff_round("v", &l, &rows, &after).is_empty());
    }

    #[test]
    fn subscribe_drain_unsubscribe_lifecycle() {
        let hub = SubscriptionHub::new();
        hub.subscribe("repl", "dsal");
        assert!(hub.has_subscribers("DSAL"), "names are case-insensitive");
        assert_eq!(hub.subscriptions("repl"), vec!["dsal".to_string()]);

        let ev = ViewEvent::Created {
            view: "dsal".into(),
            row: tuple![1i64],
        };
        hub.publish("dsal", std::slice::from_ref(&ev));
        hub.publish(
            "other",
            &[ViewEvent::Resync {
                view: "other".into(),
            }],
        );
        assert_eq!(hub.drain("repl"), vec![ev]);
        assert!(hub.drain("repl").is_empty(), "drain empties the queue");

        assert!(hub.unsubscribe("repl", "dsal"));
        assert!(!hub.unsubscribe("repl", "dsal"));
        assert!(!hub.has_subscribers("dsal"));
        hub.publish(
            "dsal",
            &[ViewEvent::Resync {
                view: "dsal".into(),
            }],
        );
        assert_eq!(hub.pending("repl"), 0);
    }

    #[test]
    fn overflow_degrades_to_resync_marker() {
        let hub = SubscriptionHub::with_capacity(3);
        hub.subscribe("slow", "v");
        let ev = |i: i64| ViewEvent::Created {
            view: "v".into(),
            row: tuple![i],
        };
        hub.publish("v", &[ev(1), ev(2), ev(3)]);
        assert_eq!(hub.pending("slow"), 3);
        // The 4th event overflows: everything collapses to resync + the
        // new round (which fits on its own).
        hub.publish("v", &[ev(4)]);
        let drained = hub.drain("slow");
        assert_eq!(drained, vec![ViewEvent::Resync { view: "v".into() }, ev(4)]);
        // A round too large even for an empty queue leaves only the marker.
        hub.publish("v", &[ev(1), ev(2), ev(3), ev(4)]);
        assert_eq!(
            hub.drain("slow"),
            vec![ViewEvent::Resync { view: "v".into() }]
        );
    }
}
