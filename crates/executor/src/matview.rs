//! Building and maintaining materialized aggregate-view extents.
//!
//! An extent is built by executing the view's pure SPJ plan (scans with
//! local filters, left-deep joins) through the governed [`Engine`] —
//! the build therefore passes the analyzer gate and is charged against
//! the resource governor like any query — and folding the result rows
//! into a [`GroupTable`]. Each finished group is stored as one extent
//! row: grouping keys, then per aggregate the finalized value followed
//! by its mergeable partial-state components (Figure 2 of the paper)
//! when the function stores state.
//!
//! Incremental maintenance ([`apply_delta`]) runs the same SPJ plan
//! over a *delta-substituted* catalog (the modified table replaced by a
//! delta-only table, every other table untouched), reconstructs the
//! extent's [`GroupTable`] from its stored partial states, and folds
//! the delta in with [`GroupTable::merge_from`] — the exact coalescing
//! merge the parallel executor uses. Views whose aggregates do not all
//! store partial state (STDDEV), or that reference the modified table
//! more than once (self-join delta algebra), fall back to a full
//! rebuild ([`build_extent`], also the implementation of
//! `REFRESH MATERIALIZED VIEW`).

use crate::engine::{Engine, ResultSet};
use crate::parallel::ExecOptions;
use crate::partition::{AggInput, GroupTable};
use aggview_common::{AggFunc, AggViewError, Col, Predicate, RelId, Result, Tuple};
use aggview_core::cost::CostModel;
use aggview_core::governor::ResourceGovernor;
use aggview_core::plan::{all_cols, Plan};
use aggview_core::query::QueryEnv;
use aggview_storage::matview::extent_schema;
use aggview_storage::{
    stores_partial_state, Catalog, ExtentLayout, MatViewDef, MatViewMeta, Table,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Build (or fully rebuild) the extent of `def`: execute its SPJ plan,
/// fold the rows into groups, store the extent table in the catalog
/// (primary-keyed on the grouping columns) and register or update the
/// view's metadata with the base tables' current data versions.
/// Returns the number of extent rows.
pub fn build_extent(
    def: &MatViewDef,
    catalog: &Catalog,
    model: CostModel,
    options: ExecOptions,
    gov: &ResourceGovernor,
) -> Result<usize> {
    def.validate()?;
    let versions: Vec<u64> = def.tables.iter().map(|t| catalog.data_version(t)).collect();
    let plan = spj_plan(def, catalog)?;
    let env = QueryEnv::new(def.tables.clone());
    let engine = Engine::new(catalog, &env, model).with_options(options);
    let rs = engine.execute_governed(&plan, gov, None)?;
    let gt = fold(def, &rs)?;
    let rows = rows_of(gt, def)?;
    let n = rows.len();
    let extent = materialize(def, catalog, rows)?;
    catalog.add_or_replace(extent)?;
    let meta = MatViewMeta {
        def: def.clone(),
        extent: MatViewMeta::extent_name(&def.name),
        layout: ExtentLayout::of(def),
        base_versions: versions,
    };
    if catalog.matview(&def.name).is_some() {
        catalog.update_matview(meta)?;
    } else {
        catalog.register_matview(meta)?;
    }
    Ok(n)
}

/// `REFRESH MATERIALIZED VIEW`: rebuild a registered view's extent from
/// scratch. Returns the number of extent rows.
pub fn refresh(
    view: &str,
    catalog: &Catalog,
    model: CostModel,
    options: ExecOptions,
    gov: &ResourceGovernor,
) -> Result<usize> {
    let meta = catalog
        .matview(view)
        .ok_or_else(|| AggViewError::Catalog(format!("unknown materialized view `{view}`")))?;
    build_extent(&meta.def, catalog, model, options, gov)
}

/// Incrementally fold an insert delta on base `table` into the extent
/// of `view`. Returns `Ok(false)` — extent untouched — when the view
/// cannot be maintained incrementally: an aggregate stores no partial
/// state, the view references the modified table more than once, or
/// the base tables have drifted from the versions recorded when the
/// extent was built (the extent needs more than exactly this delta);
/// the caller falls back to [`build_extent`].
///
/// The delta must already be applied to the modified base table (its
/// data version one past the recorded one — the table's full contents
/// are never read here, only its version is checked).
pub fn apply_delta(
    view: &str,
    table: &str,
    delta: &[Tuple],
    catalog: &Catalog,
    model: CostModel,
    options: ExecOptions,
    gov: &ResourceGovernor,
) -> Result<bool> {
    let mut meta = catalog
        .matview(view)
        .ok_or_else(|| AggViewError::Catalog(format!("unknown materialized view `{view}`")))?;
    let def = meta.def.clone();
    let def = &def;
    let occurrences = def
        .tables
        .iter()
        .filter(|t| t.eq_ignore_ascii_case(table))
        .count();
    if occurrences != 1 || !def.aggs.iter().all(|a| stores_partial_state(a.func)) {
        return Ok(false);
    }

    // The extent can absorb exactly this delta only if the modified
    // table is one data version past the version recorded at the last
    // build (the append that produced `delta`) and every other base
    // table is unchanged. Any other drift means the extent is missing
    // rows this delta does not carry; merging anyway would stamp it
    // fresh while silently wrong, so refuse and let the caller rebuild.
    let versions: Vec<u64> = def.tables.iter().map(|t| catalog.data_version(t)).collect();
    let in_sync = def
        .tables
        .iter()
        .zip(&meta.base_versions)
        .zip(&versions)
        .all(|((name, &recorded), &current)| {
            if name.eq_ignore_ascii_case(table) {
                current == recorded + 1
            } else {
                current == recorded
            }
        });
    if !in_sync {
        return Ok(false);
    }

    // Delta-substituted catalog: the modified table holds only the
    // delta rows, every other base table is shared as-is.
    let base = catalog.get(table)?;
    let mut builder = Table::builder(base.name(), base.schema().clone());
    for r in delta {
        builder.push(r.clone())?;
    }
    let delta_table = builder.build()?;
    let tmp = Catalog::new();
    for name in &def.tables {
        if name.eq_ignore_ascii_case(table) {
            tmp.add_or_replace(Arc::clone(&delta_table))?;
        } else {
            tmp.add_or_replace(catalog.get(name)?)?;
        }
    }
    let plan = spj_plan(def, &tmp)?;
    let env = QueryEnv::new(def.tables.clone());
    let engine = Engine::new(&tmp, &env, model).with_options(options);
    let rs = engine.execute_governed(&plan, gov, None)?;
    let delta_gt = fold(def, &rs)?;

    // Reconstruct the extent's group table from its stored partial
    // states, then coalesce the delta groups in.
    let extent = catalog.get(&meta.extent)?;
    let key_pos: Vec<usize> = (0..meta.layout.key_cols).collect();
    let inputs: Vec<AggInput> = meta
        .layout
        .aggs
        .iter()
        .map(|a| AggInput::Partial(a.components.clone()))
        .collect();
    let funcs: Vec<AggFunc> = def.aggs.iter().map(|a| a.func).collect();
    let mut gt = GroupTable::new();
    for r in extent.rows() {
        gov.charge_rows(1)?;
        gt.accumulate(r, &key_pos, &inputs, &funcs)?;
    }
    gt.merge_from(delta_gt)?;

    let rows = rows_of(gt, def)?;
    let rebuilt = materialize(def, catalog, rows)?;
    catalog.add_or_replace(rebuilt)?;
    // Stamp the versions verified above, not a re-read: a concurrent
    // modification between the check and here must leave the extent
    // marked stale, not be laundered into "fresh".
    meta.base_versions = versions;
    catalog.update_matview(meta)?;
    Ok(true)
}

/// Maintain every registered view that references `table` after an
/// insert of `delta` rows (already applied to the base table):
/// incremental merge where possible, full rebuild otherwise. Returns
/// the names of the views maintained.
///
/// Thin wrapper over [`crate::delta::maintain_after_dml`] with the
/// insert-only Z-set `{row × +1, ...}` — the general path charges
/// maintenance work (extent reconstruction, merged output) against the
/// governor, which this entry point historically did not.
pub fn maintain_after_insert(
    table: &str,
    delta: &[Tuple],
    catalog: &Catalog,
    model: CostModel,
    options: ExecOptions,
    gov: &ResourceGovernor,
) -> Result<Vec<String>> {
    let zset = aggview_common::ZSet::from_inserts(delta.iter().cloned());
    crate::delta::maintain_after_dml(table, &zset, catalog, model, options, gov, None)
}

/// Re-verify every materialized view after crash recovery, quarantining
/// any whose structure no longer checks out (missing or arity-mangled
/// extent, missing base table). Returns the names of quarantined views.
///
/// Freshness itself needs no work here: recovery restores base-table
/// version counters and recorded `base_versions` exactly, so
/// [`MatViewMeta::is_stale`] gives the committed answer. This pass only
/// ever *demotes* — a view can come back from a crash stale when it was
/// fresh (its extent did not survive), never the other way around.
pub fn reverify_on_recovery(catalog: &Catalog) -> Vec<String> {
    catalog.reverify_matviews()
}

/// The view's pure SPJ plan in its local frame: one scan per table
/// (single-relation predicates pushed down as filters), left-deep joins
/// in declaration order, each multi-relation predicate attached to the
/// first join where it becomes evaluable.
pub(crate) fn spj_plan(def: &MatViewDef, catalog: &Catalog) -> Result<Plan> {
    let arities: Vec<usize> = def
        .tables
        .iter()
        .map(|t| catalog.get(t).map(|t| t.schema().len()))
        .collect::<Result<_>>()?;
    let mut local: Vec<Vec<Predicate>> = vec![Vec::new(); def.tables.len()];
    let mut multi: Vec<Predicate> = Vec::new();
    for p in &def.preds {
        let rels: BTreeSet<RelId> = p
            .cols_used()
            .iter()
            .filter_map(|c| match c {
                Col::Base(b) => Some(b.rel),
                _ => None,
            })
            .collect();
        if rels.iter().any(|r| r.idx() >= def.tables.len()) {
            return Err(AggViewError::Plan(format!(
                "view `{}` predicate `{p}` references an undeclared relation",
                def.name
            )));
        }
        match rels.len() {
            0 | 1 => local[rels.first().map_or(0, |r| r.idx())].push(p.clone()),
            _ => multi.push(p.clone()),
        }
    }
    let scan = |i: usize, filters: Vec<Predicate>| {
        Plan::scan(
            RelId(i as u32),
            &def.tables[i],
            filters,
            all_cols(RelId(i as u32), arities[i]),
        )
    };
    let mut plan = scan(0, std::mem::take(&mut local[0]));
    let mut have: u64 = RelId(0).bit();
    for (i, filters) in local.iter_mut().enumerate().skip(1) {
        have |= RelId(i as u32).bit();
        let (now, later): (Vec<Predicate>, Vec<Predicate>) = multi.into_iter().partition(|p| {
            p.cols_used().iter().all(|c| match c {
                Col::Base(b) => have & b.rel.bit() != 0,
                _ => false,
            })
        });
        multi = later;
        plan = Plan::join_all(plan, scan(i, std::mem::take(filters)), now);
    }
    if let Some(p) = multi.first() {
        return Err(AggViewError::Plan(format!(
            "view `{}` predicate `{p}` is never evaluable over its declared tables",
            def.name
        )));
    }
    Ok(plan)
}

/// Fold the SPJ result into a [`GroupTable`] keyed on the view's
/// grouping columns, with one raw-input aggregate state per aggregate.
pub(crate) fn fold(def: &MatViewDef, rs: &ResultSet) -> Result<GroupTable> {
    let key_pos: Vec<usize> = def
        .group_cols
        .iter()
        .map(|&c| {
            rs.col_index(c).ok_or_else(|| {
                AggViewError::Exec(format!(
                    "grouping column {c} missing from the view's result"
                ))
            })
        })
        .collect::<Result<_>>()?;
    let mut inputs = Vec::with_capacity(def.aggs.len());
    for a in &def.aggs {
        match &a.arg {
            Some(e) => inputs.push(AggInput::Raw(e.bind(&|c| rs.col_index(c))?)),
            None => inputs.push(AggInput::RawCountStar),
        }
    }
    let funcs: Vec<AggFunc> = def.aggs.iter().map(|a| a.func).collect();
    let mut gt = GroupTable::new();
    for r in &rs.rows {
        gt.accumulate(r, &key_pos, &inputs, &funcs)?;
    }
    Ok(gt)
}

/// Render finished groups as extent rows: keys, then per aggregate the
/// finalized value followed by the partial-state components of
/// state-storing functions. Row width matches [`ExtentLayout::of`].
pub(crate) fn rows_of(gt: GroupTable, def: &MatViewDef) -> Result<Vec<Tuple>> {
    let mut out = Vec::with_capacity(gt.len());
    for g in gt.groups {
        let mut vals = g.key.into_values();
        for (s, a) in g.states.iter().zip(&def.aggs) {
            vals.push(s.finalize()?);
            if stores_partial_state(a.func) {
                vals.extend(s.components().iter().cloned());
            }
        }
        out.push(Tuple::new(vals));
    }
    Ok(out)
}

/// Build the extent table: the schema from the base tables' types, a
/// primary key on the grouping columns (group keys are unique by
/// construction), and one row per group.
pub(crate) fn materialize(
    def: &MatViewDef,
    catalog: &Catalog,
    rows: Vec<Tuple>,
) -> Result<Arc<Table>> {
    let schema = extent_schema(def, catalog)?;
    let mut builder = Table::builder(MatViewMeta::extent_name(&def.name), schema);
    if !def.group_cols.is_empty() {
        let keys: Vec<&str> = def.column_names[..def.group_cols.len()]
            .iter()
            .map(String::as_str)
            .collect();
        builder = builder.primary_key(&keys)?;
    }
    for r in rows {
        builder.push(r)?;
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::{AggSpec, CmpOp, Expr, Value};
    use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

    fn setup() -> Catalog {
        gen_empdept(&EmpDeptConfig {
            n_depts: 6,
            emps_per_dept: 10,
            young_fraction: 0.3,
            low_budget_fraction: 0.5,
            seed: 7,
        })
        .unwrap()
    }

    fn dept_sal_view() -> MatViewDef {
        // SELECT dno, SUM(sal), COUNT(*) FROM emp WHERE age < 30 GROUP BY dno
        // emp(eno, name, dno, sal, age)
        MatViewDef {
            name: "dsal".into(),
            tables: vec!["emp".into()],
            preds: vec![Predicate::cmp_const(
                Col::base(RelId(0), 4),
                CmpOp::Lt,
                Value::Int(30),
            )],
            group_cols: vec![Col::base(RelId(0), 2)],
            aggs: vec![
                AggSpec::new(AggFunc::Sum, Expr::col(Col::base(RelId(0), 3))),
                AggSpec::count_star(),
            ],
            column_names: vec!["dno".into(), "ssal".into(), "n".into()],
        }
    }

    fn exec_env() -> (CostModel, ExecOptions, ResourceGovernor) {
        (
            CostModel::default(),
            ExecOptions::default(),
            ResourceGovernor::unlimited(),
        )
    }

    #[test]
    fn build_then_incremental_equals_refresh() {
        let cat = setup();
        let (model, opts, gov) = exec_env();
        let def = dept_sal_view();
        let n = build_extent(&def, &cat, model, opts, &gov).unwrap();
        assert!(n > 0);
        assert!(!cat.matview("dsal").unwrap().is_stale(&cat));

        // Insert two young employees into dept 0 and maintain.
        let delta = vec![
            Tuple::new(vec![
                Value::Int(9001),
                "pat".into(),
                Value::Int(0),
                Value::Float(1234.5),
                Value::Int(25),
            ]),
            Tuple::new(vec![
                Value::Int(9002),
                "sam".into(),
                Value::Int(0),
                Value::Float(765.5),
                Value::Int(40), // filtered out by age < 30
            ]),
        ];
        cat.append_rows("emp", delta.clone()).unwrap();
        assert!(cat.matview("dsal").unwrap().is_stale(&cat));
        let did = apply_delta("dsal", "emp", &delta, &cat, model, opts, &gov).unwrap();
        assert!(did);
        assert!(!cat.matview("dsal").unwrap().is_stale(&cat));
        let incremental = cat.get("__mv_dsal").unwrap();

        // A from-scratch refresh over the same base data must agree.
        refresh("dsal", &cat, model, opts, &gov).unwrap();
        let rebuilt = cat.get("__mv_dsal").unwrap();
        let mut a = incremental.rows().to_vec();
        let mut b = rebuilt.rows().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn drifted_extent_refuses_incremental_and_rebuilds() {
        let cat = setup();
        let (model, opts, gov) = exec_env();
        let def = dept_sal_view();
        build_extent(&def, &cat, model, opts, &gov).unwrap();

        // An out-of-band append the extent never saw...
        cat.append_rows(
            "emp",
            vec![Tuple::new(vec![
                Value::Int(9050),
                "kim".into(),
                Value::Int(1),
                Value::Float(2000.0),
                Value::Int(22),
            ])],
        )
        .unwrap();
        // ...followed by a second insert: folding only the second delta
        // would launder the first one's staleness.
        let delta = vec![Tuple::new(vec![
            Value::Int(9051),
            "ada".into(),
            Value::Int(1),
            Value::Float(900.0),
            Value::Int(24),
        ])];
        cat.append_rows("emp", delta.clone()).unwrap();
        assert!(
            !apply_delta("dsal", "emp", &delta, &cat, model, opts, &gov).unwrap(),
            "version drift must refuse incremental maintenance"
        );
        assert!(cat.matview("dsal").unwrap().is_stale(&cat));

        // maintain_after_insert falls back to a full rebuild.
        let names = maintain_after_insert("emp", &delta, &cat, model, opts, &gov).unwrap();
        assert_eq!(names, vec!["dsal".to_string()]);
        assert!(!cat.matview("dsal").unwrap().is_stale(&cat));
    }

    #[test]
    fn stddev_views_refuse_incremental() {
        let cat = setup();
        let (model, opts, gov) = exec_env();
        let mut def = dept_sal_view();
        def.name = "dstd".into();
        def.aggs = vec![AggSpec::new(
            AggFunc::StdDev,
            Expr::col(Col::base(RelId(0), 3)),
        )];
        def.column_names = vec!["dno".into(), "sd".into()];
        build_extent(&def, &cat, model, opts, &gov).unwrap();
        let did = apply_delta("dstd", "emp", &[], &cat, model, opts, &gov).unwrap();
        assert!(!did, "stddev stores no partial state");
    }

    #[test]
    fn join_view_builds_and_maintains() {
        let cat = setup();
        let (model, opts, gov) = exec_env();
        // SELECT e.dno, AVG(sal) FROM emp e, dept d
        // WHERE e.dno = d.dno GROUP BY e.dno
        let def = MatViewDef {
            name: "jv".into(),
            tables: vec!["emp".into(), "dept".into()],
            preds: vec![Predicate::eq_cols(
                Col::base(RelId(0), 2),
                Col::base(RelId(1), 0),
            )],
            group_cols: vec![Col::base(RelId(0), 2)],
            aggs: vec![AggSpec::new(
                AggFunc::Avg,
                Expr::col(Col::base(RelId(0), 3)),
            )],
            column_names: vec!["dno".into(), "asal".into()],
        };
        let n = build_extent(&def, &cat, model, opts, &gov).unwrap();
        assert_eq!(n, 6);
        let delta = vec![Tuple::new(vec![
            Value::Int(9100),
            "lee".into(),
            Value::Int(3),
            Value::Float(500.0),
            Value::Int(33),
        ])];
        cat.append_rows("emp", delta.clone()).unwrap();
        assert!(
            apply_delta("jv", "emp", &delta, &cat, model, opts, &gov).unwrap(),
            "single-occurrence join views maintain incrementally"
        );
        refresh("jv", &cat, model, opts, &gov).unwrap();
        // refresh after incremental: both paths already verified equal in
        // build_then_incremental_equals_refresh; here we check freshness.
        assert!(!cat.matview("jv").unwrap().is_stale(&cat));

        // Drift on the *other* base table also refuses incremental:
        // the delta-substituted plan would read dept rows the recorded
        // versions never covered.
        cat.mark_modified("dept").unwrap();
        let delta2 = vec![Tuple::new(vec![
            Value::Int(9101),
            "kai".into(),
            Value::Int(4),
            Value::Float(600.0),
            Value::Int(28),
        ])];
        cat.append_rows("emp", delta2.clone()).unwrap();
        assert!(
            !apply_delta("jv", "emp", &delta2, &cat, model, opts, &gov).unwrap(),
            "other-table drift must refuse incremental maintenance"
        );
        assert!(cat.matview("jv").unwrap().is_stale(&cat));
    }
}
