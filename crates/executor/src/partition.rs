//! Partitioned hash structures shared by the serial and parallel
//! execution paths.
//!
//! Three pieces live here:
//!
//! * [`chunk_ranges`] — the morsel math: split `n` input rows into
//!   contiguous, near-equal worker chunks;
//! * [`JoinIndex`] — a hash-partitioned build-side index for hash
//!   joins: `key hash → build-row indices`, resolved to real matches by
//!   comparing the key columns themselves (hash-then-compare — no
//!   `Vec<Value>` key is ever materialized);
//! * [`GroupTable`] — an insertion-ordered hash-aggregation table whose
//!   groups carry [`PartialAggState`]s, so a per-worker table from the
//!   parallel phase coalesces into the global table with
//!   [`GroupTable::merge_from`] — the physical form of the paper's
//!   simple-coalescing transformation (Section 4.2).
//!
//! All lookups key on a 64-bit hash computed in place over the key
//! columns ([`aggview_common::hash`]); candidate lists store `u32` row
//! or slot indices, so the hot loops allocate only when a *new* group or
//! output tuple is created.

use aggview_common::expr::BoundExpr;
use aggview_common::{
    hash_key, hash_values, key_matches_row, AggFunc, PartialAggState, PrehashedMap, Result, Tuple,
    Value,
};
use std::ops::Range;

/// Split `n` items into at most `parts` contiguous near-equal ranges
/// (the leading ranges are one longer when `n % parts != 0`).
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    if n == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for w in 0..parts {
        let len = base + usize::from(w < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// A hash-partitioned build-side index: partition `hash % nparts`, then
/// `hash → ascending build-row indices` within the partition.
///
/// With `nparts == 1` this is the serial hash-join table; the parallel
/// build scatters `(hash, row)` pairs by partition so independent
/// workers can each own one partition's map. Candidate lists are kept in
/// ascending build-row order regardless of how the index was built, so
/// serial and parallel joins emit matches in the same order.
#[derive(Debug)]
pub struct JoinIndex {
    nparts: usize,
    parts: Vec<PrehashedMap<Vec<u32>>>,
}

impl JoinIndex {
    /// Build serially in one partition, pre-sized from the build-side
    /// cardinality (the estimate is exact here: the input is
    /// materialized).
    pub fn build_serial(rows: &[Tuple], key_pos: &[usize]) -> JoinIndex {
        let mut map: PrehashedMap<Vec<u32>> =
            PrehashedMap::with_capacity_and_hasher(rows.len(), Default::default());
        for (i, t) in rows.iter().enumerate() {
            map.entry(hash_key(t, key_pos)).or_default().push(i as u32);
        }
        JoinIndex {
            nparts: 1,
            parts: vec![map],
        }
    }

    /// Assemble from per-partition maps built by parallel workers.
    pub fn from_parts(parts: Vec<PrehashedMap<Vec<u32>>>) -> JoinIndex {
        JoinIndex {
            nparts: parts.len().max(1),
            parts,
        }
    }

    /// The partition a key hash routes to.
    pub fn part_of(&self, hash: u64) -> usize {
        (hash % self.nparts as u64) as usize
    }

    /// Build-row indices whose key hashed to `hash` (candidates — the
    /// caller must confirm with a key comparison).
    pub fn candidates(&self, hash: u64) -> &[u32] {
        self.parts
            .get(self.part_of(hash))
            .and_then(|m| m.get(&hash))
            .map_or(&[], Vec::as_slice)
    }

    /// Number of hash partitions.
    pub fn partitions(&self) -> usize {
        self.nparts
    }
}

/// How one aggregate reads its per-row input: a raw expression, the
/// implicit COUNT(*) row count, or partial-state components produced by
/// a lower partial group-by (the coalescing input shape).
#[derive(Debug)]
pub enum AggInput {
    Raw(BoundExpr),
    RawCountStar,
    /// Positions of the partial-state component columns in the input
    /// layout, in component order.
    Partial(Vec<usize>),
    /// Duplicate-factor compensation for eager aggregation: each input
    /// row stands for the count held at the given position (the partner
    /// side's per-group count column), so the argument — `None` for
    /// COUNT(*) — is absorbed with that weight.
    Scaled(Option<BoundExpr>, usize),
}

/// Dummy referent so component references can live in a fixed-size
/// array (max partial arity is 3) without per-row allocation.
static NO_VALUE: Value = Value::Bool(false);

impl AggInput {
    /// Absorb `row` into `state`.
    pub fn absorb(&self, state: &mut PartialAggState, row: &Tuple) -> Result<()> {
        match self {
            AggInput::Raw(e) => {
                let v = e.eval(row)?;
                state.update(Some(&v))
            }
            AggInput::RawCountStar => state.update(None),
            AggInput::Partial(comps) => {
                debug_assert!(comps.len() <= 3);
                let mut buf: [&Value; 3] = [&NO_VALUE; 3];
                for (k, &i) in comps.iter().enumerate() {
                    buf[k] = row.get(i);
                }
                state.merge_components(&buf[..comps.len()])
            }
            AggInput::Scaled(e, cnt) => {
                let n = duplicate_factor(row.get(*cnt))?;
                match e {
                    Some(e) => {
                        let v = e.eval(row)?;
                        state.update_weighted(Some(&v), n)
                    }
                    None => state.update_weighted(None, n),
                }
            }
        }
    }

    /// Absorb a row exposed through a position accessor instead of a
    /// materialized [`Tuple`] — the batch path's equivalent of
    /// [`absorb`](Self::absorb), with identical update semantics.
    pub fn absorb_with(
        &self,
        state: &mut PartialAggState,
        get: &impl Fn(usize) -> Value,
    ) -> Result<()> {
        match self {
            AggInput::Raw(e) => {
                let v = e.eval_with(get)?;
                state.update(Some(&v))
            }
            AggInput::RawCountStar => state.update(None),
            AggInput::Partial(comps) => {
                debug_assert!(comps.len() <= 3);
                let mut buf: [Value; 3] =
                    [Value::Bool(false), Value::Bool(false), Value::Bool(false)];
                for (k, &i) in comps.iter().enumerate() {
                    buf[k] = get(i);
                }
                state.merge_components(&buf[..comps.len()])
            }
            AggInput::Scaled(e, cnt) => {
                let n = duplicate_factor(&get(*cnt))?;
                match e {
                    Some(e) => {
                        let v = e.eval_with(get)?;
                        state.update_weighted(Some(&v), n)
                    }
                    None => state.update_weighted(None, n),
                }
            }
        }
    }
}

/// Read a duplicate-factor count value, rejecting non-integers.
fn duplicate_factor(v: &Value) -> Result<i64> {
    v.as_i64().ok_or_else(|| {
        aggview_common::AggViewError::Exec(format!("non-integer duplicate factor {v}"))
    })
}

/// One aggregation group: its key hash, the projected key tuple, and one
/// partial state per aggregate.
#[derive(Debug)]
pub struct Group {
    pub hash: u64,
    pub key: Tuple,
    pub states: Vec<PartialAggState>,
}

/// Insertion-ordered hash-aggregation table.
///
/// `index` maps key hashes to slots in `groups`; collisions are
/// resolved by comparing the stored key tuple against the incoming
/// row's key columns. Keeping groups in a `Vec` (rather than iterating
/// a `HashMap`) makes output order deterministic: serial aggregation
/// emits groups in first-appearance order.
#[derive(Debug, Default)]
pub struct GroupTable {
    index: PrehashedMap<Vec<u32>>,
    pub groups: Vec<Group>,
}

impl GroupTable {
    pub fn new() -> GroupTable {
        GroupTable::default()
    }

    pub fn len(&self) -> usize {
        self.groups.len()
    }

    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Find (or create, with empty states for `funcs`) the group slot
    /// for `row`'s key projection. The only allocations happen on the
    /// first row of a new group.
    pub fn slot_for(&mut self, row: &Tuple, key_pos: &[usize], funcs: &[AggFunc]) -> usize {
        let hash = hash_key(row, key_pos);
        let slots = self.index.entry(hash).or_default();
        for &s in slots.iter() {
            if key_matches_row(&self.groups[s as usize].key, row, key_pos) {
                return s as usize;
            }
        }
        let slot = self.groups.len();
        slots.push(slot as u32);
        self.groups.push(Group {
            hash,
            key: row.project(key_pos),
            states: funcs.iter().map(|&f| PartialAggState::empty(f)).collect(),
        });
        slot
    }

    /// Slot of the group whose key tuple equals `key`, if present —
    /// never creates a group (the lookup half of [`slot_for`](Self::slot_for)).
    pub fn find(&self, key: &Tuple) -> Option<usize> {
        let hash = hash_values(key.values());
        self.index.get(&hash).and_then(|slots| {
            slots
                .iter()
                .find(|&&s| self.groups[s as usize].key == *key)
                .map(|&s| s as usize)
        })
    }

    /// Accumulate one row: route to its group and absorb it into every
    /// aggregate state.
    pub fn accumulate(
        &mut self,
        row: &Tuple,
        key_pos: &[usize],
        inputs: &[AggInput],
        funcs: &[AggFunc],
    ) -> Result<()> {
        let slot = self.slot_for(row, key_pos, funcs);
        let states = &mut self.groups[slot].states;
        for (state, input) in states.iter_mut().zip(inputs) {
            input.absorb(state, row)?;
        }
        Ok(())
    }

    /// Coalesce every group of `other` into `self` — the global merge of
    /// two-phase parallel aggregation. Groups new to `self` keep their
    /// first-appearance order within `other`.
    pub fn merge_from(&mut self, other: GroupTable) -> Result<()> {
        for g in other.groups {
            let slots = self.index.entry(g.hash).or_default();
            let existing = slots
                .iter()
                .find(|&&s| self.groups[s as usize].key == g.key)
                .copied();
            match existing {
                Some(s) => {
                    let states = &mut self.groups[s as usize].states;
                    for (mine, theirs) in states.iter_mut().zip(&g.states) {
                        mine.merge(theirs)?;
                    }
                }
                None => {
                    slots.push(self.groups.len() as u32);
                    self.groups.push(g);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::tuple;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 17, 100] {
            for parts in [1usize, 2, 3, 8] {
                let ranges = chunk_ranges(n, parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} parts={parts}");
                // Contiguous and in order.
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert!(ranges.len() <= parts);
            }
        }
    }

    #[test]
    fn join_index_candidates_ascend_and_confirm_by_key() {
        let rows = vec![tuple![1i64, "a"], tuple![2i64, "b"], tuple![1i64, "c"]];
        let idx = JoinIndex::build_serial(&rows, &[0]);
        let probe = tuple![1i64];
        let h = aggview_common::hash_key(&probe, &[0]);
        let cands = idx.candidates(h);
        // Both key-1 rows, in build order (hash collisions with row 1
        // would also appear here — callers re-compare keys).
        assert!(cands.windows(2).all(|w| w[0] < w[1]));
        let confirmed: Vec<u32> = cands
            .iter()
            .copied()
            .filter(|&i| aggview_common::keys_equal(&rows[i as usize], &[0], &probe, &[0]))
            .collect();
        assert_eq!(confirmed, vec![0, 2]);
    }

    #[test]
    fn group_table_accumulates_and_merges_like_one_pass() {
        let rows: Vec<Tuple> = (0..100).map(|i| tuple![(i % 7) as i64, i as i64]).collect();
        let funcs = [AggFunc::Count, AggFunc::Sum];
        let inputs = [
            AggInput::RawCountStar,
            AggInput::Raw(
                aggview_common::Expr::col(aggview_common::Col::base(aggview_common::RelId(0), 1))
                    .bind(&|c| match c {
                        aggview_common::Col::Base(b) => Some(b.col as usize),
                        _ => None,
                    })
                    .unwrap(),
            ),
        ];

        // One pass.
        let mut one = GroupTable::new();
        for r in &rows {
            one.accumulate(r, &[0], &inputs, &funcs).unwrap();
        }

        // Two halves merged.
        let mut a = GroupTable::new();
        let mut b = GroupTable::new();
        for r in &rows[..41] {
            a.accumulate(r, &[0], &inputs, &funcs).unwrap();
        }
        for r in &rows[41..] {
            b.accumulate(r, &[0], &inputs, &funcs).unwrap();
        }
        a.merge_from(b).unwrap();

        assert_eq!(one.len(), 7);
        assert_eq!(a.len(), 7);
        for g in &one.groups {
            let other = a.groups.iter().find(|x| x.key == g.key).unwrap();
            for (x, y) in g.states.iter().zip(&other.states) {
                assert_eq!(x.finalize().unwrap(), y.finalize().unwrap());
            }
        }
    }

    #[test]
    fn partial_input_absorbs_components_without_alloc_per_row() {
        // AVG partial components at positions [1, 2] of the row.
        let mut state = PartialAggState::empty(AggFunc::Avg);
        let row = tuple![0i64, 10.0f64, 2i64]; // sum=10, count=2
        AggInput::Partial(vec![1, 2])
            .absorb(&mut state, &row)
            .unwrap();
        AggInput::Partial(vec![1, 2])
            .absorb(&mut state, &row)
            .unwrap();
        assert_eq!(state.finalize().unwrap(), Value::Float(5.0));
    }
}
