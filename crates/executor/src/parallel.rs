//! Morsel-driven parallel operators.
//!
//! Every data-parallel operator follows the same shape: the input is
//! split into contiguous per-worker chunks ([`chunk_ranges`]), a scoped
//! worker pool (`std::thread::scope`) processes the chunks, and results
//! are stitched back together **in chunk order** — so the parallel scan,
//! nested-loop join and hash-probe emit tuples in exactly the order the
//! serial path would. Aggregation is two-phase: each worker builds a
//! local [`GroupTable`] (the paper's partial aggregation), and the
//! tables coalesce into one with [`GroupTable::merge_from`] (simple
//! coalescing grouping, run as the physical merge step).
//!
//! Inside a chunk, workers advance in *morsels* of
//! [`ExecOptions::morsel_rows`] rows, checking governor cancellation and
//! the wall-clock deadline at each morsel boundary; every output tuple
//! is charged against the shared atomic row/byte budgets as it is
//! produced. A budget crossed on one worker aborts every worker at its
//! next morsel boundary, so the total overshoot is bounded by roughly
//! one morsel's output per worker.
//!
//! With `threads == 1` (or an input below
//! [`ExecOptions::parallel_threshold`]) the same code runs inline on the
//! caller's thread — the serial path *is* the one-chunk special case,
//! so there is exactly one implementation of each operator to test.

use crate::partition::{chunk_ranges, AggInput, GroupTable, JoinIndex};
use aggview_common::predicate::{eval_conjunction_split, BoundPredicate};
use aggview_common::{hash_key, keys_equal, AggFunc, AggViewError, PrehashedMap, Result, Tuple};
use aggview_core::governor::ResourceGovernor;
use std::ops::Range;

/// Which operator implementation the engine runs.
///
/// Both modes produce byte-identical results (rows, IO pages, peak
/// intermediate bytes) — `Row` is kept as the differential-testing
/// reference and as an escape hatch, `Batch` is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Tuple-at-a-time operators over `Vec<Tuple>`.
    Row,
    /// Vectorized operators over column-major [`aggview_common::Batch`]es.
    Batch,
}

impl ExecMode {
    /// `AGGVIEW_EXEC_MODE` when set to `row` or `batch`; `Batch`
    /// otherwise.
    fn from_env() -> ExecMode {
        match std::env::var("AGGVIEW_EXEC_MODE")
            .ok()
            .as_deref()
            .map(str::trim)
        {
            Some("row") => ExecMode::Row,
            _ => ExecMode::Batch,
        }
    }
}

/// Executor tuning knobs, threaded from the session/REPL into every
/// operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads for data-parallel operators (`1` = serial).
    pub threads: usize,
    /// Rows per morsel — the granularity of cancellation/deadline checks
    /// inside a worker chunk.
    pub morsel_rows: usize,
    /// Inputs with fewer rows than this stay on the single-chunk path
    /// regardless of `threads`: thread spawn costs more than the work,
    /// and small inputs are where float-merge order differences would be
    /// most visible relative to the data.
    pub parallel_threshold: usize,
    /// Row vs. columnar operator implementations.
    pub mode: ExecMode,
    /// Rows per columnar tile in batch mode. Tiles are also the
    /// granularity of cancellation checks and bulk governor charges on
    /// the batch path.
    pub batch_rows: usize,
}

impl Default for ExecOptions {
    /// `AGGVIEW_THREADS` when set (≥ 1), otherwise the host's available
    /// parallelism. Execution mode honors `AGGVIEW_EXEC_MODE`.
    fn default() -> Self {
        let threads = std::env::var("AGGVIEW_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        ExecOptions {
            threads,
            ..Self::serial()
        }
    }
}

impl ExecOptions {
    /// Single-threaded options (thread count independent of the
    /// environment; execution mode still honors `AGGVIEW_EXEC_MODE` so
    /// the whole suite can be driven through either path).
    pub fn serial() -> Self {
        ExecOptions {
            threads: 1,
            morsel_rows: 1024,
            parallel_threshold: 4096,
            mode: ExecMode::from_env(),
            batch_rows: 1024,
        }
    }

    /// Options with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions {
            threads: threads.max(1),
            ..Self::serial()
        }
    }

    /// Worker count for an input of `n` rows.
    pub fn workers_for(&self, n: usize) -> usize {
        if self.threads <= 1 || n < self.parallel_threshold {
            1
        } else {
            self.threads
        }
    }
}

/// Run `work` over every chunk — inline when there is one chunk, on
/// scoped worker threads otherwise. Results return in chunk order.
pub(crate) fn run_chunks<T, F>(chunks: Vec<Range<usize>>, work: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(Range<usize>) -> Result<T> + Sync,
{
    if chunks.len() <= 1 {
        return chunks.into_iter().map(work).collect();
    }
    let results: Vec<Result<T>> = std::thread::scope(|s| {
        let work = &work;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|r| s.spawn(move || work(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(AggViewError::Exec("parallel worker panicked".into())))
            })
            .collect()
    });
    results.into_iter().collect()
}

/// Drive `body` over `range` in morsels, checking the governor at each
/// morsel boundary.
fn for_each_morsel(
    gov: &ResourceGovernor,
    range: Range<usize>,
    morsel_rows: usize,
    mut body: impl FnMut(usize) -> Result<()>,
) -> Result<()> {
    let step = morsel_rows.max(1);
    let mut i = range.start;
    while i < range.end {
        gov.check_interrupt()?;
        let end = (i + step).min(range.end);
        for j in i..end {
            body(j)?;
        }
        i = end;
    }
    Ok(())
}

/// Stitch per-chunk `(tuples, bytes)` results back together in order.
fn stitch(parts: Vec<(Vec<Tuple>, u64)>) -> (Vec<Tuple>, u64) {
    let total_rows = parts.iter().map(|(p, _)| p.len()).sum();
    let mut rows = Vec::with_capacity(total_rows);
    let mut bytes = 0u64;
    for (part, b) in parts {
        rows.extend(part);
        bytes += b;
    }
    (rows, bytes)
}

/// Filter `rows` by the conjunction `preds` and project `positions`.
/// Survivors come back in input order; the second component is their
/// total byte width.
pub fn filter_project(
    opts: &ExecOptions,
    gov: &ResourceGovernor,
    rows: &[Tuple],
    preds: &[BoundPredicate],
    positions: &[usize],
) -> Result<(Vec<Tuple>, u64)> {
    let chunks = chunk_ranges(rows.len(), opts.workers_for(rows.len()));
    let parts = run_chunks(chunks, |range| {
        let mut out = Vec::new();
        let mut bytes = 0u64;
        for_each_morsel(gov, range, opts.morsel_rows, |i| {
            let row = &rows[i];
            for p in preds {
                if !p.eval(row)? {
                    return Ok(());
                }
            }
            let t = row.project(positions);
            let w = t.width() as u64;
            gov.charge_output(1, w)?;
            bytes += w;
            out.push(t);
            Ok(())
        })?;
        Ok((out, bytes))
    })?;
    Ok(stitch(parts))
}

/// Where each projected join-output column reads from, precomputed once
/// per join so emitting a match never consults the combined layout (and
/// never materializes a concatenated tuple unless a residual predicate
/// needs one).
pub struct JoinEmit {
    slots: Vec<Src>,
}

enum Src {
    Build(usize),
    Probe(usize),
}

impl JoinEmit {
    /// `positions` index into the combined `left ++ right` layout of
    /// `left_arity + right_arity` columns.
    pub fn new(positions: &[usize], left_arity: usize, build_left: bool) -> JoinEmit {
        let slots = positions
            .iter()
            .map(|&p| {
                let (left_side, i) = if p < left_arity {
                    (true, p)
                } else {
                    (false, p - left_arity)
                };
                if left_side == build_left {
                    Src::Build(i)
                } else {
                    Src::Probe(i)
                }
            })
            .collect();
        JoinEmit { slots }
    }

    fn emit(&self, build: &Tuple, probe: &Tuple) -> Tuple {
        self.slots
            .iter()
            .map(|s| match *s {
                Src::Build(i) => build.get(i).clone(),
                Src::Probe(i) => probe.get(i).clone(),
            })
            .collect()
    }
}

/// Build the hash-join index over `build`. Below the parallel threshold
/// this is the pre-sized single-partition build; above it, workers
/// scatter `(hash, row)` pairs by `hash % workers` and then each worker
/// assembles one partition's map, keeping candidate lists in ascending
/// build-row order either way.
///
/// `rows_hint` carries a fresh-statistics row count for the build input
/// (when the planner knows one) so the parallel scatter buckets start
/// at their expected size instead of growing through doublings.
pub fn build_index(
    opts: &ExecOptions,
    gov: &ResourceGovernor,
    build: &[Tuple],
    key_pos: &[usize],
    rows_hint: Option<usize>,
) -> Result<JoinIndex> {
    let workers = opts.workers_for(build.len());
    if workers <= 1 {
        gov.check_interrupt()?;
        return Ok(JoinIndex::build_serial(build, key_pos));
    }
    let nparts = workers;
    let per_bucket = rows_hint
        .map(|h| h.min(build.len()) / (workers * nparts) + 1)
        .unwrap_or(0);
    let chunks = chunk_ranges(build.len(), workers);
    let scattered = run_chunks(chunks, |range| {
        let mut buckets: Vec<Vec<(u64, u32)>> =
            vec![Vec::with_capacity(per_bucket); nparts];
        for_each_morsel(gov, range, opts.morsel_rows, |i| {
            let h = hash_key(&build[i], key_pos);
            buckets[(h % nparts as u64) as usize].push((h, i as u32));
            Ok(())
        })?;
        Ok(buckets)
    })?;
    // Worker p owns partition p. Visiting scatter buckets in worker
    // (= ascending chunk) order keeps each candidate list ascending.
    let scattered = &scattered;
    let parts = run_chunks(chunk_ranges(nparts, nparts), |range| {
        let p = range.start;
        gov.check_interrupt()?;
        let cap: usize = scattered.iter().map(|b| b[p].len()).sum();
        let mut map: PrehashedMap<Vec<u32>> =
            PrehashedMap::with_capacity_and_hasher(cap, Default::default());
        for buckets in scattered {
            for &(h, i) in &buckets[p] {
                map.entry(h).or_default().push(i);
            }
        }
        Ok(map)
    })?;
    Ok(JoinIndex::from_parts(parts))
}

/// Probe phase of the hash join: workers split the probe side, look up
/// candidates by key hash, confirm by comparing key columns, apply
/// residual predicates, and emit projected outputs — in probe order,
/// matching the serial join exactly.
#[allow(clippy::too_many_arguments)]
pub fn probe_join(
    opts: &ExecOptions,
    gov: &ResourceGovernor,
    build: &[Tuple],
    probe: &[Tuple],
    index: &JoinIndex,
    build_pos: &[usize],
    probe_pos: &[usize],
    residual: &[BoundPredicate],
    build_left: bool,
    emit: &JoinEmit,
) -> Result<(Vec<Tuple>, u64)> {
    let chunks = chunk_ranges(probe.len(), opts.workers_for(probe.len()));
    let parts = run_chunks(chunks, |range| {
        let mut out = Vec::new();
        let mut bytes = 0u64;
        for_each_morsel(gov, range, opts.morsel_rows, |i| {
            let p = &probe[i];
            let h = hash_key(p, probe_pos);
            for &bi in index.candidates(h) {
                let b = &build[bi as usize];
                if !keys_equal(b, build_pos, p, probe_pos) {
                    continue;
                }
                if !residual.is_empty() {
                    // Evaluate against the virtual concatenation — no
                    // combined tuple is ever materialized.
                    let ok = if build_left {
                        eval_conjunction_split(residual, b, p, b.arity())?
                    } else {
                        eval_conjunction_split(residual, p, b, p.arity())?
                    };
                    if !ok {
                        continue;
                    }
                }
                let t = emit.emit(b, p);
                let w = t.width() as u64;
                gov.charge_output(1, w)?;
                bytes += w;
                out.push(t);
            }
            Ok(())
        })?;
        Ok((out, bytes))
    })?;
    Ok(stitch(parts))
}

/// Nested-loop join for predicate sets with no hashable equality:
/// workers split the outer (left) side; outputs come back in the serial
/// `for l { for r }` order.
pub fn nested_loop_join(
    opts: &ExecOptions,
    gov: &ResourceGovernor,
    lrows: &[Tuple],
    rrows: &[Tuple],
    preds: &[BoundPredicate],
    positions: &[usize],
) -> Result<(Vec<Tuple>, u64)> {
    let l_arity = lrows.first().map_or(0, Tuple::arity);
    let chunks = chunk_ranges(lrows.len(), opts.workers_for(lrows.len()));
    let parts = run_chunks(chunks, |range| {
        let mut out = Vec::new();
        let mut bytes = 0u64;
        for_each_morsel(gov, range, opts.morsel_rows.max(1), |i| {
            let l = &lrows[i];
            for r in rrows {
                if eval_conjunction_split(preds, l, r, l_arity)? {
                    // Emit straight from the two sides — the combined
                    // tuple is never materialized.
                    let t: Tuple = positions
                        .iter()
                        .map(|&p| {
                            if p < l_arity {
                                l.get(p).clone()
                            } else {
                                r.get(p - l_arity).clone()
                            }
                        })
                        .collect();
                    let w = t.width() as u64;
                    gov.charge_output(1, w)?;
                    bytes += w;
                    out.push(t);
                }
            }
            Ok(())
        })?;
        Ok((out, bytes))
    })?;
    Ok(stitch(parts))
}

/// Two-phase parallel aggregation: each worker accumulates its chunk
/// into a local [`GroupTable`] (phase 1 — partial aggregation), then the
/// tables coalesce in worker order (phase 2 — the global merge). With
/// one worker this degenerates to the serial hash aggregation.
pub fn accumulate_groups(
    opts: &ExecOptions,
    gov: &ResourceGovernor,
    rows: &[Tuple],
    key_pos: &[usize],
    inputs: &[AggInput],
    funcs: &[AggFunc],
) -> Result<GroupTable> {
    let chunks = chunk_ranges(rows.len(), opts.workers_for(rows.len()));
    let tables = run_chunks(chunks, |range| {
        let mut table = GroupTable::new();
        for_each_morsel(gov, range, opts.morsel_rows, |i| {
            table.accumulate(&rows[i], key_pos, inputs, funcs)
        })?;
        Ok(table)
    })?;
    let mut iter = tables.into_iter();
    let mut global = iter.next().unwrap_or_default();
    for t in iter {
        global.merge_from(t)?;
    }
    Ok(global)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::tuple;

    fn rows(n: usize) -> Vec<Tuple> {
        (0..n).map(|i| tuple![(i % 13) as i64, i as i64]).collect()
    }

    fn par(threads: usize) -> ExecOptions {
        ExecOptions {
            threads,
            morsel_rows: 64,
            parallel_threshold: 1, // force the parallel path on tiny inputs
            ..ExecOptions::serial()
        }
    }

    #[test]
    fn parallel_filter_preserves_input_order() {
        let input = rows(1000);
        let gov = ResourceGovernor::unlimited();
        let (serial, sb) =
            filter_project(&ExecOptions::serial(), &gov, &input, &[], &[1, 0]).unwrap();
        let (parallel, pb) = filter_project(&par(4), &gov, &input, &[], &[1, 0]).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(sb, pb);
    }

    #[test]
    fn parallel_index_matches_serial_candidates() {
        let input = rows(500);
        let gov = ResourceGovernor::unlimited();
        let serial = JoinIndex::build_serial(&input, &[0]);
        let parallel = build_index(&par(4), &gov, &input, &[0], None).unwrap();
        assert!(parallel.partitions() > 1);
        for probe in &input {
            let h = hash_key(probe, &[0]);
            assert_eq!(serial.candidates(h), parallel.candidates(h));
        }
    }

    #[test]
    fn parallel_group_matches_serial_after_sort() {
        let input = rows(1000);
        let gov = ResourceGovernor::unlimited();
        let inputs = [AggInput::RawCountStar];
        let funcs = [AggFunc::Count];
        let serial =
            accumulate_groups(&ExecOptions::serial(), &gov, &input, &[0], &inputs, &funcs).unwrap();
        let parallel = accumulate_groups(&par(4), &gov, &input, &[0], &inputs, &funcs).unwrap();
        let render = |t: &GroupTable| {
            let mut v: Vec<(Tuple, i64)> = t
                .groups
                .iter()
                .map(|g| {
                    (
                        g.key.clone(),
                        g.states[0].finalize().unwrap().as_i64().unwrap(),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(render(&serial), render(&parallel));
    }

    #[test]
    fn cancellation_aborts_parallel_workers() {
        let input = rows(2000);
        let gov = ResourceGovernor::unlimited();
        gov.token().cancel();
        let err = filter_project(&par(4), &gov, &input, &[], &[0]).unwrap_err();
        assert_eq!(err.kind(), "cancelled");
    }
}
