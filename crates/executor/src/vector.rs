//! Vectorized (columnar) operator kernels.
//!
//! These are the batch-mode counterparts of the row-at-a-time operators
//! in [`crate::parallel`], processing fixed-size column-major tiles of
//! [`ExecOptions::batch_rows`] rows with tight per-column loops:
//!
//! * [`scan_filter_project`] — transpose, filter via selection vectors,
//!   gather-project;
//! * [`build_index`] / [`probe_join`] / [`nested_loop_join`] — hash and
//!   nested-loop joins whose matches are emitted as per-side selection
//!   vectors and gathered column-by-column;
//! * [`accumulate_groups`] — hash aggregation into a
//!   [`BatchGroupTable`] whose keys stay column-major.
//!
//! The contracts of the row path carry over unchanged: inputs split into
//! the **same** [`chunk_ranges`] worker chunks (so parallel float-merge
//! order is identical), outputs are emitted in the same order the serial
//! row path would produce, the governor is charged per tile via
//! [`ResourceGovernor::charge_output_bulk`] (clamped so budget overshoot
//! still reads as at most one row past the cap), and cancellation is
//! checked at every tile boundary.
//!
//! Key hashing uses the fx chain ([`Batch::hash_rows`]) instead of the
//! row path's SipHash: the hash function is private to one operator
//! execution — candidates are always confirmed by comparing key values,
//! and group/candidate order never depends on hash values — so a cheaper
//! mix changes no observable output.

use crate::parallel::{run_chunks, ExecOptions};
use crate::partition::{chunk_ranges, AggInput, JoinIndex};
use aggview_common::expr::BoundExpr;
use aggview_common::predicate::BoundPredicate;
use aggview_common::{
    AggFunc, AggViewError, Batch, ColumnVec, PartialAggState, PrehashedMap, Result, Tuple, Value,
};
use aggview_core::governor::ResourceGovernor;
use std::cmp::Ordering;
use std::ops::Range;

/// Iterate tiles of `batch_rows` over `range`, checking the governor at
/// each tile boundary.
fn for_each_tile(
    gov: &ResourceGovernor,
    range: Range<usize>,
    batch_rows: usize,
    mut body: impl FnMut(Range<usize>) -> Result<()>,
) -> Result<()> {
    let step = batch_rows.max(1);
    let mut i = range.start;
    while i < range.end {
        gov.check_interrupt()?;
        let end = (i + step).min(range.end);
        body(i..end)?;
        i = end;
    }
    Ok(())
}

/// Stitch per-chunk `(batch, bytes)` results in chunk order. `empty`
/// supplies the output layout when the input had no chunks at all (so
/// empty results still carry correctly-typed columns downstream).
fn stitch(parts: Vec<(Batch, u64)>, empty: impl FnOnce() -> Batch) -> (Batch, u64) {
    let mut iter = parts.into_iter();
    let Some((mut out, mut bytes)) = iter.next() else {
        return (empty(), 0);
    };
    for (part, b) in iter {
        out.append(&part);
        bytes += b;
    }
    (out, bytes)
}

// ---------------------------------------------------------------------
// Filtering: selection-vector sweeps
// ---------------------------------------------------------------------

/// Push every row of the current selection whose `ord(i)` satisfies
/// `op`. `cur == None` means "all rows of `0..n`".
fn sel_by_ord(
    op: aggview_common::CmpOp,
    n: usize,
    cur: Option<&[u32]>,
    out: &mut Vec<u32>,
    ord: impl Fn(usize) -> Ordering,
) {
    match cur {
        Some(sel) => {
            for &i in sel {
                if op.matches(ord(i as usize)) {
                    out.push(i);
                }
            }
        }
        None => {
            for i in 0..n {
                if op.matches(ord(i)) {
                    out.push(i as u32);
                }
            }
        }
    }
}

/// Fallible variant of [`sel_by_ord`] for generic row-wise evaluation.
fn sel_by_eval(
    n: usize,
    cur: Option<&[u32]>,
    out: &mut Vec<u32>,
    mut f: impl FnMut(usize) -> Result<bool>,
) -> Result<()> {
    match cur {
        Some(sel) => {
            for &i in sel {
                if f(i as usize)? {
                    out.push(i);
                }
            }
        }
        None => {
            for i in 0..n {
                if f(i)? {
                    out.push(i as u32);
                }
            }
        }
    }
    Ok(())
}

/// Typed column-vs-constant sweep. Returns `false` when no typed
/// specialization applies (caller falls back to generic evaluation,
/// which also produces the exact row-path error for incomparable types).
fn sel_col_const(
    op: aggview_common::CmpOp,
    col: &ColumnVec,
    c: &Value,
    n: usize,
    cur: Option<&[u32]>,
    out: &mut Vec<u32>,
) -> bool {
    match (col, c) {
        (ColumnVec::Int(xs), Value::Int(k)) => sel_by_ord(op, n, cur, out, |i| xs[i].cmp(k)),
        (ColumnVec::Int(xs), Value::Float(k)) => {
            sel_by_ord(op, n, cur, out, |i| (xs[i] as f64).total_cmp(k))
        }
        (ColumnVec::Float(xs), Value::Int(k)) => {
            let k = *k as f64;
            sel_by_ord(op, n, cur, out, |i| xs[i].total_cmp(&k))
        }
        (ColumnVec::Float(xs), Value::Float(k)) => {
            sel_by_ord(op, n, cur, out, |i| xs[i].total_cmp(k))
        }
        (ColumnVec::Str(xs), Value::Str(k)) => {
            sel_by_ord(op, n, cur, out, |i| xs[i].as_ref().cmp(k.as_ref()))
        }
        (ColumnVec::Bool(xs), Value::Bool(k)) => sel_by_ord(op, n, cur, out, |i| xs[i].cmp(k)),
        _ => return false,
    }
    true
}

/// Typed column-vs-column sweep; same fallback convention as
/// [`sel_col_const`].
fn sel_col_col(
    op: aggview_common::CmpOp,
    a: &ColumnVec,
    b: &ColumnVec,
    n: usize,
    cur: Option<&[u32]>,
    out: &mut Vec<u32>,
) -> bool {
    match (a, b) {
        (ColumnVec::Int(xs), ColumnVec::Int(ys)) => {
            sel_by_ord(op, n, cur, out, |i| xs[i].cmp(&ys[i]))
        }
        (ColumnVec::Int(xs), ColumnVec::Float(ys)) => {
            sel_by_ord(op, n, cur, out, |i| (xs[i] as f64).total_cmp(&ys[i]))
        }
        (ColumnVec::Float(xs), ColumnVec::Int(ys)) => {
            sel_by_ord(op, n, cur, out, |i| xs[i].total_cmp(&(ys[i] as f64)))
        }
        (ColumnVec::Float(xs), ColumnVec::Float(ys)) => {
            sel_by_ord(op, n, cur, out, |i| xs[i].total_cmp(&ys[i]))
        }
        (ColumnVec::Str(xs), ColumnVec::Str(ys)) => {
            sel_by_ord(op, n, cur, out, |i| xs[i].cmp(&ys[i]))
        }
        (ColumnVec::Bool(xs), ColumnVec::Bool(ys)) => {
            sel_by_ord(op, n, cur, out, |i| xs[i].cmp(&ys[i]))
        }
        _ => return false,
    }
    true
}

/// Evaluate the conjunction `preds` over all rows of `tile`, returning
/// the surviving selection (`None` = every row survives).
///
/// Predicates sweep one at a time over the shrinking selection, so
/// evaluation is predicate-major; when several predicates *can* error
/// (only possible on ill-typed data), the surfaced error may belong to a
/// different row than the row-major reference would pick — both paths
/// still error, with identical messages for any given (row, predicate).
pub(crate) fn filter_tile(preds: &[BoundPredicate], tile: &Batch) -> Result<Option<Vec<u32>>> {
    let n = tile.len();
    let mut cur: Option<Vec<u32>> = None;
    let mut next: Vec<u32> = Vec::new();
    for p in preds {
        next.clear();
        let sel = cur.as_deref();
        let handled = match (&p.left, &p.right) {
            (BoundExpr::Col(i), BoundExpr::Const(v)) => {
                sel_col_const(p.op, tile.col(*i), v, n, sel, &mut next)
            }
            (BoundExpr::Const(v), BoundExpr::Col(j)) => {
                // Flip the operator so the column drives the sweep; the
                // typed specializations only fire for comparable pairs,
                // where flipping cannot change the outcome or error.
                sel_col_const(p.op.flipped(), tile.col(*j), v, n, sel, &mut next)
            }
            (BoundExpr::Col(i), BoundExpr::Col(j)) => {
                sel_col_col(p.op, tile.col(*i), tile.col(*j), n, sel, &mut next)
            }
            _ => false,
        };
        if !handled {
            sel_by_eval(n, sel, &mut next, |i| p.eval_with(&|k| tile.value_at(k, i)))?;
        }
        if next.len() == n && cur.is_none() {
            next.clear(); // still unselective
        } else {
            cur = Some(std::mem::take(&mut next));
            if cur.as_deref().is_some_and(<[u32]>::is_empty) {
                break;
            }
        }
    }
    Ok(cur)
}

// ---------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------

/// Columnar scan: transpose `rows` tile-by-tile into typed columns
/// (`phys[c]` is the tuple position backing batch column `c`), filter
/// with selection vectors, and gather-project `positions` (batch-column
/// indices) into the output batch. Survivors come back in input order;
/// the second component is their total byte width.
pub fn scan_filter_project(
    opts: &ExecOptions,
    gov: &ResourceGovernor,
    rows: &[Tuple],
    phys: &[usize],
    types: &[aggview_common::DataType],
    preds: &[BoundPredicate],
    positions: &[usize],
) -> Result<(Batch, u64)> {
    let out_layout = || {
        Batch::from_parts(
            positions
                .iter()
                .map(|&p| ColumnVec::with_type(types[p]))
                .collect(),
            0,
        )
    };
    let chunks = chunk_ranges(rows.len(), opts.workers_for(rows.len()));
    let parts = run_chunks(chunks, |range| {
        let mut out = out_layout();
        let mut bytes = 0u64;
        for_each_tile(gov, range, opts.batch_rows, |tile_range| {
            let tile = Batch::from_tuples(&rows[tile_range], phys, types);
            let sel = filter_tile(preds, &tile)?;
            let (added, w) = match &sel {
                Some(s) => (s.len(), out.gather_from(&tile, positions, Some(s), 0..0)),
                None => (
                    tile.len(),
                    out.gather_from(&tile, positions, None, 0..tile.len()),
                ),
            };
            gov.charge_output_bulk(added as u64, w)?;
            bytes += w;
            Ok(())
        })?;
        Ok((out, bytes))
    })?;
    Ok(stitch(parts, out_layout))
}

// ---------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------

/// Build the hash-join index over the build-side batch, mirroring
/// [`crate::parallel::build_index`] (serial pre-sized map below the
/// parallel threshold, hash-scattered partitions above it) but hashing
/// key columns tile-wise with the fx chain.
pub fn build_index(
    opts: &ExecOptions,
    gov: &ResourceGovernor,
    build: &Batch,
    key_pos: &[usize],
    rows_hint: Option<usize>,
) -> Result<JoinIndex> {
    let n = build.len();
    let workers = opts.workers_for(n);
    if workers <= 1 {
        let mut map: PrehashedMap<Vec<u32>> =
            PrehashedMap::with_capacity_and_hasher(n, Default::default());
        let mut hashes = Vec::new();
        for_each_tile(gov, 0..n, opts.batch_rows, |r| {
            build.hash_rows(key_pos, r.clone(), &mut hashes);
            for (k, &h) in hashes.iter().enumerate() {
                map.entry(h).or_default().push((r.start + k) as u32);
            }
            Ok(())
        })?;
        return Ok(JoinIndex::from_parts(vec![map]));
    }
    let nparts = workers;
    let per_bucket = rows_hint
        .map(|h| h.min(n) / (workers * nparts) + 1)
        .unwrap_or(0);
    let chunks = chunk_ranges(n, workers);
    let scattered = run_chunks(chunks, |range| {
        let mut buckets: Vec<Vec<(u64, u32)>> =
            vec![Vec::with_capacity(per_bucket); nparts];
        let mut hashes = Vec::new();
        for_each_tile(gov, range, opts.batch_rows, |r| {
            build.hash_rows(key_pos, r.clone(), &mut hashes);
            for (k, &h) in hashes.iter().enumerate() {
                buckets[(h % nparts as u64) as usize].push((h, (r.start + k) as u32));
            }
            Ok(())
        })?;
        Ok(buckets)
    })?;
    // Worker p owns partition p; visiting scatter buckets in worker order
    // keeps candidate lists in ascending build-row order.
    let scattered = &scattered;
    let parts = run_chunks(chunk_ranges(nparts, nparts), |range| {
        let p = range.start;
        gov.check_interrupt()?;
        let cap: usize = scattered.iter().map(|b| b[p].len()).sum();
        let mut map: PrehashedMap<Vec<u32>> =
            PrehashedMap::with_capacity_and_hasher(cap, Default::default());
        for buckets in scattered {
            for &(h, i) in &buckets[p] {
                map.entry(h).or_default().push(i);
            }
        }
        Ok(map)
    })?;
    Ok(JoinIndex::from_parts(parts))
}

/// Where each projected join-output column gathers from.
struct BatchJoinEmit {
    /// `(from_build, source column index)` per output column.
    slots: Vec<(bool, usize)>,
}

impl BatchJoinEmit {
    /// `positions` index into the combined `left ++ right` layout.
    fn new(positions: &[usize], left_arity: usize, build_left: bool) -> BatchJoinEmit {
        let slots = positions
            .iter()
            .map(|&p| {
                let (left_side, i) = if p < left_arity {
                    (true, p)
                } else {
                    (false, p - left_arity)
                };
                (left_side == build_left, i)
            })
            .collect();
        BatchJoinEmit { slots }
    }

    fn out_columns(&self, build: &Batch, probe: &Batch) -> Vec<ColumnVec> {
        self.slots
            .iter()
            .map(|&(from_build, c)| {
                if from_build {
                    build.col(c).empty_like()
                } else {
                    probe.col(c).empty_like()
                }
            })
            .collect()
    }

    /// Gather one tile's matches (`build_sel[k]` joins `probe_sel[k]`)
    /// into the output columns, returning the byte width appended.
    fn gather(
        &self,
        out: &mut [ColumnVec],
        build: &Batch,
        probe: &Batch,
        build_sel: &[u32],
        probe_sel: &[u32],
    ) -> u64 {
        let mut w = 0u64;
        for (col, &(from_build, c)) in out.iter_mut().zip(&self.slots) {
            w += if from_build {
                col.append_gather(build.col(c), build_sel)
            } else {
                col.append_gather(probe.col(c), probe_sel)
            };
        }
        w
    }
}

/// Evaluate residual predicates (bound against the combined
/// `left ++ right` layout) for one candidate pair without materializing
/// anything.
fn residual_ok(
    residual: &[BoundPredicate],
    build: &Batch,
    probe: &Batch,
    bi: usize,
    pi: usize,
    build_left: bool,
    left_arity: usize,
) -> Result<bool> {
    let (lb, lrow, rb, rrow) = if build_left {
        (build, bi, probe, pi)
    } else {
        (probe, pi, build, bi)
    };
    let get = |q: usize| {
        if q < left_arity {
            lb.value_at(q, lrow)
        } else {
            rb.value_at(q - left_arity, rrow)
        }
    };
    for p in residual {
        if !p.eval_with(&get)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Probe phase of the columnar hash join: hash each probe tile's key
/// columns, confirm candidates by per-column key comparison, apply
/// residuals, and gather matches column-by-column — in probe order,
/// matching the serial row join exactly.
#[allow(clippy::too_many_arguments)]
pub fn probe_join(
    opts: &ExecOptions,
    gov: &ResourceGovernor,
    build: &Batch,
    probe: &Batch,
    index: &JoinIndex,
    build_pos: &[usize],
    probe_pos: &[usize],
    residual: &[BoundPredicate],
    build_left: bool,
    left_arity: usize,
    positions: &[usize],
) -> Result<(Batch, u64)> {
    let emit = BatchJoinEmit::new(positions, left_arity, build_left);
    let chunks = chunk_ranges(probe.len(), opts.workers_for(probe.len()));
    let parts = run_chunks(chunks, |range| {
        let mut out = emit.out_columns(build, probe);
        let mut out_len = 0usize;
        let mut bytes = 0u64;
        let mut hashes = Vec::new();
        let mut build_sel = Vec::new();
        let mut probe_sel = Vec::new();
        for_each_tile(gov, range, opts.batch_rows, |r| {
            probe.hash_rows(probe_pos, r.clone(), &mut hashes);
            build_sel.clear();
            probe_sel.clear();
            for (k, &h) in hashes.iter().enumerate() {
                let pi = r.start + k;
                'cand: for &bi in index.candidates(h) {
                    for (&bp, &pp) in build_pos.iter().zip(probe_pos) {
                        if !build.col(bp).eq_rows(bi as usize, probe.col(pp), pi) {
                            continue 'cand;
                        }
                    }
                    if !residual.is_empty()
                        && !residual_ok(
                            residual,
                            build,
                            probe,
                            bi as usize,
                            pi,
                            build_left,
                            left_arity,
                        )?
                    {
                        continue;
                    }
                    build_sel.push(bi);
                    probe_sel.push(pi as u32);
                }
            }
            if !build_sel.is_empty() {
                let w = emit.gather(&mut out, build, probe, &build_sel, &probe_sel);
                gov.charge_output_bulk(build_sel.len() as u64, w)?;
                out_len += build_sel.len();
                bytes += w;
            }
            Ok(())
        })?;
        Ok((Batch::from_parts(out, out_len), bytes))
    })?;
    Ok(stitch(parts, || {
        Batch::from_parts(emit.out_columns(build, probe), 0)
    }))
}

/// Columnar nested-loop join (no hashable equality): workers split the
/// left side; matches come back in the serial `for l { for r }` order.
pub fn nested_loop_join(
    opts: &ExecOptions,
    gov: &ResourceGovernor,
    left: &Batch,
    right: &Batch,
    preds: &[BoundPredicate],
    positions: &[usize],
) -> Result<(Batch, u64)> {
    let left_arity = left.n_cols();
    // Reuse the emit machinery with "build" = left.
    let emit = BatchJoinEmit::new(positions, left_arity, true);
    let chunks = chunk_ranges(left.len(), opts.workers_for(left.len()));
    let parts = run_chunks(chunks, |range| {
        let mut out = emit.out_columns(left, right);
        let mut out_len = 0usize;
        let mut bytes = 0u64;
        let mut lsel = Vec::new();
        let mut rsel = Vec::new();
        for_each_tile(gov, range, 1, |r| {
            let li = r.start;
            lsel.clear();
            rsel.clear();
            for ri in 0..right.len() {
                let get = |q: usize| {
                    if q < left_arity {
                        left.value_at(q, li)
                    } else {
                        right.value_at(q - left_arity, ri)
                    }
                };
                let mut ok = true;
                for p in preds {
                    if !p.eval_with(&get)? {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    lsel.push(li as u32);
                    rsel.push(ri as u32);
                }
            }
            if !lsel.is_empty() {
                let w = emit.gather(&mut out, left, right, &lsel, &rsel);
                gov.charge_output_bulk(lsel.len() as u64, w)?;
                out_len += lsel.len();
                bytes += w;
            }
            Ok(())
        })?;
        Ok((Batch::from_parts(out, out_len), bytes))
    })?;
    Ok(stitch(parts, || {
        Batch::from_parts(emit.out_columns(left, right), 0)
    }))
}

// ---------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------

/// Open-addressed slot directory for [`BatchGroupTable`]: maps a key
/// hash to a group slot by linear probing over a flat `Vec<u32>` of
/// `slot + 1` entries (`0` = empty). Compared to a chained hash map this
/// is one dependent load per probe step and no per-bucket allocation;
/// distinct keys that share a hash simply occupy separate cells along
/// the probe chain. The directory is purely an index — group order is
/// first-seen append order, so its layout never affects output.
struct SlotDir {
    table: Vec<u32>,
    mask: usize,
}

/// Directory probe outcome: an existing group, or the empty cell where
/// the new group's slot belongs.
enum Probe {
    Hit(usize),
    Miss(usize),
}

impl SlotDir {
    fn new() -> SlotDir {
        SlotDir {
            table: vec![0; 16],
            mask: 15,
        }
    }

    /// Keep the directory at most half full so probe chains stay short
    /// (and always terminate); the per-group cost of the larger table is
    /// 8 bytes, dwarfed by the group's key and states.
    fn needs_grow(&self, groups: usize) -> bool {
        groups * 2 >= self.table.len()
    }

    /// Double the directory and reinsert every slot from the per-group
    /// hashes — deterministic given the (deterministic) group order.
    fn grow(&mut self, hashes: &[u64]) {
        let cap = self.table.len() * 2;
        self.table.clear();
        self.table.resize(cap, 0);
        self.mask = cap - 1;
        for (s, &h) in hashes.iter().enumerate() {
            let mut idx = dir_index(h, self.mask);
            while self.table[idx] != 0 {
                idx = (idx + 1) & self.mask;
            }
            self.table[idx] = s as u32 + 1;
        }
    }
}

/// Directory home cell for a hash: fold the high half in so the index
/// keeps the multiply-mixed high bits that a plain `& mask` would drop.
#[inline]
fn dir_index(hash: u64, mask: usize) -> usize {
    ((hash ^ (hash >> 32)) as usize) & mask
}

/// Columnar hash-aggregation table: insertion-ordered groups whose keys
/// stay column-major (one [`ColumnVec`] per grouping column) and whose
/// aggregate states live in a flat `Vec` with stride `n_aggs`.
///
/// Group order, state update order, and merge order are identical to the
/// row path's [`crate::partition::GroupTable`], so finalized values are
/// bitwise identical.
pub struct BatchGroupTable {
    index: SlotDir,
    hashes: Vec<u64>,
    keys: Vec<ColumnVec>,
    states: Vec<PartialAggState>,
    n_aggs: usize,
    len: usize,
}

impl BatchGroupTable {
    fn new(key_templates: &[&ColumnVec], n_aggs: usize) -> BatchGroupTable {
        BatchGroupTable {
            index: SlotDir::new(),
            hashes: Vec::new(),
            keys: key_templates.iter().map(|c| c.empty_like()).collect(),
            states: Vec::new(),
            n_aggs,
            len: 0,
        }
    }

    /// Probe the directory for `hash`, confirming candidates with `eq`
    /// (hash equality is checked first, so `eq` only runs on real
    /// collisions within a probe chain).
    fn find(&self, hash: u64, mut eq: impl FnMut(usize) -> bool) -> Probe {
        let mask = self.index.mask;
        let mut idx = dir_index(hash, mask);
        loop {
            let e = self.index.table[idx];
            if e == 0 {
                return Probe::Miss(idx);
            }
            let s = (e - 1) as usize;
            if self.hashes[s] == hash && eq(s) {
                return Probe::Hit(s);
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Claim directory cell `idx` for the next slot and record its hash;
    /// the caller appends the key values and states.
    fn claim(&mut self, idx: usize, hash: u64) -> usize {
        let slot = self.len;
        self.index.table[idx] = slot as u32 + 1;
        self.hashes.push(hash);
        self.len += 1;
        if self.index.needs_grow(self.len) {
            self.index.grow(&self.hashes);
        }
        slot
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The group-key columns, group-major.
    pub fn into_key_columns(self) -> (Vec<ColumnVec>, Vec<PartialAggState>, usize) {
        (self.keys, self.states, self.n_aggs)
    }

    /// State of aggregate `j` for group `g`.
    pub fn state(&self, g: usize, j: usize) -> &PartialAggState {
        &self.states[g * self.n_aggs + j]
    }

    fn slot_for(
        &mut self,
        batch: &Batch,
        row: usize,
        hash: u64,
        key_pos: &[usize],
        funcs: &[AggFunc],
    ) -> usize {
        let found = self.find(hash, |s| {
            self.keys
                .iter()
                .zip(key_pos)
                .all(|(key_col, &kp)| key_col.eq_rows(s, batch.col(kp), row))
        });
        match found {
            Probe::Hit(s) => s,
            Probe::Miss(idx) => {
                for (key_col, &kp) in self.keys.iter_mut().zip(key_pos) {
                    key_col.push_value(batch.value_at(kp, row));
                }
                self.states
                    .extend(funcs.iter().map(|&f| PartialAggState::empty(f)));
                self.claim(idx, hash)
            }
        }
    }

    /// [`Self::slot_for`] specialized to the single typed-Int grouping
    /// key: candidate confirmation and key insertion read/write the `i64`
    /// key column directly, skipping the per-row [`ColumnVec::eq_rows`]
    /// double dispatch and [`Batch::value_at`] boxing. Same first-seen
    /// insertion order, hence the same group order as the generic path.
    fn slot_for_int(&mut self, x: i64, hash: u64, funcs: &[AggFunc]) -> usize {
        let ColumnVec::Int(key) = &self.keys[0] else {
            unreachable!("slot_for_int requires an Int key column");
        };
        match self.find(hash, |s| key[s] == x) {
            Probe::Hit(s) => s,
            Probe::Miss(idx) => {
                let ColumnVec::Int(key) = &mut self.keys[0] else {
                    unreachable!();
                };
                key.push(x);
                self.states
                    .extend(funcs.iter().map(|&f| PartialAggState::empty(f)));
                self.claim(idx, hash)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn accumulate_range(
        &mut self,
        gov: &ResourceGovernor,
        batch: &Batch,
        range: Range<usize>,
        batch_rows: usize,
        key_pos: &[usize],
        inputs: &[AggInput],
        funcs: &[AggFunc],
    ) -> Result<()> {
        let mut accs: Vec<HotAcc<'_>> = inputs
            .iter()
            .zip(funcs)
            .map(|(input, &f)| HotAcc::plan(batch, input, f))
            .collect();
        let int_key = if key_pos.len() == 1 {
            batch.col(key_pos[0]).as_int()
        } else {
            None
        };
        let mut hashes = Vec::new();
        for_each_tile(gov, range, batch_rows, |r| {
            batch.hash_rows(key_pos, r.clone(), &mut hashes);
            for (k, &h) in hashes.iter().enumerate() {
                let row = r.start + k;
                let before = self.len;
                let slot = match int_key {
                    Some(xs) => self.slot_for_int(xs[row], h, funcs),
                    None => self.slot_for(batch, row, h, key_pos, funcs),
                };
                if self.len > before {
                    for acc in accs.iter_mut() {
                        acc.grow();
                    }
                }
                let base = slot * self.n_aggs;
                for (j, acc) in accs.iter_mut().enumerate() {
                    if let HotAcc::Cold(input) = acc {
                        let get = |i: usize| batch.value_at(i, row);
                        input.absorb_with(&mut self.states[base + j], &get)?;
                    } else {
                        acc.absorb(slot, row)?;
                    }
                }
            }
            Ok(())
        })?;
        for (j, acc) in accs.into_iter().enumerate() {
            acc.flush(j, self.n_aggs, &mut self.states)?;
        }
        Ok(())
    }

    /// Coalesce `other`'s groups into `self` in `other`'s group order —
    /// the same merge order as the row path's two-phase aggregation.
    fn merge_from(&mut self, other: BatchGroupTable, funcs: &[AggFunc]) -> Result<()> {
        for g in 0..other.len {
            let hash = other.hashes[g];
            let found = self.find(hash, |s| {
                self.keys
                    .iter()
                    .zip(&other.keys)
                    .all(|(mine, theirs)| mine.eq_rows(s, theirs, g))
            });
            match found {
                Probe::Hit(s) => {
                    let base = s * self.n_aggs;
                    for j in 0..self.n_aggs {
                        self.states[base + j].merge(&other.states[g * self.n_aggs + j])?;
                    }
                }
                Probe::Miss(idx) => {
                    for (mine, theirs) in self.keys.iter_mut().zip(&other.keys) {
                        mine.push_value(theirs.value_at(g));
                    }
                    for (j, &f) in funcs.iter().enumerate() {
                        let mut st = PartialAggState::empty(f);
                        st.merge(&other.states[g * self.n_aggs + j])?;
                        self.states.push(st);
                    }
                    self.claim(idx, hash);
                }
            }
        }
        Ok(())
    }
}

/// Per-aggregate absorb plan for one [`BatchGroupTable::accumulate_range`]
/// call. The common (function, input) shapes — COUNT, and SUM/MIN/MAX/AVG
/// of a plain column stored as a typed Int or Float [`ColumnVec`] —
/// accumulate straight out of column storage into native scalars, skipping
/// the per-row [`Value`] boxing of [`PartialAggState::update`]. Everything
/// else (expressions, partial-state coalescing, Str/Bool/Mixed columns,
/// STDDEV) falls back to the generic cold path.
///
/// Every arithmetic step mirrors the cold path exactly: additions happen
/// in the same per-row order, Int sums use the same checked add (with the
/// same error message), Float MIN/MAX use the same `total_cmp` ordering
/// as [`Value`]'s comparison, and counts use the same checked increment.
/// [`HotAcc::flush`] then folds each finished accumulator into the
/// group's pristine empty [`PartialAggState`] via
/// [`PartialAggState::merge_components`], which reproduces the cold
/// representation bit-for-bit: SUM/MIN/MAX merges clone the value into
/// the empty state unchanged, and COUNT/AVG merges add onto `0`/`+0.0` —
/// a no-op on the bits, since a running float sum seeded at `+0.0` can
/// never be `-0.0` (IEEE round-to-nearest only yields `-0.0` from adding
/// two negative zeros).
enum HotAcc<'a> {
    /// COUNT(*) / COUNT(col): the argument is ignored, and a bare column
    /// reference cannot fail to evaluate.
    Count(Vec<i64>),
    SumInt(&'a [i64], Vec<Option<i64>>),
    SumFloat(&'a [f64], Vec<Option<f64>>),
    MinInt(&'a [i64], Vec<Option<i64>>),
    MinFloat(&'a [f64], Vec<Option<f64>>),
    MaxInt(&'a [i64], Vec<Option<i64>>),
    MaxFloat(&'a [f64], Vec<Option<f64>>),
    /// Running `(sum, count)` — column values widen to `f64` exactly as
    /// `Value::as_f64` does for the cold path.
    AvgInt(&'a [i64], Vec<(f64, i64)>),
    AvgFloat(&'a [f64], Vec<(f64, i64)>),
    /// Fallback: absorb through [`AggInput::absorb_with`] on the cold
    /// state.
    Cold(&'a AggInput),
}

impl<'a> HotAcc<'a> {
    fn plan(batch: &'a Batch, input: &'a AggInput, func: AggFunc) -> HotAcc<'a> {
        let col = match input {
            AggInput::RawCountStar => None,
            AggInput::Raw(BoundExpr::Col(i)) => Some(*i),
            _ => return HotAcc::Cold(input),
        };
        if func == AggFunc::Count {
            return HotAcc::Count(Vec::new());
        }
        let Some(c) = col else {
            return HotAcc::Cold(input);
        };
        match (func, batch.col(c)) {
            (AggFunc::Sum, ColumnVec::Int(xs)) => HotAcc::SumInt(xs, Vec::new()),
            (AggFunc::Sum, ColumnVec::Float(xs)) => HotAcc::SumFloat(xs, Vec::new()),
            (AggFunc::Min, ColumnVec::Int(xs)) => HotAcc::MinInt(xs, Vec::new()),
            (AggFunc::Min, ColumnVec::Float(xs)) => HotAcc::MinFloat(xs, Vec::new()),
            (AggFunc::Max, ColumnVec::Int(xs)) => HotAcc::MaxInt(xs, Vec::new()),
            (AggFunc::Max, ColumnVec::Float(xs)) => HotAcc::MaxFloat(xs, Vec::new()),
            (AggFunc::Avg, ColumnVec::Int(xs)) => HotAcc::AvgInt(xs, Vec::new()),
            (AggFunc::Avg, ColumnVec::Float(xs)) => HotAcc::AvgFloat(xs, Vec::new()),
            _ => HotAcc::Cold(input),
        }
    }

    /// Append the identity accumulator for a freshly created group.
    fn grow(&mut self) {
        match self {
            HotAcc::Count(ns) => ns.push(0),
            HotAcc::SumInt(_, acc) | HotAcc::MinInt(_, acc) | HotAcc::MaxInt(_, acc) => {
                acc.push(None)
            }
            HotAcc::SumFloat(_, acc) | HotAcc::MinFloat(_, acc) | HotAcc::MaxFloat(_, acc) => {
                acc.push(None)
            }
            HotAcc::AvgInt(_, acc) | HotAcc::AvgFloat(_, acc) => acc.push((0.0, 0)),
            HotAcc::Cold(_) => {}
        }
    }

    /// Absorb input row `row` into group `slot`.
    fn absorb(&mut self, slot: usize, row: usize) -> Result<()> {
        match self {
            HotAcc::Count(ns) => ns[slot] = count_inc(ns[slot], "COUNT")?,
            HotAcc::SumInt(xs, acc) => {
                let x = xs[row];
                acc[slot] = Some(match acc[slot] {
                    None => x,
                    Some(s) => s
                        .checked_add(x)
                        .ok_or_else(|| AggViewError::Exec(format!("SUM overflow ({s} + {x})")))?,
                });
            }
            HotAcc::SumFloat(xs, acc) => {
                let x = xs[row];
                acc[slot] = Some(acc[slot].map_or(x, |s| s + x));
            }
            HotAcc::MinInt(xs, acc) => {
                let x = xs[row];
                if acc[slot].is_none_or(|cur| x < cur) {
                    acc[slot] = Some(x);
                }
            }
            HotAcc::MinFloat(xs, acc) => {
                let x = xs[row];
                if acc[slot].is_none_or(|cur| x.total_cmp(&cur) == Ordering::Less) {
                    acc[slot] = Some(x);
                }
            }
            HotAcc::MaxInt(xs, acc) => {
                let x = xs[row];
                if acc[slot].is_none_or(|cur| x > cur) {
                    acc[slot] = Some(x);
                }
            }
            HotAcc::MaxFloat(xs, acc) => {
                let x = xs[row];
                if acc[slot].is_none_or(|cur| x.total_cmp(&cur) == Ordering::Greater) {
                    acc[slot] = Some(x);
                }
            }
            HotAcc::AvgInt(xs, acc) => {
                let x = xs[row] as f64;
                let (s, n) = acc[slot];
                acc[slot] = (s + x, count_inc(n, "AVG count")?);
            }
            HotAcc::AvgFloat(xs, acc) => {
                let x = xs[row];
                let (s, n) = acc[slot];
                acc[slot] = (s + x, count_inc(n, "AVG count")?);
            }
            HotAcc::Cold(_) => {}
        }
        Ok(())
    }

    /// Fold the finished accumulators for all groups into the cold states
    /// (this accumulator is aggregate `j` of stride `n_aggs`).
    fn flush(self, j: usize, n_aggs: usize, states: &mut [PartialAggState]) -> Result<()> {
        let mut fold = |g: usize, comps: &[Value]| states[g * n_aggs + j].merge_components(comps);
        match self {
            HotAcc::Count(ns) => {
                for (g, n) in ns.into_iter().enumerate() {
                    fold(g, &[Value::Int(n)])?;
                }
            }
            HotAcc::SumInt(_, acc) | HotAcc::MinInt(_, acc) | HotAcc::MaxInt(_, acc) => {
                for (g, v) in acc.into_iter().enumerate() {
                    if let Some(x) = v {
                        fold(g, &[Value::Int(x)])?;
                    }
                }
            }
            HotAcc::SumFloat(_, acc) | HotAcc::MinFloat(_, acc) | HotAcc::MaxFloat(_, acc) => {
                for (g, v) in acc.into_iter().enumerate() {
                    if let Some(x) = v {
                        fold(g, &[Value::Float(x)])?;
                    }
                }
            }
            HotAcc::AvgInt(_, acc) | HotAcc::AvgFloat(_, acc) => {
                for (g, (s, n)) in acc.into_iter().enumerate() {
                    fold(g, &[Value::Float(s), Value::Int(n)])?;
                }
            }
            HotAcc::Cold(_) => {}
        }
        Ok(())
    }
}

/// Checked group-count increment with [`PartialAggState::update`]'s
/// overflow message.
fn count_inc(n: i64, what: &str) -> Result<i64> {
    n.checked_add(1)
        .ok_or_else(|| AggViewError::Exec(format!("{what} overflow")))
}

/// Two-phase columnar aggregation over the same worker chunks as the row
/// path: per-chunk tables accumulate tile-wise, then coalesce in worker
/// order. With one worker this is the serial hash aggregation.
pub fn accumulate_groups(
    opts: &ExecOptions,
    gov: &ResourceGovernor,
    batch: &Batch,
    key_pos: &[usize],
    inputs: &[AggInput],
    funcs: &[AggFunc],
) -> Result<BatchGroupTable> {
    let key_templates: Vec<&ColumnVec> = key_pos.iter().map(|&k| batch.col(k)).collect();
    let chunks = chunk_ranges(batch.len(), opts.workers_for(batch.len()));
    let tables = run_chunks(chunks, |range| {
        let mut table = BatchGroupTable::new(&key_templates, funcs.len());
        table.accumulate_range(gov, batch, range, opts.batch_rows, key_pos, inputs, funcs)?;
        Ok(table)
    })?;
    let mut iter = tables.into_iter();
    let mut global = iter
        .next()
        .unwrap_or_else(|| BatchGroupTable::new(&key_templates, funcs.len()));
    for t in iter {
        global.merge_from(t, funcs)?;
    }
    Ok(global)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::{tuple, CmpOp, Col, DataType, Expr, Predicate, RelId};

    fn opts() -> ExecOptions {
        ExecOptions {
            batch_rows: 7, // force multi-tile on small inputs
            ..ExecOptions::serial()
        }
    }

    fn layout(c: Col) -> Option<usize> {
        match c {
            Col::Base(b) => Some(b.col as usize),
            _ => None,
        }
    }

    fn input_rows(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| tuple![(i % 5) as i64, i as i64, format!("s{}", i % 3).as_str()])
            .collect()
    }

    #[test]
    fn batch_scan_matches_row_scan() {
        let rows = input_rows(50);
        let gov = ResourceGovernor::unlimited();
        let pred = Predicate::cmp_const(Col::base(RelId(0), 0), CmpOp::Ge, 2i64)
            .bind(&|c| layout(c))
            .unwrap();
        let types = [DataType::Int, DataType::Int, DataType::Str];
        let (batch, b_bytes) = scan_filter_project(
            &opts(),
            &gov,
            &rows,
            &[0, 1, 2],
            &types,
            std::slice::from_ref(&pred),
            &[2, 0],
        )
        .unwrap();
        let (expect, r_bytes) = crate::parallel::filter_project(
            &ExecOptions::serial(),
            &gov,
            &rows,
            std::slice::from_ref(&pred),
            &[2, 0],
        )
        .unwrap();
        assert_eq!(batch.to_tuples(), expect);
        assert_eq!(b_bytes, r_bytes);
    }

    #[test]
    fn batch_hash_join_matches_row_join() {
        let lrows = input_rows(40);
        let rrows = input_rows(25);
        let gov = ResourceGovernor::unlimited();
        let types = [DataType::Int, DataType::Int, DataType::Str];
        let lb = Batch::from_tuples(&lrows, &[0, 1, 2], &types);
        let rb = Batch::from_tuples(&rrows, &[0, 1, 2], &types);
        // Join on col 0 with a residual on the right row number.
        let residual = Predicate::new(
            Expr::col(Col::base(RelId(0), 1)),
            CmpOp::Ge,
            Expr::col(Col::base(RelId(1), 1)),
        )
        .bind(&|c| match c {
            Col::Base(b) if b.rel == RelId(0) => Some(b.col as usize),
            Col::Base(b) => Some(3 + b.col as usize),
            _ => None,
        })
        .unwrap();
        let positions = [1usize, 4, 2];
        // build on the smaller (right) side, like the engine would
        let build_left = false;
        let index = build_index(&opts(), &gov, &rb, &[0], None).unwrap();
        let (got, gb) = probe_join(
            &opts(),
            &gov,
            &rb,
            &lb,
            &index,
            &[0],
            &[0],
            std::slice::from_ref(&residual),
            build_left,
            3,
            &positions,
        )
        .unwrap();

        let row_index =
            crate::parallel::build_index(&ExecOptions::serial(), &gov, &rrows, &[0], None).unwrap();
        let emit = crate::parallel::JoinEmit::new(&positions, 3, build_left);
        let (expect, eb) = crate::parallel::probe_join(
            &ExecOptions::serial(),
            &gov,
            &rrows,
            &lrows,
            &row_index,
            &[0],
            &[0],
            std::slice::from_ref(&residual),
            build_left,
            &emit,
        )
        .unwrap();
        assert_eq!(got.to_tuples(), expect);
        assert_eq!(gb, eb);
        assert!(!expect.is_empty());
    }

    #[test]
    fn batch_groups_match_row_groups_bitwise() {
        let rows = input_rows(60);
        let gov = ResourceGovernor::unlimited();
        let types = [DataType::Int, DataType::Int, DataType::Str];
        let batch = Batch::from_tuples(&rows, &[0, 1, 2], &types);
        let inputs = [
            AggInput::RawCountStar,
            AggInput::Raw(
                Expr::col(Col::base(RelId(0), 1))
                    .bind(&|c| layout(c))
                    .unwrap(),
            ),
        ];
        let funcs = [AggFunc::Count, AggFunc::Avg];
        let got = accumulate_groups(&opts(), &gov, &batch, &[0], &inputs, &funcs).unwrap();
        let mut expect = crate::partition::GroupTable::new();
        for r in &rows {
            expect.accumulate(r, &[0], &inputs, &funcs).unwrap();
        }
        assert_eq!(got.len(), expect.len());
        for (g, group) in expect.groups.iter().enumerate() {
            assert_eq!(got.keys[0].value_at(g), group.key.get(0).clone());
            for j in 0..funcs.len() {
                assert_eq!(
                    got.state(g, j).finalize().unwrap(),
                    group.states[j].finalize().unwrap()
                );
            }
        }
    }

    #[test]
    fn filter_tile_errors_match_row_errors() {
        // Comparing a string column to an int constant must produce the
        // row path's exact message.
        let rows = vec![tuple![1i64, "x"]];
        let tile = Batch::from_tuples(&rows, &[0, 1], &[DataType::Int, DataType::Str]);
        let p = Predicate::cmp_const(Col::base(RelId(0), 1), CmpOp::Lt, 3i64)
            .bind(&|c| layout(c))
            .unwrap();
        let batch_err = filter_tile(std::slice::from_ref(&p), &tile).unwrap_err();
        let row_err = p.eval(&rows[0]).unwrap_err();
        assert_eq!(batch_err.to_string(), row_err.to_string());
    }
}
