//! Atomic catalog checkpoints.
//!
//! A snapshot is a single self-validating file holding the entire
//! catalog state — tables with rows and key declarations, the per-table
//! version counters, and every materialized-view meta — plus the LSN of
//! the last WAL record it covers. Checkpointing writes the snapshot
//! **atomically** (temp file → fsync → rename → directory fsync) and
//! only then truncates the WAL; a crash anywhere in that window leaves
//! either the old snapshot or the new one, never a torn mix, and the
//! `last_lsn` field lets recovery skip WAL records the surviving
//! snapshot already covers.
//!
//! ## File format
//!
//! ```text
//! "AGVSNP01"  [u32 len] [u32 crc32(body)] [body]
//! body: [u64 last_lsn]
//!       [u32 n] n × table   (name, schema, primary key, foreign keys, rows)
//!       [u32 n] n × version (name, data, stats)
//!       [u32 n] n × matview meta
//! ```
//!
//! Unlike the WAL, a snapshot has no notion of a torn *tail* being
//! acceptable: the rename only happens after a successful fsync, so a
//! snapshot file that fails validation is genuine corruption and reads
//! as [`AggViewError::Corrupt`]. Bytes after the checksummed body are
//! tolerated (recycled-disk garbage past the committed content).

use crate::codec::{self, crc32, Dec, Enc};
use crate::keys::{ForeignKey, PrimaryKey};
use crate::matview::MatViewMeta;
use aggview_common::{AggViewError, FaultInjector, IoFaultKind, Result, Schema, Tuple};
use std::io::Write;
use std::path::Path;

/// File magic identifying a snapshot file (and its format version).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"AGVSNP01";

/// Snapshot file name within a durable catalog directory.
pub const SNAPSHOT_FILE: &str = "snapshot.agv";

/// Temp name the snapshot is staged under before the atomic rename.
pub const SNAPSHOT_TEMP: &str = "snapshot.tmp";

/// Full content of one table, as persisted.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnap {
    /// Original-case table name (the catalog key is its lowercase form).
    pub name: String,
    pub schema: Schema,
    pub primary_key: Option<PrimaryKey>,
    pub foreign_keys: Vec<ForeignKey>,
    pub rows: Vec<Tuple>,
}

/// One catalog's durable state at a checkpoint.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// LSN of the last WAL record this snapshot covers; replay skips
    /// records at or below it. `0` with no tables means "empty catalog,
    /// nothing covered" (LSNs start at 0, but an empty catalog has no
    /// records to skip — see [`Snapshot::covers`]).
    pub last_lsn: u64,
    /// True once any WAL record is covered; disambiguates `last_lsn: 0`
    /// between "covers record 0" and "covers nothing".
    pub any_covered: bool,
    pub tables: Vec<TableSnap>,
    /// `(lowercase name, data version, stats version)` triples —
    /// including entries for names that have no table (an out-of-band
    /// `mark_modified` on a never-registered name still counts).
    pub versions: Vec<(String, u64, u64)>,
    pub matviews: Vec<MatViewMeta>,
}

impl Snapshot {
    /// True when the WAL record at `lsn` is already reflected in this
    /// snapshot and must not be replayed.
    pub fn covers(&self, lsn: u64) -> bool {
        self.any_covered && lsn <= self.last_lsn
    }

    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.last_lsn);
        e.u8(self.any_covered as u8);
        e.u32(self.tables.len() as u32);
        for t in &self.tables {
            e.str(&t.name);
            codec::enc_schema(&mut e, &t.schema);
            codec::enc_primary_key(&mut e, &t.primary_key);
            codec::enc_foreign_keys(&mut e, &t.foreign_keys);
            codec::enc_rows(&mut e, &t.rows);
        }
        e.u32(self.versions.len() as u32);
        for (name, data, stats) in &self.versions {
            e.str(name);
            e.u64(*data);
            e.u64(*stats);
        }
        e.u32(self.matviews.len() as u32);
        for m in &self.matviews {
            codec::enc_matview_meta(&mut e, m);
        }
        e.into_bytes()
    }

    fn decode(body: &[u8]) -> Result<Snapshot> {
        let mut d = Dec::new(body);
        let last_lsn = d.u64()?;
        let any_covered = d.u8()? != 0;
        let n = d.len("snapshot table")?;
        let tables = (0..n)
            .map(|_| {
                Ok(TableSnap {
                    name: d.str()?,
                    schema: codec::dec_schema(&mut d)?,
                    primary_key: codec::dec_primary_key(&mut d)?,
                    foreign_keys: codec::dec_foreign_keys(&mut d)?,
                    rows: codec::dec_rows(&mut d)?,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let n = d.len("snapshot version")?;
        let versions = (0..n)
            .map(|_| Ok((d.str()?, d.u64()?, d.u64()?)))
            .collect::<Result<Vec<_>>>()?;
        let n = d.len("snapshot matview")?;
        let matviews = (0..n)
            .map(|_| codec::dec_matview_meta(&mut d))
            .collect::<Result<Vec<_>>>()?;
        if !d.is_done() {
            return Err(d.corrupt("snapshot body has trailing bytes"));
        }
        Ok(Snapshot {
            last_lsn,
            any_covered,
            tables,
            versions,
            matviews,
        })
    }

    /// Write this snapshot atomically into `dir`.
    ///
    /// Stage to a temp file, fsync it, rename over the live name, fsync
    /// the directory. Injection sites: `snapshot.write` (staging the
    /// bytes), `snapshot.fsync`, `snapshot.rename`. An injected failure
    /// at any of them leaves the previous snapshot (or its absence)
    /// intact — the rename is the commit point.
    pub fn write(&self, dir: &Path, faults: &dyn FaultInjector) -> Result<()> {
        let body = self.encode();
        let tmp = dir.join(SNAPSHOT_TEMP);
        let live = dir.join(SNAPSHOT_FILE);

        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| AggViewError::Io(format!("create snapshot temp: {e}")))?;
        let write_payload = |file: &mut std::fs::File, body: &[u8]| -> std::io::Result<()> {
            file.write_all(SNAPSHOT_MAGIC)?;
            file.write_all(&(body.len() as u32).to_le_bytes())?;
            file.write_all(&crc32(body).to_le_bytes())?;
            file.write_all(body)
        };
        match faults.io_fault("snapshot.write") {
            Some(IoFaultKind::Error) => {
                drop(file);
                let _ = std::fs::remove_file(&tmp);
                return Err(AggViewError::Io("injected snapshot write failure".into()));
            }
            Some(IoFaultKind::ShortWrite) => {
                // Half the staged bytes land, then the write fails. The
                // torn temp file is harmless: it is never renamed, and
                // the next checkpoint recreates it from scratch.
                write_payload(&mut file, &body)
                    .map_err(|e| AggViewError::Io(format!("write snapshot: {e}")))?;
                drop(file);
                let mut full = std::fs::read(&tmp)
                    .map_err(|e| AggViewError::Io(format!("reread snapshot temp: {e}")))?;
                full.truncate(full.len() / 2);
                std::fs::write(&tmp, &full)
                    .map_err(|e| AggViewError::Io(format!("write snapshot: {e}")))?;
                return Err(AggViewError::Io("injected torn snapshot write".into()));
            }
            Some(IoFaultKind::TrailingGarbage) => {
                write_payload(&mut file, &body)
                    .map_err(|e| AggViewError::Io(format!("write snapshot: {e}")))?;
                // Recycled bytes past the checksummed body; the reader
                // ignores them, so this checkpoint still commits.
                file.write_all(&[0xBA, 0xD1, 0xDE, 0xA5])
                    .map_err(|e| AggViewError::Io(format!("write snapshot: {e}")))?;
            }
            None => {
                write_payload(&mut file, &body)
                    .map_err(|e| AggViewError::Io(format!("write snapshot: {e}")))?;
            }
        }
        if faults.io_fault("snapshot.fsync").is_some() {
            drop(file);
            let _ = std::fs::remove_file(&tmp);
            return Err(AggViewError::Io("injected snapshot fsync failure".into()));
        }
        file.sync_data()
            .map_err(|e| AggViewError::Io(format!("fsync snapshot: {e}")))?;
        drop(file);
        if faults.io_fault("snapshot.rename").is_some() {
            let _ = std::fs::remove_file(&tmp);
            return Err(AggViewError::Io("injected snapshot rename failure".into()));
        }
        std::fs::rename(&tmp, &live)
            .map_err(|e| AggViewError::Io(format!("rename snapshot: {e}")))?;
        // Persist the rename itself. Directory fsync is not exposed
        // portably through std on all platforms; opening the directory
        // read-only and syncing works on Unix and is a no-op error we
        // tolerate elsewhere.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Read the snapshot in `dir`; `Ok(None)` when none has ever been
    /// written. Any validation failure — bad magic, bad CRC, undecodable
    /// body — is [`AggViewError::Corrupt`].
    pub fn read(dir: &Path) -> Result<Option<Snapshot>> {
        let live = dir.join(SNAPSHOT_FILE);
        let bytes = match std::fs::read(&live) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(AggViewError::Io(format!("read snapshot: {e}"))),
        };
        let corrupt = |offset: usize, message: &str| AggViewError::Corrupt {
            offset: offset as u64,
            record: 0,
            message: message.into(),
        };
        let header = SNAPSHOT_MAGIC.len() + 8;
        if bytes.len() < header || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(corrupt(0, "snapshot file magic mismatch"));
        }
        let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4")) as usize;
        let crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4"));
        let Some(body) = bytes.get(header..header + len) else {
            return Err(corrupt(8, "snapshot body shorter than its declared length"));
        };
        if crc32(body) != crc {
            return Err(corrupt(12, "snapshot checksum mismatch"));
        }
        let snap = Snapshot::decode(body).map_err(|e| match e {
            AggViewError::Corrupt {
                offset, message, ..
            } => AggViewError::Corrupt {
                offset: header as u64 + offset,
                record: 0,
                message,
            },
            other => other,
        })?;
        Ok(Some(snap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::{DataType, NoFaults, ScheduledIoFaults, Value};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aggview-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Snapshot {
        Snapshot {
            last_lsn: 7,
            any_covered: true,
            tables: vec![TableSnap {
                name: "Emp".into(),
                schema: Schema::of(&[("eno", DataType::Int), ("sal", DataType::Float)]),
                primary_key: Some(PrimaryKey::single(0)),
                foreign_keys: vec![],
                rows: vec![Tuple::new(vec![Value::Int(1), Value::Float(10.0)])],
            }],
            versions: vec![("emp".into(), 3, 3), ("ghost".into(), 1, 0)],
            matviews: vec![],
        }
    }

    #[test]
    fn write_read_round_trips() {
        let dir = tmpdir("roundtrip");
        let snap = sample();
        snap.write(&dir, &NoFaults).unwrap();
        assert_eq!(Snapshot::read(&dir).unwrap().unwrap(), snap);
        assert!(!dir.join(SNAPSHOT_TEMP).exists(), "temp cleaned by rename");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_reads_as_none() {
        let dir = tmpdir("none");
        assert_eq!(Snapshot::read(&dir).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn covers_distinguishes_empty_from_lsn_zero() {
        let empty = Snapshot::default();
        assert!(!empty.covers(0));
        let one = Snapshot {
            last_lsn: 0,
            any_covered: true,
            ..Snapshot::default()
        };
        assert!(one.covers(0));
        assert!(!one.covers(1));
    }

    #[test]
    fn damaged_snapshot_is_corruption() {
        let dir = tmpdir("damage");
        sample().write(&dir, &NoFaults).unwrap();
        let live = dir.join(SNAPSHOT_FILE);
        let good = std::fs::read(&live).unwrap();
        // Flip a body byte: CRC mismatch.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        std::fs::write(&live, &bad).unwrap();
        assert_eq!(Snapshot::read(&dir).unwrap_err().kind(), "corrupt");
        // Truncate inside the body: declared length unsatisfied.
        std::fs::write(&live, &good[..good.len() / 2]).unwrap();
        assert_eq!(Snapshot::read(&dir).unwrap_err().kind(), "corrupt");
        // Wrong magic.
        std::fs::write(&live, b"WRONGMAGICxxxxxxxxxx").unwrap();
        assert_eq!(Snapshot::read(&dir).unwrap_err().kind(), "corrupt");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trailing_garbage_after_body_is_tolerated() {
        let dir = tmpdir("garbage");
        let snap = sample();
        snap.write(&dir, &NoFaults).unwrap();
        let live = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&live).unwrap();
        bytes.extend_from_slice(&[1, 2, 3]);
        std::fs::write(&live, &bytes).unwrap();
        assert_eq!(Snapshot::read(&dir).unwrap().unwrap(), snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_faults_preserve_previous_snapshot() {
        for kind in IoFaultKind::ALL {
            for site in ["snapshot.write", "snapshot.fsync", "snapshot.rename"] {
                let dir = tmpdir(&format!("inj-{site}-{kind:?}"));
                let old = Snapshot::default();
                old.write(&dir, &NoFaults).unwrap();
                let new = sample();
                let inj = ScheduledIoFaults::at(site, 0, *kind);
                let res = new.write(&dir, &inj);
                assert!(inj.fired(), "{site} {kind:?} never fired");
                let on_disk = Snapshot::read(&dir).unwrap().unwrap();
                if res.is_ok() {
                    // Only TrailingGarbage at the write site commits.
                    assert_eq!(on_disk, new, "{site} {kind:?}");
                } else {
                    assert_eq!(on_disk, old, "{site} {kind:?} must keep the old snapshot");
                }
                std::fs::remove_dir_all(&dir).unwrap();
            }
        }
    }
}
