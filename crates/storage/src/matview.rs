//! Materialized aggregate-view extents.
//!
//! A materialized view stores the *result* of an aggregate view (its
//! extent) as an ordinary [`crate::Table`] in the catalog, so the cost
//! model sees row counts, widths and column statistics exactly as it does
//! for base tables. Beyond the finalized aggregate values, the extent
//! also stores the *mergeable partial-aggregate state* of every
//! decomposable aggregate (paper Figure 2: COUNT/SUM/MIN/MAX, AVG as
//! SUM + COUNT) in trailing component columns. Those components are what
//! make the extent useful twice over:
//!
//! * **coarser re-grouping** — a query grouping by a subset of the view's
//!   group columns can coalesce the stored states with a compensating
//!   group-by instead of rescanning base tables, and
//! * **incremental maintenance** — a delta over the base tables folds
//!   into the extent through the executor's existing
//!   `GroupTable::merge_from` path.
//!
//! Non-decomposable aggregates (here: the stand-in `STDDEV` holistic
//! example) store only the finalized value: their extents still answer
//! exact-grouping queries but force a full rebuild on maintenance and
//! disable coarser re-grouping.

use crate::catalog::Catalog;
use aggview_common::{
    AggFunc, AggSpec, AggViewError, Col, DataType, Field, Predicate, Result, Schema,
};

/// True when the extent stores mergeable partial state for this function.
///
/// `STDDEV` plays the paper's "user-defined aggregate" role: although the
/// executor can decompose it internally, we deliberately treat it as
/// holistic at the storage boundary so the negative paths (fall back to
/// inlining; full rebuild on maintenance) stay exercised.
pub fn stores_partial_state(func: AggFunc) -> bool {
    func.is_decomposable() && !matches!(func, AggFunc::StdDev)
}

/// The logical definition of a materialized view, self-contained over a
/// *local* frame: relation `i` of the view body is `Col::base(RelId(i), _)`
/// and refers to base table `tables[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatViewDef {
    /// View name (catalog-unique, case-insensitive).
    pub name: String,
    /// Base tables of the view body, in local `RelId` order.
    pub tables: Vec<String>,
    /// Conjunctive predicates over the local frame (joins + selections).
    pub preds: Vec<Predicate>,
    /// Grouping columns over the local frame.
    pub group_cols: Vec<Col>,
    /// Aggregates over the local frame.
    pub aggs: Vec<AggSpec>,
    /// Output column names: one per group column, then one per aggregate.
    pub column_names: Vec<String>,
}

impl MatViewDef {
    /// Validate shape invariants (column-name arity, non-empty body).
    pub fn validate(&self) -> Result<()> {
        if self.tables.is_empty() {
            return Err(AggViewError::Catalog(format!(
                "materialized view `{}` has no base tables",
                self.name
            )));
        }
        let want = self.group_cols.len() + self.aggs.len();
        if self.column_names.len() != want {
            return Err(AggViewError::Catalog(format!(
                "materialized view `{}` declares {} column names for {} outputs",
                self.name,
                self.column_names.len(),
                want
            )));
        }
        if self.aggs.is_empty() {
            return Err(AggViewError::Catalog(format!(
                "materialized view `{}` has no aggregates — use a plain view",
                self.name
            )));
        }
        Ok(())
    }
}

/// Physical positions of one aggregate inside an extent row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggColumns {
    /// Position of the finalized value.
    pub finalized: usize,
    /// Positions of the partial-state components (empty for aggregates
    /// whose state is not stored; see [`stores_partial_state`]).
    pub components: Vec<usize>,
}

/// Physical layout of an extent table: group-key columns first, then per
/// aggregate the finalized column followed by its component columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtentLayout {
    /// Number of leading group-key columns.
    pub key_cols: usize,
    /// Per-aggregate column positions, in definition order.
    pub aggs: Vec<AggColumns>,
    /// Total physical arity of an extent row.
    pub width: usize,
}

impl ExtentLayout {
    /// Compute the layout for a definition.
    pub fn of(def: &MatViewDef) -> ExtentLayout {
        let mut next = def.group_cols.len();
        let mut aggs = Vec::with_capacity(def.aggs.len());
        for spec in &def.aggs {
            let finalized = next;
            next += 1;
            let ncomp = if stores_partial_state(spec.func) {
                spec.func.partial_arity()
            } else {
                0
            };
            let components = (next..next + ncomp).collect();
            next += ncomp;
            aggs.push(AggColumns {
                finalized,
                components,
            });
        }
        ExtentLayout {
            key_cols: def.group_cols.len(),
            aggs,
            width: next,
        }
    }
}

/// Catalog metadata for one materialized view: definition, extent table
/// name, physical layout, and the base-table data versions the extent was
/// last built from (the staleness basis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatViewMeta {
    pub def: MatViewDef,
    /// Name of the extent table in the catalog (`__mv_<view>`).
    pub extent: String,
    pub layout: ExtentLayout,
    /// `Catalog::data_version` of each base table at build time, in
    /// `def.tables` order.
    pub base_versions: Vec<u64>,
}

impl MatViewMeta {
    /// The conventional extent-table name for a view.
    pub fn extent_name(view: &str) -> String {
        format!("__mv_{}", view.to_ascii_lowercase())
    }

    /// True when any base table has been modified since the extent was
    /// last built or refreshed. Stale extents are skipped by the view
    /// matcher and rejected by the plan analyzer.
    pub fn is_stale(&self, catalog: &Catalog) -> bool {
        self.def
            .tables
            .iter()
            .zip(&self.base_versions)
            .any(|(t, &v)| catalog.data_version(t) != v)
    }

    /// Sentinel base version that can never match a real
    /// `Catalog::data_version` (version counters start at 1 and are
    /// incremented one mutation at a time, so they cannot reach
    /// `u64::MAX`). A quarantined extent is therefore *unconditionally
    /// stale* until an explicit `REFRESH` rebuilds it.
    pub const QUARANTINED: u64 = u64::MAX;

    /// Mark this extent unconditionally stale. Crash recovery applies
    /// this to any view whose recorded base versions cannot be
    /// re-verified against the recovered tables (e.g. the extent table
    /// itself was lost to an unlucky crash): across a crash, a
    /// materialized view may be *demoted* to stale but never promoted
    /// to fresh.
    pub fn quarantine(&mut self) {
        for v in &mut self.base_versions {
            *v = MatViewMeta::QUARANTINED;
        }
    }

    /// True when [`MatViewMeta::quarantine`] has marked this extent.
    pub fn is_quarantined(&self) -> bool {
        self.base_versions.contains(&MatViewMeta::QUARANTINED)
    }
}

/// The extent table's schema: view column names for group keys and
/// finalized aggregates, `__<name>_p<j>` for stored state components.
pub fn extent_schema(def: &MatViewDef, catalog: &Catalog) -> Result<Schema> {
    def.validate()?;
    let col_type = |c: Col| -> DataType {
        match c {
            Col::Base(cr) => {
                let idx = cr.rel.idx();
                let table = def.tables.get(idx).and_then(|name| catalog.get(name).ok());
                match table {
                    Some(t) if (cr.col as usize) < t.schema().len() => {
                        t.schema().field(cr.col as usize).ty
                    }
                    _ => DataType::Int,
                }
            }
            // View bodies are single-block SPJ + group-by: no nested
            // aggregate references can appear.
            _ => DataType::Int,
        }
    };
    let mut fields = Vec::new();
    for (i, g) in def.group_cols.iter().enumerate() {
        fields.push(Field::new(def.column_names[i].clone(), col_type(*g)));
    }
    for (i, spec) in def.aggs.iter().enumerate() {
        let arg_ty = match &spec.arg {
            Some(e) => Some(e.data_type(&|c| col_type(c))?),
            None => None,
        };
        let name = &def.column_names[def.group_cols.len() + i];
        fields.push(Field::new(name.clone(), spec.func.output_type(arg_ty)?));
        if stores_partial_state(spec.func) {
            for (j, ty) in spec.func.partial_types(arg_ty)?.iter().enumerate() {
                fields.push(Field::new(
                    format!("__{}_p{j}", name.to_ascii_lowercase()),
                    *ty,
                ));
            }
        }
    }
    Schema::new(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::{Expr, RelId};
    use std::sync::Arc;

    fn emp_catalog() -> Catalog {
        let c = Catalog::new();
        let t = crate::Table::builder(
            "emp",
            Schema::of(&[
                ("eno", DataType::Int),
                ("dno", DataType::Int),
                ("sal", DataType::Float),
            ]),
        )
        .build()
        .unwrap();
        c.add(t).unwrap();
        let _: Arc<crate::Table> = c.get("emp").unwrap();
        c
    }

    fn avg_def() -> MatViewDef {
        MatViewDef {
            name: "a1".into(),
            tables: vec!["emp".into()],
            preds: vec![],
            group_cols: vec![Col::base(RelId(0), 1)],
            aggs: vec![
                AggSpec::new(AggFunc::Avg, Expr::Col(Col::base(RelId(0), 2))),
                AggSpec::count_star(),
            ],
            column_names: vec!["dno".into(), "asal".into(), "n".into()],
        }
    }

    #[test]
    fn layout_places_components_after_finalized() {
        let l = ExtentLayout::of(&avg_def());
        assert_eq!(l.key_cols, 1);
        // dno, asal, __asal_p0, __asal_p1, n, __n_p0
        assert_eq!(l.aggs[0].finalized, 1);
        assert_eq!(l.aggs[0].components, vec![2, 3]);
        assert_eq!(l.aggs[1].finalized, 4);
        assert_eq!(l.aggs[1].components, vec![5]);
        assert_eq!(l.width, 6);
    }

    #[test]
    fn stddev_stores_no_state() {
        let mut def = avg_def();
        def.aggs[0] = AggSpec::new(AggFunc::StdDev, Expr::Col(Col::base(RelId(0), 2)));
        let l = ExtentLayout::of(&def);
        assert!(l.aggs[0].components.is_empty());
        assert_eq!(l.width, 4); // dno, sd, n, __n_p0
        assert!(!stores_partial_state(AggFunc::StdDev));
        assert!(stores_partial_state(AggFunc::Avg));
    }

    #[test]
    fn extent_schema_types_from_base_tables() {
        let cat = emp_catalog();
        let s = extent_schema(&avg_def(), &cat).unwrap();
        assert_eq!(s.len(), 6);
        assert_eq!(s.field(0).name, "dno");
        assert_eq!(s.field(0).ty, DataType::Int);
        assert_eq!(s.field(1).ty, DataType::Float); // AVG
        assert_eq!(s.field(2).name, "__asal_p0");
        assert_eq!(s.field(2).ty, DataType::Float); // sum component
        assert_eq!(s.field(3).ty, DataType::Int); // count component
        assert_eq!(s.field(5).name, "__n_p0");
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let mut def = avg_def();
        def.column_names.pop();
        assert!(def.validate().is_err());
        assert!(MatViewMeta::extent_name("A1") == "__mv_a1");
    }
}
