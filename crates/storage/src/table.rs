//! Immutable in-memory tables.

use crate::keys::{ForeignKey, PrimaryKey};
use crate::stats::{analyze, TableStats};
use aggview_common::{AggViewError, DataType, Result, Schema, Tuple, Value};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// An immutable relation: schema, rows, key declarations, statistics.
///
/// Tables are built once via [`TableBuilder`] (which validates arity,
/// types and key uniqueness, then computes exact statistics) and then
/// shared read-only behind `Arc` — the workload of a decision-support
/// optimizer is read-dominated, and immutability keeps statistics
/// trustworthy by construction.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Tuple>,
    primary_key: Option<PrimaryKey>,
    foreign_keys: Vec<ForeignKey>,
    stats: TableStats,
}

impl Table {
    /// Start building a table.
    pub fn builder(name: impl Into<String>, schema: Schema) -> TableBuilder {
        TableBuilder {
            name: name.into(),
            schema,
            rows: Vec::new(),
            primary_key: None,
            foreign_keys: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Declared primary key, if any.
    pub fn primary_key(&self) -> Option<&PrimaryKey> {
        self.primary_key.as_ref()
    }

    /// Declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Exact statistics computed at build time.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// True if `cols` is a superset of some key of this table — i.e.
    /// values of `cols` functionally determine the row. Used by the
    /// invariant-grouping applicability test and by pull-up's key
    /// machinery.
    pub fn cols_contain_key(&self, cols: &[usize]) -> bool {
        match &self.primary_key {
            Some(pk) => pk.cols.iter().all(|k| cols.contains(k)),
            None => false,
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{} [{} rows]", self.name, self.schema, self.len())
    }
}

/// Builder enforcing table invariants before the table becomes shareable.
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    rows: Vec<Tuple>,
    primary_key: Option<PrimaryKey>,
    foreign_keys: Vec<ForeignKey>,
}

impl TableBuilder {
    /// Declare the primary key by column names.
    pub fn primary_key(mut self, cols: &[&str]) -> Result<TableBuilder> {
        let idxs = self.resolve_cols(cols)?;
        self.primary_key = Some(PrimaryKey::new(idxs));
        Ok(self)
    }

    /// Declare a foreign key by column names.
    pub fn foreign_key(
        mut self,
        cols: &[&str],
        parent: &str,
        parent_cols: &[usize],
    ) -> Result<TableBuilder> {
        let idxs = self.resolve_cols(cols)?;
        self.foreign_keys
            .push(ForeignKey::new(idxs, parent, parent_cols.to_vec()));
        Ok(self)
    }

    fn resolve_cols(&self, cols: &[&str]) -> Result<Vec<usize>> {
        let mut idxs = Vec::with_capacity(cols.len());
        for c in cols {
            idxs.push(self.schema.resolve(c)?);
        }
        Ok(idxs)
    }

    /// Append a row, validating arity and types.
    pub fn row(mut self, values: Vec<Value>) -> Result<TableBuilder> {
        self.push(Tuple::new(values))?;
        Ok(self)
    }

    /// Append a row (non-consuming form for loops).
    pub fn push(&mut self, row: Tuple) -> Result<()> {
        if row.arity() != self.schema.len() {
            return Err(AggViewError::Schema(format!(
                "table `{}` expects {} columns, row has {}",
                self.name,
                self.schema.len(),
                row.arity()
            )));
        }
        for (i, v) in row.values().iter().enumerate() {
            let expect = self.schema.field(i).ty;
            let got = v.data_type();
            // Int is acceptable where Float is declared (numeric widening).
            let ok = got == expect || (expect == DataType::Float && got == DataType::Int);
            if !ok {
                return Err(AggViewError::Schema(format!(
                    "table `{}` column `{}` expects {expect}, got {got}",
                    self.name,
                    self.schema.field(i).name
                )));
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Validate keys, compute statistics, freeze.
    pub fn build(self) -> Result<Arc<Table>> {
        if let Some(pk) = &self.primary_key {
            let mut seen: HashSet<Tuple> = HashSet::with_capacity(self.rows.len());
            for row in &self.rows {
                let key = row.project(&pk.cols);
                if !seen.insert(key) {
                    return Err(AggViewError::Schema(format!(
                        "table `{}`: duplicate primary key value in row {}",
                        self.name, row
                    )));
                }
            }
        }
        let stats = analyze(&self.rows, self.schema.len());
        Ok(Arc::new(Table {
            name: self.name,
            schema: self.schema,
            rows: self.rows,
            primary_key: self.primary_key,
            foreign_keys: self.foreign_keys,
            stats,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::tuple;

    fn dept_schema() -> Schema {
        Schema::of(&[
            ("dno", DataType::Int),
            ("dname", DataType::Str),
            ("budget", DataType::Float),
        ])
    }

    #[test]
    fn build_and_read_back() {
        let t = Table::builder("dept", dept_schema())
            .primary_key(&["dno"])
            .unwrap()
            .row(vec![Value::Int(1), Value::str("eng"), Value::Float(5e5)])
            .unwrap()
            .row(vec![Value::Int(2), Value::str("hr"), Value::Float(2e5)])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.stats().rows, 2);
        assert_eq!(t.primary_key().unwrap().cols, vec![0]);
        assert_eq!(t.name(), "dept");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = Table::builder("dept", dept_schema())
            .row(vec![Value::Int(1)])
            .unwrap_err();
        assert_eq!(err.kind(), "schema");
    }

    #[test]
    fn type_mismatch_rejected_but_int_widens_to_float() {
        let b = Table::builder("dept", dept_schema())
            // budget declared FLOAT, Int(5) accepted via widening
            .row(vec![Value::Int(1), Value::str("x"), Value::Int(5)])
            .unwrap();
        let err = b
            .row(vec![Value::str("no"), Value::str("x"), Value::Float(1.0)])
            .unwrap_err();
        assert!(err.message().contains("dno"));
    }

    #[test]
    fn duplicate_primary_key_rejected_at_build() {
        let err = Table::builder("dept", dept_schema())
            .primary_key(&["dno"])
            .unwrap()
            .row(vec![Value::Int(1), Value::str("a"), Value::Float(1.0)])
            .unwrap()
            .row(vec![Value::Int(1), Value::str("b"), Value::Float(2.0)])
            .unwrap()
            .build()
            .unwrap_err();
        assert!(err.message().contains("duplicate primary key"));
    }

    #[test]
    fn unknown_key_column_rejected() {
        let err = Table::builder("dept", dept_schema())
            .primary_key(&["nope"])
            .unwrap_err();
        assert_eq!(err.kind(), "bind");
    }

    #[test]
    fn cols_contain_key() {
        let t = Table::builder("dept", dept_schema())
            .primary_key(&["dno"])
            .unwrap()
            .row(vec![Value::Int(1), Value::str("a"), Value::Float(1.0)])
            .unwrap()
            .build()
            .unwrap();
        assert!(t.cols_contain_key(&[0]));
        assert!(t.cols_contain_key(&[2, 0]));
        assert!(!t.cols_contain_key(&[1, 2]));
        let nokey = Table::builder("x", dept_schema()).build().unwrap();
        assert!(!nokey.cols_contain_key(&[0, 1, 2]));
    }

    #[test]
    fn push_loop_form() {
        let mut b = Table::builder("d", dept_schema());
        for i in 0..10 {
            b.push(tuple![i as i64, "n", (i * 100) as f64]).unwrap();
        }
        let t = b.build().unwrap();
        assert_eq!(t.len(), 10);
        assert_eq!(t.stats().columns[0].distinct, 10);
    }

    #[test]
    fn foreign_key_declaration() {
        let emp = Schema::of(&[("eno", DataType::Int), ("dno", DataType::Int)]);
        let t = Table::builder("emp", emp)
            .foreign_key(&["dno"], "dept", &[0])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(t.foreign_keys().len(), 1);
        assert_eq!(t.foreign_keys()[0].parent, "dept");
    }

    #[test]
    fn display_summarizes() {
        let t = Table::builder("dept", dept_schema()).build().unwrap();
        assert!(t.to_string().contains("dept"));
        assert!(t.to_string().contains("0 rows"));
        assert!(t.is_empty());
    }
}
