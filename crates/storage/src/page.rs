//! The byte → page accounting model.
//!
//! The paper's optimizer "minimizes IO cost" (Section 5); both our cost
//! model (estimates) and our executor (measurements) express IO in
//! *pages*. `PageModel` is the single place where bytes become pages so
//! the two sides can never diverge on the conversion.

/// Converts row counts and widths into page counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageModel {
    /// Page size in bytes.
    pub page_size: usize,
}

impl Default for PageModel {
    fn default() -> Self {
        PageModel { page_size: 4096 }
    }
}

impl PageModel {
    pub fn new(page_size: usize) -> PageModel {
        assert!(page_size > 0, "page size must be positive");
        PageModel { page_size }
    }

    /// Pages needed to hold `bytes` bytes (at least 1 for non-empty data).
    pub fn pages_for_bytes(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            0.0
        } else {
            (bytes / self.page_size as f64).max(1.0)
        }
    }

    /// Pages needed to hold `rows` rows of `width` bytes each.
    ///
    /// Returns a fractional page count: the cost model works with
    /// expected values, and rounding every intermediate would bias small
    /// relations. Call sites that need whole pages round up themselves.
    pub fn pages_for(&self, rows: f64, width: f64) -> f64 {
        self.pages_for_bytes(rows * width)
    }

    /// Whole-page count for concrete (measured) data.
    pub fn whole_pages(&self, bytes: usize) -> u64 {
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(self.page_size) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_zero_pages() {
        let m = PageModel::default();
        assert_eq!(m.pages_for_bytes(0.0), 0.0);
        assert_eq!(m.whole_pages(0), 0);
        assert_eq!(m.pages_for(0.0, 48.0), 0.0);
    }

    #[test]
    fn nonempty_data_takes_at_least_one_page() {
        let m = PageModel::default();
        assert_eq!(m.pages_for_bytes(1.0), 1.0);
        assert_eq!(m.whole_pages(1), 1);
    }

    #[test]
    fn fractional_pages_scale_linearly() {
        let m = PageModel::new(1000);
        assert_eq!(m.pages_for(100.0, 50.0), 5.0);
        assert_eq!(m.pages_for_bytes(2500.0), 2.5);
    }

    #[test]
    fn whole_pages_round_up() {
        let m = PageModel::new(1000);
        assert_eq!(m.whole_pages(1001), 2);
        assert_eq!(m.whole_pages(2000), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_page_size_rejected() {
        PageModel::new(0);
    }
}
