//! Write-ahead log for catalog mutations.
//!
//! The WAL is *logical*: one record per catalog mutation (table
//! registration, insert batch, modification mark, materialized-view
//! metadata upsert), replayed through the catalog's own non-logging
//! apply path on recovery. Logging at mutation granularity keeps the
//! format small and makes replay trivially deterministic — the same
//! records through the same code produce the same tables, statistics,
//! and version counters.
//!
//! ## File format
//!
//! ```text
//! "AGVWAL01"                                    file magic, 8 bytes
//! repeat:                                       one frame per record
//!   [u32 len] [u32 crc32(payload)] [payload]    little-endian
//!   payload = [u64 lsn] [u8 kind] [body]
//! ```
//!
//! Appends go through **write then fsync**; a record is *committed*
//! once its fsync returns. A crash mid-append can leave a torn final
//! frame (a prefix of it) or committed frames followed by recycled-disk
//! garbage; [`WalReader::read_committed`] stops at the first frame that
//! does not parse cleanly and treats everything before it as the
//! committed log. A frame whose CRC validates but whose payload fails
//! to decode is **corruption**, not a torn tail — fsynced bytes do not
//! spontaneously half-decode — and surfaces as
//! [`AggViewError::Corrupt`] with the file offset and record index.
//!
//! Fault injection: [`WalWriter::append`] consults
//! [`FaultInjector::io_fault`] at `wal.append` (write) and `wal.fsync`;
//! [`WalWriter::truncate_all`] consults `wal.truncate`. An injected
//! fsync failure rolls the file back to its committed length — the
//! record is *not* committed and a retry starts from a clean boundary.

use crate::codec::{self, crc32, Dec, Enc};
use crate::keys::{ForeignKey, PrimaryKey};
use crate::matview::MatViewMeta;
use aggview_common::{AggViewError, FaultInjector, IoFaultKind, Result, Schema, Tuple};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic identifying a WAL file (and its format version).
pub const WAL_MAGIC: &[u8; 8] = b"AGVWAL01";

/// Frame header size: `[u32 len][u32 crc]`.
const FRAME_HEADER: u64 = 8;

/// Upper bound on a single record's payload; a CRC-less corrupted
/// length field cannot make the reader attempt an absurd allocation.
const MAX_RECORD: u32 = 1 << 28;

/// One logged catalog mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A table was registered (`replace: false` — `Catalog::add`) or
    /// overwritten (`replace: true` — `Catalog::add_or_replace`). The
    /// record carries the full table content: tables in this system are
    /// immutable values, so registration is the only point where rows
    /// enter wholesale.
    PutTable {
        name: String,
        schema: Schema,
        primary_key: Option<PrimaryKey>,
        foreign_keys: Vec<ForeignKey>,
        rows: Vec<Tuple>,
        replace: bool,
    },
    /// Rows appended to an existing table (`Catalog::append_rows`).
    InsertBatch { table: String, rows: Vec<Tuple> },
    /// An out-of-band modification mark (`Catalog::mark_modified`).
    MarkModified { table: String },
    /// Materialized-view metadata registered or updated. Replay applies
    /// it as an upsert, so one record shape covers both.
    PutMatView { meta: MatViewMeta },
    /// Rows removed from an existing table (`Catalog::delete_rows`).
    /// Logged as *positions* into the table's row vector at log time:
    /// tables are immutable ordered row vectors, so positional replay
    /// against the same committed prefix is deterministic and the record
    /// stays small.
    DeleteBatch { table: String, indices: Vec<usize> },
    /// Rows replaced in place (`Catalog::update_rows`): `rows[i]` is the
    /// new content of the row at position `indices[i]`. Same positional
    /// determinism argument as [`WalRecord::DeleteBatch`].
    UpdateBatch {
        table: String,
        indices: Vec<usize>,
        rows: Vec<Tuple>,
    },
}

impl WalRecord {
    /// Build a `PutTable` record from a live table.
    pub fn put_table(table: &crate::table::Table, replace: bool) -> WalRecord {
        WalRecord::PutTable {
            name: table.name().to_string(),
            schema: table.schema().clone(),
            primary_key: table.primary_key().cloned(),
            foreign_keys: table.foreign_keys().to_vec(),
            rows: table.rows().to_vec(),
            replace,
        }
    }

    fn kind(&self) -> u8 {
        match self {
            WalRecord::PutTable { .. } => 0,
            WalRecord::InsertBatch { .. } => 1,
            WalRecord::MarkModified { .. } => 2,
            WalRecord::PutMatView { .. } => 3,
            WalRecord::DeleteBatch { .. } => 4,
            WalRecord::UpdateBatch { .. } => 5,
        }
    }

    fn encode_payload(&self, lsn: u64) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(lsn);
        e.u8(self.kind());
        match self {
            WalRecord::PutTable {
                name,
                schema,
                primary_key,
                foreign_keys,
                rows,
                replace,
            } => {
                e.str(name);
                codec::enc_schema(&mut e, schema);
                codec::enc_primary_key(&mut e, primary_key);
                codec::enc_foreign_keys(&mut e, foreign_keys);
                codec::enc_rows(&mut e, rows);
                e.u8(*replace as u8);
            }
            WalRecord::InsertBatch { table, rows } => {
                e.str(table);
                codec::enc_rows(&mut e, rows);
            }
            WalRecord::MarkModified { table } => e.str(table),
            WalRecord::PutMatView { meta } => codec::enc_matview_meta(&mut e, meta),
            WalRecord::DeleteBatch { table, indices } => {
                e.str(table);
                e.usizes(indices);
            }
            WalRecord::UpdateBatch {
                table,
                indices,
                rows,
            } => {
                e.str(table);
                e.usizes(indices);
                codec::enc_rows(&mut e, rows);
            }
        }
        e.into_bytes()
    }

    fn decode_payload(payload: &[u8]) -> Result<(u64, WalRecord)> {
        let mut d = Dec::new(payload);
        let lsn = d.u64()?;
        let kind = d.u8()?;
        let rec = match kind {
            0 => {
                let name = d.str()?;
                let schema = codec::dec_schema(&mut d)?;
                let primary_key = codec::dec_primary_key(&mut d)?;
                let foreign_keys = codec::dec_foreign_keys(&mut d)?;
                let rows = codec::dec_rows(&mut d)?;
                let replace = d.u8()? != 0;
                WalRecord::PutTable {
                    name,
                    schema,
                    primary_key,
                    foreign_keys,
                    rows,
                    replace,
                }
            }
            1 => WalRecord::InsertBatch {
                table: d.str()?,
                rows: codec::dec_rows(&mut d)?,
            },
            2 => WalRecord::MarkModified { table: d.str()? },
            3 => WalRecord::PutMatView {
                meta: codec::dec_matview_meta(&mut d)?,
            },
            4 => WalRecord::DeleteBatch {
                table: d.str()?,
                indices: d.usizes()?,
            },
            5 => WalRecord::UpdateBatch {
                table: d.str()?,
                indices: d.usizes()?,
                rows: codec::dec_rows(&mut d)?,
            },
            t => return Err(d.corrupt(format!("unknown WAL record kind {t}"))),
        };
        if !d.is_done() {
            return Err(d.corrupt("WAL record payload has trailing bytes"));
        }
        Ok((lsn, rec))
    }
}

fn io_err(what: &str, e: std::io::Error) -> AggViewError {
    AggViewError::Io(format!("{what}: {e}"))
}

/// Everything [`WalReader::read_committed`] learns about a log file.
#[derive(Debug)]
pub struct WalContents {
    /// Committed records in append order, with their LSNs.
    pub records: Vec<(u64, WalRecord)>,
    /// Byte length of the committed prefix (magic + whole frames). The
    /// file may be longer — a torn tail or trailing garbage follows.
    pub committed_len: u64,
    /// Absolute end offset of each committed record's frame; the last
    /// entry equals `committed_len`. Lets tests slice the log at exact
    /// record boundaries.
    pub frame_ends: Vec<u64>,
}

impl WalContents {
    /// LSN to assign to the next appended record.
    pub fn next_lsn(&self) -> u64 {
        self.records.last().map_or(0, |(lsn, _)| lsn + 1)
    }
}

/// Read-side of the log.
pub struct WalReader;

impl WalReader {
    /// Read the committed prefix of a WAL file.
    ///
    /// A missing file reads as an empty log. Torn tails and trailing
    /// garbage are expected crash artifacts and terminate the scan
    /// silently; a bad file magic or a CRC-valid-but-undecodable frame
    /// is [`AggViewError::Corrupt`].
    pub fn read_committed(path: &Path) -> Result<WalContents> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err("read WAL", e)),
        };
        if bytes.is_empty() {
            return Ok(WalContents {
                records: Vec::new(),
                committed_len: 0,
                frame_ends: Vec::new(),
            });
        }
        if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(AggViewError::Corrupt {
                offset: 0,
                record: 0,
                message: "WAL file magic mismatch".into(),
            });
        }
        let mut records = Vec::new();
        let mut frame_ends = Vec::new();
        let mut pos = WAL_MAGIC.len();
        // Anything that doesn't parse as a complete, checksummed frame
        // ends the committed prefix: crashes legitimately leave partial
        // frames and garbage past the last fsync.
        while let Some(header) = bytes.get(pos..pos + FRAME_HEADER as usize) {
            let len = u32::from_le_bytes(header[..4].try_into().expect("4"));
            let crc = u32::from_le_bytes(header[4..].try_into().expect("4"));
            if len > MAX_RECORD {
                break;
            }
            let start = pos + FRAME_HEADER as usize;
            let Some(payload) = bytes.get(start..start + len as usize) else {
                break;
            };
            if crc32(payload) != crc {
                break;
            }
            // The frame is intact past its checksum: decode failure now
            // means the writer and reader disagree — real corruption.
            let (lsn, rec) = WalRecord::decode_payload(payload).map_err(|e| match e {
                AggViewError::Corrupt {
                    offset, message, ..
                } => AggViewError::Corrupt {
                    offset: start as u64 + offset,
                    record: records.len() as u64,
                    message,
                },
                other => other,
            })?;
            records.push((lsn, rec));
            pos = start + len as usize;
            frame_ends.push(pos as u64);
        }
        Ok(WalContents {
            records,
            committed_len: frame_ends.last().copied().unwrap_or(WAL_MAGIC.len() as u64),
            frame_ends,
        })
    }
}

/// Append-side of the log.
///
/// The writer tracks the committed length and truncates any leftover
/// torn bytes before each append, so one failed append never poisons
/// the next.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    committed_len: u64,
    next_lsn: u64,
}

impl WalWriter {
    /// Open (creating if needed) the log at `path`, resuming after the
    /// committed prefix described by `contents` — normally the result
    /// of [`WalReader::read_committed`] on the same path.
    ///
    /// `min_next_lsn` floors the next LSN: after a checkpoint truncates
    /// the log, the file alone no longer remembers how far the sequence
    /// got, so recovery passes `snapshot.last_lsn + 1` to keep LSNs
    /// strictly increasing across the whole history.
    pub fn open(path: &Path, contents: &WalContents, min_next_lsn: u64) -> Result<WalWriter> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err("open WAL", e))?;
        let mut committed_len = contents.committed_len;
        if committed_len == 0 {
            file.set_len(0).map_err(|e| io_err("reset WAL", e))?;
            file.seek(SeekFrom::Start(0))
                .map_err(|e| io_err("seek WAL", e))?;
            file.write_all(WAL_MAGIC)
                .map_err(|e| io_err("write WAL magic", e))?;
            file.sync_data().map_err(|e| io_err("fsync WAL magic", e))?;
            committed_len = WAL_MAGIC.len() as u64;
        }
        let mut w = WalWriter {
            file,
            path: path.to_path_buf(),
            committed_len,
            next_lsn: contents.next_lsn().max(min_next_lsn),
        };
        // Drop any torn tail now rather than lazily: recovery hands out
        // a clean log.
        w.rollback_to_committed()?;
        Ok(w)
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// LSN the next append will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Byte length of the committed prefix.
    pub fn committed_len(&self) -> u64 {
        self.committed_len
    }

    fn rollback_to_committed(&mut self) -> Result<()> {
        let actual = self
            .file
            .metadata()
            .map_err(|e| io_err("stat WAL", e))?
            .len();
        if actual != self.committed_len {
            self.file
                .set_len(self.committed_len)
                .map_err(|e| io_err("truncate WAL tail", e))?;
        }
        Ok(())
    }

    /// Append one record durably; returns its LSN.
    ///
    /// The record is committed — guaranteed to survive
    /// [`WalReader::read_committed`] — iff this returns `Ok`.
    pub fn append(&mut self, rec: &WalRecord, faults: &dyn FaultInjector) -> Result<u64> {
        self.rollback_to_committed()?;
        let lsn = self.next_lsn;
        let payload = rec.encode_payload(lsn);
        let mut frame = Vec::with_capacity(payload.len() + FRAME_HEADER as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        self.file
            .seek(SeekFrom::Start(self.committed_len))
            .map_err(|e| io_err("seek WAL", e))?;
        let mut garbage_after = false;
        match faults.io_fault("wal.append") {
            Some(IoFaultKind::Error) => {
                return Err(AggViewError::Io("injected WAL write failure".into()));
            }
            Some(IoFaultKind::ShortWrite) => {
                // Half the frame reaches the disk — exactly what a crash
                // mid-write leaves. The op fails; the torn bytes stay for
                // recovery to skip.
                let torn = &frame[..frame.len() / 2];
                self.file
                    .write_all(torn)
                    .map_err(|e| io_err("write WAL", e))?;
                let _ = self.file.sync_data();
                return Err(AggViewError::Io("injected torn WAL write".into()));
            }
            Some(IoFaultKind::TrailingGarbage) => garbage_after = true,
            None => {}
        }
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("write WAL", e))?;
        if garbage_after {
            // Recycled-disk bytes past the record: a plausible frame
            // header prefix followed by junk, never a valid frame.
            self.file
                .write_all(&[0x7F, 0x00, 0x00, 0x00, 0xDE, 0xAD])
                .map_err(|e| io_err("write WAL", e))?;
        }
        if faults.io_fault("wal.fsync").is_some() {
            // Any injected fault at the fsync site means the record never
            // became durable: roll the simulated disk back to the
            // committed boundary and report the failure.
            self.file
                .set_len(self.committed_len)
                .map_err(|e| io_err("truncate WAL", e))?;
            return Err(AggViewError::Io("injected WAL fsync failure".into()));
        }
        self.file.sync_data().map_err(|e| io_err("fsync WAL", e))?;
        self.committed_len += frame.len() as u64;
        self.next_lsn = lsn + 1;
        Ok(lsn)
    }

    /// Discard every record (after a checkpoint made them redundant).
    /// LSNs keep counting from where they were — they are never reused,
    /// which is what lets recovery order records against snapshots.
    pub fn truncate_all(&mut self, faults: &dyn FaultInjector) -> Result<()> {
        if faults.io_fault("wal.truncate").is_some() {
            // The log keeps its records; recovery will skip the ones the
            // checkpoint already covers (their LSNs are ≤ its last_lsn).
            return Err(AggViewError::Io("injected WAL truncate failure".into()));
        }
        self.file
            .set_len(WAL_MAGIC.len() as u64)
            .map_err(|e| io_err("truncate WAL", e))?;
        self.file.sync_data().map_err(|e| io_err("fsync WAL", e))?;
        self.committed_len = WAL_MAGIC.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::{DataType, NoFaults, ScheduledIoFaults, Value};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aggview-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::PutTable {
                name: "Emp".into(),
                schema: Schema::of(&[("eno", DataType::Int), ("sal", DataType::Float)]),
                primary_key: Some(PrimaryKey::single(0)),
                foreign_keys: vec![ForeignKey::new(vec![0], "dept", vec![0])],
                rows: vec![Tuple::new(vec![Value::Int(1), Value::Float(10.0)])],
                replace: false,
            },
            WalRecord::InsertBatch {
                table: "emp".into(),
                rows: vec![Tuple::new(vec![Value::Int(2), Value::Float(20.0)])],
            },
            WalRecord::MarkModified {
                table: "emp".into(),
            },
            WalRecord::DeleteBatch {
                table: "emp".into(),
                indices: vec![0, 3],
            },
            WalRecord::UpdateBatch {
                table: "emp".into(),
                indices: vec![1],
                rows: vec![Tuple::new(vec![Value::Int(2), Value::Float(25.0)])],
            },
        ]
    }

    fn write_log(path: &Path, recs: &[WalRecord]) -> WalWriter {
        let contents = WalReader::read_committed(path).unwrap();
        let mut w = WalWriter::open(path, &contents, 0).unwrap();
        for r in recs {
            w.append(r, &NoFaults).unwrap();
        }
        w
    }

    #[test]
    fn append_then_read_round_trips() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.agv");
        let recs = sample_records();
        let w = write_log(&path, &recs);
        assert_eq!(w.next_lsn(), 5);
        let back = WalReader::read_committed(&path).unwrap();
        assert_eq!(back.records.len(), 5);
        for (i, (lsn, rec)) in back.records.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
            assert_eq!(rec, &recs[i]);
        }
        assert_eq!(back.committed_len, *back.frame_ends.last().unwrap());
        assert_eq!(back.next_lsn(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_silently_dropped_at_every_cut() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.agv");
        write_log(&path, &sample_records());
        let full = std::fs::read(&path).unwrap();
        let contents = WalReader::read_committed(&path).unwrap();
        let second_end = contents.frame_ends[1] as usize;
        let third_end = contents.frame_ends[2] as usize;
        // Cut anywhere inside the third frame: exactly two records
        // survive, no error.
        for cut in second_end..third_end {
            std::fs::write(&path, &full[..cut]).unwrap();
            let back = WalReader::read_committed(&path).unwrap();
            assert_eq!(back.records.len(), 2, "cut at {cut}");
            assert_eq!(back.committed_len, second_end as u64, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trailing_garbage_is_tolerated() {
        let dir = tmpdir("garbage");
        let path = dir.join("wal.agv");
        write_log(&path, &sample_records());
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0x13, 0x37, 0xFF, 0x00, 0x42]);
        std::fs::write(&path, &bytes).unwrap();
        let back = WalReader::read_committed(&path).unwrap();
        assert_eq!(back.records.len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_payload_byte_ends_the_committed_prefix() {
        let dir = tmpdir("bitflip");
        let path = dir.join("wal.agv");
        write_log(&path, &sample_records());
        let contents = WalReader::read_committed(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the second record's payload: its CRC no
        // longer matches, so the log ends after record one.
        let target = (contents.frame_ends[0] + FRAME_HEADER + 2) as usize;
        bytes[target] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let back = WalReader::read_committed(&path).unwrap();
        assert_eq!(back.records.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_is_corruption() {
        let dir = tmpdir("magic");
        let path = dir.join("wal.agv");
        std::fs::write(&path, b"NOTAWAL!rest").unwrap();
        let err = WalReader::read_committed(&path).unwrap_err();
        assert_eq!(err.kind(), "corrupt");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let dir = tmpdir("missing");
        let back = WalReader::read_committed(&dir.join("nope.agv")).unwrap();
        assert!(back.records.is_empty());
        assert_eq!(back.next_lsn(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_faults_commit_exactly_when_append_succeeds() {
        let recs = sample_records();
        for kind in IoFaultKind::ALL {
            for site in ["wal.append", "wal.fsync"] {
                let dir = tmpdir(&format!("inj-{site}-{kind:?}"));
                let path = dir.join("wal.agv");
                let contents = WalReader::read_committed(&path).unwrap();
                let mut w = WalWriter::open(&path, &contents, 0).unwrap();
                let inj = ScheduledIoFaults::at(site, 0, *kind);
                let mut committed = Vec::new();
                for r in &recs {
                    if w.append(r, &inj).is_ok() {
                        committed.push(r.clone());
                    }
                }
                assert!(inj.fired(), "{site} {kind:?} never fired");
                let back = WalReader::read_committed(&path).unwrap();
                let got: Vec<WalRecord> = back.records.into_iter().map(|(_, r)| r).collect();
                assert_eq!(got, committed, "{site} {kind:?}");
                std::fs::remove_dir_all(&dir).unwrap();
            }
        }
    }

    #[test]
    fn reopen_resumes_lsns_and_drops_torn_bytes() {
        let dir = tmpdir("reopen");
        let path = dir.join("wal.agv");
        write_log(&path, &sample_records());
        // Simulate a crash mid-append: torn half-frame at the tail.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[9, 0, 0, 0, 1]);
        std::fs::write(&path, &bytes).unwrap();
        let contents = WalReader::read_committed(&path).unwrap();
        let mut w = WalWriter::open(&path, &contents, 0).unwrap();
        assert_eq!(w.next_lsn(), 5);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            contents.committed_len,
            "torn tail trimmed on open"
        );
        let lsn = w
            .append(&WalRecord::MarkModified { table: "x".into() }, &NoFaults)
            .unwrap();
        assert_eq!(lsn, 5);
        let back = WalReader::read_committed(&path).unwrap();
        assert_eq!(back.records.len(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_all_empties_log_but_preserves_lsn_sequence() {
        let dir = tmpdir("trunc");
        let path = dir.join("wal.agv");
        let mut w = write_log(&path, &sample_records());
        let inj = ScheduledIoFaults::at("wal.truncate", 0, IoFaultKind::Error);
        let err = w.truncate_all(&inj).unwrap_err();
        assert_eq!(err.kind(), "io");
        assert_eq!(WalReader::read_committed(&path).unwrap().records.len(), 5);
        w.truncate_all(&NoFaults).unwrap();
        let back = WalReader::read_committed(&path).unwrap();
        assert!(back.records.is_empty());
        let lsn = w
            .append(&WalRecord::MarkModified { table: "x".into() }, &NoFaults)
            .unwrap();
        assert_eq!(lsn, 5, "LSNs are never reused after truncation");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
