//! In-memory relational storage substrate for the aggview workspace.
//!
//! The paper was evaluated inside a full DBMS; this crate provides the
//! equivalent substrate, built from scratch:
//!
//! * [`Table`] / [`TableBuilder`] — immutable in-memory relations with
//!   declared primary and foreign keys (the pull-up transformation's
//!   correctness hinges on key information; see paper Definition 1),
//! * [`Catalog`] — a concurrent name → table registry,
//! * [`TableStats`] / [`ColumnStats`] — row counts, distinct counts,
//!   min/max, average widths and equi-depth histograms feeding the cost
//!   model's cardinality estimation,
//! * [`PageModel`] — the byte→page accounting shared by the cost model
//!   (estimates) and the executor (measurements),
//! * [`datagen`] — synthetic workload generators: the paper's Emp/Dept
//!   running example, a TPC-D-like decision-support star schema, and
//!   random catalogs for property-based testing.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod codec;
pub mod datagen;
pub mod keys;
pub mod matview;
pub mod page;
pub mod snapshot;
pub mod stats;
pub mod table;
pub mod wal;

pub use catalog::Catalog;
pub use keys::{ForeignKey, PrimaryKey};
pub use matview::{stores_partial_state, AggColumns, ExtentLayout, MatViewDef, MatViewMeta};
pub use page::PageModel;
pub use snapshot::Snapshot;
pub use stats::{ColumnStats, Histogram, TableStats};
pub use table::{Table, TableBuilder};
pub use wal::{WalReader, WalRecord, WalWriter};
