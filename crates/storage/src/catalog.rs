//! The table catalog, with optional crash-consistent durability.
//!
//! A catalog built with [`Catalog::new`] is purely in-memory: mutations
//! touch no files and pay only an `Option` check. A catalog built with
//! [`Catalog::open`] is *durable*: every mutation is written ahead to a
//! checksummed log ([`crate::wal`]) before it is applied in memory, and
//! [`Catalog::checkpoint`] folds the log into an atomic snapshot
//! ([`crate::snapshot`]). Reopening the same directory recovers by
//! loading the latest valid snapshot and replaying the committed log
//! suffix — restoring tables, per-table version counters, and
//! materialized-view metadata exactly as they were at the last
//! committed mutation.
//!
//! Recovery invariants (exercised by the crash-point harness in
//! `tests/durability_recovery.rs`):
//!
//! * **recovered == committed**: a mutation whose call returned `Ok` is
//!   present after recovery; one that returned `Err` is absent.
//! * **idempotent replay**: recovering twice (or recovering a recovered
//!   directory) yields the identical catalog.
//! * **staleness across crashes**: a materialized view may come back
//!   *stale* (its extent or bases could not be re-verified — it is
//!   quarantined), but never fresher than its bases.
//!
//! Lock ordering is `tables → versions → matviews → wal`, acquired
//! strictly in that order (skipping is fine, back-acquisition is not);
//! mutators hold the in-memory locks across the WAL append so that
//! replay order always equals application order.

use crate::matview::MatViewMeta;
use crate::snapshot::{Snapshot, TableSnap};
use crate::stats::TableStats;
use crate::table::Table;
use crate::wal::{WalContents, WalReader, WalRecord, WalWriter};
use aggview_common::{AggViewError, FaultInjector, NoFaults, Result, Tuple};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// WAL file name within a durable catalog directory.
pub const WAL_FILE: &str = "wal.agv";

/// Per-table modification bookkeeping.
///
/// `data` increments on every registration or data change; `stats` records
/// the data version the table's statistics were computed from. The two
/// stay equal under the normal immutable-rebuild discipline (rebuilding a
/// table re-runs `analyze`), so `stats != data` flags a logic error where
/// statistics would silently go stale — the cost model debug-asserts on
/// it via [`Catalog::stats_fresh`].
#[derive(Debug, Clone, Copy, Default)]
struct TableVersions {
    data: u64,
    stats: u64,
}

/// The durable half of a catalog: where it lives, its open WAL, and the
/// fault injector consulted at IO sites.
#[derive(Debug)]
struct Durable {
    dir: PathBuf,
    wal: Mutex<WalWriter>,
    faults: RwLock<Arc<dyn FaultInjector>>,
}

/// A concurrent name → table registry.
///
/// Names are case-insensitive (normalized to lowercase), matching SQL
/// identifier behaviour. Lookups hand out `Arc<Table>` so executors and
/// optimizers can hold tables without locking.
///
/// Beyond plain tables the catalog also tracks per-table modification
/// counters (the staleness basis for statistics and materialized views)
/// and the registry of [`MatViewMeta`] entries describing materialized
/// aggregate-view extents. See the module docs for the optional
/// durability layer.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
    versions: RwLock<BTreeMap<String, TableVersions>>,
    matviews: RwLock<BTreeMap<String, MatViewMeta>>,
    durable: Option<Durable>,
}

fn bump_entry(vers: &mut BTreeMap<String, TableVersions>, key: &str) {
    let e = vers.entry(key.to_string()).or_default();
    e.data += 1;
    // The immutable-rebuild discipline recomputes statistics with the
    // data, so registration brings them back in sync.
    e.stats = e.data;
}

/// Reconstruct a live table from its persisted parts. Key declarations
/// are stored as column ordinals; the builder wants names, so resolve
/// through the schema.
fn rebuild_table(snap: &TableSnap) -> Result<Arc<Table>> {
    let name_of = |i: usize| -> Result<String> {
        if i >= snap.schema.len() {
            return Err(AggViewError::Corrupt {
                offset: 0,
                record: 0,
                message: format!(
                    "table `{}` key references column {i} beyond arity {}",
                    snap.name,
                    snap.schema.len()
                ),
            });
        }
        Ok(snap.schema.field(i).name.clone())
    };
    let mut b = Table::builder(snap.name.clone(), snap.schema.clone());
    if let Some(pk) = &snap.primary_key {
        let names = pk
            .cols
            .iter()
            .map(|&i| name_of(i))
            .collect::<Result<Vec<_>>>()?;
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b = b.primary_key(&refs)?;
    }
    for fk in &snap.foreign_keys {
        let names = fk
            .cols
            .iter()
            .map(|&i| name_of(i))
            .collect::<Result<Vec<_>>>()?;
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b = b.foreign_key(&refs, &fk.parent, &fk.parent_cols)?;
    }
    for row in &snap.rows {
        b.push(row.clone())?;
    }
    b.build()
}

/// Start a builder with the same name, schema, and key declarations as
/// `old` (no rows) — the first half of every immutable-table rebuild.
fn builder_like(old: &Table) -> Result<crate::table::TableBuilder> {
    let mut b = Table::builder(old.name(), old.schema().clone());
    if let Some(pk) = old.primary_key() {
        let names: Vec<String> = pk
            .cols
            .iter()
            .map(|&i| old.schema().field(i).name.clone())
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b = b.primary_key(&refs)?;
    }
    for fk in old.foreign_keys() {
        let names: Vec<String> = fk
            .cols
            .iter()
            .map(|&i| old.schema().field(i).name.clone())
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b = b.foreign_key(&refs, &fk.parent, &fk.parent_cols)?;
    }
    Ok(b)
}

/// Positional DML operates on strictly increasing, in-bounds row
/// positions: that is what makes the WAL's positional records replay
/// deterministically (and lets the rebuild walk old rows once).
fn check_positions(name: &str, indices: &[usize], len: usize) -> Result<()> {
    for (k, &i) in indices.iter().enumerate() {
        if i >= len {
            return Err(AggViewError::Catalog(format!(
                "row position {i} out of bounds for `{name}` ({len} rows)"
            )));
        }
        if k > 0 && indices[k - 1] >= i {
            return Err(AggViewError::Catalog(format!(
                "row positions for `{name}` must be strictly increasing"
            )));
        }
    }
    Ok(())
}

impl Catalog {
    /// A purely in-memory catalog: no directory, no WAL, zero IO.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Open (or create) a durable catalog rooted at `dir`, recovering
    /// any previously committed state.
    pub fn open(dir: impl AsRef<Path>) -> Result<Catalog> {
        Catalog::open_with_faults(dir, Arc::new(NoFaults))
    }

    /// [`Catalog::open`] with a fault injector consulted at every
    /// durability IO site (`wal.append`, `snapshot.rename`, ...).
    /// Recovery itself reads without injection — the injector shapes
    /// *future* writes.
    pub fn open_with_faults(
        dir: impl AsRef<Path>,
        faults: Arc<dyn FaultInjector>,
    ) -> Result<Catalog> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| AggViewError::Io(format!("create catalog directory: {e}")))?;
        let snap = Snapshot::read(&dir)?.unwrap_or_default();
        let cat = Catalog::new();
        {
            let mut tables = cat.tables.write();
            for t in &snap.tables {
                tables.insert(t.name.to_ascii_lowercase(), rebuild_table(t)?);
            }
            let mut vers = cat.versions.write();
            for (name, data, stats) in &snap.versions {
                vers.insert(
                    name.clone(),
                    TableVersions {
                        data: *data,
                        stats: *stats,
                    },
                );
            }
            let mut mvs = cat.matviews.write();
            for m in &snap.matviews {
                mvs.insert(m.def.name.to_ascii_lowercase(), m.clone());
            }
        }
        let wal_path = dir.join(WAL_FILE);
        let contents = WalReader::read_committed(&wal_path)?;
        cat.replay(&snap, &contents)?;
        cat.reverify_matviews();
        let min_next_lsn = if snap.any_covered {
            snap.last_lsn + 1
        } else {
            0
        };
        let wal = WalWriter::open(&wal_path, &contents, min_next_lsn)?;
        Ok(Catalog {
            durable: Some(Durable {
                dir,
                wal: Mutex::new(wal),
                faults: RwLock::new(faults),
            }),
            ..cat
        })
    }

    fn replay(&self, snap: &Snapshot, contents: &WalContents) -> Result<()> {
        for (i, (lsn, rec)) in contents.records.iter().enumerate() {
            if snap.covers(*lsn) {
                // The snapshot already reflects this record — the crash
                // landed between its rename and the WAL truncation.
                continue;
            }
            self.apply(rec).map_err(|e| {
                // A committed record that cannot re-apply means log and
                // state disagree — corruption, not a user error.
                let offset = if i == 0 {
                    crate::wal::WAL_MAGIC.len() as u64
                } else {
                    contents.frame_ends[i - 1]
                };
                AggViewError::Corrupt {
                    offset,
                    record: i as u64,
                    message: format!("WAL replay failed: {}", e.message()),
                }
            })?;
        }
        Ok(())
    }

    /// Apply one WAL record to in-memory state (the non-logging path
    /// used by replay). Mirrors the public mutators exactly, so replay
    /// reproduces the same tables, statistics, and version counters.
    fn apply(&self, rec: &WalRecord) -> Result<()> {
        match rec {
            WalRecord::PutTable {
                name,
                schema,
                primary_key,
                foreign_keys,
                rows,
                replace,
            } => {
                let table = rebuild_table(&TableSnap {
                    name: name.clone(),
                    schema: schema.clone(),
                    primary_key: primary_key.clone(),
                    foreign_keys: foreign_keys.clone(),
                    rows: rows.clone(),
                })?;
                let key = name.to_ascii_lowercase();
                let mut map = self.tables.write();
                if !replace && map.contains_key(&key) {
                    return Err(AggViewError::Catalog(format!(
                        "table `{name}` already exists"
                    )));
                }
                map.insert(key.clone(), table);
                bump_entry(&mut self.versions.write(), &key);
            }
            WalRecord::InsertBatch { table, rows } => {
                self.append_rows_impl(table, rows.clone(), false)?;
            }
            WalRecord::MarkModified { table } => {
                self.versions
                    .write()
                    .entry(table.to_ascii_lowercase())
                    .or_default()
                    .data += 1;
            }
            WalRecord::PutMatView { meta } => {
                self.matviews
                    .write()
                    .insert(meta.def.name.to_ascii_lowercase(), meta.clone());
            }
            WalRecord::DeleteBatch { table, indices } => {
                self.delete_rows_impl(table, indices, false)?;
            }
            WalRecord::UpdateBatch {
                table,
                indices,
                rows,
            } => {
                self.update_rows_impl(table, indices, rows, false)?;
            }
        }
        Ok(())
    }

    /// Append one record to the WAL, if this catalog is durable. The
    /// closure defers record construction (and its row cloning) so the
    /// in-memory path pays nothing.
    fn log_with(&self, make: impl FnOnce() -> WalRecord) -> Result<()> {
        if let Some(d) = &self.durable {
            let faults = d.faults.read().clone();
            d.wal.lock().append(&make(), faults.as_ref())?;
        }
        Ok(())
    }

    /// True when this catalog persists its mutations.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The durable directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.dir.as_path())
    }

    /// Swap the fault injector consulted at durability IO sites.
    /// Returns `false` (and does nothing) on an in-memory catalog.
    pub fn set_io_faults(&self, faults: Arc<dyn FaultInjector>) -> bool {
        match &self.durable {
            Some(d) => {
                *d.faults.write() = faults;
                true
            }
            None => false,
        }
    }

    /// Register a table; rejects duplicates.
    pub fn add(&self, table: Arc<Table>) -> Result<()> {
        let key = table.name().to_ascii_lowercase();
        let mut map = self.tables.write();
        if map.contains_key(&key) {
            return Err(AggViewError::Catalog(format!(
                "table `{}` already exists",
                table.name()
            )));
        }
        let mut vers = self.versions.write();
        self.log_with(|| WalRecord::put_table(&table, false))?;
        map.insert(key.clone(), table);
        bump_entry(&mut vers, &key);
        Ok(())
    }

    /// Register a table, replacing any existing one with the same name.
    ///
    /// On an in-memory catalog this cannot fail; on a durable one the
    /// write-ahead append can, in which case the in-memory state is
    /// untouched (the mutation did not commit).
    pub fn add_or_replace(&self, table: Arc<Table>) -> Result<()> {
        let key = table.name().to_ascii_lowercase();
        let mut map = self.tables.write();
        let mut vers = self.versions.write();
        self.log_with(|| WalRecord::put_table(&table, true))?;
        map.insert(key.clone(), table);
        bump_entry(&mut vers, &key);
        Ok(())
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| AggViewError::Catalog(format!("unknown table `{name}`")))
    }

    /// True if a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.read().is_empty()
    }

    // ---- modification counters -------------------------------------

    /// Current data version of a table (0 when never registered).
    pub fn data_version(&self, name: &str) -> u64 {
        self.versions
            .read()
            .get(&name.to_ascii_lowercase())
            .map_or(0, |v| v.data)
    }

    /// Data version the table's statistics were computed from.
    pub fn stats_version(&self, name: &str) -> u64 {
        self.versions
            .read()
            .get(&name.to_ascii_lowercase())
            .map_or(0, |v| v.stats)
    }

    /// True when the table's statistics match its data version. The cost
    /// model debug-asserts this before trusting `ColumnStats`.
    pub fn stats_fresh(&self, name: &str) -> bool {
        self.versions
            .read()
            .get(&name.to_ascii_lowercase())
            .is_none_or(|v| v.stats == v.data)
    }

    /// Record an out-of-band data modification without re-analyzed stats
    /// (marks the table's statistics stale until it is re-registered).
    pub fn mark_modified(&self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut vers = self.versions.write();
        self.log_with(|| WalRecord::MarkModified { table: key.clone() })?;
        vers.entry(key).or_default().data += 1;
        Ok(())
    }

    /// The table's statistics, stamped with the version they were
    /// computed from so downstream consumers can verify freshness.
    pub fn stats_of(&self, name: &str) -> Result<TableStats> {
        let t = self.get(name)?;
        let mut stats = t.stats().clone();
        stats.version = self.stats_version(name);
        Ok(stats)
    }

    /// Append rows to a table, preserving its schema and key declarations.
    ///
    /// The immutable-table discipline means "append" rebuilds the table
    /// (re-validating primary-key uniqueness and re-analyzing statistics)
    /// and swaps it into the catalog, bumping the data version. Callers
    /// maintaining materialized views use the returned previous row count
    /// to locate the delta.
    ///
    /// The tables write lock is held across the read-rebuild-swap, so
    /// concurrent appends to the same table serialize and neither batch
    /// is lost (readers block for the rebuild's duration). On a durable
    /// catalog the batch is validated *before* it is logged: a batch
    /// that fails validation (arity, type, duplicate key) produces no
    /// WAL record at all.
    pub fn append_rows(&self, name: &str, rows: Vec<Tuple>) -> Result<usize> {
        self.append_rows_impl(name, rows, true)
    }

    fn append_rows_impl(&self, name: &str, rows: Vec<Tuple>, log: bool) -> Result<usize> {
        let key = name.to_ascii_lowercase();
        let mut map = self.tables.write();
        let old = map
            .get(&key)
            .cloned()
            .ok_or_else(|| AggViewError::Catalog(format!("unknown table `{name}`")))?;
        let prev_len = old.len();
        let mut b = builder_like(&old)?;
        for row in old.rows() {
            b.push(row.clone())?;
        }
        let logged_rows = if log && self.durable.is_some() {
            Some(rows.clone())
        } else {
            None
        };
        for row in rows {
            b.push(row)?;
        }
        let table = b.build()?;
        let mut vers = self.versions.write();
        if let Some(batch) = logged_rows {
            self.log_with(|| WalRecord::InsertBatch {
                table: key.clone(),
                rows: batch,
            })?;
        }
        map.insert(key.clone(), table);
        bump_entry(&mut vers, &key);
        Ok(prev_len)
    }

    /// Remove the rows at the given positions (which must be strictly
    /// increasing and in bounds), returning the removed rows in position
    /// order. Callers maintaining materialized views turn the result
    /// into the negative half of a Z-set delta.
    ///
    /// Same discipline as [`append_rows`](Catalog::append_rows): the
    /// table is rebuilt without the victims (re-analyzing statistics),
    /// logged positionally (tables are immutable ordered row vectors,
    /// so positions replay deterministically), swapped in, and the data
    /// version bumped — all under the tables write lock.
    pub fn delete_rows(&self, name: &str, indices: &[usize]) -> Result<Vec<Tuple>> {
        self.delete_rows_impl(name, indices, true)
    }

    fn delete_rows_impl(&self, name: &str, indices: &[usize], log: bool) -> Result<Vec<Tuple>> {
        let key = name.to_ascii_lowercase();
        let mut map = self.tables.write();
        let old = map
            .get(&key)
            .cloned()
            .ok_or_else(|| AggViewError::Catalog(format!("unknown table `{name}`")))?;
        check_positions(name, indices, old.len())?;
        if indices.is_empty() {
            return Ok(Vec::new());
        }
        let mut b = builder_like(&old)?;
        let mut removed = Vec::with_capacity(indices.len());
        let mut next = indices.iter().copied().peekable();
        for (i, row) in old.rows().iter().enumerate() {
            if next.peek() == Some(&i) {
                next.next();
                removed.push(row.clone());
            } else {
                b.push(row.clone())?;
            }
        }
        let table = b.build()?;
        let mut vers = self.versions.write();
        if log {
            self.log_with(|| WalRecord::DeleteBatch {
                table: key.clone(),
                indices: indices.to_vec(),
            })?;
        }
        map.insert(key.clone(), table);
        bump_entry(&mut vers, &key);
        Ok(removed)
    }

    /// Replace the rows at the given positions (strictly increasing, in
    /// bounds) with `rows[i]`, returning `(old, new)` pairs in position
    /// order. The pairs become a Z-set delta: `-old ⊕ +new` per row.
    ///
    /// The rebuild re-validates primary-key uniqueness over the whole
    /// table, so an update that would collide two keys fails atomically
    /// with nothing logged or applied.
    pub fn update_rows(
        &self,
        name: &str,
        indices: &[usize],
        rows: Vec<Tuple>,
    ) -> Result<Vec<(Tuple, Tuple)>> {
        self.update_rows_impl(name, indices, &rows, true)
    }

    fn update_rows_impl(
        &self,
        name: &str,
        indices: &[usize],
        rows: &[Tuple],
        log: bool,
    ) -> Result<Vec<(Tuple, Tuple)>> {
        let key = name.to_ascii_lowercase();
        let mut map = self.tables.write();
        let old = map
            .get(&key)
            .cloned()
            .ok_or_else(|| AggViewError::Catalog(format!("unknown table `{name}`")))?;
        check_positions(name, indices, old.len())?;
        if indices.len() != rows.len() {
            return Err(AggViewError::Catalog(format!(
                "update of `{name}`: {} positions but {} replacement rows",
                indices.len(),
                rows.len()
            )));
        }
        if indices.is_empty() {
            return Ok(Vec::new());
        }
        let mut b = builder_like(&old)?;
        let mut pairs = Vec::with_capacity(indices.len());
        let mut next = indices.iter().copied().enumerate().peekable();
        for (i, row) in old.rows().iter().enumerate() {
            match next.peek() {
                Some(&(k, pos)) if pos == i => {
                    next.next();
                    b.push(rows[k].clone())?;
                    pairs.push((row.clone(), rows[k].clone()));
                }
                _ => b.push(row.clone())?,
            }
        }
        let table = b.build()?;
        let mut vers = self.versions.write();
        if log {
            self.log_with(|| WalRecord::UpdateBatch {
                table: key.clone(),
                indices: indices.to_vec(),
                rows: rows.to_vec(),
            })?;
        }
        map.insert(key.clone(), table);
        bump_entry(&mut vers, &key);
        Ok(pairs)
    }

    // ---- materialized views ----------------------------------------

    /// Register a materialized view's metadata; rejects duplicates.
    pub fn register_matview(&self, meta: MatViewMeta) -> Result<()> {
        let key = meta.def.name.to_ascii_lowercase();
        let mut map = self.matviews.write();
        if map.contains_key(&key) {
            return Err(AggViewError::Catalog(format!(
                "materialized view `{}` already exists",
                meta.def.name
            )));
        }
        self.log_with(|| WalRecord::PutMatView { meta: meta.clone() })?;
        map.insert(key, meta);
        Ok(())
    }

    /// Replace a materialized view's metadata (after refresh/maintenance).
    pub fn update_matview(&self, meta: MatViewMeta) -> Result<()> {
        let key = meta.def.name.to_ascii_lowercase();
        let mut map = self.matviews.write();
        self.log_with(|| WalRecord::PutMatView { meta: meta.clone() })?;
        map.insert(key, meta);
        Ok(())
    }

    /// Metadata for one materialized view.
    pub fn matview(&self, name: &str) -> Option<MatViewMeta> {
        self.matviews
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
    }

    /// Names of all materialized views, sorted.
    pub fn matview_names(&self) -> Vec<String> {
        self.matviews.read().keys().cloned().collect()
    }

    /// All materialized views whose body reads `table`.
    pub fn matviews_on(&self, table: &str) -> Vec<MatViewMeta> {
        self.matviews
            .read()
            .values()
            .filter(|m| m.def.tables.iter().any(|t| t.eq_ignore_ascii_case(table)))
            .cloned()
            .collect()
    }

    /// Quarantine every materialized view whose structure cannot be
    /// re-verified against the current tables: a missing base table, a
    /// missing extent table, or an extent whose arity disagrees with
    /// the definition's layout. Returns the quarantined names.
    ///
    /// Recovery runs this after replay. The direction is deliberately
    /// one-way: a view can be demoted to (unconditionally) stale, never
    /// promoted — freshness only ever comes from comparing the recorded
    /// base versions, which recovery restored exactly.
    pub fn reverify_matviews(&self) -> Vec<String> {
        let tables = self.tables.read();
        let mut mvs = self.matviews.write();
        let mut quarantined = Vec::new();
        for (name, meta) in mvs.iter_mut() {
            if meta.is_quarantined() {
                continue;
            }
            let bases_ok = meta
                .def
                .tables
                .iter()
                .all(|t| tables.contains_key(&t.to_ascii_lowercase()));
            let extent_ok = tables
                .get(&meta.extent.to_ascii_lowercase())
                .is_some_and(|t| t.schema().len() == meta.layout.width);
            if !bases_ok || !extent_ok {
                meta.quarantine();
                quarantined.push(name.clone());
            }
        }
        quarantined
    }

    // ---- durability ------------------------------------------------

    /// Fold all committed state into a fresh snapshot and truncate the
    /// WAL. Errors on an in-memory catalog.
    ///
    /// The snapshot is written atomically (temp + fsync + rename)
    /// *before* the WAL is truncated, so a crash anywhere inside the
    /// checkpoint loses nothing: recovery uses the surviving snapshot
    /// and skips any WAL records it already covers (by LSN).
    pub fn checkpoint(&self) -> Result<()> {
        let d = self.durable.as_ref().ok_or_else(|| {
            AggViewError::Catalog("checkpoint requires a durable catalog (Catalog::open)".into())
        })?;
        let tables = self.tables.read();
        let vers = self.versions.read();
        let mvs = self.matviews.read();
        let mut wal = d.wal.lock();
        let next = wal.next_lsn();
        let snap = Snapshot {
            last_lsn: next.saturating_sub(1),
            any_covered: next > 0,
            tables: tables
                .values()
                .map(|t| TableSnap {
                    name: t.name().to_string(),
                    schema: t.schema().clone(),
                    primary_key: t.primary_key().cloned(),
                    foreign_keys: t.foreign_keys().to_vec(),
                    rows: t.rows().to_vec(),
                })
                .collect(),
            versions: vers
                .iter()
                .map(|(k, v)| (k.clone(), v.data, v.stats))
                .collect(),
            matviews: mvs.values().cloned().collect(),
        };
        let faults = d.faults.read().clone();
        snap.write(&d.dir, faults.as_ref())?;
        wal.truncate_all(faults.as_ref())?;
        Ok(())
    }

    /// Copy every table and materialized view from `src` into this
    /// catalog (used to seed a freshly opened durable directory from an
    /// in-memory session). Version lineage starts over; a view that was
    /// fresh in `src` has its base versions re-anchored to the new
    /// counters, and one that was stale arrives quarantined — seeding
    /// never launders staleness.
    pub fn import_from(&self, src: &Catalog) -> Result<()> {
        for name in src.table_names() {
            self.add_or_replace(src.get(&name)?)?;
        }
        for vname in src.matview_names() {
            let Some(mut meta) = src.matview(&vname) else {
                continue;
            };
            if meta.is_stale(src) {
                meta.quarantine();
            } else {
                meta.base_versions = meta
                    .def
                    .tables
                    .iter()
                    .map(|t| self.data_version(t))
                    .collect();
            }
            self.update_matview(meta)?;
        }
        Ok(())
    }

    /// A deterministic, human-readable dump of the complete catalog
    /// state: every table (schema, keys, rows), every version counter,
    /// every materialized view. Two catalogs with equal dumps are
    /// equal for durability purposes — the recovery tests compare dumps
    /// of recovered and reference catalogs.
    pub fn describe_state(&self) -> String {
        let tables = self.tables.read();
        let vers = self.versions.read();
        let mvs = self.matviews.read();
        let mut out = String::new();
        for (key, t) in tables.iter() {
            let cols: Vec<String> = t
                .schema()
                .fields()
                .iter()
                .map(|f| format!("{}:{}", f.name, f.ty))
                .collect();
            let _ = writeln!(
                out,
                "table {key} name={} schema=[{}] pk={:?} fks={:?}",
                t.name(),
                cols.join(","),
                t.primary_key().map(|pk| pk.cols.clone()),
                t.foreign_keys()
                    .iter()
                    .map(|fk| format!("{:?}->{}{:?}", fk.cols, fk.parent, fk.parent_cols))
                    .collect::<Vec<_>>(),
            );
            for row in t.rows() {
                let _ = writeln!(out, "  row {row}");
            }
        }
        for (k, v) in vers.iter() {
            let _ = writeln!(out, "version {k} data={} stats={}", v.data, v.stats);
        }
        for (k, m) in mvs.iter() {
            let _ = writeln!(
                out,
                "matview {k} extent={} tables={:?} base_versions={:?}",
                m.extent, m.def.tables, m.base_versions
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::{tuple, DataType, Schema};

    fn table(name: &str) -> Arc<Table> {
        Table::builder(name, Schema::of(&[("a", DataType::Int)]))
            .build()
            .unwrap()
    }

    #[test]
    fn add_get_case_insensitive() {
        let c = Catalog::new();
        c.add(table("Emp")).unwrap();
        assert!(c.contains("EMP"));
        assert_eq!(c.get("emp").unwrap().name(), "Emp");
        assert_eq!(c.len(), 1);
        assert!(!c.is_durable());
        assert!(c.dir().is_none());
    }

    #[test]
    fn duplicate_rejected() {
        let c = Catalog::new();
        c.add(table("t")).unwrap();
        let err = c.add(table("T")).unwrap_err();
        assert_eq!(err.kind(), "catalog");
    }

    #[test]
    fn add_or_replace_overwrites() {
        let c = Catalog::new();
        c.add(table("t")).unwrap();
        c.add_or_replace(table("t")).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn unknown_lookup_errors() {
        let c = Catalog::new();
        assert!(c.get("ghost").is_err());
        assert!(c.is_empty());
    }

    #[test]
    fn table_names_sorted() {
        let c = Catalog::new();
        c.add(table("zeta")).unwrap();
        c.add(table("alpha")).unwrap();
        assert_eq!(c.table_names(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn versions_track_registration_and_modification() {
        let c = Catalog::new();
        assert_eq!(c.data_version("t"), 0);
        c.add(table("t")).unwrap();
        assert_eq!(c.data_version("t"), 1);
        assert!(c.stats_fresh("t"));
        c.mark_modified("t").unwrap();
        assert_eq!(c.data_version("t"), 2);
        assert!(!c.stats_fresh("t"));
        c.add_or_replace(table("t")).unwrap();
        assert_eq!(c.data_version("t"), 3);
        assert!(c.stats_fresh("t"));
        assert_eq!(c.stats_of("t").unwrap().version, 3);
    }

    #[test]
    fn append_rows_preserves_keys_and_reanalyzes() {
        let c = Catalog::new();
        let t = Table::builder(
            "k",
            Schema::of(&[("id", DataType::Int), ("v", DataType::Int)]),
        )
        .primary_key(&["id"])
        .unwrap()
        .row(vec![1i64.into(), 10i64.into()])
        .unwrap()
        .build()
        .unwrap();
        c.add(t).unwrap();
        let prev = c.append_rows("k", vec![tuple![2i64, 20i64]]).unwrap();
        assert_eq!(prev, 1);
        let t2 = c.get("k").unwrap();
        assert_eq!(t2.len(), 2);
        assert_eq!(t2.stats().rows, 2);
        assert!(t2.primary_key().is_some());
        assert!(c.stats_fresh("k"));
        // Duplicate primary key in the delta is rejected.
        assert!(c.append_rows("k", vec![tuple![1i64, 99i64]]).is_err());
        assert!(c.append_rows("ghost", vec![]).is_err());
    }

    #[test]
    fn concurrent_appends_lose_no_rows() {
        let c = Arc::new(Catalog::new());
        c.add(table("t")).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || c.append_rows("t", vec![tuple![i as i64]]).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get("t").unwrap().len(), 8);
        assert_eq!(c.data_version("t"), 9);
        assert!(c.stats_fresh("t"));
    }

    #[test]
    fn delete_rows_removes_and_returns_victims() {
        let c = Catalog::new();
        c.add(table("t")).unwrap();
        c.append_rows("t", vec![tuple![1i64], tuple![2i64], tuple![3i64]])
            .unwrap();
        let removed = c.delete_rows("t", &[0, 2]).unwrap();
        assert_eq!(removed, vec![tuple![1i64], tuple![3i64]]);
        let t = c.get("t").unwrap();
        assert_eq!(t.rows(), &[tuple![2i64]]);
        assert_eq!(t.stats().rows, 1);
        assert!(c.stats_fresh("t"));
        assert_eq!(c.data_version("t"), 3);
        // Empty delete is a no-op that bumps nothing.
        assert!(c.delete_rows("t", &[]).unwrap().is_empty());
        assert_eq!(c.data_version("t"), 3);
        // Out-of-bounds and unsorted position lists are rejected.
        assert!(c.delete_rows("t", &[5]).is_err());
        assert!(c.delete_rows("ghost", &[0]).is_err());
        let c2 = Catalog::new();
        c2.add(table("u")).unwrap();
        c2.append_rows("u", vec![tuple![1i64], tuple![2i64]])
            .unwrap();
        assert!(c2.delete_rows("u", &[1, 0]).is_err());
        assert!(c2.delete_rows("u", &[0, 0]).is_err());
    }

    #[test]
    fn update_rows_replaces_in_place_and_reports_pairs() {
        let c = Catalog::new();
        let t = Table::builder(
            "k",
            Schema::of(&[("id", DataType::Int), ("v", DataType::Int)]),
        )
        .primary_key(&["id"])
        .unwrap()
        .row(vec![1i64.into(), 10i64.into()])
        .unwrap()
        .row(vec![2i64.into(), 20i64.into()])
        .unwrap()
        .build()
        .unwrap();
        c.add(t).unwrap();
        let pairs = c.update_rows("k", &[1], vec![tuple![2i64, 25i64]]).unwrap();
        assert_eq!(pairs, vec![(tuple![2i64, 20i64], tuple![2i64, 25i64])]);
        assert_eq!(
            c.get("k").unwrap().rows(),
            &[tuple![1i64, 10i64], tuple![2i64, 25i64]]
        );
        assert_eq!(c.data_version("k"), 2);
        // A primary-key collision fails atomically: nothing applied.
        assert!(c.update_rows("k", &[1], vec![tuple![1i64, 99i64]]).is_err());
        assert_eq!(c.data_version("k"), 2);
        assert_eq!(
            c.get("k").unwrap().rows(),
            &[tuple![1i64, 10i64], tuple![2i64, 25i64]]
        );
        // Arity mismatch between positions and rows is rejected.
        assert!(c
            .update_rows("k", &[0, 1], vec![tuple![3i64, 1i64]])
            .is_err());
    }

    #[test]
    fn checkpoint_and_io_faults_require_durable() {
        let c = Catalog::new();
        assert_eq!(c.checkpoint().unwrap_err().kind(), "catalog");
        assert!(!c.set_io_faults(Arc::new(NoFaults)));
    }

    #[test]
    fn describe_state_distinguishes_content() {
        let a = Catalog::new();
        let b = Catalog::new();
        a.add(table("t")).unwrap();
        b.add(table("t")).unwrap();
        assert_eq!(a.describe_state(), b.describe_state());
        b.append_rows("t", vec![tuple![5i64]]).unwrap();
        assert_ne!(a.describe_state(), b.describe_state());
    }
}
