//! The table catalog.

use crate::matview::MatViewMeta;
use crate::stats::TableStats;
use crate::table::Table;
use aggview_common::{AggViewError, Result, Tuple};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-table modification bookkeeping.
///
/// `data` increments on every registration or data change; `stats` records
/// the data version the table's statistics were computed from. The two
/// stay equal under the normal immutable-rebuild discipline (rebuilding a
/// table re-runs `analyze`), so `stats != data` flags a logic error where
/// statistics would silently go stale — the cost model debug-asserts on
/// it via [`Catalog::stats_fresh`].
#[derive(Debug, Clone, Copy, Default)]
struct TableVersions {
    data: u64,
    stats: u64,
}

/// A concurrent name → table registry.
///
/// Names are case-insensitive (normalized to lowercase), matching SQL
/// identifier behaviour. Lookups hand out `Arc<Table>` so executors and
/// optimizers can hold tables without locking.
///
/// Beyond plain tables the catalog also tracks per-table modification
/// counters (the staleness basis for statistics and materialized views)
/// and the registry of [`MatViewMeta`] entries describing materialized
/// aggregate-view extents.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
    versions: RwLock<BTreeMap<String, TableVersions>>,
    matviews: RwLock<BTreeMap<String, MatViewMeta>>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table; rejects duplicates.
    pub fn add(&self, table: Arc<Table>) -> Result<()> {
        let key = table.name().to_ascii_lowercase();
        let mut map = self.tables.write();
        if map.contains_key(&key) {
            return Err(AggViewError::Catalog(format!(
                "table `{}` already exists",
                table.name()
            )));
        }
        map.insert(key.clone(), table);
        drop(map);
        self.bump(&key);
        Ok(())
    }

    /// Register a table, replacing any existing one with the same name.
    pub fn add_or_replace(&self, table: Arc<Table>) {
        let key = table.name().to_ascii_lowercase();
        self.tables.write().insert(key.clone(), table);
        self.bump(&key);
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| AggViewError::Catalog(format!("unknown table `{name}`")))
    }

    /// True if a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.read().is_empty()
    }

    // ---- modification counters -------------------------------------

    fn bump(&self, key: &str) {
        let mut v = self.versions.write();
        let e = v.entry(key.to_string()).or_default();
        e.data += 1;
        // The immutable-rebuild discipline recomputes statistics with the
        // data, so registration brings them back in sync.
        e.stats = e.data;
    }

    /// Current data version of a table (0 when never registered).
    pub fn data_version(&self, name: &str) -> u64 {
        self.versions
            .read()
            .get(&name.to_ascii_lowercase())
            .map_or(0, |v| v.data)
    }

    /// Data version the table's statistics were computed from.
    pub fn stats_version(&self, name: &str) -> u64 {
        self.versions
            .read()
            .get(&name.to_ascii_lowercase())
            .map_or(0, |v| v.stats)
    }

    /// True when the table's statistics match its data version. The cost
    /// model debug-asserts this before trusting `ColumnStats`.
    pub fn stats_fresh(&self, name: &str) -> bool {
        self.versions
            .read()
            .get(&name.to_ascii_lowercase())
            .is_none_or(|v| v.stats == v.data)
    }

    /// Record an out-of-band data modification without re-analyzed stats
    /// (marks the table's statistics stale until it is re-registered).
    pub fn mark_modified(&self, name: &str) {
        let mut v = self.versions.write();
        v.entry(name.to_ascii_lowercase()).or_default().data += 1;
    }

    /// The table's statistics, stamped with the version they were
    /// computed from so downstream consumers can verify freshness.
    pub fn stats_of(&self, name: &str) -> Result<TableStats> {
        let t = self.get(name)?;
        let mut stats = t.stats().clone();
        stats.version = self.stats_version(name);
        Ok(stats)
    }

    /// Append rows to a table, preserving its schema and key declarations.
    ///
    /// The immutable-table discipline means "append" rebuilds the table
    /// (re-validating primary-key uniqueness and re-analyzing statistics)
    /// and swaps it into the catalog, bumping the data version. Callers
    /// maintaining materialized views use the returned previous row count
    /// to locate the delta.
    ///
    /// The tables write lock is held across the read-rebuild-swap, so
    /// concurrent appends to the same table serialize and neither batch
    /// is lost (readers block for the rebuild's duration).
    pub fn append_rows(&self, name: &str, rows: Vec<Tuple>) -> Result<usize> {
        let key = name.to_ascii_lowercase();
        let mut map = self.tables.write();
        let old = map
            .get(&key)
            .cloned()
            .ok_or_else(|| AggViewError::Catalog(format!("unknown table `{name}`")))?;
        let prev_len = old.len();
        let mut b = Table::builder(old.name(), old.schema().clone());
        if let Some(pk) = old.primary_key() {
            let names: Vec<String> = pk
                .cols
                .iter()
                .map(|&i| old.schema().field(i).name.clone())
                .collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            b = b.primary_key(&refs)?;
        }
        for fk in old.foreign_keys() {
            let names: Vec<String> = fk
                .cols
                .iter()
                .map(|&i| old.schema().field(i).name.clone())
                .collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            b = b.foreign_key(&refs, &fk.parent, &fk.parent_cols)?;
        }
        for row in old.rows() {
            b.push(row.clone())?;
        }
        for row in rows {
            b.push(row)?;
        }
        let table = b.build()?;
        map.insert(key.clone(), table);
        drop(map);
        self.bump(&key);
        Ok(prev_len)
    }

    // ---- materialized views ----------------------------------------

    /// Register a materialized view's metadata; rejects duplicates.
    pub fn register_matview(&self, meta: MatViewMeta) -> Result<()> {
        let key = meta.def.name.to_ascii_lowercase();
        let mut map = self.matviews.write();
        if map.contains_key(&key) {
            return Err(AggViewError::Catalog(format!(
                "materialized view `{}` already exists",
                meta.def.name
            )));
        }
        map.insert(key, meta);
        Ok(())
    }

    /// Replace a materialized view's metadata (after refresh/maintenance).
    pub fn update_matview(&self, meta: MatViewMeta) {
        let key = meta.def.name.to_ascii_lowercase();
        self.matviews.write().insert(key, meta);
    }

    /// Metadata for one materialized view.
    pub fn matview(&self, name: &str) -> Option<MatViewMeta> {
        self.matviews
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
    }

    /// Names of all materialized views, sorted.
    pub fn matview_names(&self) -> Vec<String> {
        self.matviews.read().keys().cloned().collect()
    }

    /// All materialized views whose body reads `table`.
    pub fn matviews_on(&self, table: &str) -> Vec<MatViewMeta> {
        self.matviews
            .read()
            .values()
            .filter(|m| m.def.tables.iter().any(|t| t.eq_ignore_ascii_case(table)))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::{tuple, DataType, Schema};

    fn table(name: &str) -> Arc<Table> {
        Table::builder(name, Schema::of(&[("a", DataType::Int)]))
            .build()
            .unwrap()
    }

    #[test]
    fn add_get_case_insensitive() {
        let c = Catalog::new();
        c.add(table("Emp")).unwrap();
        assert!(c.contains("EMP"));
        assert_eq!(c.get("emp").unwrap().name(), "Emp");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn duplicate_rejected() {
        let c = Catalog::new();
        c.add(table("t")).unwrap();
        let err = c.add(table("T")).unwrap_err();
        assert_eq!(err.kind(), "catalog");
    }

    #[test]
    fn add_or_replace_overwrites() {
        let c = Catalog::new();
        c.add(table("t")).unwrap();
        c.add_or_replace(table("t"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn unknown_lookup_errors() {
        let c = Catalog::new();
        assert!(c.get("ghost").is_err());
        assert!(c.is_empty());
    }

    #[test]
    fn table_names_sorted() {
        let c = Catalog::new();
        c.add(table("zeta")).unwrap();
        c.add(table("alpha")).unwrap();
        assert_eq!(c.table_names(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn versions_track_registration_and_modification() {
        let c = Catalog::new();
        assert_eq!(c.data_version("t"), 0);
        c.add(table("t")).unwrap();
        assert_eq!(c.data_version("t"), 1);
        assert!(c.stats_fresh("t"));
        c.mark_modified("t");
        assert_eq!(c.data_version("t"), 2);
        assert!(!c.stats_fresh("t"));
        c.add_or_replace(table("t"));
        assert_eq!(c.data_version("t"), 3);
        assert!(c.stats_fresh("t"));
        assert_eq!(c.stats_of("t").unwrap().version, 3);
    }

    #[test]
    fn append_rows_preserves_keys_and_reanalyzes() {
        let c = Catalog::new();
        let t = Table::builder(
            "k",
            Schema::of(&[("id", DataType::Int), ("v", DataType::Int)]),
        )
        .primary_key(&["id"])
        .unwrap()
        .row(vec![1i64.into(), 10i64.into()])
        .unwrap()
        .build()
        .unwrap();
        c.add(t).unwrap();
        let prev = c.append_rows("k", vec![tuple![2i64, 20i64]]).unwrap();
        assert_eq!(prev, 1);
        let t2 = c.get("k").unwrap();
        assert_eq!(t2.len(), 2);
        assert_eq!(t2.stats().rows, 2);
        assert!(t2.primary_key().is_some());
        assert!(c.stats_fresh("k"));
        // Duplicate primary key in the delta is rejected.
        assert!(c.append_rows("k", vec![tuple![1i64, 99i64]]).is_err());
        assert!(c.append_rows("ghost", vec![]).is_err());
    }

    #[test]
    fn concurrent_appends_lose_no_rows() {
        let c = Arc::new(Catalog::new());
        c.add(table("t")).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || c.append_rows("t", vec![tuple![i as i64]]).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get("t").unwrap().len(), 8);
        assert_eq!(c.data_version("t"), 9);
        assert!(c.stats_fresh("t"));
    }
}
