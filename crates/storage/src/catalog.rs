//! The table catalog.

use crate::table::Table;
use aggview_common::{AggViewError, Result};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A concurrent name → table registry.
///
/// Names are case-insensitive (normalized to lowercase), matching SQL
/// identifier behaviour. Lookups hand out `Arc<Table>` so executors and
/// optimizers can hold tables without locking.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table; rejects duplicates.
    pub fn add(&self, table: Arc<Table>) -> Result<()> {
        let key = table.name().to_ascii_lowercase();
        let mut map = self.tables.write();
        if map.contains_key(&key) {
            return Err(AggViewError::Catalog(format!(
                "table `{}` already exists",
                table.name()
            )));
        }
        map.insert(key, table);
        Ok(())
    }

    /// Register a table, replacing any existing one with the same name.
    pub fn add_or_replace(&self, table: Arc<Table>) {
        let key = table.name().to_ascii_lowercase();
        self.tables.write().insert(key, table);
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| AggViewError::Catalog(format!("unknown table `{name}`")))
    }

    /// True if a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::{DataType, Schema};

    fn table(name: &str) -> Arc<Table> {
        Table::builder(name, Schema::of(&[("a", DataType::Int)]))
            .build()
            .unwrap()
    }

    #[test]
    fn add_get_case_insensitive() {
        let c = Catalog::new();
        c.add(table("Emp")).unwrap();
        assert!(c.contains("EMP"));
        assert_eq!(c.get("emp").unwrap().name(), "Emp");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn duplicate_rejected() {
        let c = Catalog::new();
        c.add(table("t")).unwrap();
        let err = c.add(table("T")).unwrap_err();
        assert_eq!(err.kind(), "catalog");
    }

    #[test]
    fn add_or_replace_overwrites() {
        let c = Catalog::new();
        c.add(table("t")).unwrap();
        c.add_or_replace(table("t"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn unknown_lookup_errors() {
        let c = Catalog::new();
        assert!(c.get("ghost").is_err());
        assert!(c.is_empty());
    }

    #[test]
    fn table_names_sorted() {
        let c = Catalog::new();
        c.add(table("zeta")).unwrap();
        c.add(table("alpha")).unwrap();
        assert_eq!(c.table_names(), vec!["alpha", "zeta"]);
    }
}
