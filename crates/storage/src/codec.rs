//! Binary encoding for durable state (WAL records and snapshots).
//!
//! The workspace carries no serialization dependency, so this module
//! hand-rolls a little-endian, length-prefixed codec for exactly the
//! types the durability layer persists: scalar values, tuples, schemas,
//! key declarations, and materialized-view definitions (whose bodies
//! are expression trees over [`Col`]s). Integers are fixed-width —
//! simple beats compact at these data sizes — and every variable-length
//! field carries an explicit `u32` length, so a decoder can never read
//! past a corrupted boundary silently.
//!
//! Decode failures surface as [`AggViewError::Corrupt`] with the byte
//! offset *within the buffer being decoded*; the WAL/snapshot readers
//! re-base that offset to the absolute file position and fill in the
//! record index. Framing integrity (CRC) is the caller's job — the
//! codec only validates structure.

use crate::keys::{ForeignKey, PrimaryKey};
use crate::matview::{ExtentLayout, MatViewDef, MatViewMeta};
use aggview_common::{
    AggFunc, AggSpec, AggViewError, BinaryOp, CmpOp, Col, ColRef, DataType, Expr, Field, Predicate,
    RelId, Result, Schema, Tuple, Value, ViewId,
};
use aggview_common::{AggRef, PartRef};

/// CRC-32 (IEEE 802.3, reflected) over a byte slice — the checksum used
/// by WAL record frames and snapshot bodies.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Byte-buffer writer. Infallible: encoding valid in-memory state
/// cannot fail.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn usizes(&mut self, v: &[usize]) {
        self.u32(v.len() as u32);
        for &i in v {
            self.u64(i as u64);
        }
    }
}

/// Byte-buffer reader tracking its position for corruption reports.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Byte offset of the next read within the buffer.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    pub fn corrupt(&self, message: impl Into<String>) -> AggViewError {
        AggViewError::Corrupt {
            offset: self.pos as u64,
            record: 0,
            message: message.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.corrupt(format!("{n}-byte field overruns the buffer")))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("string is not UTF-8"))
    }

    /// Length prefix for a repeated field, sanity-bounded so a corrupt
    /// count cannot trigger a huge allocation.
    pub fn len(&mut self, what: &str) -> Result<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(self.corrupt(format!("{what} count {n} exceeds remaining bytes")));
        }
        Ok(n)
    }

    pub fn usizes(&mut self) -> Result<Vec<usize>> {
        let n = self.len("index list")?;
        (0..n).map(|_| Ok(self.u64()? as usize)).collect()
    }
}

// ---- scalar values and tuples ---------------------------------------

pub fn enc_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Int(i) => {
            e.u8(0);
            e.i64(*i);
        }
        Value::Float(f) => {
            e.u8(1);
            e.f64(*f);
        }
        Value::Str(s) => {
            e.u8(2);
            e.str(s);
        }
        Value::Bool(b) => {
            e.u8(3);
            e.u8(*b as u8);
        }
    }
}

pub fn dec_value(d: &mut Dec) -> Result<Value> {
    Ok(match d.u8()? {
        0 => Value::Int(d.i64()?),
        1 => Value::Float(d.f64()?),
        2 => Value::str(d.str()?),
        3 => Value::Bool(d.u8()? != 0),
        t => return Err(d.corrupt(format!("unknown value tag {t}"))),
    })
}

pub fn enc_tuple(e: &mut Enc, t: &Tuple) {
    e.u32(t.arity() as u32);
    for v in t.values() {
        enc_value(e, v);
    }
}

pub fn dec_tuple(d: &mut Dec) -> Result<Tuple> {
    let n = d.len("tuple arity")?;
    let vals = (0..n).map(|_| dec_value(d)).collect::<Result<Vec<_>>>()?;
    Ok(Tuple::new(vals))
}

pub fn enc_rows(e: &mut Enc, rows: &[Tuple]) {
    e.u32(rows.len() as u32);
    for r in rows {
        enc_tuple(e, r);
    }
}

pub fn dec_rows(d: &mut Dec) -> Result<Vec<Tuple>> {
    let n = d.len("row count")?;
    (0..n).map(|_| dec_tuple(d)).collect()
}

// ---- schemas ---------------------------------------------------------

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
    }
}

fn dec_dtype(d: &mut Dec) -> Result<DataType> {
    Ok(match d.u8()? {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bool,
        t => return Err(d.corrupt(format!("unknown data-type tag {t}"))),
    })
}

pub fn enc_schema(e: &mut Enc, s: &Schema) {
    e.u32(s.len() as u32);
    for f in s.fields() {
        e.str(&f.name);
        e.u8(dtype_tag(f.ty));
    }
}

pub fn dec_schema(d: &mut Dec) -> Result<Schema> {
    let n = d.len("schema field")?;
    let fields = (0..n)
        .map(|_| {
            let name = d.str()?;
            let ty = dec_dtype(d)?;
            Ok(Field::new(name, ty))
        })
        .collect::<Result<Vec<_>>>()?;
    Schema::new(fields).map_err(|e| d.corrupt(format!("invalid schema: {}", e.message())))
}

// ---- expression trees (materialized-view bodies) ----------------------

fn enc_col(e: &mut Enc, c: Col) {
    match c {
        Col::Base(ColRef { rel, col }) => {
            e.u8(0);
            e.u32(rel.0);
            e.u32(col);
        }
        Col::Agg(a) => {
            e.u8(1);
            enc_aggref(e, a);
        }
        Col::Part(p) => {
            e.u8(2);
            enc_aggref(e, p.agg);
            e.u32(p.part);
        }
    }
}

fn enc_aggref(e: &mut Enc, a: AggRef) {
    match a.owner {
        ViewId::View(i) => {
            e.u8(0);
            e.u32(i);
        }
        ViewId::Top => e.u8(1),
    }
    e.u32(a.idx);
}

fn dec_aggref(d: &mut Dec) -> Result<AggRef> {
    let owner = match d.u8()? {
        0 => ViewId::View(d.u32()?),
        1 => ViewId::Top,
        t => return Err(d.corrupt(format!("unknown view-id tag {t}"))),
    };
    Ok(AggRef::new(owner, d.u32()? as usize))
}

fn dec_col(d: &mut Dec) -> Result<Col> {
    Ok(match d.u8()? {
        0 => {
            let rel = RelId(d.u32()?);
            Col::Base(ColRef::new(rel, d.u32()? as usize))
        }
        1 => Col::Agg(dec_aggref(d)?),
        2 => {
            let agg = dec_aggref(d)?;
            Col::Part(PartRef {
                agg,
                part: d.u32()?,
            })
        }
        t => return Err(d.corrupt(format!("unknown column tag {t}"))),
    })
}

fn binop_tag(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::Add => 0,
        BinaryOp::Sub => 1,
        BinaryOp::Mul => 2,
        BinaryOp::Div => 3,
    }
}

fn dec_binop(d: &mut Dec) -> Result<BinaryOp> {
    Ok(match d.u8()? {
        0 => BinaryOp::Add,
        1 => BinaryOp::Sub,
        2 => BinaryOp::Mul,
        3 => BinaryOp::Div,
        t => return Err(d.corrupt(format!("unknown binary-op tag {t}"))),
    })
}

pub fn enc_expr(e: &mut Enc, x: &Expr) {
    match x {
        Expr::Col(c) => {
            e.u8(0);
            enc_col(e, *c);
        }
        Expr::Const(v) => {
            e.u8(1);
            enc_value(e, v);
        }
        Expr::Binary { op, left, right } => {
            e.u8(2);
            e.u8(binop_tag(*op));
            enc_expr(e, left);
            enc_expr(e, right);
        }
    }
}

pub fn dec_expr(d: &mut Dec) -> Result<Expr> {
    Ok(match d.u8()? {
        0 => Expr::Col(dec_col(d)?),
        1 => Expr::Const(dec_value(d)?),
        2 => {
            let op = dec_binop(d)?;
            let left = dec_expr(d)?;
            let right = dec_expr(d)?;
            left.binary(op, right)
        }
        t => return Err(d.corrupt(format!("unknown expression tag {t}"))),
    })
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn dec_cmp(d: &mut Dec) -> Result<CmpOp> {
    Ok(match d.u8()? {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        t => return Err(d.corrupt(format!("unknown comparison tag {t}"))),
    })
}

pub fn enc_predicate(e: &mut Enc, p: &Predicate) {
    enc_expr(e, &p.left);
    e.u8(cmp_tag(p.op));
    enc_expr(e, &p.right);
}

pub fn dec_predicate(d: &mut Dec) -> Result<Predicate> {
    let left = dec_expr(d)?;
    let op = dec_cmp(d)?;
    let right = dec_expr(d)?;
    Ok(Predicate::new(left, op, right))
}

fn aggfunc_tag(f: AggFunc) -> u8 {
    match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Avg => 4,
        AggFunc::StdDev => 5,
    }
}

fn dec_aggfunc(d: &mut Dec) -> Result<AggFunc> {
    Ok(match d.u8()? {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Min,
        3 => AggFunc::Max,
        4 => AggFunc::Avg,
        5 => AggFunc::StdDev,
        t => return Err(d.corrupt(format!("unknown aggregate tag {t}"))),
    })
}

pub fn enc_aggspec(e: &mut Enc, a: &AggSpec) {
    e.u8(aggfunc_tag(a.func));
    match &a.arg {
        Some(x) => {
            e.u8(1);
            enc_expr(e, x);
        }
        None => e.u8(0),
    }
}

pub fn dec_aggspec(d: &mut Dec) -> Result<AggSpec> {
    let func = dec_aggfunc(d)?;
    let arg = match d.u8()? {
        0 => None,
        1 => Some(dec_expr(d)?),
        t => return Err(d.corrupt(format!("unknown option tag {t}"))),
    };
    Ok(AggSpec { func, arg })
}

// ---- key declarations -------------------------------------------------

pub fn enc_primary_key(e: &mut Enc, pk: &Option<PrimaryKey>) {
    match pk {
        Some(k) => {
            e.u8(1);
            e.usizes(&k.cols);
        }
        None => e.u8(0),
    }
}

pub fn dec_primary_key(d: &mut Dec) -> Result<Option<PrimaryKey>> {
    Ok(match d.u8()? {
        0 => None,
        1 => {
            let cols = d.usizes()?;
            if cols.is_empty() {
                return Err(d.corrupt("primary key with zero columns"));
            }
            Some(PrimaryKey::new(cols))
        }
        t => return Err(d.corrupt(format!("unknown option tag {t}"))),
    })
}

pub fn enc_foreign_keys(e: &mut Enc, fks: &[ForeignKey]) {
    e.u32(fks.len() as u32);
    for fk in fks {
        e.usizes(&fk.cols);
        e.str(&fk.parent);
        e.usizes(&fk.parent_cols);
    }
}

pub fn dec_foreign_keys(d: &mut Dec) -> Result<Vec<ForeignKey>> {
    let n = d.len("foreign key")?;
    (0..n)
        .map(|_| {
            let cols = d.usizes()?;
            let parent = d.str()?;
            let parent_cols = d.usizes()?;
            if cols.is_empty() || cols.len() != parent_cols.len() {
                return Err(d.corrupt("foreign key column lists are malformed"));
            }
            Ok(ForeignKey::new(cols, parent, parent_cols))
        })
        .collect()
}

// ---- materialized-view metadata ---------------------------------------

fn enc_strs(e: &mut Enc, v: &[String]) {
    e.u32(v.len() as u32);
    for s in v {
        e.str(s);
    }
}

fn dec_strs(d: &mut Dec, what: &str) -> Result<Vec<String>> {
    let n = d.len(what)?;
    (0..n).map(|_| d.str()).collect()
}

pub fn enc_matview_def(e: &mut Enc, def: &MatViewDef) {
    e.str(&def.name);
    enc_strs(e, &def.tables);
    e.u32(def.preds.len() as u32);
    for p in &def.preds {
        enc_predicate(e, p);
    }
    e.u32(def.group_cols.len() as u32);
    for &c in &def.group_cols {
        enc_col(e, c);
    }
    e.u32(def.aggs.len() as u32);
    for a in &def.aggs {
        enc_aggspec(e, a);
    }
    enc_strs(e, &def.column_names);
}

pub fn dec_matview_def(d: &mut Dec) -> Result<MatViewDef> {
    let name = d.str()?;
    let tables = dec_strs(d, "view table")?;
    let n = d.len("view predicate")?;
    let preds = (0..n).map(|_| dec_predicate(d)).collect::<Result<_>>()?;
    let n = d.len("view group column")?;
    let group_cols = (0..n).map(|_| dec_col(d)).collect::<Result<_>>()?;
    let n = d.len("view aggregate")?;
    let aggs = (0..n).map(|_| dec_aggspec(d)).collect::<Result<_>>()?;
    let column_names = dec_strs(d, "view column name")?;
    let def = MatViewDef {
        name,
        tables,
        preds,
        group_cols,
        aggs,
        column_names,
    };
    def.validate()
        .map_err(|e| d.corrupt(format!("invalid view definition: {}", e.message())))?;
    Ok(def)
}

/// Encode a view's catalog metadata. The [`ExtentLayout`] is *not*
/// serialized: it is a pure function of the definition and is recomputed
/// on decode, so a snapshot can never carry a layout that disagrees with
/// its own definition.
pub fn enc_matview_meta(e: &mut Enc, meta: &MatViewMeta) {
    enc_matview_def(e, &meta.def);
    e.str(&meta.extent);
    e.u32(meta.base_versions.len() as u32);
    for &v in &meta.base_versions {
        e.u64(v);
    }
}

pub fn dec_matview_meta(d: &mut Dec) -> Result<MatViewMeta> {
    let def = dec_matview_def(d)?;
    let extent = d.str()?;
    let n = d.len("base version")?;
    let base_versions = (0..n).map(|_| d.u64()).collect::<Result<Vec<_>>>()?;
    if base_versions.len() != def.tables.len() {
        return Err(d.corrupt(format!(
            "view `{}` records {} base versions for {} tables",
            def.name,
            base_versions.len(),
            def.tables.len()
        )));
    }
    let layout = ExtentLayout::of(&def);
    Ok(MatViewMeta {
        def,
        extent,
        layout,
        base_versions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: PartialEq + std::fmt::Debug>(
        v: &T,
        enc: impl Fn(&mut Enc, &T),
        dec: impl Fn(&mut Dec) -> Result<T>,
    ) {
        let mut e = Enc::new();
        enc(&mut e, v);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = dec(&mut d).unwrap();
        assert_eq!(&back, v);
        assert!(d.is_done(), "decoder must consume every byte for {v:?}");
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn values_round_trip() {
        for v in [
            Value::Int(-42),
            Value::Float(2.5),
            Value::Float(f64::NEG_INFINITY),
            Value::str("héllo"),
            Value::str(""),
            Value::Bool(true),
        ] {
            round_trip(&v, enc_value, dec_value);
        }
    }

    #[test]
    fn tuples_and_schemas_round_trip() {
        let t = Tuple::new(vec![Value::Int(1), Value::str("x"), Value::Float(0.5)]);
        round_trip(&t, enc_tuple, dec_tuple);
        let s = Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("ok", DataType::Bool),
            ("w", DataType::Float),
        ]);
        round_trip(&s, enc_schema, dec_schema);
    }

    #[test]
    fn expressions_and_predicates_round_trip() {
        let x = Expr::col(Col::base(RelId(3), 2)).binary(
            BinaryOp::Mul,
            Expr::val(Value::Float(1.5)).binary(BinaryOp::Add, Expr::col(Col::agg(ViewId::Top, 1))),
        );
        round_trip(&x, enc_expr, dec_expr);
        let p = Predicate::new(
            x.clone(),
            CmpOp::Ge,
            Expr::col(Col::part(AggRef::new(ViewId::View(2), 0), 1)),
        );
        round_trip(&p, enc_predicate, dec_predicate);
        round_trip(&AggSpec::count_star(), enc_aggspec, dec_aggspec);
        round_trip(
            &AggSpec::new(AggFunc::StdDev, Expr::col(Col::base(RelId(0), 4))),
            enc_aggspec,
            dec_aggspec,
        );
    }

    #[test]
    fn truncated_buffers_report_corruption_not_panic() {
        let mut e = Enc::new();
        enc_tuple(
            &mut e,
            &Tuple::new(vec![Value::str("abcdef"), Value::Int(1)]),
        );
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let err = dec_tuple(&mut Dec::new(&bytes[..cut])).unwrap_err();
            assert_eq!(err.kind(), "corrupt", "cut at {cut}");
        }
    }

    #[test]
    fn bogus_tags_and_counts_are_corruption() {
        let err = dec_value(&mut Dec::new(&[9])).unwrap_err();
        assert!(err.message().contains("unknown value tag"));
        // A row count far larger than the buffer is rejected before
        // any allocation.
        let mut e = Enc::new();
        e.u32(u32::MAX);
        let err = dec_rows(&mut Dec::new(&e.into_bytes())).unwrap_err();
        assert!(err.message().contains("exceeds remaining"));
        // Non-UTF-8 string bytes.
        let mut e = Enc::new();
        e.u32(2);
        e.u8(0xFF);
        e.u8(0xFE);
        let err = Dec::new(&e.into_bytes()).str().unwrap_err();
        assert!(err.message().contains("UTF-8"));
    }

    #[test]
    fn usize_lists_round_trip() {
        let mut e = Enc::new();
        e.usizes(&[0, 7, 42]);
        let bytes = e.into_bytes();
        assert_eq!(Dec::new(&bytes).usizes().unwrap(), vec![0, 7, 42]);
    }

    #[test]
    fn keys_round_trip() {
        round_trip(&None, enc_primary_key, dec_primary_key);
        round_trip(
            &Some(PrimaryKey::new(vec![0, 2])),
            enc_primary_key,
            dec_primary_key,
        );
        let fks = vec![
            ForeignKey::new(vec![1], "dept", vec![0]),
            ForeignKey::new(vec![2, 3], "proj", vec![0, 1]),
        ];
        round_trip(&fks, |e, v| enc_foreign_keys(e, v), dec_foreign_keys);
    }

    fn sample_def() -> MatViewDef {
        MatViewDef {
            name: "a1".into(),
            tables: vec!["emp".into(), "dept".into()],
            preds: vec![Predicate::new(
                Expr::col(Col::base(RelId(0), 1)),
                CmpOp::Eq,
                Expr::col(Col::base(RelId(1), 0)),
            )],
            group_cols: vec![Col::base(RelId(0), 1)],
            aggs: vec![
                AggSpec::new(AggFunc::Avg, Expr::col(Col::base(RelId(0), 2))),
                AggSpec::count_star(),
            ],
            column_names: vec!["dno".into(), "asal".into(), "n".into()],
        }
    }

    #[test]
    fn matview_def_and_meta_round_trip() {
        let def = sample_def();
        round_trip(&def, enc_matview_def, dec_matview_def);
        let meta = MatViewMeta {
            layout: ExtentLayout::of(&def),
            extent: MatViewMeta::extent_name(&def.name),
            base_versions: vec![3, 1],
            def,
        };
        round_trip(&meta, enc_matview_meta, dec_matview_meta);
    }

    #[test]
    fn matview_meta_layout_is_recomputed_and_versions_checked() {
        let def = sample_def();
        let meta = MatViewMeta {
            layout: ExtentLayout::of(&def),
            extent: "__mv_a1".into(),
            // Wrong arity: 2 tables but 1 version.
            base_versions: vec![3],
            def,
        };
        let mut e = Enc::new();
        enc_matview_meta(&mut e, &meta);
        let bytes = e.into_bytes();
        let err = dec_matview_meta(&mut Dec::new(&bytes)).unwrap_err();
        assert_eq!(err.kind(), "corrupt");
        assert!(err.message().contains("base versions"), "{err}");
    }

    #[test]
    fn invalid_decoded_view_definition_is_corruption() {
        let mut def = sample_def();
        def.column_names.pop(); // arity now wrong
        let mut e = Enc::new();
        enc_matview_def(&mut e, &def);
        let bytes = e.into_bytes();
        let err = dec_matview_def(&mut Dec::new(&bytes)).unwrap_err();
        assert_eq!(err.kind(), "corrupt");
        assert!(err.message().contains("invalid view definition"), "{err}");
    }
}
