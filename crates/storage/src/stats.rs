//! Table and column statistics.
//!
//! The optimizer's cardinality estimation (selection selectivity, join
//! selectivity via distinct counts, group-by output cardinality) reads
//! these statistics. They are computed exactly from the in-memory data by
//! [`analyze`] — a luxury a disk-based system doesn't have, but the right
//! choice for a reproduction: estimation error is then a controlled,
//! measurable quantity (experiment E9) rather than noise.

use aggview_common::{CmpOp, Tuple, Value};
use serde::Serialize;
use std::collections::HashSet;

/// Statistics for one column.
#[derive(Debug, Clone, Serialize)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub distinct: u64,
    /// Minimum value as f64, for numeric columns.
    pub min: Option<f64>,
    /// Maximum value as f64, for numeric columns.
    pub max: Option<f64>,
    /// Average stored width in bytes.
    pub avg_width: f64,
    /// Equi-depth histogram over numeric values.
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Estimated selectivity of `col op constant`.
    ///
    /// Equality uses `1/distinct` (uniformity); ranges use the histogram
    /// when present, falling back to linear interpolation over
    /// `[min, max]`, falling back to System-R constants.
    pub fn selectivity(&self, op: CmpOp, constant: &Value) -> f64 {
        match op {
            CmpOp::Eq => {
                if self.distinct == 0 {
                    0.0
                } else {
                    1.0 / self.distinct as f64
                }
            }
            CmpOp::Ne => {
                if self.distinct == 0 {
                    0.0
                } else {
                    1.0 - 1.0 / self.distinct as f64
                }
            }
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                let c = match constant.as_f64() {
                    Some(c) => c,
                    None => return op.default_selectivity(),
                };
                let frac_below = if let Some(h) = &self.histogram {
                    h.fraction_below(c)
                } else if let (Some(mn), Some(mx)) = (self.min, self.max) {
                    if mx > mn {
                        ((c - mn) / (mx - mn)).clamp(0.0, 1.0)
                    } else if c >= mn {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    return op.default_selectivity();
                };
                let sel = match op {
                    CmpOp::Lt | CmpOp::Le => frac_below,
                    _ => 1.0 - frac_below,
                };
                // Half-open vs closed intervals differ by at most one
                // distinct value's worth of mass.
                let eps = if self.distinct > 0 {
                    1.0 / self.distinct as f64
                } else {
                    0.0
                };
                match op {
                    CmpOp::Le | CmpOp::Ge => (sel + eps).clamp(0.0, 1.0),
                    _ => sel.clamp(0.0, 1.0),
                }
            }
        }
    }
}

/// Equi-depth histogram: `bounds` are bucket upper edges; each bucket
/// holds (approximately) the same number of rows.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    /// Lower edge of the first bucket.
    pub lo: f64,
    /// Upper edges of each bucket, ascending.
    pub bounds: Vec<f64>,
}

impl Histogram {
    /// Build an equi-depth histogram with up to `buckets` buckets from
    /// numeric samples. Returns `None` for empty input.
    pub fn equi_depth(mut samples: Vec<f64>, buckets: usize) -> Option<Histogram> {
        if samples.is_empty() || buckets == 0 {
            return None;
        }
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        let lo = samples[0];
        let mut bounds = Vec::with_capacity(buckets);
        for b in 1..=buckets {
            let idx = (b * n / buckets).saturating_sub(1).min(n - 1);
            bounds.push(samples[idx]);
        }
        bounds.dedup_by(|a, b| a == b);
        Some(Histogram { lo, bounds })
    }

    /// Fraction of rows with value `< c` (approximately).
    pub fn fraction_below(&self, c: f64) -> f64 {
        if c <= self.lo {
            return 0.0;
        }
        let nb = self.bounds.len() as f64;
        let mut prev = self.lo;
        for (i, &hi) in self.bounds.iter().enumerate() {
            if c <= hi {
                let within = if hi > prev {
                    (c - prev) / (hi - prev)
                } else {
                    1.0
                };
                return ((i as f64 + within) / nb).clamp(0.0, 1.0);
            }
            prev = hi;
        }
        1.0
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, Serialize)]
pub struct TableStats {
    /// Row count.
    pub rows: u64,
    /// Average row width in bytes.
    pub row_width: f64,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
    /// Catalog data version these statistics were computed from; stamped
    /// by [`crate::Catalog::stats_of`] (0 for stats not yet registered).
    /// Consumers compare it against `Catalog::data_version` to detect
    /// silently stale statistics.
    pub version: u64,
}

impl TableStats {
    /// Stats for an empty table of `ncols` columns.
    pub fn empty(ncols: usize) -> TableStats {
        TableStats {
            rows: 0,
            row_width: 0.0,
            version: 0,
            columns: (0..ncols)
                .map(|_| ColumnStats {
                    distinct: 0,
                    min: None,
                    max: None,
                    avg_width: 0.0,
                    histogram: None,
                })
                .collect(),
        }
    }
}

/// Number of histogram buckets built per numeric column.
pub const HISTOGRAM_BUCKETS: usize = 128;

/// Compute exact statistics over `rows` of arity `ncols`.
pub fn analyze(rows: &[Tuple], ncols: usize) -> TableStats {
    if rows.is_empty() {
        return TableStats::empty(ncols);
    }
    let mut columns = Vec::with_capacity(ncols);
    let mut total_width = 0usize;
    for c in 0..ncols {
        let mut distinct: HashSet<&Value> = HashSet::new();
        let mut min: Option<f64> = None;
        let mut max: Option<f64> = None;
        let mut width = 0usize;
        let mut numerics: Vec<f64> = Vec::new();
        let mut all_numeric = true;
        for row in rows {
            let v = row.get(c);
            distinct.insert(v);
            width += v.width();
            match v.as_f64() {
                Some(x) => {
                    numerics.push(x);
                    min = Some(min.map_or(x, |m| m.min(x)));
                    max = Some(max.map_or(x, |m| m.max(x)));
                }
                None => all_numeric = false,
            }
        }
        total_width += width;
        let histogram = if all_numeric {
            Histogram::equi_depth(numerics, HISTOGRAM_BUCKETS)
        } else {
            None
        };
        columns.push(ColumnStats {
            distinct: distinct.len() as u64,
            min: if all_numeric { min } else { None },
            max: if all_numeric { max } else { None },
            avg_width: width as f64 / rows.len() as f64,
            histogram,
        });
    }
    TableStats {
        rows: rows.len() as u64,
        row_width: total_width as f64 / rows.len() as f64,
        columns,
        version: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::tuple;

    fn rows() -> Vec<Tuple> {
        (0..100)
            .map(|i| tuple![i as i64 % 10, i as f64, "abcd"])
            .collect()
    }

    #[test]
    fn analyze_counts_distincts_and_widths() {
        let s = analyze(&rows(), 3);
        assert_eq!(s.rows, 100);
        assert_eq!(s.columns[0].distinct, 10);
        assert_eq!(s.columns[1].distinct, 100);
        assert_eq!(s.columns[2].distinct, 1);
        assert_eq!(s.columns[2].avg_width, 4.0);
        assert_eq!(s.row_width, 8.0 + 8.0 + 4.0);
        assert_eq!(s.columns[1].min, Some(0.0));
        assert_eq!(s.columns[1].max, Some(99.0));
    }

    #[test]
    fn string_columns_have_no_numeric_stats() {
        let s = analyze(&rows(), 3);
        assert!(s.columns[2].min.is_none());
        assert!(s.columns[2].histogram.is_none());
    }

    #[test]
    fn equality_selectivity_is_one_over_distinct() {
        let s = analyze(&rows(), 3);
        let sel = s.columns[0].selectivity(CmpOp::Eq, &Value::Int(3));
        assert!((sel - 0.1).abs() < 1e-12);
        let ne = s.columns[0].selectivity(CmpOp::Ne, &Value::Int(3));
        assert!((ne - 0.9).abs() < 1e-12);
    }

    #[test]
    fn range_selectivity_tracks_data_distribution() {
        let s = analyze(&rows(), 3);
        // col1 is uniform over 0..100, so `< 25` should be ~0.25.
        let sel = s.columns[1].selectivity(CmpOp::Lt, &Value::Float(25.0));
        assert!((sel - 0.25).abs() < 0.05, "sel = {sel}");
        let sel_hi = s.columns[1].selectivity(CmpOp::Gt, &Value::Float(75.0));
        assert!((sel_hi - 0.25).abs() < 0.05, "sel_hi = {sel_hi}");
    }

    #[test]
    fn histogram_handles_skew_better_than_interpolation() {
        // 90% of mass at 0..10, 10% spread to 1000.
        let mut vals: Vec<f64> = (0..90).map(|i| (i % 10) as f64).collect();
        vals.extend((0..10).map(|i| 100.0 + i as f64 * 90.0));
        let h = Histogram::equi_depth(vals, 16).unwrap();
        let below_10 = h.fraction_below(10.0);
        assert!(below_10 > 0.8, "histogram should see the skew: {below_10}");
    }

    #[test]
    fn fraction_below_is_monotone_and_bounded() {
        let h = Histogram::equi_depth((0..1000).map(|i| i as f64).collect(), 32).unwrap();
        let mut prev = 0.0;
        for c in [-5.0, 0.0, 10.0, 500.0, 999.0, 2000.0] {
            let f = h.fraction_below(c);
            assert!((0.0..=1.0).contains(&f));
            assert!(f >= prev, "monotonicity violated at {c}");
            prev = f;
        }
        assert_eq!(h.fraction_below(-5.0), 0.0);
        assert_eq!(h.fraction_below(2000.0), 1.0);
    }

    #[test]
    fn empty_input() {
        let s = analyze(&[], 2);
        assert_eq!(s.rows, 0);
        assert_eq!(s.columns.len(), 2);
        assert_eq!(s.columns[0].selectivity(CmpOp::Eq, &Value::Int(1)), 0.0);
        assert!(Histogram::equi_depth(vec![], 8).is_none());
    }

    #[test]
    fn constant_column_range_selectivity() {
        let rows: Vec<Tuple> = (0..10).map(|_| tuple![7i64]).collect();
        let s = analyze(&rows, 1);
        assert_eq!(s.columns[0].distinct, 1);
        let ge = s.columns[0].selectivity(CmpOp::Ge, &Value::Int(7));
        assert!(ge > 0.9, "all rows match: {ge}");
        let lt = s.columns[0].selectivity(CmpOp::Lt, &Value::Int(7));
        assert!(lt < 0.1, "no rows match: {lt}");
    }

    #[test]
    fn non_numeric_constant_falls_back_to_default() {
        let s = analyze(&rows(), 3);
        let sel = s.columns[1].selectivity(CmpOp::Lt, &Value::str("x"));
        assert_eq!(sel, CmpOp::Lt.default_selectivity());
    }
}
