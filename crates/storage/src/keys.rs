//! Key declarations.
//!
//! Keys are load-bearing in this system, not decoration:
//!
//! * The **pull-up transformation** (paper Definition 1) adds "a primary
//!   key of R2" to the deferred group-by's grouping columns — and may
//!   omit it when the join is a **foreign-key join** into R2.
//! * **Invariant grouping** (Section 4.1) is sound when each tuple of the
//!   grouped side matches at most one tuple of the other side, i.e. the
//!   join equates with a key.
//!
//! "In the absence of a declared primary key, the query engine can use
//! the internal tuple id as a key" — [`crate::Table`] exposes a synthetic
//! row-id column for exactly that case.

/// A primary key: a set of column ordinals whose values are unique.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimaryKey {
    /// Column ordinals forming the key (non-empty, duplicate-free).
    pub cols: Vec<usize>,
}

impl PrimaryKey {
    pub fn new(cols: Vec<usize>) -> PrimaryKey {
        assert!(!cols.is_empty(), "primary key needs at least one column");
        PrimaryKey { cols }
    }

    /// Single-column key.
    pub fn single(col: usize) -> PrimaryKey {
        PrimaryKey { cols: vec![col] }
    }
}

/// A foreign key: `cols` of the child table reference `parent_cols`
/// (a key) of `parent` table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column ordinals in the child table.
    pub cols: Vec<usize>,
    /// Name of the referenced (parent) table.
    pub parent: String,
    /// Referenced column ordinals in the parent table (its key).
    pub parent_cols: Vec<usize>,
}

impl ForeignKey {
    pub fn new(cols: Vec<usize>, parent: impl Into<String>, parent_cols: Vec<usize>) -> ForeignKey {
        assert_eq!(cols.len(), parent_cols.len(), "foreign key arity mismatch");
        assert!(!cols.is_empty(), "foreign key needs at least one column");
        ForeignKey {
            cols,
            parent: parent.into(),
            parent_cols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_column_key() {
        assert_eq!(PrimaryKey::single(2).cols, vec![2]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_primary_key_rejected() {
        PrimaryKey::new(vec![]);
    }

    #[test]
    fn foreign_key_holds_parent() {
        let fk = ForeignKey::new(vec![2], "dept", vec![0]);
        assert_eq!(fk.parent, "dept");
        assert_eq!(fk.parent_cols, vec![0]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn mismatched_fk_arity_rejected() {
        ForeignKey::new(vec![0, 1], "t", vec![0]);
    }
}
