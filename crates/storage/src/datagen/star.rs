//! A TPC-D-like decision-support star schema.
//!
//! The paper motivates its problem with TPC-D-style decision-support
//! queries. TPC-D data itself is not redistributable, so this generator
//! produces a structurally equivalent substitute: a fact table
//! (`lineitem`) with a chain of foreign keys through `orders` →
//! `customer` → `nation` → `region`, controlled fan-outs, and dimension
//! attributes with selective predicates. The optimizer's behaviour
//! depends only on this structure (cardinalities, keys, selectivities),
//! which the config controls precisely.

use crate::catalog::Catalog;
use crate::table::Table;
use aggview_common::{DataType, Result, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale configuration for the star schema.
#[derive(Debug, Clone)]
pub struct StarConfig {
    /// Number of customers; other cardinalities derive from it.
    pub customers: usize,
    /// Orders per customer (average).
    pub orders_per_customer: usize,
    /// Line items per order (average).
    pub lines_per_order: usize,
    /// Number of nations (regions fixed at 5).
    pub nations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StarConfig {
    fn default() -> Self {
        StarConfig {
            customers: 500,
            orders_per_customer: 5,
            lines_per_order: 4,
            nations: 25,
            seed: 7,
        }
    }
}

const REGIONS: [&str; 5] = ["africa", "america", "asia", "europe", "middle east"];
const SEGMENTS: [&str; 5] = [
    "automobile",
    "building",
    "furniture",
    "household",
    "machinery",
];
const STATUSES: [&str; 3] = ["open", "filled", "returned"];

/// Generate the five tables into a fresh catalog.
///
/// Schemas:
/// * `region(rno INT PK, rname STRING)`
/// * `nation(nno INT PK, rno INT FK, nname STRING)`
/// * `customer(cno INT PK, nno INT FK, cname STRING, segment STRING, acctbal FLOAT)`
/// * `orders(ono INT PK, cno INT FK, odate INT, status STRING, total FLOAT)`
/// * `lineitem(lno INT PK, ono INT FK, qty INT, price FLOAT, discount FLOAT)`
pub fn gen_star(cfg: &StarConfig) -> Result<Catalog> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let catalog = Catalog::new();

    let mut region = Table::builder(
        "region",
        Schema::of(&[("rno", DataType::Int), ("rname", DataType::Str)]),
    )
    .primary_key(&["rno"])?;
    for (i, name) in REGIONS.iter().enumerate() {
        region.push(vec![Value::Int(i as i64), Value::str(*name)].into())?;
    }
    catalog.add(region.build()?)?;

    let mut nation = Table::builder(
        "nation",
        Schema::of(&[
            ("nno", DataType::Int),
            ("rno", DataType::Int),
            ("nname", DataType::Str),
        ]),
    )
    .primary_key(&["nno"])?
    .foreign_key(&["rno"], "region", &[0])?;
    for n in 0..cfg.nations {
        nation.push(
            vec![
                Value::Int(n as i64),
                Value::Int((n % REGIONS.len()) as i64),
                Value::str(format!("nation{n}")),
            ]
            .into(),
        )?;
    }
    catalog.add(nation.build()?)?;

    let mut customer = Table::builder(
        "customer",
        Schema::of(&[
            ("cno", DataType::Int),
            ("nno", DataType::Int),
            ("cname", DataType::Str),
            ("segment", DataType::Str),
            ("acctbal", DataType::Float),
        ]),
    )
    .primary_key(&["cno"])?
    .foreign_key(&["nno"], "nation", &[0])?;
    for c in 0..cfg.customers {
        customer.push(
            vec![
                Value::Int(c as i64),
                Value::Int(rng.gen_range(0..cfg.nations) as i64),
                Value::str(format!("customer{c}")),
                Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
                Value::Float(rng.gen_range(-999.0..10_000.0)),
            ]
            .into(),
        )?;
    }
    catalog.add(customer.build()?)?;

    let mut orders = Table::builder(
        "orders",
        Schema::of(&[
            ("ono", DataType::Int),
            ("cno", DataType::Int),
            ("odate", DataType::Int),
            ("status", DataType::Str),
            ("total", DataType::Float),
        ]),
    )
    .primary_key(&["ono"])?
    .foreign_key(&["cno"], "customer", &[0])?;
    let n_orders = cfg.customers * cfg.orders_per_customer;
    for o in 0..n_orders {
        orders.push(
            vec![
                Value::Int(o as i64),
                Value::Int(rng.gen_range(0..cfg.customers) as i64),
                Value::Int(rng.gen_range(0..2557)), // ~7 years of days
                Value::str(STATUSES[rng.gen_range(0..STATUSES.len())]),
                Value::Float(rng.gen_range(100.0..500_000.0)),
            ]
            .into(),
        )?;
    }
    catalog.add(orders.build()?)?;

    let mut lineitem = Table::builder(
        "lineitem",
        Schema::of(&[
            ("lno", DataType::Int),
            ("ono", DataType::Int),
            ("qty", DataType::Int),
            ("price", DataType::Float),
            ("discount", DataType::Float),
        ]),
    )
    .primary_key(&["lno"])?
    .foreign_key(&["ono"], "orders", &[0])?;
    let n_lines = n_orders * cfg.lines_per_order;
    for l in 0..n_lines {
        lineitem.push(
            vec![
                Value::Int(l as i64),
                Value::Int(rng.gen_range(0..n_orders) as i64),
                Value::Int(rng.gen_range(1..51)),
                Value::Float(rng.gen_range(1.0..10_000.0)),
                Value::Float(rng.gen_range(0.0..0.1)),
            ]
            .into(),
        )?;
    }
    catalog.add(lineitem.build()?)?;

    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_scale_with_config() {
        let cfg = StarConfig {
            customers: 100,
            orders_per_customer: 3,
            lines_per_order: 2,
            ..Default::default()
        };
        let cat = gen_star(&cfg).unwrap();
        assert_eq!(cat.get("region").unwrap().len(), 5);
        assert_eq!(cat.get("nation").unwrap().len(), 25);
        assert_eq!(cat.get("customer").unwrap().len(), 100);
        assert_eq!(cat.get("orders").unwrap().len(), 300);
        assert_eq!(cat.get("lineitem").unwrap().len(), 600);
    }

    #[test]
    fn fk_chain_is_closed() {
        let cat = gen_star(&StarConfig {
            customers: 50,
            ..Default::default()
        })
        .unwrap();
        for (child, col, parent) in [
            ("nation", 1usize, "region"),
            ("customer", 1, "nation"),
            ("orders", 1, "customer"),
            ("lineitem", 1, "orders"),
        ] {
            let c = cat.get(child).unwrap();
            let p = cat.get(parent).unwrap();
            let keys: std::collections::HashSet<i64> = p
                .rows()
                .iter()
                .map(|r| r.get(0).as_i64().unwrap())
                .collect();
            assert!(
                c.rows()
                    .iter()
                    .all(|r| keys.contains(&r.get(col).as_i64().unwrap())),
                "{child} → {parent} broken"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = StarConfig::default();
        let a = gen_star(&cfg).unwrap();
        let b = gen_star(&cfg).unwrap();
        assert_eq!(
            a.get("lineitem").unwrap().rows()[..50],
            b.get("lineitem").unwrap().rows()[..50]
        );
    }

    #[test]
    fn dimension_attributes_are_selective() {
        let cat = gen_star(&StarConfig::default()).unwrap();
        let cust = cat.get("customer").unwrap();
        // segment has 5 distinct values → ~20% selectivity each.
        assert_eq!(cust.stats().columns[3].distinct, 5);
    }
}
