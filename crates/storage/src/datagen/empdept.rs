//! The paper's Emp/Dept running example, as a seeded generator.
//!
//! Example 1 of the paper ("employees below the age of 22 who earn more
//! than the average of the department salary") trades off two plan
//! families whose relative cost depends on:
//!
//! * how many departments there are (the size of the aggregate view), and
//! * how many employees pass the selective predicate (`age < 22`).
//!
//! "If there are many departments but few employees are younger than 22
//! years, then the query B may be more efficient ... if there are few
//! departments but many employees below 22 years old, then execution of
//! A1 and A2 may be significantly less expensive." The knobs below let
//! experiment E1 sweep exactly that grid.

use crate::catalog::Catalog;
use crate::table::Table;
use aggview_common::{DataType, Result, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the Emp/Dept generator.
#[derive(Debug, Clone)]
pub struct EmpDeptConfig {
    /// Number of departments.
    pub n_depts: usize,
    /// Employees per department (total emp rows = `n_depts * emps_per_dept`).
    pub emps_per_dept: usize,
    /// Fraction of employees with `age < 22` (the paper's selective
    /// predicate). Ages are drawn so this fraction holds exactly in
    /// expectation.
    pub young_fraction: f64,
    /// Fraction of departments with `budget < 1_000_000` (Example 2's
    /// predicate).
    pub low_budget_fraction: f64,
    /// RNG seed — all data is deterministic given the config.
    pub seed: u64,
}

impl Default for EmpDeptConfig {
    fn default() -> Self {
        EmpDeptConfig {
            n_depts: 100,
            emps_per_dept: 50,
            young_fraction: 0.1,
            low_budget_fraction: 0.3,
            seed: 42,
        }
    }
}

/// Generate `emp` and `dept` into a fresh catalog.
///
/// Schemas (column order matters to tests and examples):
///
/// * `dept(dno INT PK, dname STRING, budget FLOAT, loc STRING)`
/// * `emp(eno INT PK, name STRING, dno INT FK→dept, sal FLOAT, age INT)`
pub fn gen_empdept(cfg: &EmpDeptConfig) -> Result<Catalog> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let catalog = Catalog::new();

    let dept_schema = Schema::of(&[
        ("dno", DataType::Int),
        ("dname", DataType::Str),
        ("budget", DataType::Float),
        ("loc", DataType::Str),
    ]);
    let mut dept = Table::builder("dept", dept_schema).primary_key(&["dno"])?;
    for d in 0..cfg.n_depts {
        let budget = if rng.gen_bool(cfg.low_budget_fraction.clamp(0.0, 1.0)) {
            rng.gen_range(100_000.0..1_000_000.0)
        } else {
            rng.gen_range(1_000_000.0..10_000_000.0)
        };
        dept.push(
            vec![
                Value::Int(d as i64),
                Value::str(format!("dept{d}")),
                Value::Float(budget),
                Value::str(LOCS[d % LOCS.len()]),
            ]
            .into(),
        )?;
    }
    catalog.add(dept.build()?)?;

    let emp_schema = Schema::of(&[
        ("eno", DataType::Int),
        ("name", DataType::Str),
        ("dno", DataType::Int),
        ("sal", DataType::Float),
        ("age", DataType::Int),
    ]);
    let mut emp = Table::builder("emp", emp_schema)
        .primary_key(&["eno"])?
        .foreign_key(&["dno"], "dept", &[0])?;
    let mut eno = 0i64;
    for d in 0..cfg.n_depts {
        for _ in 0..cfg.emps_per_dept {
            let age = if rng.gen_bool(cfg.young_fraction.clamp(0.0, 1.0)) {
                rng.gen_range(18..22)
            } else {
                rng.gen_range(22..65)
            };
            let sal = rng.gen_range(30_000.0..200_000.0);
            emp.push(
                vec![
                    Value::Int(eno),
                    Value::str(format!("emp{eno}")),
                    Value::Int(d as i64),
                    Value::Float(sal),
                    Value::Int(age),
                ]
                .into(),
            )?;
            eno += 1;
        }
    }
    catalog.add(emp.build()?)?;
    Ok(catalog)
}

const LOCS: [&str; 8] = [
    "palo alto",
    "san jose",
    "almaden",
    "brighton",
    "santiago",
    "zurich",
    "houston",
    "vancouver",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_declared_cardinalities() {
        let cfg = EmpDeptConfig {
            n_depts: 20,
            emps_per_dept: 5,
            ..Default::default()
        };
        let cat = gen_empdept(&cfg).unwrap();
        assert_eq!(cat.get("dept").unwrap().len(), 20);
        assert_eq!(cat.get("emp").unwrap().len(), 100);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = EmpDeptConfig::default();
        let a = gen_empdept(&cfg).unwrap();
        let b = gen_empdept(&cfg).unwrap();
        assert_eq!(a.get("emp").unwrap().rows(), b.get("emp").unwrap().rows());
    }

    #[test]
    fn young_fraction_is_respected() {
        let cfg = EmpDeptConfig {
            n_depts: 50,
            emps_per_dept: 100,
            young_fraction: 0.2,
            ..Default::default()
        };
        let cat = gen_empdept(&cfg).unwrap();
        let emp = cat.get("emp").unwrap();
        let young = emp
            .rows()
            .iter()
            .filter(|r| r.get(4).as_i64().unwrap() < 22)
            .count();
        let frac = young as f64 / emp.len() as f64;
        assert!((frac - 0.2).abs() < 0.03, "young fraction {frac}");
    }

    #[test]
    fn referential_integrity_holds() {
        let cat = gen_empdept(&EmpDeptConfig::default()).unwrap();
        let emp = cat.get("emp").unwrap();
        let dept = cat.get("dept").unwrap();
        let dnos: std::collections::HashSet<i64> = dept
            .rows()
            .iter()
            .map(|r| r.get(0).as_i64().unwrap())
            .collect();
        assert!(emp
            .rows()
            .iter()
            .all(|r| dnos.contains(&r.get(2).as_i64().unwrap())));
    }

    #[test]
    fn keys_are_declared() {
        let cat = gen_empdept(&EmpDeptConfig::default()).unwrap();
        let emp = cat.get("emp").unwrap();
        assert_eq!(emp.primary_key().unwrap().cols, vec![0]);
        assert_eq!(emp.foreign_keys()[0].parent, "dept");
        assert!(cat.get("dept").unwrap().primary_key().is_some());
    }

    #[test]
    fn stats_reflect_distribution() {
        let cat = gen_empdept(&EmpDeptConfig {
            n_depts: 30,
            emps_per_dept: 10,
            ..Default::default()
        })
        .unwrap();
        let emp = cat.get("emp").unwrap();
        // dno column has exactly n_depts distinct values.
        assert_eq!(emp.stats().columns[2].distinct, 30);
        // salary min/max within the generated range.
        let s = &emp.stats().columns[3];
        assert!(s.min.unwrap() >= 30_000.0);
        assert!(s.max.unwrap() <= 200_000.0);
    }
}
