//! Random catalogs for property-based testing.
//!
//! Plan-equivalence tests (pull-up, push-down) and the optimizer's
//! never-worse guarantee must hold on *arbitrary* databases, not just the
//! curated workloads. This generator produces small random catalogs with
//! a uniform shape: every table gets an integer primary key, a couple of
//! join columns with controlled domain sizes (so join selectivities
//! vary), and a numeric measure column to aggregate.

use crate::catalog::Catalog;
use crate::table::Table;
use aggview_common::{DataType, Result, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for random catalog generation.
#[derive(Debug, Clone)]
pub struct RandomCatalogConfig {
    /// Number of tables (named `t0`, `t1`, ...).
    pub n_tables: usize,
    /// Inclusive row-count range per table.
    pub rows: (usize, usize),
    /// Inclusive domain-size range for join columns `j1`, `j2`.
    pub join_domain: (i64, i64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomCatalogConfig {
    fn default() -> Self {
        RandomCatalogConfig {
            n_tables: 3,
            rows: (5, 200),
            join_domain: (2, 20),
            seed: 0,
        }
    }
}

/// Generate `n_tables` tables, each with schema
/// `tK(id INT PK, j1 INT, j2 INT, val FLOAT)`.
///
/// * `id` — dense primary key 0..rows,
/// * `j1`, `j2` — join columns drawn uniformly from per-table random
///   domains within `cfg.join_domain`,
/// * `val` — measure column for aggregation.
pub fn gen_random_catalog(cfg: &RandomCatalogConfig) -> Result<Catalog> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let catalog = Catalog::new();
    for t in 0..cfg.n_tables {
        let rows = rng.gen_range(cfg.rows.0..=cfg.rows.1);
        let d1 = rng.gen_range(cfg.join_domain.0..=cfg.join_domain.1);
        let d2 = rng.gen_range(cfg.join_domain.0..=cfg.join_domain.1);
        let mut b = Table::builder(
            format!("t{t}"),
            Schema::of(&[
                ("id", DataType::Int),
                ("j1", DataType::Int),
                ("j2", DataType::Int),
                ("val", DataType::Float),
            ]),
        )
        .primary_key(&["id"])?;
        for i in 0..rows {
            b.push(
                vec![
                    Value::Int(i as i64),
                    Value::Int(rng.gen_range(0..d1)),
                    Value::Int(rng.gen_range(0..d2)),
                    Value::Float((rng.gen_range(0..100_000) as f64) / 100.0),
                ]
                .into(),
            )?;
        }
        catalog.add(b.build()?)?;
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_tables() {
        let cat = gen_random_catalog(&RandomCatalogConfig {
            n_tables: 4,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(cat.len(), 4);
        for t in 0..4 {
            let tab = cat.get(&format!("t{t}")).unwrap();
            assert_eq!(tab.schema().len(), 4);
            assert!(tab.primary_key().is_some());
            assert!(!tab.is_empty());
        }
    }

    #[test]
    fn row_counts_within_bounds() {
        let cfg = RandomCatalogConfig {
            n_tables: 5,
            rows: (10, 20),
            seed: 9,
            ..Default::default()
        };
        let cat = gen_random_catalog(&cfg).unwrap();
        for t in 0..5 {
            let n = cat.get(&format!("t{t}")).unwrap().len();
            assert!((10..=20).contains(&n), "rows {n}");
        }
    }

    #[test]
    fn join_domains_bounded() {
        let cfg = RandomCatalogConfig {
            n_tables: 2,
            rows: (200, 200),
            join_domain: (3, 5),
            seed: 1,
        };
        let cat = gen_random_catalog(&cfg).unwrap();
        let t = cat.get("t0").unwrap();
        let d = t.stats().columns[1].distinct;
        assert!(d <= 5, "domain {d}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = gen_random_catalog(&RandomCatalogConfig {
            seed: 1,
            ..Default::default()
        })
        .unwrap();
        let b = gen_random_catalog(&RandomCatalogConfig {
            seed: 2,
            ..Default::default()
        })
        .unwrap();
        assert_ne!(a.get("t0").unwrap().rows(), b.get("t0").unwrap().rows());
    }
}
