//! Zipf-skewed tables.
//!
//! The cost model's uniformity assumptions (equality selectivity
//! `1/distinct`, Yao group counts) are exact on the uniform generators;
//! real decision-support data is skewed. This generator produces tables
//! whose join/group column follows a Zipf(θ) distribution, so tests and
//! experiment E9 can measure how estimation error grows with skew.

use crate::catalog::Catalog;
use crate::table::Table;
use aggview_common::{DataType, Result, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a Zipf-skewed fact table.
#[derive(Debug, Clone)]
pub struct ZipfConfig {
    /// Table name.
    pub name: String,
    /// Number of rows.
    pub rows: usize,
    /// Domain size of the skewed key column (`key ∈ 0..domain`).
    pub domain: usize,
    /// Zipf exponent θ ≥ 0: 0 is uniform, ~1 is classic Zipf, larger is
    /// more skewed.
    pub exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ZipfConfig {
    fn default() -> Self {
        ZipfConfig {
            name: "zipf".into(),
            rows: 10_000,
            domain: 1000,
            exponent: 1.0,
            seed: 17,
        }
    }
}

/// Generate a table `name(id INT PK, key INT, val FLOAT)` whose `key`
/// column is Zipf(θ)-distributed over `0..domain` (rank 0 most frequent)
/// and register it in `catalog`.
pub fn gen_zipf_table(cfg: &ZipfConfig, catalog: &Catalog) -> Result<()> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Inverse-CDF sampling over the truncated zeta distribution.
    let weights: Vec<f64> = (1..=cfg.domain.max(1))
        .map(|r| 1.0 / (r as f64).powf(cfg.exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let sample = |rng: &mut StdRng| -> i64 {
        let u: f64 = rng.gen();
        match cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i.min(cdf.len() - 1) as i64,
        }
    };

    let mut b = Table::builder(
        cfg.name.clone(),
        Schema::of(&[
            ("id", DataType::Int),
            ("key", DataType::Int),
            ("val", DataType::Float),
        ]),
    )
    .primary_key(&["id"])?;
    for i in 0..cfg.rows {
        b.push(
            vec![
                Value::Int(i as i64),
                Value::Int(sample(&mut rng)),
                Value::Float(rng.gen_range(0.0..1000.0)),
            ]
            .into(),
        )?;
    }
    catalog.add(b.build()?)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn key_counts(catalog: &Catalog, name: &str) -> HashMap<i64, usize> {
        let t = catalog.get(name).unwrap();
        let mut counts = HashMap::new();
        for r in t.rows() {
            *counts.entry(r.get(1).as_i64().unwrap()).or_default() += 1;
        }
        counts
    }

    #[test]
    fn exponent_zero_is_roughly_uniform() {
        let cat = Catalog::new();
        gen_zipf_table(
            &ZipfConfig {
                exponent: 0.0,
                rows: 20_000,
                domain: 100,
                ..Default::default()
            },
            &cat,
        )
        .unwrap();
        let counts = key_counts(&cat, "zipf");
        let max = *counts.values().max().unwrap() as f64;
        let min = *counts.values().min().unwrap() as f64;
        assert!(max / min < 2.0, "uniform-ish: max {max} min {min}");
    }

    #[test]
    fn high_exponent_concentrates_mass() {
        let cat = Catalog::new();
        gen_zipf_table(
            &ZipfConfig {
                exponent: 1.5,
                rows: 20_000,
                domain: 1000,
                ..Default::default()
            },
            &cat,
        )
        .unwrap();
        let counts = key_counts(&cat, "zipf");
        let top = counts.get(&0).copied().unwrap_or(0) as f64;
        assert!(
            top / 20_000.0 > 0.2,
            "rank-0 key should carry >20% of rows, got {top}"
        );
    }

    #[test]
    fn skew_breaks_uniform_equality_selectivity() {
        // The estimator predicts 1/distinct for `key = 0`; under heavy
        // skew the true fraction is far larger — exactly the error E9's
        // narrative attributes to the uniformity assumption.
        let cat = Catalog::new();
        gen_zipf_table(
            &ZipfConfig {
                exponent: 1.2,
                rows: 30_000,
                domain: 500,
                ..Default::default()
            },
            &cat,
        )
        .unwrap();
        let t = cat.get("zipf").unwrap();
        let distinct = t.stats().columns[1].distinct as f64;
        let uniform_sel = 1.0 / distinct;
        let true_sel = t
            .rows()
            .iter()
            .filter(|r| r.get(1).as_i64() == Some(0))
            .count() as f64
            / t.len() as f64;
        assert!(
            true_sel > 5.0 * uniform_sel,
            "skew: true {true_sel:.4} vs uniform {uniform_sel:.4}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Catalog::new();
        let b = Catalog::new();
        let cfg = ZipfConfig::default();
        gen_zipf_table(&cfg, &a).unwrap();
        gen_zipf_table(&cfg, &b).unwrap();
        assert_eq!(
            a.get("zipf").unwrap().rows()[..100],
            b.get("zipf").unwrap().rows()[..100]
        );
    }
}
