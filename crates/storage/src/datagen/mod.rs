//! Synthetic workload generators.
//!
//! The paper's experimental context — decision-support workloads in the
//! style of TPC-D, and the Emp/Dept examples used throughout the text —
//! is reproduced with deterministic (seeded) generators so every
//! experiment is exactly repeatable:
//!
//! * [`empdept`] — the paper's running example schema (Examples 1 and 2),
//!   with tunable knobs for the parameters the paper identifies as
//!   decisive: number of departments, employees per department, and the
//!   selectivity of the `age < 22` style predicate.
//! * [`star`] — a TPC-D-like decision-support star schema
//!   (region/nation/customer/orders/lineitem) standing in for the real
//!   benchmark data, which is not redistributable; structure (keys,
//!   fan-outs, selective dimension predicates) is what the
//!   transformations respond to, and those are preserved.
//! * [`random`] — random catalogs for property-based tests of plan
//!   equivalence and the optimizer's never-worse guarantee.
//! * [`zipf`] — Zipf-skewed fact tables for probing the cost model's
//!   uniformity assumptions (experiment E9's error narrative).

pub mod empdept;
pub mod random;
pub mod star;
pub mod zipf;

pub use empdept::{gen_empdept, EmpDeptConfig};
pub use random::{gen_random_catalog, RandomCatalogConfig};
pub use star::{gen_star, StarConfig};
pub use zipf::{gen_zipf_table, ZipfConfig};
