//! Torn-tail property test (the paper-agnostic half of crash safety):
//! for a random committed statement stream, truncating the WAL at
//! *every byte boundary* inside the final record must recover exactly
//! the committed prefix — the final record is gone, nothing else is —
//! and recovering the truncated log twice yields the identical catalog.

use aggview_common::{DataType, Schema, Tuple, Value};
use aggview_storage::catalog::WAL_FILE;
use aggview_storage::{Catalog, Table, WalReader};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aggview-durprop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_table(name: &str) -> Arc<Table> {
    Table::builder(
        name,
        Schema::of(&[("k", DataType::Int), ("s", DataType::Str)]),
    )
    .build()
    .unwrap()
}

/// One catalog mutation, decoded from a pair of random draws. Applied
/// identically to the durable catalog under test and the in-memory
/// reference that defines "committed prefix".
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert { rows: usize, seed: i64 },
    MarkModified,
    AddTable { suffix: usize },
}

fn decode_ops(raw: &[i64]) -> Vec<Op> {
    let mut next_suffix = 0;
    raw.iter()
        .map(|&seed| match seed.unsigned_abs() % 4 {
            0 | 1 => Op::Insert {
                rows: (seed.unsigned_abs() as usize % 3) + 1,
                seed,
            },
            2 => Op::MarkModified,
            _ => {
                next_suffix += 1;
                Op::AddTable {
                    suffix: next_suffix,
                }
            }
        })
        .collect()
}

fn apply(cat: &Catalog, op: Op) {
    match op {
        Op::Insert { rows, seed } => {
            let batch: Vec<Tuple> = (0..rows)
                .map(|i| {
                    let k = seed.wrapping_mul(31).wrapping_add(i as i64);
                    Tuple::new(vec![Value::Int(k), Value::str(format!("r{k}"))])
                })
                .collect();
            cat.append_rows("t", batch).unwrap();
        }
        Op::MarkModified => cat.mark_modified("t").unwrap(),
        Op::AddTable { suffix } => cat.add(small_table(&format!("t{suffix}"))).unwrap(),
    }
}

/// Copy a durable catalog directory, truncating its WAL to `cut` bytes.
fn clone_with_cut(src: &Path, dst: &Path, cut: u64) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
    let wal = std::fs::read(dst.join(WAL_FILE)).unwrap();
    std::fs::write(dst.join(WAL_FILE), &wal[..cut as usize]).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn truncating_final_record_recovers_exactly_the_committed_prefix(
        raw in proptest::collection::vec(-100_000i64..100_000, 1..8),
    ) {
        let ops = decode_ops(&raw);
        let dir = tmpdir("stream");
        let scratch = tmpdir("cut");

        // Reference states: `states[i]` is the catalog after the table
        // create plus the first `i` ops.
        let reference = Catalog::new();
        reference.add(small_table("t")).unwrap();
        let mut states = vec![reference.describe_state()];
        let durable = Catalog::open(&dir).unwrap();
        durable.add(small_table("t")).unwrap();
        for &op in &ops {
            apply(&reference, op);
            apply(&durable, op);
            states.push(reference.describe_state());
        }
        prop_assert_eq!(&durable.describe_state(), states.last().unwrap());
        drop(durable);

        let contents = WalReader::read_committed(&dir.join(WAL_FILE)).unwrap();
        // One frame for the create, one per op.
        prop_assert_eq!(contents.records.len(), ops.len() + 1);
        let last_start = contents.frame_ends[contents.frame_ends.len() - 2];
        let last_end = contents.committed_len;

        for cut in last_start..=last_end {
            clone_with_cut(&dir, &scratch, cut);
            let expected = if cut == last_end {
                states.last().unwrap()
            } else {
                // Any cut strictly inside the final record loses exactly
                // that record: the committed prefix is ops[..N-1].
                &states[states.len() - 2]
            };
            let recovered = Catalog::open(&scratch).unwrap();
            prop_assert_eq!(&recovered.describe_state(), expected, "cut at byte {}", cut);
            drop(recovered);
            // Recovery is idempotent: opening the recovered directory
            // again (whose writer dropped the torn tail) is identical.
            let again = Catalog::open(&scratch).unwrap();
            prop_assert_eq!(&again.describe_state(), expected, "re-open at byte {}", cut);
        }

        std::fs::remove_dir_all(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&scratch);
    }
}
