//! Durable-catalog integration tests: reopen recovers exactly what was
//! committed, checkpoints fold the WAL into a snapshot without losing
//! anything, recovery is idempotent, torn/garbage WAL tails are
//! tolerated, and a corrupt snapshot is reported as corruption rather
//! than silently recovered around.

use aggview_common::{tuple, AggSpec, Col, DataType, RelId, Schema, Value};
use aggview_storage::catalog::WAL_FILE;
use aggview_storage::matview::{ExtentLayout, MatViewDef, MatViewMeta};
use aggview_storage::snapshot::SNAPSHOT_FILE;
use aggview_storage::{Catalog, Table};
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aggview-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dept() -> Arc<Table> {
    let mut b = Table::builder(
        "dept",
        Schema::of(&[("dno", DataType::Int), ("budget", DataType::Float)]),
    )
    .primary_key(&["dno"])
    .unwrap();
    b.push(tuple![0, 100.0]).unwrap();
    b.push(tuple![1, 200.0]).unwrap();
    b.build().unwrap()
}

fn emp() -> Arc<Table> {
    Table::builder(
        "emp",
        Schema::of(&[("eno", DataType::Int), ("dno", DataType::Int)]),
    )
    .primary_key(&["eno"])
    .unwrap()
    .foreign_key(&["dno"], "dept", &[0])
    .unwrap()
    .build()
    .unwrap()
}

/// A minimal valid view over `emp`, with an extent table shaped to its
/// computed layout.
fn view_over_emp(catalog: &Catalog, name: &str) -> (MatViewMeta, Arc<Table>) {
    let def = MatViewDef {
        name: name.to_string(),
        tables: vec!["emp".to_string()],
        preds: vec![],
        group_cols: vec![Col::base(RelId(0), 1)],
        aggs: vec![AggSpec::count_star()],
        column_names: vec!["dno".to_string(), "n".to_string()],
    };
    let layout = ExtentLayout::of(&def);
    let fields: Vec<(String, DataType)> = (0..layout.width)
        .map(|i| (format!("c{i}"), DataType::Int))
        .collect();
    let refs: Vec<(&str, DataType)> = fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let extent = Table::builder(MatViewMeta::extent_name(name), Schema::of(&refs))
        .build()
        .unwrap();
    let meta = MatViewMeta {
        extent: MatViewMeta::extent_name(name),
        layout,
        base_versions: vec![catalog.data_version("emp")],
        def,
    };
    (meta, extent)
}

/// A representative committed workload: tables with keys, inserts,
/// an out-of-band modification, and a registered materialized view.
fn workload(cat: &Catalog) {
    cat.add(dept()).unwrap();
    cat.add(emp()).unwrap();
    cat.append_rows("emp", vec![tuple![10, 0], tuple![11, 1]])
        .unwrap();
    cat.append_rows("emp", vec![tuple![12, 1]]).unwrap();
    cat.mark_modified("dept").unwrap();
    let (meta, extent) = view_over_emp(cat, "by_dno");
    cat.add(extent).unwrap();
    cat.register_matview(meta).unwrap();
}

#[test]
fn reopen_recovers_tables_rows_versions_and_matviews() {
    let dir = tmpdir("reopen");
    let expected = {
        let cat = Catalog::open(&dir).unwrap();
        workload(&cat);
        cat.describe_state()
    };
    let cat = Catalog::open(&dir).unwrap();
    assert_eq!(cat.describe_state(), expected);
    // Version counters are exact, not merely consistent.
    assert_eq!(cat.data_version("emp"), 3); // add + 2 inserts
    assert_eq!(cat.data_version("dept"), 2); // add + mark_modified
    let meta = cat.matview("by_dno").unwrap();
    assert!(!meta.is_quarantined());
    assert_eq!(meta.base_versions, vec![3]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_truncates_wal_and_preserves_state() {
    let dir = tmpdir("ckpt");
    let expected = {
        let cat = Catalog::open(&dir).unwrap();
        workload(&cat);
        cat.checkpoint().unwrap();
        cat.describe_state()
    };
    // The WAL is back to just its magic; the snapshot carries the state.
    assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 8);
    assert!(dir.join(SNAPSHOT_FILE).exists());
    let cat = Catalog::open(&dir).unwrap();
    assert_eq!(cat.describe_state(), expected);

    // Mutations after the checkpoint land in the (fresh) WAL and
    // survive another reopen alongside the snapshot contents.
    cat.append_rows("emp", vec![tuple![13, 0]]).unwrap();
    let expected2 = cat.describe_state();
    drop(cat);
    let cat = Catalog::open(&dir).unwrap();
    assert_eq!(cat.describe_state(), expected2);
    assert_eq!(cat.get("emp").unwrap().len(), 4);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_is_idempotent() {
    let dir = tmpdir("idem");
    {
        let cat = Catalog::open(&dir).unwrap();
        workload(&cat);
    }
    let first = Catalog::open(&dir).unwrap().describe_state();
    let second = Catalog::open(&dir).unwrap().describe_state();
    assert_eq!(first, second);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_wal_tail_recovers_committed_prefix() {
    let dir = tmpdir("torn");
    let expected = {
        let cat = Catalog::open(&dir).unwrap();
        workload(&cat);
        cat.describe_state()
    };
    // A crash mid-append leaves a prefix of the next frame: a plausible
    // length header and part of a payload.
    let wal = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0x40, 0, 0, 0, 0xAA, 0xBB, 0xCC]);
    std::fs::write(&wal, &bytes).unwrap();
    let cat = Catalog::open(&dir).unwrap();
    assert_eq!(cat.describe_state(), expected);
    // The torn tail is also physically dropped by the next append, so a
    // further mutation and reopen stay exact.
    cat.append_rows("emp", vec![tuple![14, 1]]).unwrap();
    let expected2 = cat.describe_state();
    drop(cat);
    assert_eq!(Catalog::open(&dir).unwrap().describe_state(), expected2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crc_garbage_tail_recovers_committed_prefix() {
    let dir = tmpdir("crc");
    let expected = {
        let cat = Catalog::open(&dir).unwrap();
        workload(&cat);
        cat.describe_state()
    };
    // A full-length frame of recycled bytes: length parses, CRC cannot.
    let wal = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[4, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4]);
    std::fs::write(&wal, &bytes).unwrap();
    assert_eq!(Catalog::open(&dir).unwrap().describe_state(), expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_snapshot_is_an_error_not_data_loss() {
    let dir = tmpdir("snapcorrupt");
    {
        let cat = Catalog::open(&dir).unwrap();
        workload(&cat);
        cat.checkpoint().unwrap();
    }
    let snap = dir.join(SNAPSHOT_FILE);
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&snap, &bytes).unwrap();
    let err = Catalog::open(&dir).unwrap_err();
    assert_eq!(err.kind(), "corrupt");
    assert!(!err.is_retryable(), "corruption must never be retried");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_extent_quarantines_view_on_recovery() {
    let dir = tmpdir("quarantine");
    {
        let cat = Catalog::open(&dir).unwrap();
        cat.add(dept()).unwrap();
        cat.add(emp()).unwrap();
        // Register the view without ever adding its extent table —
        // recovery must demote it, never trust it.
        let (meta, _extent) = view_over_emp(&cat, "ghost");
        cat.register_matview(meta).unwrap();
    }
    let cat = Catalog::open(&dir).unwrap();
    let meta = cat.matview("ghost").unwrap();
    assert!(meta.is_quarantined());
    assert!(meta.is_stale(&cat), "quarantined extents are always stale");
    // Idempotent: a second recovery sees the same quarantined state.
    drop(cat);
    let again = Catalog::open(&dir).unwrap();
    assert!(again.matview("ghost").unwrap().is_quarantined());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn in_memory_catalog_stays_in_memory() {
    let cat = Catalog::new();
    cat.add(dept()).unwrap();
    cat.append_rows("dept", vec![tuple![2, 300.0]]).unwrap();
    assert!(!cat.is_durable());
    assert!(cat.dir().is_none());
    assert_eq!(cat.checkpoint().unwrap_err().kind(), "catalog");
}

#[test]
fn import_from_seeds_a_durable_catalog() {
    let dir = tmpdir("import");
    let src = Catalog::new();
    workload(&src);
    let dst = Catalog::open(&dir).unwrap();
    dst.import_from(&src).unwrap();
    assert_eq!(dst.len(), src.len());
    assert_eq!(
        dst.get("emp").unwrap().rows(),
        src.get("emp").unwrap().rows()
    );
    // The imported view was fresh in the source, so it must be fresh in
    // the destination (re-anchored to the destination's counters) and
    // survive a reopen that way.
    assert!(!dst.matview("by_dno").unwrap().is_stale(&dst));
    drop(dst);
    let dst = Catalog::open(&dir).unwrap();
    assert!(!dst.matview("by_dno").unwrap().is_stale(&dst));

    // A stale view must arrive quarantined — import never launders
    // staleness into freshness.
    src.mark_modified("emp").unwrap();
    assert!(src.matview("by_dno").unwrap().is_stale(&src));
    let dir2 = tmpdir("import2");
    let dst2 = Catalog::open(&dir2).unwrap();
    dst2.import_from(&src).unwrap();
    assert!(dst2.matview("by_dno").unwrap().is_quarantined());
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&dir2).unwrap();
}

#[test]
fn value_types_round_trip_through_wal_and_snapshot() {
    let dir = tmpdir("values");
    let expected = {
        let cat = Catalog::open(&dir).unwrap();
        let t = Table::builder(
            "mixed",
            Schema::of(&[
                ("i", DataType::Int),
                ("f", DataType::Float),
                ("s", DataType::Str),
            ]),
        )
        .build()
        .unwrap();
        cat.add(t).unwrap();
        cat.append_rows(
            "mixed",
            vec![
                tuple![1, 1.5, "naïve ünïcode"],
                tuple![-9, f64::MIN_POSITIVE, ""],
                aggview_common::Tuple::new(vec![
                    Value::Int(i64::MIN),
                    Value::Float(-0.0),
                    Value::str("end"),
                ]),
            ],
        )
        .unwrap();
        cat.describe_state()
    };
    // Once via WAL replay, once via snapshot.
    assert_eq!(Catalog::open(&dir).unwrap().describe_state(), expected);
    let cat = Catalog::open(&dir).unwrap();
    cat.checkpoint().unwrap();
    drop(cat);
    assert_eq!(Catalog::open(&dir).unwrap().describe_state(), expected);
    std::fs::remove_dir_all(&dir).unwrap();
}
