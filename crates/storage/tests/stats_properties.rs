//! Property tests for statistics: selectivity estimates must be valid
//! probabilities, roughly track the truth on uniform data, and the Yao
//! distinct-count machinery in the estimator relies on `distinct` never
//! exceeding the row count.

use aggview_common::{tuple, CmpOp, Tuple, Value};
use aggview_storage::stats::analyze;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn selectivity_is_a_probability(
        vals in proptest::collection::vec(-1000i64..1000, 1..300),
        c in -1200i64..1200,
    ) {
        let rows: Vec<Tuple> = vals.iter().map(|v| tuple![*v]).collect();
        let s = analyze(&rows, 1);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let sel = s.columns[0].selectivity(op, &Value::Int(c));
            prop_assert!((0.0..=1.0).contains(&sel), "{op} -> {sel}");
        }
    }

    #[test]
    fn range_selectivity_tracks_truth_within_tolerance(
        n in 50usize..400,
        cut_pct in 5u32..95,
    ) {
        // Uniform integers 0..n.
        let rows: Vec<Tuple> = (0..n).map(|i| tuple![i as i64]).collect();
        let s = analyze(&rows, 1);
        let cut = (n as f64 * cut_pct as f64 / 100.0) as i64;
        let est = s.columns[0].selectivity(CmpOp::Lt, &Value::Int(cut));
        let truth = rows
            .iter()
            .filter(|r| r.get(0).as_i64().unwrap() < cut)
            .count() as f64
            / n as f64;
        prop_assert!(
            (est - truth).abs() < 0.12,
            "n={n} cut={cut}: est {est} vs truth {truth}"
        );
    }

    #[test]
    fn distinct_bounded_by_rows(
        vals in proptest::collection::vec(0i64..50, 1..300)
    ) {
        let rows: Vec<Tuple> = vals.iter().map(|v| tuple![*v]).collect();
        let s = analyze(&rows, 1);
        prop_assert!(s.columns[0].distinct <= s.rows);
        prop_assert!(s.columns[0].distinct >= 1);
        // min/max bracket every value.
        let (mn, mx) = (s.columns[0].min.unwrap(), s.columns[0].max.unwrap());
        prop_assert!(vals.iter().all(|v| (*v as f64) >= mn && (*v as f64) <= mx));
    }

    #[test]
    fn eq_plus_ne_selectivities_sum_to_one(
        vals in proptest::collection::vec(0i64..30, 1..200),
        c in 0i64..30,
    ) {
        let rows: Vec<Tuple> = vals.iter().map(|v| tuple![*v]).collect();
        let s = analyze(&rows, 1);
        let eq = s.columns[0].selectivity(CmpOp::Eq, &Value::Int(c));
        let ne = s.columns[0].selectivity(CmpOp::Ne, &Value::Int(c));
        prop_assert!((eq + ne - 1.0).abs() < 1e-9);
    }
}
