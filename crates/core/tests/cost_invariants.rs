//! Cost-model invariants the optimization algorithms rely on.

use aggview_common::{AggFunc, AggSpec, CmpOp, Col, Expr, Predicate, RelId, Value, ViewId};
use aggview_core::cost::ops::IoParams;
use aggview_core::cost::{CardEstimator, CostModel};
use aggview_core::plan::{all_cols, GroupBySpec, Plan};
use aggview_core::query::QueryEnv;
use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};
use aggview_storage::{Catalog, PageModel};

fn setup() -> (Catalog, QueryEnv) {
    let cat = gen_empdept(&EmpDeptConfig {
        n_depts: 40,
        emps_per_dept: 25,
        young_fraction: 0.2,
        low_budget_fraction: 0.3,
        seed: 61,
    })
    .unwrap();
    (cat, QueryEnv::new(vec!["emp".into(), "dept".into()]))
}

fn model(mem: f64) -> CostModel {
    CostModel {
        page: PageModel::default(),
        io: IoParams {
            mem_pages: mem,
            ..Default::default()
        },
    }
}

fn emp_scan(filters: Vec<Predicate>) -> Plan {
    Plan::scan(RelId(0), "emp", filters, all_cols(RelId(0), 5))
}

fn dept_scan() -> Plan {
    Plan::scan(RelId(1), "dept", vec![], all_cols(RelId(1), 4))
}

/// More memory never increases any plan's estimated cost (monotonicity —
/// without it the principle of optimality across memory settings would
/// be suspect).
#[test]
fn cost_monotone_in_memory() {
    let (cat, env) = setup();
    let join = Plan::join_all(
        emp_scan(vec![]),
        dept_scan(),
        vec![Predicate::eq_cols(
            Col::base(RelId(0), 2),
            Col::base(RelId(1), 0),
        )],
    );
    let gb = Plan::group_by_all(
        join.clone(),
        GroupBySpec {
            owner: ViewId::Top,
            group_cols: vec![Col::base(RelId(0), 2)],
            aggs: vec![AggSpec::new(
                AggFunc::Avg,
                Expr::col(Col::base(RelId(0), 3)),
            )],
            having: vec![],
        },
    );
    for plan in [join, gb] {
        let mut prev = f64::INFINITY;
        for mem in [2.0, 4.0, 16.0, 64.0, 1024.0] {
            let est = CardEstimator::new(model(mem), &cat, &env);
            let c = est.cost_plan(&plan).unwrap().cost;
            assert!(c <= prev + 1e-9, "mem {mem}: {c} > {prev}");
            prev = c;
        }
    }
}

/// Filters reduce estimated cardinality, never increase it; stacking
/// filters compounds.
#[test]
fn filters_shrink_cardinality() {
    let (cat, env) = setup();
    let est = CardEstimator::new(model(64.0), &cat, &env);
    let base = est.cost_plan(&emp_scan(vec![])).unwrap().card;
    let one = est
        .cost_plan(&emp_scan(vec![Predicate::cmp_const(
            Col::base(RelId(0), 4),
            CmpOp::Lt,
            Value::Int(30),
        )]))
        .unwrap()
        .card;
    let two = est
        .cost_plan(&emp_scan(vec![
            Predicate::cmp_const(Col::base(RelId(0), 4), CmpOp::Lt, Value::Int(30)),
            Predicate::cmp_const(Col::base(RelId(0), 3), CmpOp::Gt, Value::Float(150_000.0)),
        ]))
        .unwrap()
        .card;
    assert!(one < base);
    assert!(two < one);
    assert!(two >= 0.0);
}

/// The group-by output estimate never exceeds its input cardinality and
/// never exceeds the grouping-domain product.
#[test]
fn group_estimate_bounded() {
    let (cat, env) = setup();
    let est = CardEstimator::new(model(64.0), &cat, &env);
    let input = est.cost_plan(&emp_scan(vec![])).unwrap().card;
    let gb = Plan::group_by_all(
        emp_scan(vec![]),
        GroupBySpec {
            owner: ViewId::Top,
            group_cols: vec![Col::base(RelId(0), 2)],
            aggs: vec![AggSpec::count_star()],
            having: vec![],
        },
    );
    let groups = est.cost_plan(&gb).unwrap().card;
    assert!(groups <= input);
    assert!(groups <= 40.0 + 1e-9, "at most n_depts groups");
    assert!(groups > 30.0, "nearly every department is realized");
}

/// A narrower projection never makes a plan cost more, and never widens
/// the estimated row.
#[test]
fn projection_narrowing_is_free_or_better() {
    let (cat, env) = setup();
    let est = CardEstimator::new(model(4.0), &cat, &env);
    let wide = Plan::join_all(
        emp_scan(vec![]),
        dept_scan(),
        vec![Predicate::eq_cols(
            Col::base(RelId(0), 2),
            Col::base(RelId(1), 0),
        )],
    );
    let narrow = wide
        .clone()
        .with_project(vec![Col::base(RelId(0), 2), Col::base(RelId(0), 3)]);
    let w = est.cost_plan(&wide).unwrap();
    let n = est.cost_plan(&narrow).unwrap();
    assert!(n.width < w.width);
    assert!(n.cost <= w.cost + 1e-9);
    assert_eq!(n.card, w.card);
}

/// Join cardinality with an FK-style equality is about the child side's
/// cardinality; applying the same predicate twice must not double-count
/// selectivity (each predicate contributes once).
#[test]
fn join_cardinality_sane() {
    let (cat, env) = setup();
    let est = CardEstimator::new(model(64.0), &cat, &env);
    let join = Plan::join_all(
        emp_scan(vec![]),
        dept_scan(),
        vec![Predicate::eq_cols(
            Col::base(RelId(0), 2),
            Col::base(RelId(1), 0),
        )],
    );
    let card = est.cost_plan(&join).unwrap().card;
    let emp_rows = 40.0 * 25.0;
    assert!(
        (card - emp_rows).abs() / emp_rows < 0.1,
        "FK join ≈ |emp|, got {card}"
    );
}
