//! Optimization algorithms for queries with aggregate views (paper
//! Section 5).
//!
//! * [`dp`] — the [SAC+79] dynamic-programming enumerator for SPJ blocks
//!   (linear join orders), the substrate everything else extends;
//! * [`greedy`] — Section 5.2: single-block queries with a group-by,
//!   searched over *linear aggregate join trees* with the **greedy
//!   conservative heuristic** (early group-by placement kept only when
//!   cheaper and no wider, which preserves the never-worse guarantee);
//! * [`traditional`] — the baseline two-phase optimizer: each view
//!   optimized locally as an SPJ block, then the outer block over
//!   views-as-base-relations;
//! * [`single_view`] — Section 5.3: pull-up enumeration `Φ(V₀, W)` for a
//!   query with one aggregate view;
//! * [`multi_view`] — Section 5.4: the general case, with disjoint
//!   pulled-up sets per view;
//! * [`stats`] — search-effort accounting (plans built, subsets
//!   explored) used by experiment E5.

pub mod dp;
pub mod greedy;
pub mod multi_view;
pub mod single_view;
pub mod stats;
pub mod traditional;

pub use stats::SearchStats;

use aggview_common::RelId;

/// How aggressively pull-up may be applied (the paper's "k-level
/// pull-up" restriction: "no partial plan may involve more than k
/// applications of pull-up").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PullUpLevel {
    /// Never pull up (push-down-only optimizer: the paper's "immediate
    /// improvement" configuration).
    Disabled,
    /// At most `k` relations pulled through each view.
    Limited(u32),
    /// Any subset of eligible relations may be pulled up.
    Unlimited,
}

impl PullUpLevel {
    /// Maximum number of relations that may be pulled through a view.
    pub fn cap(self, available: usize) -> usize {
        match self {
            PullUpLevel::Disabled => 0,
            PullUpLevel::Limited(k) => (k as usize).min(available),
            PullUpLevel::Unlimited => available,
        }
    }
}

/// Optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Pull-up aggressiveness (k-level restriction).
    pub pull_up: PullUpLevel,
    /// Enable the push-down transformations inside block enumeration
    /// (invariant grouping and simple coalescing via the greedy
    /// conservative heuristic). Disabling both push-down and pull-up
    /// yields exactly the traditional optimizer.
    pub push_down: bool,
    /// Only pull a relation through a view when it shares a predicate
    /// with the view ("we do not pull-up a relation through a view
    /// unless they share a predicate").
    pub require_shared_predicate: bool,
    /// Consider materialized-view extents as additional access paths
    /// during block enumeration (cost-based: an extent scan is chosen
    /// only when cheaper than the best inlined plan, so the never-worse
    /// guarantee is preserved).
    pub use_matviews: bool,
    /// Consider eager partial aggregation below join inputs (Yan–Larson
    /// push-down with duplicate-factor compensation). Cost-based with
    /// the same never-worse rule as coalescing: adopted only when
    /// strictly cheaper and no larger in peak intermediate bytes.
    pub use_eager_agg: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            pull_up: PullUpLevel::Unlimited,
            push_down: true,
            require_shared_predicate: true,
            use_matviews: true,
            use_eager_agg: eager_agg_from_env(),
        }
    }
}

/// `AGGVIEW_EAGER_AGG` when set to `off`/`0`/`false` disables eager
/// aggregation in the default configuration; anything else enables it.
fn eager_agg_from_env() -> bool {
    !matches!(
        std::env::var("AGGVIEW_EAGER_AGG")
            .ok()
            .as_deref()
            .map(str::trim),
        Some("off") | Some("0") | Some("false")
    )
}

impl OptimizerConfig {
    /// The traditional optimizer: no pull-up, no push-down, no
    /// materialized extents.
    pub fn traditional() -> Self {
        OptimizerConfig {
            pull_up: PullUpLevel::Disabled,
            push_down: false,
            require_shared_predicate: true,
            use_matviews: false,
            use_eager_agg: false,
        }
    }

    /// Push-down only (greedy conservative heuristic, no pull-up) — the
    /// paper's "immediate improvement" configuration.
    pub fn push_down_only() -> Self {
        OptimizerConfig {
            pull_up: PullUpLevel::Disabled,
            push_down: true,
            require_shared_predicate: true,
            use_matviews: true,
            use_eager_agg: true,
        }
    }
}

/// Relations as a bitset, with helpers shared by the enumerators.
pub(crate) fn bitset(rels: &[RelId]) -> u64 {
    rels.iter().map(|r| r.bit()).fold(0, |a, b| a | b)
}

/// Iterate the relations in a bitset.
pub(crate) fn rels_of(set: u64) -> impl Iterator<Item = RelId> {
    (0..64).filter(move |i| set & (1u64 << i) != 0).map(RelId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pull_up_level_caps() {
        assert_eq!(PullUpLevel::Disabled.cap(5), 0);
        assert_eq!(PullUpLevel::Limited(2).cap(5), 2);
        assert_eq!(PullUpLevel::Limited(9).cap(5), 5);
        assert_eq!(PullUpLevel::Unlimited.cap(5), 5);
    }

    #[test]
    fn config_presets() {
        let t = OptimizerConfig::traditional();
        assert_eq!(t.pull_up, PullUpLevel::Disabled);
        assert!(!t.push_down);
        let p = OptimizerConfig::push_down_only();
        assert!(p.push_down);
        let d = OptimizerConfig::default();
        assert_eq!(d.pull_up, PullUpLevel::Unlimited);
    }

    #[test]
    fn bitset_round_trip() {
        let rels = vec![RelId(0), RelId(3), RelId(7)];
        let set = bitset(&rels);
        let back: Vec<RelId> = rels_of(set).collect();
        assert_eq!(back, rels);
    }
}
