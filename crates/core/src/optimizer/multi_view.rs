//! The general optimization algorithm for queries with multiple
//! aggregate views (paper Section 5.4), which subsumes the single-view
//! algorithm of Section 5.3.
//!
//! Two-phase structure, following the paper:
//!
//! **Phase 1.** For each view `Qi = Gi(Vi)`: compute the minimal
//! invariant set `V₀i` (relations in `Vi − V₀i` "can be treated like
//! relations in B and can be freely reordered"), then optimize the
//! *pulled-up* single block `Φ(V₀i, Wi)` for every admissible choice of
//! `Wi ⊆ B′` — the relations pulled through the view. Each `Φ(V₀i, Wi)`
//! is a single-block query with a group-by, searched over linear
//! aggregate join trees with the greedy conservative heuristic
//! ([`crate::optimizer::greedy`]), so cases (i) local optimization,
//! (ii) extended views, and (iii) combined push-down + pull-up of the
//! paper's Section 5.3 all arise.
//!
//! **Phase 2.** For every combination of pairwise-disjoint `Wi`, the
//! outer block — the pulled views (treated as base relations) joined
//! with the remaining `B′` relations under `G0` — is enumerated, again
//! greedily-conservatively. The cheapest plan over all combinations
//! wins.
//!
//! Practical restrictions (paper Section 5.3): a relation is pulled
//! through a view only if it *shares a predicate* with the view, and at
//! most `k` relations may be pulled per view (k-level pull-up).

use crate::cost::{CardEstimator, CostModel, PlanProps};
use crate::governor::{OptimizeOutcome, ResourceGovernor};
use crate::optimizer::dp::DpItem;
use crate::optimizer::greedy::{optimize_block_governed, BlockQuery};
use crate::optimizer::stats::SearchStats;
use crate::optimizer::{bitset, rels_of, OptimizerConfig};
use crate::plan::{all_cols, GroupBySpec, Plan};
use crate::query::{CanonicalQuery, ViewDef};
use crate::transform::pushdown::{group_applicable_at, minimal_invariant_set, InvariantGroupBy};
use aggview_common::{AggViewError, Col, Predicate, RelId, Result, ViewId};
use aggview_storage::Catalog;
use std::collections::BTreeSet;

/// The result of an optimizer run.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The chosen execution plan.
    pub plan: Plan,
    /// Its estimated properties (cost, cardinality, width).
    pub props: PlanProps,
    /// Search-effort counters.
    pub stats: SearchStats,
    /// For each view, the relations pulled through it in the chosen
    /// plan (empty = the view was optimized locally).
    pub pulled: Vec<Vec<RelId>>,
    /// Whether the full search ran to completion or degraded to the
    /// traditional two-phase plan after a budget/deadline ran out.
    pub outcome: OptimizeOutcome,
}

/// Optimize a canonical query under `config`.
///
/// The search space always contains the traditional two-phase strategy,
/// and the greedy conservative heuristic never adopts a worse local
/// choice, so the returned plan's estimated cost is never above the
/// traditional optimizer's (verified by tests and experiment E6).
pub fn optimize(
    query: &CanonicalQuery,
    catalog: &Catalog,
    model: CostModel,
    config: &OptimizerConfig,
) -> Result<Optimized> {
    optimize_governed(
        query,
        catalog,
        model,
        config,
        &ResourceGovernor::unlimited(),
    )
}

/// [`optimize`] under a [`ResourceGovernor`].
///
/// The governor's search budget (max plans built / memo entries) and
/// deadline are checked throughout enumeration. When either runs out
/// mid-search, the optimizer **degrades gracefully**: it falls back to
/// the traditional two-phase strategy (always in the search space and
/// cheap to produce) instead of failing, and records the reason in
/// [`Optimized::outcome`]. Explicit cancellation is different — it means
/// "stop working", so [`AggViewError::Cancelled`] propagates as an
/// error and no fallback plan is produced.
pub fn optimize_governed(
    query: &CanonicalQuery,
    catalog: &Catalog,
    model: CostModel,
    config: &OptimizerConfig,
    gov: &ResourceGovernor,
) -> Result<Optimized> {
    match optimize_inner(query, catalog, model, config, gov) {
        Ok(opt) => Ok(opt),
        Err(AggViewError::ResourceExhausted(msg)) => {
            let Some(reason) = gov.degradation_reason() else {
                // Exhaustion not attributable to the search budget or the
                // optimizer deadline (e.g. an execution-side row budget
                // shared with this governor): nothing to degrade to.
                return Err(AggViewError::ResourceExhausted(msg));
            };
            let fallback_gov = gov.for_fallback();
            let mut opt = optimize_inner(
                query,
                catalog,
                model,
                &OptimizerConfig::traditional(),
                &fallback_gov,
            )?;
            opt.outcome = OptimizeOutcome::Degraded(reason);
            // Debug-mode post-condition: a degraded plan must be a
            // well-formed traditional two-phase plan.
            #[cfg(debug_assertions)]
            {
                let report = crate::analyze::PlanAnalyzer::new(catalog)
                    .with_query(query)
                    .analyze_degraded(&opt.plan);
                debug_assert!(
                    report.is_ok(),
                    "degraded plan violates integrity invariants:\n{report}{}",
                    opt.plan.explain()
                );
            }
            Ok(opt)
        }
        Err(e) => Err(e),
    }
}

fn optimize_inner(
    query: &CanonicalQuery,
    catalog: &Catalog,
    model: CostModel,
    config: &OptimizerConfig,
    gov: &ResourceGovernor,
) -> Result<Optimized> {
    query.validate(catalog)?;
    let est = CardEstimator::new(model, catalog, &query.env);
    let mut stats = SearchStats::default();

    // Phase 0: minimal invariant sets; B' = B ∪ ⋃(Vi − V₀i).
    let mut v0: Vec<u64> = Vec::with_capacity(query.views.len());
    let mut d: Vec<u64> = Vec::with_capacity(query.views.len());
    for v in &query.views {
        let igb = InvariantGroupBy {
            rels: &v.rels,
            preds: &v.preds,
            group_cols: &v.group_cols,
            aggs: &v.aggs,
        };
        let (v0_rels, removed) = minimal_invariant_set(&igb, &query.env, catalog)?;
        let v0_set = bitset(&v0_rels);
        // Defensive re-validation of the fixpoint (greedy removal order
        // could in principle leave an inconsistent set).
        let v0_set =
            if removed.is_empty() || group_applicable_at(&igb, v0_set, &query.env, catalog)? {
                v0_set
            } else {
                bitset(&v.rels)
            };
        v0.push(v0_set);
        d.push(bitset(&v.rels) & !v0_set);
    }
    let base_set = bitset(&query.base_rels);
    let d_all: u64 = d.iter().fold(0, |a, b| a | b);
    let bprime = base_set | d_all;

    // Phase 1: per-view W candidates and their optimized blocks.
    let mut per_view: Vec<Vec<ViewBlock>> = Vec::with_capacity(query.views.len());
    for (i, v) in query.views.iter().enumerate() {
        gov.check_interrupt()?;
        let ws = w_candidates(query, v, v0[i], d[i], bprime, config);
        let mut blocks = Vec::new();
        for w in ws {
            if let Some(vb) =
                build_view_block(query, v, v0[i], w, &est, catalog, config, &mut stats, gov)?
            {
                blocks.push(vb);
            }
        }
        if blocks.is_empty() {
            return Err(AggViewError::Optimize(format!(
                "no admissible block for view Q{}",
                i + 1
            )));
        }
        per_view.push(blocks);
    }

    // Phase 2: combinations of disjoint Wi, outer enumeration.
    let mut best: Option<Optimized> = None;
    let mut combo: Vec<usize> = vec![0; per_view.len()];
    loop {
        gov.check_interrupt()?;
        // Disjointness of pulled sets.
        let mut used = 0u64;
        let mut disjoint = true;
        for (i, &c) in combo.iter().enumerate() {
            let w = per_view[i][c].w & bprime;
            if used & w != 0 {
                disjoint = false;
                break;
            }
            used |= w;
        }
        if disjoint {
            let chosen: Vec<&ViewBlock> = combo
                .iter()
                .enumerate()
                .map(|(i, &c)| &per_view[i][c])
                .collect();
            match outer_phase(
                query, &chosen, bprime, &est, catalog, config, &mut stats, gov,
            ) {
                Ok(candidate) => {
                    if best
                        .as_ref()
                        .is_none_or(|b| candidate.props.cost < b.props.cost)
                    {
                        let pulled = chosen
                            .iter()
                            .map(|vb| rels_of(vb.w & base_set).collect())
                            .collect();
                        best = Some(Optimized {
                            plan: candidate.plan,
                            props: candidate.props,
                            stats: SearchStats::default(),
                            pulled,
                            outcome: OptimizeOutcome::Full,
                        });
                    }
                }
                Err(AggViewError::Optimize(_)) => {} // infeasible combination
                Err(e) => return Err(e),
            }
        }
        // Advance the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == combo.len() {
                break;
            }
            combo[i] += 1;
            if combo[i] < per_view[i].len() {
                break;
            }
            combo[i] = 0;
            i += 1;
        }
        if i == combo.len() {
            break;
        }
        if combo.iter().all(|&c| c == 0) {
            break;
        }
    }

    let mut out = best.ok_or_else(|| AggViewError::Optimize("no feasible plan found".into()))?;
    // Post-pass: merge successive group-by operators (paper Section 3 —
    // "pull-up may result in combining G0 and G1"). Combining removes an
    // operator, so the estimated cost never increases; keep the combined
    // plan when it is valid and no costlier.
    let combined = crate::transform::combine::combine_all(&out.plan);
    if combined != out.plan && combined.validate(catalog, &query.env.rel_tables).is_ok() {
        if let Ok(props) = est.cost_plan(&combined) {
            if props.cost <= out.props.cost + 1e-9 {
                out.plan = combined;
                out.props = props;
            }
        }
    }
    // Post-pass: rewrite a provably-empty plan (contradictory
    // predicates found by the dataflow pass) to an `EmptyScan` so the
    // executor never scans for rows that cannot exist.
    let (pruned, n_pruned) = crate::analyze::dataflow::prune_empty(
        &out.plan,
        catalog,
        Some(query.env.rel_tables.as_slice()),
    );
    if n_pruned > 0 && pruned.validate(catalog, &query.env.rel_tables).is_ok() {
        if let Ok(props) = est.cost_plan(&pruned) {
            out.plan = pruned;
            out.props = props;
        }
    }
    out.stats = stats;
    // Debug-mode post-condition: every plan the optimizer hands out
    // satisfies the static integrity invariants.
    #[cfg(debug_assertions)]
    {
        let report = crate::analyze::PlanAnalyzer::new(catalog)
            .with_query(query)
            .analyze(&out.plan);
        debug_assert!(
            report.is_ok(),
            "optimizer emitted a plan violating integrity invariants:\n{report}{}",
            out.plan.explain()
        );
    }
    Ok(out)
}

/// A phase-1 product: the optimized plan for Φ(V₀, W).
struct ViewBlock {
    /// The pulled set W (bitset over B′; the view's own removable
    /// relations that were re-included are also recorded here).
    w: u64,
    /// Optimized block plan.
    item: DpItem,
    /// Indexes into `query.preds` absorbed by this block.
    absorbed: BTreeSet<usize>,
    /// View predicates expelled to the outer block (they touch excluded
    /// removable relations).
    expelled: Vec<Predicate>,
    /// Relations of the block (V₀ ∪ W ∩ view ∪ pulled base rels).
    block_set: u64,
}

/// Enumerate admissible W sets for a view: always the original view
/// (`W = Vi − V₀i`); plus, when pull-up is enabled, connected subsets of
/// B′ relations that share a predicate with the view, combined with
/// subsets of the view's own removable relations (case iii).
fn w_candidates(
    query: &CanonicalQuery,
    view: &ViewDef,
    _v0: u64,
    d: u64,
    bprime: u64,
    config: &OptimizerConfig,
) -> Vec<u64> {
    let mut out: Vec<u64> = vec![d]; // the original view
    let cap = config.pull_up.cap(32);
    if cap == 0 {
        return out;
    }

    // Base-side candidates: relations of B′ (outside this view) that
    // share a predicate with the view's relations or exports.
    let view_set = bitset(&view.rels);
    let shares_pred = |w: RelId| {
        query.preds.iter().chain(view.preds.iter()).any(|p| {
            let rels = p.rels_used();
            let touches_w = rels.contains(&w);
            let touches_view = rels.iter().any(|r| view_set & r.bit() != 0)
                || p.cols_used()
                    .iter()
                    .any(|c| matches!(c.as_agg(), Some(a) if a.owner == view.id()));
            touches_w && touches_view
        })
    };
    let base_candidates: Vec<RelId> = rels_of(bprime & !view_set)
        .filter(|w| !config.require_shared_predicate || shares_pred(*w))
        .collect();

    // Subsets of the view's removable relations (case iii): exhaustive
    // when small, else just all-or-nothing.
    let d_rels: Vec<RelId> = rels_of(d).collect();
    let d_subsets: Vec<u64> = if d_rels.len() <= 3 {
        (0..(1u64 << d_rels.len()))
            .map(|m| {
                d_rels
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| m & (1 << j) != 0)
                    .map(|(_, r)| r.bit())
                    .fold(0, |a, b| a | b)
            })
            .collect()
    } else {
        vec![0, d]
    };

    // Connected subsets of base candidates up to the k-level cap.
    let mut base_subsets: Vec<u64> = vec![0];
    let mut frontier: Vec<u64> = vec![0];
    for _ in 0..cap {
        let mut next = Vec::new();
        for &s in &frontier {
            for w in &base_candidates {
                if s & w.bit() != 0 {
                    continue;
                }
                let ns = s | w.bit();
                if !base_subsets.contains(&ns) {
                    base_subsets.push(ns);
                    next.push(ns);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }

    for &ds in &d_subsets {
        for &bs in &base_subsets {
            let w = ds | bs;
            if !out.contains(&w) {
                out.push(w);
            }
        }
    }
    // Keep the candidate list bounded.
    out.truncate(96);
    out
}

/// Build and optimize Φ(V₀, W) for one view. Returns `None` when the
/// choice of W is unsound (an excluded removable relation cannot legally
/// stay outside the deferred group-by).
#[allow(clippy::too_many_arguments)]
fn build_view_block(
    query: &CanonicalQuery,
    view: &ViewDef,
    v0: u64,
    w: u64,
    est: &CardEstimator<'_>,
    catalog: &Catalog,
    config: &OptimizerConfig,
    stats: &mut SearchStats,
    gov: &ResourceGovernor,
) -> Result<Option<ViewBlock>> {
    let view_set = bitset(&view.rels);
    let block_set = v0 | w;
    let excluded = view_set & !block_set; // removable rels left outside
    let in_block = |r: RelId| block_set & r.bit() != 0;

    // Split view predicates: inside the block vs expelled.
    let mut block_preds: Vec<Predicate> = Vec::new();
    let mut expelled: Vec<Predicate> = Vec::new();
    for p in &view.preds {
        if p.rels_used().iter().all(|r| in_block(*r)) {
            block_preds.push(p.clone());
        } else {
            expelled.push(p.clone());
        }
    }

    // Absorb outer predicates fully contained in the block.
    let mut absorbed: BTreeSet<usize> = BTreeSet::new();
    let mut deferred: Vec<Predicate> = Vec::new();
    for (i, p) in query.preds.iter().enumerate() {
        if !p.rels_used().iter().all(|r| in_block(*r)) {
            continue;
        }
        let aggs_used: Vec<_> = p.cols_used().iter().filter_map(|c| c.as_agg()).collect();
        if aggs_used.is_empty() {
            block_preds.push(p.clone());
            absorbed.insert(i);
        } else if aggs_used.iter().all(|a| a.owner == view.id()) {
            deferred.push(p.clone());
            absorbed.insert(i);
        }
        // Predicates referencing other views' aggregates stay outer.
    }

    // Columns of this block referenced outside it.
    let mut needed_outside: BTreeSet<Col> = BTreeSet::new();
    let note = |c: Col, needed: &mut BTreeSet<Col>| match c {
        Col::Base(b) if in_block(b.rel) => {
            needed.insert(c);
        }
        Col::Agg(a) if a.owner == view.id() => {
            needed.insert(c);
        }
        _ => {}
    };
    for (i, p) in query.preds.iter().enumerate() {
        if !absorbed.contains(&i) {
            for c in p.cols_used() {
                note(c, &mut needed_outside);
            }
        }
    }
    for p in &expelled {
        for c in p.cols_used() {
            note(c, &mut needed_outside);
        }
    }
    if let Some(g) = &query.group {
        for c in &g.group_cols {
            note(*c, &mut needed_outside);
        }
        for a in &g.aggs {
            for c in a.cols_used() {
                note(c, &mut needed_outside);
            }
        }
    }
    for c in &query.projection {
        note(*c, &mut needed_outside);
    }

    // Deferred group-by G′: grouping columns.
    let g_set: BTreeSet<Col> = view.group_cols.iter().copied().collect();
    // Relations pulled *through* the group-by: members of W that are not
    // the view's own relations. (Re-included removable relations sit
    // below G′ exactly where the original view had them — they need no
    // key machinery.)
    let pulled_foreign = w & !view_set;
    let mut group_cols: Vec<Col> = view.group_cols.clone();
    let mut gseen: BTreeSet<Col> = g_set.clone();
    let add_group = |c: Col, gseen: &mut BTreeSet<Col>, out: &mut Vec<Col>| {
        if gseen.insert(c) {
            out.push(c);
        }
    };
    // May column `c` be added to G′'s grouping columns without changing
    // group identities? Original grouping columns: trivially. Columns of
    // pulled foreign relations: yes — they are functionally determined
    // by the relation's key, which pull-up adds below. Other view-side
    // columns (of V₀ or re-included removable relations): no — grouping
    // by them would split the view's groups.
    let exportable = |c: &Col| -> bool {
        if g_set.contains(c) {
            return true;
        }
        match c.as_base() {
            Some(b) => pulled_foreign & b.rel.bit() != 0,
            None => false,
        }
    };
    // Needed-outside base columns must pass through G′.
    for c in &needed_outside {
        if let Some(_b) = c.as_base() {
            if !exportable(c) {
                return Ok(None);
            }
            add_group(*c, &mut gseen, &mut group_cols);
        }
    }
    // Deferred HAVING predicates may only read grouping columns and the
    // view's aggregates: their base operands become grouping columns.
    for p in &deferred {
        for c in p.cols_used() {
            if c.as_base().is_some() {
                if !exportable(&c) {
                    return Ok(None);
                }
                add_group(c, &mut gseen, &mut group_cols);
            }
        }
    }
    // Cross-predicate block-side columns for excluded relations.
    for r in rels_of(excluded) {
        for p in view.preds.iter().chain(query.preds.iter()) {
            let rels = p.rels_used();
            if !rels.contains(&r) {
                continue;
            }
            for c in p.cols_used() {
                if let Some(b) = c.as_base() {
                    if in_block(b.rel) {
                        if !exportable(&c) {
                            return Ok(None); // unsound exclusion
                        }
                        add_group(c, &mut gseen, &mut group_cols);
                    }
                }
            }
        }
    }
    // Keys of pulled foreign relations (Definition 1 item 2), with the
    // foreign-key-join omission.
    for wr in rels_of(pulled_foreign) {
        let table = catalog.get(query.env.table_of(wr)?)?;
        let Some(pk) = table.primary_key() else {
            return Ok(None); // no derivable key → pull-up inadmissible
        };
        let key_cols: Vec<Col> = pk.cols.iter().map(|&c| Col::base(wr, c)).collect();
        // FK omission: all key columns equated (by block predicates) to
        // existing grouping columns.
        let fk_covered = key_cols.iter().all(|k| {
            block_preds.iter().any(|p| match p.as_col_eq_col() {
                Some((a, b)) => (a == *k && gseen.contains(&b)) || (b == *k && gseen.contains(&a)),
                None => false,
            })
        });
        if !fk_covered {
            for k in key_cols {
                add_group(k, &mut gseen, &mut group_cols);
            }
        }
    }

    // Soundness for excluded relations: key coverage into the block.
    for r in rels_of(excluded) {
        let table = catalog.get(query.env.table_of(r)?)?;
        let mut equated: BTreeSet<usize> = BTreeSet::new();
        for p in view.preds.iter().chain(query.preds.iter()) {
            if let Some((a, b)) = p.as_col_eq_col() {
                if let (Some(x), Some(y)) = (a.as_base(), b.as_base()) {
                    if x.rel == r && in_block(y.rel) {
                        equated.insert(x.col as usize);
                    }
                    if y.rel == r && in_block(x.rel) {
                        equated.insert(y.col as usize);
                    }
                }
            }
        }
        let eq: Vec<usize> = equated.into_iter().collect();
        if !table.cols_contain_key(&eq) {
            return Ok(None);
        }
    }

    let mut having = view.having.clone();
    having.extend(deferred);
    let gspec = GroupBySpec {
        owner: view.id(),
        group_cols: group_cols.clone(),
        aggs: view.aggs.clone(),
        having,
    };

    // Block output: exported needed-outside columns (grouping columns
    // pass through; aggregates are produced by G′). Always export the
    // view's declared exports that are needed.
    let mut project: Vec<Col> = Vec::new();
    let mut pseen = BTreeSet::new();
    for c in needed_outside {
        if pseen.insert(c) {
            project.push(c);
        }
    }
    if project.is_empty() {
        // Nothing referenced outside (degenerate); export the grouping
        // columns so the block has an output.
        for c in &group_cols {
            if pseen.insert(*c) {
                project.push(*c);
            }
        }
    }

    // Leaf scans for the block relations; single-relation predicates
    // become scan filters.
    let (items, multi_preds) = make_leaves(
        query,
        block_set,
        &block_preds,
        &gspec,
        &project,
        est,
        catalog,
    )?;

    let bq = BlockQuery {
        items,
        preds: multi_preds,
        group: Some(gspec),
        project,
    };
    stats.pulled_blocks += 1;
    let entry = optimize_block_governed(&bq, est, catalog, config, stats, gov)?;
    Ok(Some(ViewBlock {
        w,
        item: DpItem {
            plan: entry.plan,
            props: entry.props,
        },
        absorbed,
        expelled,
        block_set,
    }))
}

/// Build scan leaves for `rel_set`, assigning single-relation predicates
/// as scan filters and returning the remaining multi-relation ones.
fn make_leaves(
    query: &CanonicalQuery,
    rel_set: u64,
    preds: &[Predicate],
    gspec: &GroupBySpec,
    project: &[Col],
    est: &CardEstimator<'_>,
    catalog: &Catalog,
) -> Result<(Vec<DpItem>, Vec<Predicate>)> {
    let mut needed: BTreeSet<Col> = project.iter().copied().collect();
    needed.extend(gspec.group_cols.iter().copied());
    for a in &gspec.aggs {
        needed.extend(a.cols_used());
    }
    for h in &gspec.having {
        needed.extend(h.cols_used().into_iter().filter(|c| !c.is_agg()));
    }
    let mut multi: Vec<Predicate> = Vec::new();
    let mut filters: Vec<(RelId, Predicate)> = Vec::new();
    for p in preds {
        let rels: Vec<RelId> = p.rels_used().into_iter().collect();
        if rels.len() == 1 && !p.uses_agg() {
            filters.push((rels[0], p.clone()));
        } else {
            multi.push(p.clone());
            needed.extend(p.cols_used().into_iter().filter(|c| !c.is_agg()));
        }
    }
    let mut items = Vec::new();
    for r in rels_of(rel_set) {
        let table_name = query.env.table_of(r)?.to_string();
        let table = catalog.get(&table_name)?;
        let fs: Vec<Predicate> = filters
            .iter()
            .filter(|(fr, _)| *fr == r)
            .map(|(_, p)| {
                needed.extend(p.cols_used());
                p.clone()
            })
            .collect();
        let proj: Vec<Col> = all_cols(r, table.schema().len())
            .into_iter()
            .filter(|c| needed.contains(c))
            .collect();
        let proj = if proj.is_empty() {
            // Keep at least the first column so the scan has an output
            // (e.g. a relation used purely for its existence).
            vec![Col::base(r, 0)]
        } else {
            proj
        };
        let plan = Plan::scan(r, table_name, fs, proj);
        items.push(DpItem::new(plan, est)?);
    }
    Ok((items, multi))
}

/// Phase 2: enumerate the outer block for one combination of view
/// blocks.
#[allow(clippy::too_many_arguments)]
fn outer_phase(
    query: &CanonicalQuery,
    chosen: &[&ViewBlock],
    bprime: u64,
    est: &CardEstimator<'_>,
    catalog: &Catalog,
    config: &OptimizerConfig,
    stats: &mut SearchStats,
    gov: &ResourceGovernor,
) -> Result<Optimized> {
    // Outer predicate pool: query preds not absorbed anywhere, plus all
    // expelled view predicates.
    let absorbed: BTreeSet<usize> = chosen
        .iter()
        .flat_map(|vb| vb.absorbed.iter().copied())
        .collect();
    let mut pool: Vec<Predicate> = query
        .preds
        .iter()
        .enumerate()
        .filter(|(i, _)| !absorbed.contains(i))
        .map(|(_, p)| p.clone())
        .collect();
    for vb in chosen {
        pool.extend(vb.expelled.iter().cloned());
    }

    // Outer relations: B′ minus everything consumed by blocks.
    let consumed: u64 = chosen.iter().fold(0, |a, vb| a | vb.block_set);
    let outer_rels = bprime & !consumed;

    // Group spec for G0.
    let g0 = query.group.as_ref().map(|g| GroupBySpec {
        owner: ViewId::Top,
        group_cols: g.group_cols.clone(),
        aggs: g.aggs.clone(),
        having: g.having.clone(),
    });

    // Needed columns for scans: projection + pool preds + G0.
    let mut needed: BTreeSet<Col> = query.projection.iter().copied().collect();
    for p in &pool {
        needed.extend(p.cols_used());
    }
    if let Some(g) = &g0 {
        needed.extend(g.group_cols.iter().copied());
        for a in &g.aggs {
            needed.extend(a.cols_used());
        }
    }

    // Split pool: single-item predicates become scan filters; the rest
    // feed the enumerator. "Item" granularity: a view block is one item.
    let item_of_rel = |r: RelId| -> usize {
        for (i, vb) in chosen.iter().enumerate() {
            if vb.block_set & r.bit() != 0 {
                return i;
            }
        }
        usize::MAX // outer scan; refined below
    };
    let mut scan_filters: Vec<(RelId, Predicate)> = Vec::new();
    let mut multi: Vec<Predicate> = Vec::new();
    for p in &pool {
        let rels: Vec<RelId> = p.rels_used().into_iter().collect();
        let has_agg = p.uses_agg();
        if rels.len() == 1 && !has_agg && outer_rels & rels[0].bit() != 0 {
            scan_filters.push((rels[0], p.clone()));
        } else if !has_agg && !rels.is_empty() && {
            let first = item_of_rel(rels[0]);
            first != usize::MAX && rels.iter().all(|r| item_of_rel(*r) == first)
        } {
            // Single-item predicate on a view block's exports: apply as a
            // join-time predicate is impossible; it should have been
            // absorbed. Treat as multi to be safe (it will be evaluable
            // at the first join involving the block).
            multi.push(p.clone());
        } else {
            multi.push(p.clone());
        }
    }

    // Items: view blocks first, then outer scans.
    let mut items: Vec<DpItem> = chosen.iter().map(|vb| vb.item.clone()).collect();
    for r in rels_of(outer_rels) {
        let table_name = query.env.table_of(r)?.to_string();
        let table = catalog.get(&table_name)?;
        let fs: Vec<Predicate> = scan_filters
            .iter()
            .filter(|(fr, _)| *fr == r)
            .map(|(_, p)| {
                needed.extend(p.cols_used());
                p.clone()
            })
            .collect();
        let proj: Vec<Col> = all_cols(r, table.schema().len())
            .into_iter()
            .filter(|c| needed.contains(c))
            .collect();
        let proj = if proj.is_empty() {
            vec![Col::base(r, 0)]
        } else {
            proj
        };
        items.push(DpItem::new(Plan::scan(r, table_name, fs, proj), est)?);
    }

    let bq = BlockQuery {
        items,
        preds: multi,
        group: g0,
        project: query.projection.clone(),
    };
    let entry = optimize_block_governed(&bq, est, catalog, config, stats, gov)?;
    Ok(Optimized {
        plan: entry.plan,
        props: entry.props,
        stats: SearchStats::default(),
        pulled: vec![],
        outcome: OptimizeOutcome::Full,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::examples::{example1_query, example2_query};
    use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

    fn catalog(n_depts: usize, emps: usize, young: f64) -> Catalog {
        gen_empdept(&EmpDeptConfig {
            n_depts,
            emps_per_dept: emps,
            young_fraction: young,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn example1_optimizes_and_validates() {
        let cat = catalog(20, 10, 0.1);
        let q = example1_query();
        let opt = optimize(&q, &cat, CostModel::default(), &OptimizerConfig::default()).unwrap();
        opt.plan.validate(&cat, &q.env.rel_tables).unwrap();
        assert!(opt.props.cost > 0.0);
        assert_eq!(opt.pulled.len(), 1);
    }

    #[test]
    fn example1_never_worse_than_traditional() {
        for (nd, ne, yf) in [(50, 4, 0.5), (4, 100, 0.02), (20, 20, 0.1)] {
            let cat = catalog(nd, ne, yf);
            let q = example1_query();
            let full =
                optimize(&q, &cat, CostModel::default(), &OptimizerConfig::default()).unwrap();
            let trad = optimize(
                &q,
                &cat,
                CostModel::default(),
                &OptimizerConfig::traditional(),
            )
            .unwrap();
            assert!(
                full.props.cost <= trad.props.cost + 1e-6,
                "({nd},{ne},{yf}): full {} vs trad {}",
                full.props.cost,
                trad.props.cost
            );
        }
    }

    #[test]
    fn example2_single_block_works() {
        let cat = catalog(10, 20, 0.1);
        let q = example2_query();
        let opt = optimize(&q, &cat, CostModel::default(), &OptimizerConfig::default()).unwrap();
        opt.plan.validate(&cat, &q.env.rel_tables).unwrap();
        assert!(matches!(opt.plan, Plan::GroupBy { .. } | Plan::Join { .. }));
    }

    #[test]
    fn traditional_keeps_view_boundary() {
        let cat = catalog(10, 10, 0.1);
        let q = example1_query();
        let opt = optimize(
            &q,
            &cat,
            CostModel::default(),
            &OptimizerConfig::traditional(),
        )
        .unwrap();
        // Traditional: nothing pulled through the view.
        assert!(opt.pulled[0].is_empty());
        opt.plan.validate(&cat, &q.env.rel_tables).unwrap();
    }

    #[test]
    fn pull_up_selected_when_outer_is_very_selective() {
        // Few young employees, many departments: the paper says query B
        // (pull-up) should win.
        let cat = catalog(200, 10, 0.01);
        let q = example1_query();
        let opt = optimize(&q, &cat, CostModel::default(), &OptimizerConfig::default()).unwrap();
        let trad = optimize(
            &q,
            &cat,
            CostModel::default(),
            &OptimizerConfig::traditional(),
        )
        .unwrap();
        assert!(opt.props.cost <= trad.props.cost + 1e-6);
    }

    #[test]
    fn search_stats_accumulate() {
        let cat = catalog(10, 10, 0.1);
        let q = example1_query();
        let opt = optimize(&q, &cat, CostModel::default(), &OptimizerConfig::default()).unwrap();
        assert!(opt.stats.plans_built > 0);
        assert!(opt.stats.pulled_blocks >= 1);
    }
}
