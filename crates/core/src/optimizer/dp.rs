//! Selinger-style dynamic-programming join enumeration ([SAC+79],
//! reviewed in the paper's Section 5.1).
//!
//! The enumerator works over *items* rather than raw relations: an item
//! is any leaf plan — a base-table scan or an already-optimized
//! aggregate-view block — with its estimated properties. This is exactly
//! how the paper's phase-2 enumeration treats pulled-up views: "treating
//! relations in the latter set as base relations".
//!
//! The execution space is linear (left-deep) join orders, the space
//! [SAC+79] searches and the one the paper's extensions are defined
//! over. Cross products are deferred: an extension is only considered
//! when a predicate connects the new item to the partial plan, unless no
//! connected extension exists for some subset.

use crate::cost::{CardEstimator, PlanProps};
use crate::governor::ResourceGovernor;
use crate::optimizer::stats::SearchStats;
use crate::plan::Plan;
use aggview_common::{AggViewError, Col, Predicate, Result};
use std::collections::{BTreeSet, HashMap};

/// A leaf the enumerator sequences: a plan plus its estimated properties.
#[derive(Debug, Clone)]
pub struct DpItem {
    pub plan: Plan,
    pub props: PlanProps,
}

impl DpItem {
    /// Build an item by costing `plan`.
    pub fn new(plan: Plan, est: &CardEstimator<'_>) -> Result<DpItem> {
        let props = est.cost_plan(&plan)?;
        Ok(DpItem { plan, props })
    }

    fn output_set(&self) -> BTreeSet<Col> {
        self.plan.output_cols().iter().copied().collect()
    }
}

/// A memo entry: the best plan found for a subset of items.
#[derive(Debug, Clone)]
pub struct DpEntry {
    pub plan: Plan,
    pub props: PlanProps,
}

/// Which predicates become evaluable exactly when `new_cols` joins
/// `have_cols`: every column available, not evaluable before.
fn newly_evaluable(
    preds: &[Predicate],
    have: &BTreeSet<Col>,
    new: &BTreeSet<Col>,
) -> Vec<Predicate> {
    preds
        .iter()
        .filter(|p| {
            let cols = p.cols_used();
            let all_avail = cols.iter().all(|c| have.contains(c) || new.contains(c));
            let was_avail = cols.iter().all(|c| have.contains(c));
            let is_new = cols.iter().any(|c| new.contains(c));
            all_avail && !was_avail && is_new
        })
        .cloned()
        .collect()
}

/// Is the item graph connected under `preds`? (An edge links every pair
/// of items a predicate touches.) When it is, the enumerators forbid
/// cross-product joins outright — every subset worth memoizing is
/// reachable through connected extensions; when it is not, cross
/// products are unavoidable and allowed everywhere.
pub(crate) fn graph_connected(outsets: &[BTreeSet<Col>], preds: &[Predicate]) -> bool {
    let n = outsets.len();
    if n <= 1 {
        return true;
    }
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for p in preds {
        let touched: Vec<usize> = (0..n)
            .filter(|&i| p.cols_used().iter().any(|c| outsets[i].contains(c)))
            .collect();
        for w in touched.windows(2) {
            let a = find(&mut parent, w[0]);
            let b = find(&mut parent, w[1]);
            parent[a] = b;
        }
    }
    let root = find(&mut parent, 0);
    (1..n).all(|i| find(&mut parent, i) == root)
}

/// Columns a partial plan must carry upward: required outputs plus the
/// columns of predicates not yet evaluable.
fn needed_projection(
    avail: &BTreeSet<Col>,
    required: &BTreeSet<Col>,
    pending_preds: &[&Predicate],
) -> Vec<Col> {
    let mut needed: BTreeSet<Col> = required
        .iter()
        .filter(|c| avail.contains(c))
        .copied()
        .collect();
    for p in pending_preds {
        for c in p.cols_used() {
            if avail.contains(&c) {
                needed.insert(c);
            }
        }
    }
    needed.into_iter().collect()
}

/// Enumerate the optimal left-deep join order of `items` under `preds`,
/// projecting (at least) `required` at the root.
///
/// This is the paper's `Enumerate` function: stage `i` builds optimal
/// plans for every subset of size `i` by extending stage `i−1` plans
/// with one item (`joinplan`), keeping the cheapest per subset
/// (`MinCost`).
pub fn enumerate_linear(
    items: &[DpItem],
    preds: &[Predicate],
    required: &BTreeSet<Col>,
    est: &CardEstimator<'_>,
    stats: &mut SearchStats,
) -> Result<DpEntry> {
    enumerate_linear_governed(
        items,
        preds,
        required,
        est,
        stats,
        &ResourceGovernor::unlimited(),
    )
}

/// [`enumerate_linear`] under a [`ResourceGovernor`]: each subset
/// extension checks cancellation/deadline and charges the search budget.
pub fn enumerate_linear_governed(
    items: &[DpItem],
    preds: &[Predicate],
    required: &BTreeSet<Col>,
    est: &CardEstimator<'_>,
    stats: &mut SearchStats,
    gov: &ResourceGovernor,
) -> Result<DpEntry> {
    if items.is_empty() {
        return Err(AggViewError::Optimize("no items to enumerate".into()));
    }
    if items.len() > 63 {
        return Err(AggViewError::Optimize(format!(
            "too many items for bitset enumeration: {}",
            items.len()
        )));
    }
    let n = items.len();
    let full: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };
    let mut memo: HashMap<u64, DpEntry> = HashMap::with_capacity(1 << n.min(20));

    // Stage 1: single items (already planned leaves).
    for (i, it) in items.iter().enumerate() {
        memo.insert(
            1u64 << i,
            DpEntry {
                plan: it.plan.clone(),
                props: it.props.clone(),
            },
        );
        stats.memo_entries += 1;
        gov.charge_memo(1)?;
    }

    // Output columns per item, for predicate assignment.
    let outsets: Vec<BTreeSet<Col>> = items.iter().map(DpItem::output_set).collect();
    let connected_graph = graph_connected(&outsets, preds);

    for size in 2..=n {
        // Iterate subsets of `size` bits among n.
        let mut subset = (1u64 << size) - 1;
        while subset <= full {
            if (subset & full) == subset {
                extend_subset(
                    subset,
                    items,
                    &outsets,
                    preds,
                    required,
                    est,
                    stats,
                    &mut memo,
                    connected_graph,
                    gov,
                )?;
            }
            // Gosper's hack: next subset with the same popcount.
            let c = subset & subset.wrapping_neg();
            let r = subset + c;
            if r == 0 {
                break;
            }
            subset = (((r ^ subset) >> 2) / c) | r;
        }
    }
    memo.remove(&full)
        .ok_or_else(|| AggViewError::Optimize("enumeration produced no plan".into()))
}

#[allow(clippy::too_many_arguments)]
fn extend_subset(
    subset: u64,
    items: &[DpItem],
    outsets: &[BTreeSet<Col>],
    preds: &[Predicate],
    required: &BTreeSet<Col>,
    est: &CardEstimator<'_>,
    stats: &mut SearchStats,
    memo: &mut HashMap<u64, DpEntry>,
    connected_graph: bool,
    gov: &ResourceGovernor,
) -> Result<()> {
    gov.check_interrupt()?;
    let members: Vec<usize> = (0..items.len())
        .filter(|i| subset & (1 << i) != 0)
        .collect();

    // Availability for the whole subset.
    let avail: BTreeSet<Col> = members
        .iter()
        .flat_map(|&i| outsets[i].iter().copied())
        .collect();
    let pending: Vec<&Predicate> = preds
        .iter()
        .filter(|p| !p.cols_used().iter().all(|c| avail.contains(c)))
        .collect();
    let project = needed_projection(&avail, required, &pending);

    // Which last-items produce a connected (non-cross-product) join?
    let connected_last: Vec<usize> = members
        .iter()
        .copied()
        .filter(|&last| {
            let prior = subset & !(1u64 << last);
            let prior_cols: BTreeSet<Col> = (0..items.len())
                .filter(|i| prior & (1 << i) != 0)
                .flat_map(|i| outsets[i].iter().copied())
                .collect();
            !newly_evaluable(preds, &prior_cols, &outsets[last]).is_empty()
        })
        .collect();
    let candidates: &[usize] = if connected_last.is_empty() && !connected_graph {
        &members
    } else {
        &connected_last
    };

    let mut best: Option<DpEntry> = None;
    for &last in candidates {
        let prior = subset & !(1u64 << last);
        let Some(sub) = memo.get(&prior) else {
            continue; // prior subset unreachable (pruned)
        };
        let prior_cols: BTreeSet<Col> = sub.plan.output_cols().iter().copied().collect();
        let join_preds = newly_evaluable(preds, &prior_cols, &outsets[last]);
        let plan = Plan::join(
            sub.plan.clone(),
            items[last].plan.clone(),
            join_preds,
            project.clone(),
        );
        stats.plans_built += 1;
        gov.charge_plans(1)?;
        let props = est.cost_plan(&plan)?;
        if best.as_ref().is_none_or(|b| props.cost < b.props.cost) {
            best = Some(DpEntry { plan, props });
        }
    }
    if let Some(b) = best {
        memo.insert(subset, b);
        stats.memo_entries += 1;
        gov.charge_memo(1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::plan::all_cols;
    use crate::query::QueryEnv;
    use aggview_common::RelId;
    use aggview_storage::datagen::{gen_star, StarConfig};
    use aggview_storage::Catalog;

    fn star() -> (Catalog, QueryEnv) {
        let cat = gen_star(&StarConfig {
            customers: 200,
            orders_per_customer: 4,
            lines_per_order: 3,
            ..Default::default()
        })
        .unwrap();
        let env = QueryEnv::new(vec![
            "customer".into(),
            "orders".into(),
            "lineitem".into(),
            "nation".into(),
        ]);
        (cat, env)
    }

    fn items(cat: &Catalog, env: &QueryEnv, est: &CardEstimator<'_>) -> Vec<DpItem> {
        env.rel_tables
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let arity = cat.get(t).unwrap().schema().len();
                DpItem::new(
                    Plan::scan(RelId(i as u32), t, vec![], all_cols(RelId(i as u32), arity)),
                    est,
                )
                .unwrap()
            })
            .collect()
    }

    fn chain_preds() -> Vec<Predicate> {
        vec![
            // customer.cno = orders.cno
            Predicate::eq_cols(Col::base(RelId(0), 0), Col::base(RelId(1), 1)),
            // orders.ono = lineitem.ono
            Predicate::eq_cols(Col::base(RelId(1), 0), Col::base(RelId(2), 1)),
            // customer.nno = nation.nno
            Predicate::eq_cols(Col::base(RelId(0), 1), Col::base(RelId(3), 0)),
        ]
    }

    #[test]
    fn enumerates_full_chain_with_all_predicates_applied() {
        let (cat, env) = star();
        let est = CardEstimator::new(CostModel::default(), &cat, &env);
        let its = items(&cat, &env, &est);
        let required: BTreeSet<Col> = [Col::base(RelId(2), 3)].into_iter().collect();
        let mut stats = SearchStats::default();
        let entry = enumerate_linear(&its, &chain_preds(), &required, &est, &mut stats).unwrap();
        entry.plan.validate(&cat, &env.rel_tables).unwrap();
        assert_eq!(entry.plan.join_count(), 3);
        assert_eq!(entry.plan.output_cols(), &[Col::base(RelId(2), 3)]);
        assert!(stats.plans_built > 0);
        // All three predicates must appear somewhere in the tree.
        let explained = entry.plan.explain();
        assert!(explained.matches('=').count() >= 3, "{explained}");
    }

    #[test]
    fn single_item_returns_leaf() {
        let (cat, env) = star();
        let est = CardEstimator::new(CostModel::default(), &cat, &env);
        let its = items(&cat, &env, &est);
        let mut stats = SearchStats::default();
        let required: BTreeSet<Col> = [Col::base(RelId(0), 0)].into_iter().collect();
        let entry = enumerate_linear(&its[..1], &[], &required, &est, &mut stats).unwrap();
        assert_eq!(entry.plan.join_count(), 0);
    }

    #[test]
    fn avoids_cross_products_when_connected_order_exists() {
        let (cat, env) = star();
        let est = CardEstimator::new(CostModel::default(), &cat, &env);
        let its = items(&cat, &env, &est);
        let required: BTreeSet<Col> = [Col::base(RelId(0), 0)].into_iter().collect();
        let mut stats = SearchStats::default();
        let entry = enumerate_linear(&its, &chain_preds(), &required, &est, &mut stats).unwrap();
        // Every join in the chosen plan must carry at least one predicate.
        fn no_cross(p: &Plan) -> bool {
            match p {
                Plan::Join {
                    left, right, preds, ..
                } => !preds.is_empty() && no_cross(left) && no_cross(right),
                Plan::Scan { .. } | Plan::ExtentScan { .. } | Plan::EmptyScan { .. } => true,
                Plan::GroupBy { input, .. } | Plan::PartialGroupBy { input, .. } => no_cross(input),
            }
        }
        assert!(no_cross(&entry.plan), "{}", entry.plan.explain());
    }

    #[test]
    fn disconnected_items_still_get_a_plan() {
        let (cat, env) = star();
        let est = CardEstimator::new(CostModel::default(), &cat, &env);
        let its = items(&cat, &env, &est);
        let required: BTreeSet<Col> = [Col::base(RelId(0), 0)].into_iter().collect();
        let mut stats = SearchStats::default();
        // No predicates at all → cross products are unavoidable.
        let entry = enumerate_linear(&its[..2], &[], &required, &est, &mut stats).unwrap();
        assert_eq!(entry.plan.join_count(), 1);
    }

    #[test]
    fn dp_beats_worst_linear_order() {
        // The optimal plan should never cost more than the plan that
        // joins in declaration order (a legal member of the space).
        let (cat, env) = star();
        let est = CardEstimator::new(CostModel::default(), &cat, &env);
        let its = items(&cat, &env, &est);
        let preds = chain_preds();
        let required: BTreeSet<Col> = [Col::base(RelId(3), 1)].into_iter().collect();
        let mut stats = SearchStats::default();
        let best = enumerate_linear(&its, &preds, &required, &est, &mut stats).unwrap();

        // Declaration order: ((c ⋈ o) ⋈ l) ⋈ n.
        let mut cols: BTreeSet<Col> = its[0].output_set();
        let mut plan = its[0].plan.clone();
        for it in &its[1..] {
            let jp = newly_evaluable(&preds, &cols, &it.output_set());
            cols.extend(it.output_set());
            let pending: Vec<&Predicate> = preds
                .iter()
                .filter(|p| !p.cols_used().iter().all(|c| cols.contains(c)))
                .collect();
            let project = needed_projection(&cols, &required, &pending);
            plan = Plan::join(plan, it.plan.clone(), jp, project);
        }
        let naive = est.cost_plan(&plan).unwrap();
        assert!(
            best.props.cost <= naive.cost + 1e-9,
            "dp {} vs naive {}",
            best.props.cost,
            naive.cost
        );
    }

    #[test]
    fn too_many_items_rejected() {
        let (cat, env) = star();
        let est = CardEstimator::new(CostModel::default(), &cat, &env);
        let one = items(&cat, &env, &est).remove(0);
        let many: Vec<DpItem> = (0..70).map(|_| one.clone()).collect();
        let mut stats = SearchStats::default();
        let required = BTreeSet::new();
        assert!(enumerate_linear(&many, &[], &required, &est, &mut stats).is_err());
        assert!(enumerate_linear(&[], &[], &required, &est, &mut stats).is_err());
    }
}
