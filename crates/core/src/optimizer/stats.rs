//! Search-effort accounting.
//!
//! The paper claims its enumeration yields a "very moderate increase in
//! search space while often producing significantly better plans"
//! (\[CS94\], restated in Section 5.2) and that the practical restrictions
//! of Section 5.3 "restrict the search space significantly". These
//! counters make the claim measurable (experiment E5).

use std::fmt;

/// Counters accumulated during one optimizer run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Candidate (sub)plans constructed and costed (`joinplan` calls in
    /// the paper's Enumerate notation, plus group-by placements).
    pub plans_built: u64,
    /// DP memo entries created (distinct (subset, state) pairs).
    pub memo_entries: u64,
    /// Pulled-up single blocks Φ(V₀, W) optimized.
    pub pulled_blocks: u64,
    /// Group-by placements considered by the greedy conservative
    /// heuristic.
    pub groupby_placements: u64,
}

impl SearchStats {
    /// Merge another run's counters into this one.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.plans_built += other.plans_built;
        self.memo_entries += other.memo_entries;
        self.pulled_blocks += other.pulled_blocks;
        self.groupby_placements += other.groupby_placements;
    }

    /// Total work proxy used when comparing optimizer variants.
    pub fn total(&self) -> u64 {
        self.plans_built + self.groupby_placements
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "plans={} memo={} pulled_blocks={} gb_placements={}",
            self.plans_built, self.memo_entries, self.pulled_blocks, self.groupby_placements
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = SearchStats {
            plans_built: 3,
            memo_entries: 2,
            pulled_blocks: 1,
            groupby_placements: 4,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.plans_built, 6);
        assert_eq!(a.total(), 6 + 8);
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = SearchStats::default().to_string();
        for key in ["plans", "memo", "pulled_blocks", "gb_placements"] {
            assert!(s.contains(key), "{key} missing from {s}");
        }
    }
}
