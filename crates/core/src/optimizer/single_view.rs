//! The single-aggregate-view case (paper Section 5.3).
//!
//! With `m = 1` the general algorithm of [`crate::optimizer::multi_view`]
//! specializes to exactly the paper's Section 5.3 procedure:
//!
//! (a) generate the query `Φ(V₀, B′)`; (b) single-block optimization of
//! the pulled blocks; (c) choose a plan for `Φ(V₀, W)` for each `W ⊆ B′`
//! (adding `G1` on top); (d) optimize the single-block query (with
//! `G0`) consisting of `B′ − W` and `Φ(V₀, W)` for each choice of `W`.
//!
//! The three cases of the paper map onto `W` as:
//! * `W = V − V₀` — the original aggregate view, optimized locally
//!   (Figure 4(a)/(b));
//! * `W ⊋ V − V₀` — an *extended* aggregate view including base
//!   relations, i.e. pull-up (Figure 4(c)); with `W = B′` the query
//!   collapses to a single block;
//! * `W ⊉ V − V₀` — combined push-down and pull-up (Figure 4(d)).

use crate::cost::CostModel;
use crate::governor::ResourceGovernor;
use crate::optimizer::multi_view::{optimize_governed, Optimized};
use crate::optimizer::OptimizerConfig;
use crate::query::CanonicalQuery;
use aggview_common::{AggViewError, Result};
use aggview_storage::Catalog;

/// Optimize a query with exactly one aggregate view.
///
/// Identical to [`crate::optimize`] but asserts the query shape, making
/// intent explicit at call sites that implement the paper's Section 5.3
/// experiments.
pub fn optimize_single_view(
    query: &CanonicalQuery,
    catalog: &Catalog,
    model: CostModel,
    config: &OptimizerConfig,
) -> Result<Optimized> {
    optimize_single_view_governed(
        query,
        catalog,
        model,
        config,
        &ResourceGovernor::unlimited(),
    )
}

/// [`optimize_single_view`] under a [`ResourceGovernor`].
pub fn optimize_single_view_governed(
    query: &CanonicalQuery,
    catalog: &Catalog,
    model: CostModel,
    config: &OptimizerConfig,
    gov: &ResourceGovernor,
) -> Result<Optimized> {
    if query.views.len() != 1 {
        return Err(AggViewError::Optimize(format!(
            "optimize_single_view expects exactly one view, got {}",
            query.views.len()
        )));
    }
    optimize_governed(query, catalog, model, config, gov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::examples::{example1_query, example2_query};
    use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

    #[test]
    fn accepts_single_view_query() {
        let cat = gen_empdept(&EmpDeptConfig {
            n_depts: 10,
            emps_per_dept: 10,
            ..Default::default()
        })
        .unwrap();
        let q = example1_query();
        let opt = optimize_single_view(&q, &cat, CostModel::default(), &OptimizerConfig::default())
            .unwrap();
        opt.plan.validate(&cat, &q.env.rel_tables).unwrap();
    }

    #[test]
    fn rejects_other_shapes() {
        let cat = gen_empdept(&EmpDeptConfig::default()).unwrap();
        let q = example2_query(); // zero views
        assert!(
            optimize_single_view(&q, &cat, CostModel::default(), &OptimizerConfig::default())
                .is_err()
        );
    }
}
